"""Table 4: the paper's 4-bit LPAA 1 worked example, stage by stage.

Regenerates every printed value of the table -- the per-stage
success-conditioned carry probabilities and the final P(Succ) =
0.738476 -- from the traced recursion.
"""

from __future__ import annotations

import pytest

from repro.core.stages import format_trace_table, trace_chain

from conftest import emit

P_A = [0.9, 0.5, 0.4, 0.8]
P_B = [0.8, 0.7, 0.6, 0.9]
P_CIN = 0.5

#: (stage, P(~C_next & Succ), P(C_next & Succ)) as printed in the paper.
PAPER_CARRY_ROWS = [
    (0, 0.02, 0.85),
    (1, 0.1305, 0.7295),
    (2, 0.2064, 0.58574),
]
PAPER_P_SUCC = 0.738476


def _run():
    return trace_chain("LPAA 1", width=4, p_a=P_A, p_b=P_B, p_cin=P_CIN)


def test_table4_worked_example(benchmark):
    result = _run()
    emit("Table 4: 4-bit multistage LPAA 1 error analysis")
    emit(format_trace_table(result))

    for stage, c0, c1 in PAPER_CARRY_ROWS:
        record = result.trace[stage]
        assert record.p_c0_next_succ == pytest.approx(c0, abs=5e-6)
        assert record.p_c1_next_succ == pytest.approx(c1, abs=5e-6)
    assert result.p_success == pytest.approx(PAPER_P_SUCC, abs=5e-7)
    # the "NR" cells: no carry-out at the last stage, P(Succ) only there.
    assert result.trace[-1].p_c1_next_succ is None
    assert all(r.p_success is None for r in result.trace[:-1])

    benchmark(_run)
