"""Parallel sweep executor: >= 2.5x speedup on 8 cores, bit-identical.

The paper's Table 3 argument -- exhaustive simulation cost explodes
while the analytical recursion stays flat -- gets an operational
addendum in this repo: when simulation *is* requested, the grid is
embarrassingly parallel, and ``run_batch(parallelism=...)`` shards it
across a process pool.  This bench measures that claim two ways:

* **Correctness** -- a 512-config 32-bit analytical sweep must be
  *bit-identical* between the serial and sharded paths (the fixed-order
  masked sums in ``core.vectorized`` make every row independent of its
  batch mates).
* **Throughput** -- a Monte-Carlo sweep (the workload heavy enough for
  process fan-out to matter; the analytical recursion answers the whole
  512-config sweep in milliseconds) must run >= 2.5x faster with 8
  workers than serially.  Skipped below 8 physical cores -- a speedup
  assertion on an oversubscribed pool would measure the scheduler, not
  the executor.
"""

from __future__ import annotations

import os
import time

from repro.engine import AnalysisRequest, run_batch
from repro.reporting import ascii_table

from bench_trajectory import metric, write_trajectory
from conftest import bench_output_path, emit

import pytest

WIDTH = 32
CONFIGS = 512
CELL = "LPAA 6"
JOBS = 8
MC_SAMPLES = 20_000
MIN_SPEEDUP = 2.5


def _sweep_requests(configs: int = CONFIGS, width: int = WIDTH):
    """One request per sweep config; probabilities never repeat."""
    requests = []
    for k in range(configs):
        p_a = [((k * 37 + i) % 1009) / 1009.0 for i in range(width)]
        p_b = [((k * 53 + 7 * i + 1) % 1009) / 1009.0 for i in range(width)]
        requests.append(AnalysisRequest.chain(
            CELL, width, p_a, p_b, ((k * 11) % 1009) / 1009.0))
    return requests


def test_parallel_sweep_bit_identical(benchmark):
    """The 512-config analytical sweep: serial == parallel, bitwise."""
    requests = _sweep_requests()
    start = time.perf_counter()
    serial = run_batch(requests)
    serial_s = time.perf_counter() - start
    jobs = min(JOBS, max(os.cpu_count() or 1, 2))
    start = time.perf_counter()
    parallel = run_batch(requests, parallelism=jobs)
    parallel_s = time.perf_counter() - start
    benchmark(lambda: run_batch(requests, parallelism=jobs))
    mismatches = sum(
        1 for s, p in zip(serial, parallel) if s.p_error != p.p_error
    )
    emit(ascii_table(
        ["Path", "Configs", "Engine", "Mismatches"],
        [["serial", len(serial), serial[0].engine, "-"],
         ["parallel", len(parallel), parallel[0].engine, mismatches]],
        title=f"{CONFIGS}-config {WIDTH}-bit sweep (jobs={jobs})",
    ))
    # Pin the trajectory before the assertions (see BENCH_parallel.json
    # and scripts/bench_trajectory.py).  The analytical sweep is cold on
    # the serial pass, so configs/s is the headline, not the speedup --
    # parallel wall time includes process fan-out overhead that only
    # pays for itself on simulation-grade work.
    write_trajectory(bench_output_path("BENCH_parallel.json"),
                     "parallel_scaling", [
        metric("serial_sweep_s", serial_s, unit="s",
               higher_is_better=False),
        metric("parallel_sweep_s", parallel_s, unit="s",
               higher_is_better=False),
        metric("sweep_configs_per_s", len(requests) / serial_s
               if serial_s > 0 else 0.0, unit="configs/s"),
    ])
    assert mismatches == 0
    assert all(s.engine == p.engine == "vectorized"
               for s, p in zip(serial, parallel))


@pytest.mark.skipif((os.cpu_count() or 1) < JOBS,
                    reason=f"speedup assertion needs >= {JOBS} cores")
def test_parallel_montecarlo_speedup(benchmark):
    """>= 2.5x with 8 workers on the simulation-grade workload."""
    requests = _sweep_requests(configs=64)

    def serial_pass() -> float:
        start = time.perf_counter()
        run_batch(requests, engine="montecarlo", samples=MC_SAMPLES, seed=0)
        return time.perf_counter() - start

    def parallel_pass() -> float:
        start = time.perf_counter()
        run_batch(requests, parallelism=JOBS, engine="montecarlo",
                  samples=MC_SAMPLES, seed=0)
        return time.perf_counter() - start

    parallel_pass()  # fork/import warm-up outside the timed passes
    serial = min(serial_pass() for _ in range(2))
    parallel = benchmark(parallel_pass)
    speedup = serial / parallel if parallel > 0 else float("inf")
    emit(ascii_table(
        ["Path", "Seconds", "Speedup"],
        [["serial (1 core)", f"{serial:.3f}", "1.0x"],
         [f"parallel ({JOBS} workers)", f"{parallel:.3f}",
          f"{speedup:.2f}x"]],
        title=f"Monte-Carlo sweep, {len(requests)} configs x "
              f"{MC_SAMPLES} samples",
    ))
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x with {JOBS} workers, got {speedup:.2f}x"
    )
