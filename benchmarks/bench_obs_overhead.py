"""Observability overhead: instrumentation must be ~free when off.

The obs layer lives inside the hot analytical loops, so its disabled
cost has to stay in the noise (the PR budget is <= 2% on the recursion
kernel); with metrics *and* tracing collecting, the same loops must stay
within a small constant factor.  A second check records the vectorised
Monte-Carlo sampler's throughput through the very timer metrics it
ships, demonstrating the metrics path end to end.
"""

from __future__ import annotations

import time

from repro.core.recursive import analyze_chain
from repro.obs import MetricsRegistry, Tracer, metrics, use_registry, use_tracer
from repro.reporting import ascii_table
from repro.simulation.montecarlo import simulate_samples

from conftest import emit

WIDTH = 16
REPEATS = 400


def _kernel_seconds() -> float:
    start = time.perf_counter()
    for _ in range(REPEATS):
        analyze_chain("LPAA 6", width=WIDTH, p_a=0.3, p_b=0.7)
    return time.perf_counter() - start


def test_disabled_instrumentation_is_noise(benchmark):
    assert not metrics.is_enabled()
    _kernel_seconds()  # warm-up
    baseline = min(_kernel_seconds() for _ in range(5))
    disabled = min(_kernel_seconds() for _ in range(5))

    metrics.enable()
    try:
        with use_registry(MetricsRegistry()), use_tracer(Tracer()):
            enabled = min(_kernel_seconds() for _ in range(5))
    finally:
        metrics.disable()

    emit(ascii_table(
        ["mode", f"seconds / {REPEATS} calls", "vs baseline"],
        [["obs disabled (reference)", baseline, 1.0],
         ["obs disabled (re-run)", disabled, disabled / baseline],
         ["metrics + tracing on", enabled, enabled / baseline]],
        digits=4,
        title="Observability overhead on the recursion kernel",
    ))
    # min-of-5 suppresses scheduler noise; 1.10 leaves margin over the
    # 2% budget without flaking on loaded CI machines.
    assert disabled / baseline < 1.10, "disabled instrumentation too costly"
    assert enabled / baseline < 2.0, "enabled instrumentation too costly"

    benchmark(lambda: analyze_chain("LPAA 6", width=WIDTH, p_a=0.3, p_b=0.7))


def test_sampler_throughput_via_timer_metrics(benchmark):
    registry = MetricsRegistry()
    metrics.enable()
    try:
        with use_registry(registry):
            simulate_samples("LPAA 6", 16, samples=200_000,
                             batch_size=50_000, seed=0)
    finally:
        metrics.disable()

    stats = registry.timer("simulation.montecarlo.batch").stats()
    assert stats["count"] == 4
    throughput = 200_000 / max(
        registry.timer("simulation.montecarlo.simulate_samples")
        .stats()["total_s"], 1e-9,
    )
    emit(ascii_table(
        ["metric", "value"],
        [["batches", stats["count"]],
         ["mean batch seconds", stats["mean_s"]],
         ["p95 batch seconds", stats["p95_s"]],
         ["samples / second", throughput]],
        digits=4,
        title="Vectorised sampler throughput (from shipped timer metrics)",
    ))
    # the vectorised sampler comfortably clears 1M samples/s on any
    # current machine; the old per-bit Python loop sat well below this
    assert throughput > 1_000_000, f"sampler too slow: {throughput:.0f}/s"

    benchmark(lambda: simulate_samples("LPAA 6", 16, samples=50_000, seed=0))
