"""Table 7: analytical vs simulated P(E) for all seven LPAAs,
N = 2..12, with A_i = B_i = C_in = 0.1.

The analytical column must reproduce the paper's printed values to the
5th decimal; the simulation column (1M Monte-Carlo samples, like the
paper's LabVIEW run) must agree with the analytical one to about the 3rd
decimal.  For N <= 8 we additionally run the *weighted exhaustive*
oracle, which matches the analytical values to machine precision.
"""

from __future__ import annotations

import pytest

from repro.core.adders import PAPER_LPAAS
from repro.core.recursive import error_probability
from repro.reporting import ascii_table
from repro.simulation.exhaustive import exhaustive_error_probability
from repro.simulation.montecarlo import simulate_error_probability

from conftest import emit

P = 0.1
WIDTHS = [2, 4, 6, 8, 10, 12]
MC_SAMPLES = 1_000_000

#: The paper's analytical columns, verbatim.
PAPER_ANALYTICAL = {
    2: [0.30780, 0.9271, 0.95707, 0.31851, 0.27000, 0.1143, 0.01980],
    4: [0.53090, 0.99468, 0.99763, 0.54033, 0.40950, 0.13533, 0.02333],
    6: [0.68240, 0.99961, 0.99986, 0.68999, 0.52170, 0.15266, 0.02685],
    8: [0.78498, 0.99997, 0.99999, 0.79092, 0.61258, 0.16953, 0.03035],
    10: [0.85443, 0.99999, 0.99999, 0.85899, 0.68618, 0.18605, 0.03385],
    12: [0.90145, 0.99999, 0.99999, 0.90490, 0.74581, 0.20225, 0.03733],
}


def _analytical_row(width: int):
    return [
        float(error_probability(cell, width, P, P, P))
        for cell in PAPER_LPAAS
    ]


def test_table7_analytical_column(benchmark):
    rows = []
    for width in WIDTHS:
        ours = _analytical_row(width)
        rows.append([width, *ours])
        for got, printed in zip(ours, PAPER_ANALYTICAL[width]):
            assert got == pytest.approx(printed, abs=1.1e-5)
    emit(ascii_table(
        ["N", *[cell.name for cell in PAPER_LPAAS]],
        rows, digits=5,
        title="Table 7 (analytical): P(E) at A=B=Cin=0.1",
    ))
    benchmark(lambda: _analytical_row(12))


def test_table7_simulation_column(benchmark):
    emit("Table 7 (simulation column): 1M Monte-Carlo samples per entry")
    rows = []
    for width in (2, 8, 12):  # representative subset for runtime
        for idx, cell in enumerate(PAPER_LPAAS):
            analytical = float(error_probability(cell, width, P, P, P))
            mc = simulate_error_probability(
                cell, width, P, P, P, samples=MC_SAMPLES, seed=width * 10 + idx
            )
            rows.append([f"{cell.name} N={width}", analytical, mc.p_error,
                         abs(analytical - mc.p_error)])
            assert abs(analytical - mc.p_error) < 2e-3
    emit(ascii_table(["Case", "Analyt.", "Sim.", "|diff|"], rows, digits=5))
    benchmark.pedantic(
        lambda: simulate_error_probability(
            PAPER_LPAAS[5], 8, P, P, P, samples=200_000, seed=0
        ),
        rounds=3, iterations=1,
    )


def test_table7_exhaustive_oracle(benchmark):
    # Stronger than the paper: the weighted enumeration is exact at
    # p = 0.1, not just for equiprobable inputs.
    for width in (2, 4, 6, 8):
        for cell in PAPER_LPAAS:
            exact = exhaustive_error_probability(cell, width, P, P, P)
            analytical = float(error_probability(cell, width, P, P, P))
            assert exact == pytest.approx(analytical, abs=1e-12)
    emit("Table 7 oracle: weighted exhaustive == analytical to 1e-12 "
         "for N <= 8, all 7 cells.")
    benchmark.pedantic(
        lambda: exhaustive_error_probability(PAPER_LPAAS[0], 8, P, P, P),
        rounds=3, iterations=1,
    )
