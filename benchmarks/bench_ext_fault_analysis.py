"""Extension bench: statistical stuck-at fault analysis.

Uses the paper's analytical engine as a *fault grader*: every stuck-at
fault inside a cell yields a different approximate cell whose multi-bit
error probability the recursion computes instantly.  The bench ranks the
accurate adder's faults by their statistical impact and reports the
classic test coverage numbers alongside.
"""

from __future__ import annotations

import pytest

from repro.circuits.cells import synthesize_cell
from repro.circuits.faults import (
    enumerate_faults,
    exhaustive_test_set,
    fault_coverage,
    fault_detectability,
)
from repro.reporting import ascii_table

from conftest import emit

WIDTH = 8


def test_ext_fault_grading(benchmark):
    impacts = fault_detectability("accurate", width=WIDTH)
    rows = [
        [fi.fault.describe(), fi.p_error_faulty, fi.delta]
        for fi in impacts[:8]
    ]
    emit(ascii_table(
        ["fault", "P(Error) with fault", "delta vs healthy"],
        rows, digits=4,
        title=f"Ext: top stuck-at faults of AccuFA in an {WIDTH}-bit chain "
              f"(healthy P(Error) = {impacts[0].p_error_healthy:.4f})",
    ))
    # a healthy accurate chain never errs; every fault only adds error.
    assert impacts[0].p_error_healthy == pytest.approx(0.0)
    assert all(fi.delta >= -1e-12 for fi in impacts)
    # the most damaging faults corrupt over half of all additions.
    assert impacts[0].delta > 0.5
    # no stuck-at on an irredundant 2-level AccuFA is statistically
    # silent at p = 0.5.
    assert not any(fi.statistically_silent for fi in impacts)

    benchmark.pedantic(
        lambda: fault_detectability("accurate", width=WIDTH),
        rounds=3, iterations=1,
    )


def test_ext_fault_coverage(benchmark):
    impl = synthesize_cell("accurate")
    vectors = exhaustive_test_set(impl.netlist)
    coverage, undetected = fault_coverage(impl.netlist, vectors)
    emit(f"Ext: AccuFA stuck-at coverage with all 8 vectors: "
         f"{coverage:.1%} ({len(enumerate_faults(impl.netlist))} faults)")
    assert coverage == pytest.approx(1.0)
    assert undetected == []

    # a small compacted test set: how few vectors reach full coverage?
    best = None
    for a in range(8):
        for b in range(8):
            if a == b:
                continue
            pair = [vectors[a], vectors[b]]
            cov, _ = fault_coverage(impl.netlist, pair)
            if best is None or cov > best[0]:
                best = (cov, pair)
    emit(f"Ext: best 2-vector coverage: {best[0]:.1%}")
    assert best[0] > 0.5

    benchmark.pedantic(
        lambda: fault_coverage(impl.netlist, vectors), rounds=3, iterations=1
    )
