"""Segment prefix cache: >= 10x on a million-config shared-prefix sweep.

The tentpole claim of the transfer-matrix refactor: once a chain's
aligned segment tree is cached, sweeping configurations that share a
prefix costs O(log N) composes per new suffix plus one exact evaluation
per carry-in -- not an O(N) re-recursion per config.  This bench pins
that claim on the workload the serve layer actually sees:

* **Sweep shape** -- a 64-bit chain whose first 63 stages are fixed
  (the shared prefix) while the last stage steps through ``VARIANTS``
  distinct probability pairs, each evaluated at ``CARRY_INS`` carry-in
  probabilities: ``VARIANTS * CARRY_INS`` = one million configs.
* **Baseline** -- the serial stage-by-stage recursion
  (:func:`repro.core.recursive.analyze_chain`), timed on a
  ``BASELINE_SAMPLE``-config sample and extrapolated linearly (the
  recursion has no cross-config state, so per-config cost is flat).
* **Bit-identity** -- before any timing, the segment path must return
  exactly the same bits as the Fraction-lifted recursion for *every*
  cell in the registry zoo at N in {4, 8, 16, 32, 64}.  The speedup is
  only interesting because the fast path is not an approximation.

The measured trajectory lands in ``BENCH_prefix.json``
(``sealpaa-bench-v1``; CI compares it informationally against the
committed baseline).
"""

from __future__ import annotations

import time
from fractions import Fraction

from repro.core.recursive import analyze_chain, resolve_chain
from repro.core.transfer import evaluate
from repro.engine.segcache import SegmentCache
from repro.reporting import ascii_table

from bench_trajectory import metric, write_trajectory
from conftest import bench_output_path, emit

CELL_NAMES = ["AccuFA"] + [f"LPAA {i}" for i in range(1, 8)]
IDENTITY_WIDTHS = [4, 8, 16, 32, 64]

CELL = "LPAA 2"
WIDTH = 64
VARIANTS = 1_000
CARRY_INS = 1_000
BASELINE_SAMPLE = 2_000
MIN_SPEEDUP = 10.0


def _stage_probs(width: int, seed: int = 0):
    """Distinct per-stage probabilities, pre-quantised to the cache's
    12-digit key convention so keys and values coincide exactly."""
    p_a = [round(((seed * 37 + i) % 1009) / 1009.0, 12)
           for i in range(width)]
    p_b = [round(((seed * 53 + 7 * i + 1) % 1009) / 1009.0, 12)
           for i in range(width)]
    return p_a, p_b


def _exact_reference(cell, width, p_a, p_b, p_cin) -> float:
    """The bit reference: the recursion with Fraction-lifted floats."""
    return float(analyze_chain(
        cell, width,
        [Fraction(p) for p in p_a], [Fraction(p) for p in p_b],
        Fraction(p_cin),
    ).p_success)


def test_bit_identity_across_the_cell_zoo():
    """Every registry cell, five widths: segment tree == exact recursion."""
    cache = SegmentCache(store=None)
    checked = 0
    for cell in CELL_NAMES:
        for width in IDENTITY_WIDTHS:
            p_a, p_b = _stage_probs(width, seed=width)
            tables = resolve_chain(cell, width)
            got = cache.success_probability(tables, p_a, p_b, 0.25)
            want = _exact_reference(cell, width, p_a, p_b, 0.25)
            assert got == want, (
                f"{cell} N={width}: segment tree {got!r} != exact {want!r}"
            )
            checked += 1
    emit(f"bit-identity: {checked} cell/width configs, "
         f"all equal to the Fraction-lifted recursion")


def test_million_config_shared_prefix_sweep(benchmark):
    """1M shared-prefix configs through the segment tier, >= 10x."""
    tables = resolve_chain(CELL, WIDTH)
    p_a, p_b = _stage_probs(WIDTH)
    suffix_values = [round(k / VARIANTS, 12) for k in range(VARIANTS)]
    carry_ins = [k / CARRY_INS for k in range(CARRY_INS)]

    # Baseline: the serial recursion on a sample, extrapolated.  One
    # config is independent of the next, so the scaling is exactly
    # linear; sampling keeps the bench's wall clock honest.
    sampled = 0
    start = time.perf_counter()
    while sampled < BASELINE_SAMPLE:
        variant = list(p_a)
        variant[-1] = suffix_values[sampled % VARIANTS]
        analyze_chain(CELL, WIDTH, variant, p_b,
                      carry_ins[sampled % CARRY_INS])
        sampled += 1
    baseline_sample_s = time.perf_counter() - start
    total_configs = VARIANTS * CARRY_INS
    baseline_est_s = baseline_sample_s * (total_configs / BASELINE_SAMPLE)

    # The segment path: per variant one O(log N) root rebuild over the
    # cached prefix, then one exact evaluation per carry-in.
    cache = SegmentCache(store=None)
    start = time.perf_counter()
    checksum = 0.0
    for value in suffix_values:
        variant = list(p_a)
        variant[-1] = value
        root = cache.chain_root(tables, variant, p_b)
        for p_cin in carry_ins:
            checksum += evaluate(root, p_cin)
    segment_s = time.perf_counter() - start
    assert 0.0 < checksum < total_configs  # probabilities, not garbage

    stats = cache.stats()["memory"]
    hit_rate = stats["hits"] / (stats["hits"] + stats["misses"])
    speedup = baseline_est_s / segment_s

    # Spot-check the sweep's actual values against the exact recursion
    # (the zoo test covers breadth; this covers this sweep's operands).
    spot = list(p_a)
    spot[-1] = suffix_values[VARIANTS // 2]
    spot_root = cache.chain_root(tables, spot, p_b)
    assert evaluate(spot_root, carry_ins[3]) == _exact_reference(
        CELL, WIDTH, spot, p_b, carry_ins[3])

    emit(ascii_table(
        ["path", "seconds (1M configs)", "speedup"],
        [["serial recursion (extrapolated "
          f"from {BASELINE_SAMPLE} configs)", f"{baseline_est_s:.1f}",
          "1.0x"],
         ["segment tree, prefix cached", f"{segment_s:.1f}",
          f"{speedup:.1f}x"]],
        title=f"{VARIANTS} suffix variants x {CARRY_INS} carry-ins, "
              f"{WIDTH}-bit {CELL}",
    ))
    emit(f"segment cache: {stats['hits']} hits / {stats['misses']} misses "
         f"(hit rate {hit_rate:.4f}), {stats['size']} resident segments")

    write_trajectory(bench_output_path("BENCH_prefix.json"),
                     "prefix_cache", [
        metric("baseline_recursion_est_s", baseline_est_s, unit="s",
               higher_is_better=False),
        metric("segment_sweep_s", segment_s, unit="s",
               higher_is_better=False),
        metric("prefix_speedup_x", speedup, unit="x"),
        metric("sweep_configs_per_s", total_configs / segment_s,
               unit="configs/s"),
        metric("segment_hit_rate", hit_rate, unit=""),
    ])

    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x over the serial recursion, "
        f"got {speedup:.1f}x"
    )

    # pytest-benchmark timer: one warm variant (root rebuild + 1k evals).
    def warm_variant():
        root = cache.chain_root(tables, spot, p_b)
        return sum(evaluate(root, p) for p in carry_ins)

    benchmark(warm_variant)
