"""Extension bench: CSA-tree vs sequential-RCA accumulation.

The paper's §2.1 names RCA and CSA as the two multi-bit topologies LPAAs
get cascaded into.  This bench compares, for an 8-operand accumulation
with the same approximate cell:

* error probability (Monte-Carlo over the exact functional models) of
  (a) a CSA tree with approximate compressors, (b) a CSA tree with an
  approximate final adder, (c) sequential accumulation on an
  approximate RCA;
* the exact one-layer CSA success probability (analytical, column
  product) against the simulated single-layer figure.
"""

from __future__ import annotations

import numpy as np

from repro.multiop.analysis import (
    csa_layer_success_probability,
    multi_operand_error_probability_mc,
)
from repro.multiop.compressor import csa_compress_array
from repro.multiop.mac import Accumulator
from repro.reporting import ascii_table

from conftest import emit

WIDTH = 6
OPERANDS = 8
P = 0.5
CELL = "LPAA 6"


def _sequential_rca_error(samples: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    wrong = 0
    # accumulator wide enough for 8 operands of WIDTH bits
    acc_width = WIDTH + 3
    for _ in range(samples):
        acc = Accumulator(acc_width, CELL)
        values = rng.integers(0, 1 << WIDTH, OPERANDS)
        for v in values:
            acc.add(int(v))
        if acc.drift != 0:
            wrong += 1
    return wrong / samples


def test_ext_csa_vs_rca_error(benchmark):
    p_rows = [[P] * WIDTH] * OPERANDS
    tree_compress = multi_operand_error_probability_mc(
        p_rows, WIDTH, compress_cell=CELL, samples=100_000, seed=0
    )
    tree_final = multi_operand_error_probability_mc(
        p_rows, WIDTH, final_adder=CELL, samples=100_000, seed=1
    )
    rca = _sequential_rca_error(samples=4_000, seed=2)
    emit(ascii_table(
        ["accumulation topology", "P(Error)"],
        [
            [f"CSA tree, {CELL} compressors", tree_compress],
            [f"CSA tree, {CELL} final adder", tree_final],
            [f"sequential RCA of {CELL}", rca],
        ],
        digits=4,
        title=f"Ext: {OPERANDS}-operand accumulation, {WIDTH}-bit inputs, "
              f"p = {P}",
    ))
    # every approximate topology errs; the 7-stage sequential chain of
    # approximate adds errs most (it applies the cell 7x full-width).
    assert 0 < tree_compress < 1
    assert 0 < tree_final < 1
    assert rca > 0.5

    benchmark.pedantic(
        lambda: multi_operand_error_probability_mc(
            p_rows, WIDTH, compress_cell=CELL, samples=20_000, seed=0
        ),
        rounds=3, iterations=1,
    )


def test_ext_csa_layer_analytic_vs_simulation(benchmark):
    analytic = csa_layer_success_probability(CELL, P, P, P, WIDTH)
    rng = np.random.default_rng(3)
    samples = 200_000
    x = rng.integers(0, 1 << WIDTH, samples)
    y = rng.integers(0, 1 << WIDTH, samples)
    z = rng.integers(0, 1 << WIDTH, samples)
    s, c = csa_compress_array(CELL, x, y, z, WIDTH)
    s_ref, c_ref = csa_compress_array("accurate", x, y, z, WIDTH)
    simulated = float(((s == s_ref) & (c == c_ref)).mean())
    emit(f"Ext: one 3:2 layer of {CELL}: analytic P(ok) = {analytic:.5f}, "
         f"simulated = {simulated:.5f}")
    assert abs(analytic - simulated) < 3e-3

    benchmark(lambda: csa_layer_success_probability(CELL, P, P, P, WIDTH))
