"""Figure 5: P(Succ)/P(Error) vs adder width for all seven LPAAs under
(a) equally probable, (b) low-probability and (c) high-probability
inputs.

Regenerates the three curve families with the vectorised engine and
asserts every qualitative reading the paper draws from them:

* (a) LPAA 1 and LPAA 7 coincide at p = 0.5;
* (a) no cell stays useful beyond ~10 bits (P(E) > 0.5);
* (b) LPAA 7 is the best cell at low input probability;
* (c) LPAA 1 is the best cell at high input probability;
* (b,c) LPAA 1/LPAA 7 swap roles symmetrically;
* LPAA 6 is top-2 at both extremes and best on average
  (the "Four Season Adder").
"""

from __future__ import annotations

import numpy as np

from repro.core.adders import PAPER_LPAAS
from repro.core.vectorized import error_by_width
from repro.reporting import ascii_table

from conftest import emit

MAX_WIDTH = 16
LOW, EQUAL, HIGH = 0.1, 0.5, 0.9


def _curves(p: float) -> dict:
    return {
        cell.name: error_by_width(cell, MAX_WIDTH, p, p_cin=p)
        for cell in PAPER_LPAAS
    }


def _table(curves: dict, label: str) -> str:
    widths = [1, 2, 4, 6, 8, 10, 12, 16]
    rows = [
        [name, *[float(curve[n - 1]) for n in widths]]
        for name, curve in curves.items()
    ]
    return ascii_table(
        ["Cell", *[f"N={n}" for n in widths]],
        rows, digits=4,
        title=f"Fig. 5{label}: P(Error) vs width",
    )


def test_fig5a_equally_probable(benchmark):
    curves = _curves(EQUAL)
    emit(_table(curves, f"(a) p = {EQUAL}"))
    # LPAA 1 == LPAA 7 at p = 0.5 (the paper's observation).
    assert np.allclose(curves["LPAA 1"], curves["LPAA 7"], atol=1e-12)
    # "none of the LPAA is useful beyond 10-bits cascading".
    for name, curve in curves.items():
        assert curve[10] > 0.5, f"{name} still useful at 11 bits?"
    benchmark(lambda: _curves(EQUAL))


def test_fig5b_low_probability(benchmark):
    curves = _curves(LOW)
    emit(_table(curves, f"(b) p = {LOW}"))
    final = {name: float(curve[-1]) for name, curve in curves.items()}
    ranked = sorted(final, key=final.get)
    assert ranked[0] == "LPAA 7"           # best at low p
    assert "LPAA 6" in ranked[:2]          # Four Season runner-up
    assert final["LPAA 1"] > final["LPAA 7"]  # the specialist collapse
    benchmark(lambda: _curves(LOW))


def test_fig5c_high_probability(benchmark):
    curves = _curves(HIGH)
    emit(_table(curves, f"(c) p = {HIGH}"))
    final = {name: float(curve[-1]) for name, curve in curves.items()}
    ranked = sorted(final, key=final.get)
    assert ranked[0] == "LPAA 1"           # best at high p
    assert "LPAA 6" in ranked[:2]
    assert final["LPAA 7"] > final["LPAA 1"]
    benchmark(lambda: _curves(HIGH))


def test_fig5_symmetry_and_four_season(benchmark):
    low = _curves(LOW)
    high = _curves(HIGH)
    # LPAA 1 at high p mirrors LPAA 7 at low p exactly (their truth
    # tables are 0/1-symmetric images of one another).
    assert np.allclose(low["LPAA 7"], high["LPAA 1"], atol=1e-12)
    assert np.allclose(low["LPAA 1"], high["LPAA 7"], atol=1e-12)
    # LPAA 6 has the lowest mean error across the three regimes.
    equal = _curves(EQUAL)
    mean_error = {
        name: float(low[name][-1] + equal[name][-1] + high[name][-1]) / 3
        for name in low
    }
    assert min(mean_error, key=mean_error.get) == "LPAA 6", mean_error
    emit("Fig. 5 qualitative checks passed: LPAA1/7 symmetry, "
         "Four-Season LPAA 6, 10-bit usefulness limit.")
    benchmark(lambda: (_curves(LOW), _curves(HIGH)))
