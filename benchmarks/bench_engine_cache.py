"""Stage-matrix cache: warm sweeps must beat cold sweeps by >= 2x.

The engine's process-wide LRU keys stage transitions on (cell truth
table, quantised per-stage operand probabilities).  A 32-bit probability
sweep where every stage of every point carries a *distinct* probability
pair is the worst case for the cache cold (every key is a miss) and the
best case warm (every key hits), so the cold/warm ratio isolates the
transition-build cost the cache removes.  The warm pass runs under a
metrics registry to export the hit rate through the ``engine.cache.*``
obs counters the ISSUE acceptance criterion names.
"""

from __future__ import annotations

import time

from repro.engine import AnalysisRequest, cache_stats, clear_cache, run
from repro.obs import MetricsRegistry, metrics, use_registry
from repro.reporting import ascii_table

from conftest import emit

WIDTH = 32
POINTS = 60
CELL = "LPAA 6"


def _sweep_requests():
    """One request per sweep point, every stage probability distinct.

    ``((k * 37 + i) % 1009) / 1009`` never repeats across the sweep, so
    a cold pass can't accidentally hit entries seeded by an earlier
    point -- each of the ``POINTS * WIDTH`` stage keys is unique.
    """
    requests = []
    for k in range(POINTS):
        p_a = [((k * 37 + i) % 1009) / 1009.0 for i in range(WIDTH)]
        p_b = [((k * 53 + 7 * i + 1) % 1009) / 1009.0 for i in range(WIDTH)]
        requests.append(AnalysisRequest.chain(CELL, WIDTH, p_a, p_b, 0.5))
    return requests


def _sweep_seconds(requests) -> float:
    start = time.perf_counter()
    for request in requests:
        run(request=request, engine="recursive")
    return time.perf_counter() - start


def test_warm_cache_doubles_sweep_throughput(benchmark):
    requests = _sweep_requests()

    def cold_pass() -> float:
        clear_cache()
        return _sweep_seconds(requests)

    cold_pass()  # warm up interpreter/numpy before timing anything
    cold = min(cold_pass() for _ in range(5))
    assert cache_stats().hit_rate == 0.0, "cold sweep must miss every key"

    # The cache is now fully populated: time pure-hit passes.
    warm = min(_sweep_seconds(requests) for _ in range(5))

    # Re-run one warm sweep with metrics collecting so the hit rate is
    # exported through the obs counters (the documented monitoring path).
    registry = MetricsRegistry()
    was_enabled = metrics.is_enabled()
    if not was_enabled:
        metrics.enable()
    try:
        with use_registry(registry):
            _sweep_seconds(requests)
    finally:
        if not was_enabled:
            metrics.disable()
    snapshot = registry.snapshot()
    hits = snapshot["counters"].get("engine.cache.hits", 0)
    misses = snapshot["counters"].get("engine.cache.misses", 0)
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    emit(ascii_table(
        ["pass", f"seconds / {POINTS}x{WIDTH}-bit sweep", "speedup"],
        [["cold (every stage key new)", cold, 1.0],
         ["warm (stage-matrix LRU hits)", warm, cold / warm]],
        digits=4,
        title=f"Stage-matrix cache on a {WIDTH}-bit probability sweep "
              f"({CELL})",
    ))
    emit(f"warm-pass cache hit rate via obs counters: {hit_rate:.4f} "
         f"({hits} hits / {misses} misses)")

    assert hits == POINTS * WIDTH, "warm sweep must hit every stage key"
    assert misses == 0
    assert hit_rate == 1.0
    # The acceptance bar: a warm sweep at least twice as fast as cold.
    assert cold / warm >= 2.0, (
        f"warm sweep only {cold / warm:.2f}x faster than cold"
    )

    benchmark(lambda: _sweep_seconds(requests))
