"""Ablation: the three GeAr analysis methods against each other.

The paper claims (§1.1) its recursion philosophy extends to low-latency
adders "with less computational overhead" than inclusion-exclusion.
This bench compares, on GeAr configurations of growing sub-adder count:

* the exact linear DP (this repo's LLAA analogue of the recursion),
* the traditional IE expansion (2^(k-1) - 1 terms),
* Monte-Carlo simulation,

asserting numerical agreement and the cost separation.
"""

from __future__ import annotations

import time

import pytest

from repro.gear.analysis import (
    gear_error_probability,
    gear_inclusion_exclusion,
    gear_monte_carlo,
)
from repro.gear.config import GeArConfig
from repro.reporting import ascii_table

from conftest import emit

#: GeAr(N, R, P) configurations with k = 3 .. 13 sub-adders.
CONFIGS = [
    GeArConfig(8, 2, 2),    # k = 3
    GeArConfig(12, 2, 2),   # k = 5
    GeArConfig(20, 2, 2),   # k = 9
    GeArConfig(28, 2, 2),   # k = 13
]


def test_ablation_gear_methods_agree(benchmark):
    rows = []
    for config in CONFIGS:
        start = time.perf_counter()
        dp = gear_error_probability(config)
        dp_seconds = time.perf_counter() - start

        start = time.perf_counter()
        ie = gear_inclusion_exclusion(config)
        ie_seconds = time.perf_counter() - start

        assert ie.p_error == pytest.approx(dp, abs=1e-9)
        rows.append([
            config.describe(), dp, ie.terms_evaluated,
            dp_seconds * 1e3, ie_seconds * 1e3,
        ])
    emit(ascii_table(
        ["config", "P(E)", "IE terms", "DP ms", "IE ms"],
        rows, digits=4,
        title="Ablation: GeAr linear DP vs inclusion-exclusion",
    ))
    # cost separation at k = 13: 4095 IE terms vs one linear pass.
    assert rows[-1][2] == 2 ** 12 - 1
    assert rows[-1][4] > 10 * max(rows[-1][3], 1e-4)

    benchmark(lambda: gear_error_probability(CONFIGS[-1]))


def test_ablation_gear_monte_carlo_validates_dp(benchmark):
    config = GeArConfig(16, 2, 2)
    dp = gear_error_probability(config)
    mc = gear_monte_carlo(config, samples=400_000, seed=3)
    emit(f"GeAr(16,2,2): DP P(E) = {dp:.6f}, MC(400k) = {mc:.6f}")
    assert abs(dp - mc) < 3e-3
    benchmark.pedantic(
        lambda: gear_monte_carlo(config, samples=100_000, seed=1),
        rounds=3, iterations=1,
    )


def test_ablation_gear_dp_scales_to_wide_words(benchmark):
    """The DP at GeAr(128, 4, 4): far beyond any enumerative method."""
    config = GeArConfig(128, 4, 4)
    p = benchmark(lambda: gear_error_probability(config))
    assert 0.0 < p < 1.0
