"""Serving layer: micro-batching >= 3x over batch-1; cache survives restart.

Two acceptance criteria of the serving ISSUE, measured end to end over
real sockets:

1. *Throughput*: 32 concurrent HTTP clients against a coalescing server
   (``max_batch=32``) must sustain at least 3x the requests/second of
   the same workload against a ``max_batch=1`` server, because N
   waiting clients share one vectorised ``engine.run_batch`` dispatch
   instead of paying N scalar dispatches.

2. *Persistence*: answers served with a ``cache_dir`` mounted must be
   replayed bit-identically by a *fresh* server over the same directory
   (a process restart in miniature), with the ``engine.cache.disk.hits``
   obs counter proving the answers came from disk, not recompute.
"""

from __future__ import annotations

import json
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro.engine import clear_cache
from repro.obs import metrics
from repro.reporting import ascii_table
from repro.serve import AnalysisServer, ServeConfig

from bench_trajectory import metric, write_trajectory
from conftest import bench_output_path, emit

CLIENTS = 32
REQUESTS_PER_CLIENT = 6
WIDTH = 32
CELL = "LPAA 6"


def _docs():
    """CLIENTS x REQUESTS_PER_CLIENT distinct probability points.

    Every request carries its own per-stage probability vector so no
    stage-matrix or result-cache sharing flatters either pass; the two
    passes replay the *same* documents for a fair comparison.
    """
    docs = []
    for k in range(CLIENTS * REQUESTS_PER_CLIENT):
        p_a = [((k * 37 + i) % 1009) / 1009.0 for i in range(WIDTH)]
        p_b = [((k * 53 + 7 * i + 1) % 1009) / 1009.0 for i in range(WIDTH)]
        docs.append({"cell": CELL, "width": WIDTH, "p_a": p_a, "p_b": p_b})
    return docs


def _post(url: str, doc) -> dict:
    request = urllib.request.Request(
        url + "/v1/analyze", data=json.dumps(doc).encode()
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        assert response.status == 200
        return json.loads(response.read())


def _drive(url: str, docs) -> float:
    """Wall-clock seconds for CLIENTS concurrent clients to drain *docs*."""
    shards = [docs[i::CLIENTS] for i in range(CLIENTS)]

    def client(shard):
        return [_post(url, doc) for doc in shard]

    start = time.perf_counter()
    with ThreadPoolExecutor(CLIENTS) as pool:
        list(pool.map(client, shards))
    return time.perf_counter() - start


def _server(max_batch: int, window_s: float) -> AnalysisServer:
    return AnalysisServer(ServeConfig(
        port=0, max_batch=max_batch, batch_window_s=window_s,
        queue_limit=4096,
    ))


def test_batching_triples_request_throughput(benchmark):
    docs = _docs()

    clear_cache()
    serial = _server(max_batch=1, window_s=0.0)
    url = serial.start()
    try:
        _drive(url, docs[:CLIENTS])  # warm-up round, untimed
        serial_rps = len(docs) / _drive(url, docs)
    finally:
        serial.stop()

    clear_cache()  # same cold start for both passes
    batched = _server(max_batch=CLIENTS, window_s=0.005)
    url = batched.start()
    try:
        _drive(url, docs[:CLIENTS])
        batched_rps = len(docs) / _drive(url, docs)
        speedup = batched_rps / serial_rps

        emit(ascii_table(
            ["server", "req/s", "speedup"],
            [["max_batch=1 (no coalescing)", serial_rps, 1.0],
             [f"max_batch={CLIENTS} (micro-batching)", batched_rps, speedup]],
            digits=1,
            title=f"{CLIENTS} concurrent clients, "
                  f"{len(docs)} x {WIDTH}-bit {CELL} requests",
        ))

        # Pin the trajectory *before* the acceptance assertion so a
        # failing run still leaves its numbers behind for comparison.
        write_trajectory(bench_output_path("BENCH_serve.json"),
                         "serve_throughput", [
            metric("serial_rps", serial_rps, unit="req/s"),
            metric("batched_rps", batched_rps, unit="req/s"),
            metric("batching_speedup", speedup, unit="x"),
        ])

        assert speedup >= 3.0, (
            f"micro-batching only {speedup:.2f}x over batch-1 "
            f"({batched_rps:.0f} vs {serial_rps:.0f} req/s)"
        )
        benchmark(lambda: _drive(url, docs[:CLIENTS]))
    finally:
        batched.stop()


def test_warm_disk_cache_survives_restart(tmp_path):
    docs = _docs()[:24]
    config = dict(port=0, batch_window_s=0.002, cache_dir=str(tmp_path))

    cold_server = AnalysisServer(ServeConfig(**config))
    cold_url = cold_server.start()
    try:
        first = [_post(cold_url, doc)["p_error"] for doc in docs]
    finally:
        cold_server.stop()

    # A brand-new server over the same directory = process restart.
    metrics.GLOBAL_REGISTRY.reset()
    warm_server = AnalysisServer(ServeConfig(**config))
    warm_url = warm_server.start()
    try:
        second = [_post(warm_url, doc)["p_error"] for doc in docs]
        with urllib.request.urlopen(warm_url + "/metrics",
                                    timeout=10) as response:
            snapshot = json.loads(response.read())
    finally:
        warm_server.stop()

    disk_hits = snapshot["counters"].get("engine.cache.disk.hits", 0)
    emit(f"restart replay: {len(docs)} answers, "
         f"{disk_hits} disk hits, bit-identical = {first == second}")
    assert first == second, "replayed answers must be bit-identical"
    assert disk_hits > 0, "the warm pass must be served from disk"
    assert snapshot["service"]["result_cache"]["disk"]["hits"] == len(docs)
