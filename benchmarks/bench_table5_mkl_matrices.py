"""Table 5: the M / K / L analysis matrices for LPAA 1-7.

Derives every mask from the Table 1 truth tables and checks it against
the constants printed in the paper (kept as golden data in
``repro.core.matrices.TABLE5_MATRICES``).
"""

from __future__ import annotations

from repro.core.adders import PAPER_LPAAS
from repro.core.matrices import TABLE5_MATRICES, derive_matrices
from repro.reporting import ascii_table

from conftest import emit


def _fmt(mask) -> str:
    return "[" + ",".join(str(bit) for bit in mask) + "]"


def test_table5_mkl_matrices(benchmark):
    rows = []
    for cell in PAPER_LPAAS:
        mkl = derive_matrices(cell)
        rows.append([cell.name, _fmt(mkl.m), _fmt(mkl.k), _fmt(mkl.l)])
    emit(ascii_table(
        ["LPAA", "M matrix", "K matrix", "L matrix"],
        rows,
        title="Table 5: derived M/K/L matrices",
    ))

    for cell in PAPER_LPAAS:
        derived = derive_matrices(cell)
        golden = TABLE5_MATRICES[cell.name]
        assert derived.m == golden.m
        assert derived.k == golden.k
        assert derived.l == golden.l
        # structural identities
        assert derived.l == tuple(
            m | k for m, k in zip(derived.m, derived.k)
        )

    benchmark(lambda: [derive_matrices(cell) for cell in PAPER_LPAAS])
