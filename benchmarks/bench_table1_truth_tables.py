"""Table 1: truth tables of AccuFA and LPAA 1-7 with error cases marked.

Regenerates the table from the library's cell registry and asserts the
published error-case counts (bold-red rows in the paper).
"""

from __future__ import annotations

from repro.core.adders import PAPER_LPAAS
from repro.core.truth_table import ACCURATE
from repro.reporting import ascii_table

from conftest import emit

EXPECTED_ERROR_CASES = {
    "LPAA 1": 2, "LPAA 2": 2, "LPAA 3": 3, "LPAA 4": 3,
    "LPAA 5": 4, "LPAA 6": 2, "LPAA 7": 2,
}


def _render() -> str:
    headers = ["A B Cin", "AccuFA"] + [cell.name for cell in PAPER_LPAAS]
    rows = []
    for idx in range(8):
        a, b, cin = (idx >> 2) & 1, (idx >> 1) & 1, idx & 1
        row = [f"{a} {b} {cin}", "{} {}".format(*ACCURATE.rows[idx])]
        for cell in PAPER_LPAAS:
            s, c = cell.rows[idx]
            marker = "*" if (s, c) != ACCURATE.rows[idx] else " "
            row.append(f"{s} {c}{marker}")
        rows.append(row)
    return ascii_table(
        headers, rows,
        title="Table 1: single-bit LPAA truth tables (* = error case)",
    )


def test_table1_truth_tables(benchmark):
    emit(_render())
    for cell in PAPER_LPAAS:
        assert cell.num_error_cases() == EXPECTED_ERROR_CASES[cell.name]
    assert ACCURATE.num_error_cases() == 0
    benchmark(_render)
