"""Ablation: Monte-Carlo sample count vs agreement with the analytical
value.

Table 6's footnote claims the 3rd-decimal match "can be increased for
better precision match" by raising the sample count.  This bench sweeps
the count from 1e3 to 1e6 and checks the error shrinks like 1/sqrt(n)
(within generous noise bounds, averaged over seeds).
"""

from __future__ import annotations

import numpy as np

from repro.core.recursive import error_probability
from repro.reporting import ascii_table
from repro.simulation.montecarlo import simulate_error_probability

from conftest import emit

CELL = "LPAA 6"
WIDTH = 8
P = 0.1
SAMPLE_COUNTS = [1_000, 10_000, 100_000, 1_000_000]
SEEDS = range(5)


def test_ablation_mc_convergence(benchmark):
    analytical = float(error_probability(CELL, WIDTH, P, P, P))
    rows = []
    mean_errors = []
    for samples in SAMPLE_COUNTS:
        errors = [
            abs(
                simulate_error_probability(
                    CELL, WIDTH, P, P, P, samples=samples, seed=seed
                ).p_error
                - analytical
            )
            for seed in SEEDS
        ]
        mean_error = float(np.mean(errors))
        mean_errors.append(mean_error)
        theoretical = (analytical * (1 - analytical) / samples) ** 0.5
        rows.append([samples, mean_error, theoretical])
    emit(ascii_table(
        ["samples", "mean |sim - analytical|", "theoretical std error"],
        rows, digits=6,
        title=f"Ablation: MC convergence to P(E)={analytical:.5f} "
              f"({CELL}, N={WIDTH}, p={P})",
    ))
    # 1/sqrt(n): 1000x more samples ~ 31.6x less error; accept > 5x.
    assert mean_errors[-1] < mean_errors[0] / 5
    # the paper's operating point: 3rd-decimal agreement at 1M samples.
    assert mean_errors[-1] < 1.5e-3

    benchmark.pedantic(
        lambda: simulate_error_probability(CELL, WIDTH, P, P, P,
                                           samples=100_000, seed=0),
        rounds=3, iterations=1,
    )
