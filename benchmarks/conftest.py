"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper, prints it in a
paper-like layout (visible with ``pytest benchmarks/ --benchmark-only -s``
or in the captured output), asserts the qualitative *shape* the paper
reports, and times the computational kernel with pytest-benchmark.
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print a reproduced table so it lands in the bench log."""
    print(text)
    sys.stdout.flush()
