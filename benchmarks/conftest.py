"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper, prints it in a
paper-like layout (visible with ``pytest benchmarks/ --benchmark-only -s``
or in the captured output), asserts the qualitative *shape* the paper
reports, and times the computational kernel with pytest-benchmark.
"""

from __future__ import annotations

import os
import sys

# Benches share the trajectory writer with review/CI tooling
# (scripts/bench_trajectory.py); make the scripts directory importable.
_SCRIPTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "scripts"
)
if _SCRIPTS_DIR not in sys.path:
    sys.path.insert(0, _SCRIPTS_DIR)


def emit(text: str) -> None:
    """Print a reproduced table so it lands in the bench log."""
    print(text)
    sys.stdout.flush()


def bench_output_path(filename: str) -> str:
    """Where a bench writes its BENCH_*.json trajectory document.

    Defaults to the repo root (next to the committed baselines) so a
    local run refreshes them in place; ``SEALPAA_BENCH_DIR`` redirects
    the output (CI writes to a scratch dir and uploads as artifacts).
    """
    out_dir = os.environ.get(
        "SEALPAA_BENCH_DIR",
        os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."),
    )
    os.makedirs(out_dir, exist_ok=True)
    return os.path.join(out_dir, filename)
