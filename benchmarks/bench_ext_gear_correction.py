"""Extension bench: configurable GeAr error correction (paper ref [11]).

Regenerates the accuracy-configurability curve: residual error
probability versus correction budget, computed exactly by the
error-count DP and cross-checked against functional simulation of the
correcting adder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gear.analysis import gear_error_probability
from repro.gear.config import GeArConfig
from repro.gear.correction import (
    corrected_error_probability,
    error_count_distribution,
    expected_corrections,
    gear_add_corrected,
)
from repro.reporting import ascii_table

from conftest import emit

CONFIG = GeArConfig(16, 2, 2)


def test_ext_correction_budget_curve(benchmark):
    budgets = list(range(CONFIG.num_subadders))
    residuals = [
        corrected_error_probability(CONFIG, b, 0.5, 0.5) for b in budgets
    ]
    emit(ascii_table(
        ["correction budget", "residual P(Error)"],
        list(zip(budgets, residuals)),
        digits=6,
        title=f"Ext: {CONFIG.describe()} accuracy configurability",
    ))
    emit(f"expected corrections for an exact result: "
         f"{expected_corrections(CONFIG, 0.5, 0.5):.4f}")

    # budget 0 == plain GeAr; full budget == exact; monotone in between.
    assert residuals[0] == pytest.approx(
        gear_error_probability(CONFIG, 0.5, 0.5), abs=1e-12
    )
    assert residuals[-1] == pytest.approx(0.0, abs=1e-12)
    assert residuals == sorted(residuals, reverse=True)

    pmf = error_count_distribution(CONFIG, 0.5, 0.5)
    assert sum(pmf) == pytest.approx(1.0, abs=1e-12)

    benchmark(lambda: [
        corrected_error_probability(CONFIG, b, 0.5, 0.5) for b in budgets
    ])


def test_ext_correction_functional_cross_check(benchmark):
    rng = np.random.default_rng(11)
    trials = 20_000
    budget = 1
    a = rng.integers(0, 1 << CONFIG.n, trials)
    b = rng.integers(0, 1 << CONFIG.n, trials)
    wrong = sum(
        1
        for j in range(trials)
        if gear_add_corrected(CONFIG, int(a[j]), int(b[j]), budget=budget)[0]
        != int(a[j]) + int(b[j])
    )
    analytical = corrected_error_probability(CONFIG, budget, 0.5, 0.5)
    emit(f"Ext: budget-1 residual: analytical {analytical:.5f}, "
         f"simulated {wrong / trials:.5f} ({trials} trials)")
    assert wrong / trials == pytest.approx(analytical, abs=7e-3)

    benchmark.pedantic(
        lambda: gear_add_corrected(CONFIG, 54321, 12345, budget=1),
        rounds=20, iterations=10,
    )
