"""Table 6: accuracy match of the proposed method vs exhaustive
simulation.

Two scenarios exactly as the paper frames them:

* **equally probable inputs** -- finite case space of ``2^(2N+1)``; the
  analytical result must match the exhaustive count *to machine
  precision* ("precisely up to any decimal place");
* **non-equally probable inputs** -- 1 million Monte-Carlo cases; the
  match is to about the 3rd decimal place, and increasing the sample
  count tightens it (checked by the MC-convergence ablation bench).
"""

from __future__ import annotations

import pytest

from repro.core.adders import PAPER_LPAAS
from repro.core.recursive import error_probability
from repro.reporting import ascii_table
from repro.simulation.exhaustive import exhaustive_error_count
from repro.simulation.montecarlo import simulate_error_probability

from conftest import emit

WIDTH = 6
MC_SAMPLES = 1_000_000
MC_POINT = 0.3


def test_table6_equiprobable_exact_match(benchmark):
    rows = []
    for cell in PAPER_LPAAS:
        errors, total = exhaustive_error_count(cell, WIDTH)
        analytical = float(error_probability(cell, WIDTH, 0.5, 0.5, 0.5))
        rows.append([cell.name, total, errors / total, analytical])
        assert errors / total == pytest.approx(analytical, abs=1e-14)
    emit(ascii_table(
        ["LPAA", f"cases 2^{2 * WIDTH + 1}", "P(E) exhaustive", "P(E) analytical"],
        rows, digits=10,
        title="Table 6 row 1: equally probable inputs -> exact match",
    ))
    assert all(row[1] == 2 ** (2 * WIDTH + 1) for row in rows)
    benchmark.pedantic(
        lambda: exhaustive_error_count(PAPER_LPAAS[0], WIDTH),
        rounds=3, iterations=1,
    )


def test_table6_inequiprobable_mc_match(benchmark):
    rows = []
    for cell in PAPER_LPAAS:
        analytical = float(
            error_probability(cell, WIDTH, MC_POINT, MC_POINT, MC_POINT)
        )
        mc = simulate_error_probability(
            cell, WIDTH, MC_POINT, MC_POINT, MC_POINT,
            samples=MC_SAMPLES, seed=17,
        )
        rows.append([cell.name, analytical, mc.p_error,
                     abs(analytical - mc.p_error)])
        # "up to 3rd decimal place" with 1M samples.
        assert abs(analytical - mc.p_error) < 1.5e-3
    emit(ascii_table(
        ["LPAA", "P(E) analytical", "P(E) MC 1M", "|diff|"],
        rows, digits=6,
        title=f"Table 6 row 2: p = {MC_POINT} inputs, 1M Monte-Carlo cases",
    ))
    benchmark.pedantic(
        lambda: simulate_error_probability(
            PAPER_LPAAS[0], WIDTH, MC_POINT, MC_POINT, MC_POINT,
            samples=100_000, seed=1,
        ),
        rounds=3, iterations=1,
    )
