"""Error-magnitude engines: linear moments vs the full-PMF DP.

The distribution tentpole's perf claim: the headline magnitude metrics
do not need the full error law.  ``error_moments`` (MED/MSE in O(N))
and ``worst_case_error`` (WCE via the interval DP, O(N) and exact at
any width) must beat materialising the PMF by a wide margin -- while
agreeing with it exactly where the PMF is computable.  The truncated
rung is timed at width 32 with its MED drift against the exact O(N)
moments, pinning the documented "bounded drift" claim with a number.

The measured trajectory lands in ``BENCH_errdist.json``
(``sealpaa-bench-v1``; CI compares it informationally against the
committed baseline).
"""

from __future__ import annotations

import time

from repro import engine
from repro.core.magnitude import error_moments, error_pmf, worst_case_error
from repro.engine.request import AnalysisRequest
from repro.reporting import ascii_table

from bench_trajectory import metric, write_trajectory
from conftest import bench_output_path, emit

CELL_NAMES = [f"LPAA {i}" for i in range(1, 8)]
ZOO_WIDTH = 8
PMF_CELL = "LPAA 5"
PMF_WIDTH = 16
TRUNCATED_WIDTH = 32
WCE_WIDTH = 64
MIN_SPEEDUP = 25.0
MAX_TRUNCATED_DRIFT = 1e-2


def test_moments_match_the_pmf_across_the_zoo():
    """Breadth first: O(N) moments == PMF moments for every paper cell."""
    for cell in CELL_NAMES:
        pmf = error_pmf(cell, ZOO_WIDTH, 0.5, 0.5, 0.5)
        mom = error_moments(cell, ZOO_WIDTH, 0.5, 0.5, 0.5)
        mean_ref = sum(d * p for d, p in pmf.items())
        m2_ref = sum(d * d * p for d, p in pmf.items())
        assert abs(mom.mean - mean_ref) < 1e-9
        assert abs(mom.second_moment - m2_ref) < 1e-6
        wce = worst_case_error(cell, ZOO_WIDTH)
        assert wce.wce == max(abs(d) for d in pmf)
    emit(f"zoo cross-check: {len(CELL_NAMES)} cells at width {ZOO_WIDTH}, "
         "moments and WCE equal the PMF reductions")


def test_linear_metrics_vs_full_pmf(benchmark):
    """MED/MSE/WCE without the PMF: >= 25x at the exact guard width."""
    start = time.perf_counter()
    pmf = error_pmf(PMF_CELL, PMF_WIDTH, 0.5, 0.5, 0.5)
    pmf_med = sum(abs(d) * p for d, p in pmf.items())
    pmf_s = time.perf_counter() - start

    start = time.perf_counter()
    mom = error_moments(PMF_CELL, PMF_WIDTH, 0.5, 0.5, 0.5)
    wce = worst_case_error(PMF_CELL, PMF_WIDTH)
    linear_s = time.perf_counter() - start

    assert abs(mom.second_moment
               - sum(d * d * p for d, p in pmf.items())) < 1e-3
    assert wce.wce == max(abs(d) for d in pmf)
    speedup = pmf_s / linear_s if linear_s > 0 else float("inf")

    # The truncated rung past the exact guard: wall time and MED drift
    # against the independent exact O(N) moments.
    request = AnalysisRequest.distribution(
        PMF_CELL, TRUNCATED_WIDTH, kind="med")
    start = time.perf_counter()
    truncated = engine.run(request, engine="distribution-dp-truncated")
    truncated_s = time.perf_counter() - start
    mom32 = error_moments(PMF_CELL, TRUNCATED_WIDTH, 0.5, 0.5, 0.5)
    drift = abs(truncated.mse - mom32.second_moment) / mom32.second_moment

    start = time.perf_counter()
    wce64 = worst_case_error(PMF_CELL, WCE_WIDTH)
    wce64_s = time.perf_counter() - start
    assert wce64.wce == 2 ** (WCE_WIDTH - 1)

    emit(ascii_table(
        ["path", "seconds", "answers"],
        [[f"full PMF DP (width {PMF_WIDTH}, {len(pmf)} deltas)",
          f"{pmf_s:.3f}", f"MED={pmf_med:.2f}"],
         [f"O(N) moments + interval DP (width {PMF_WIDTH})",
          f"{linear_s:.5f}",
          f"MSE={mom.second_moment:.3g}, WCE={wce.wce}"],
         [f"truncated DP (width {TRUNCATED_WIDTH})",
          f"{truncated_s:.3f}", f"MSE drift {drift:.2e}"],
         [f"interval DP WCE (width {WCE_WIDTH})",
          f"{wce64_s:.5f}", f"WCE=2^{WCE_WIDTH - 1}"]],
        title=f"{PMF_CELL}: magnitude metrics with and without the PMF",
    ))

    write_trajectory(bench_output_path("BENCH_errdist.json"),
                     "error_metrics", [
        metric("full_pmf_s", pmf_s, unit="s", higher_is_better=False),
        metric("linear_metrics_s", linear_s, unit="s",
               higher_is_better=False),
        metric("moments_speedup_x", speedup, unit="x"),
        metric("truncated_w32_s", truncated_s, unit="s",
               higher_is_better=False),
        metric("truncated_mse_drift_rel", drift, unit="",
               higher_is_better=False),
        metric("wce_w64_s", wce64_s, unit="s", higher_is_better=False),
    ])

    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x over the full-PMF DP, "
        f"got {speedup:.1f}x"
    )
    assert drift < MAX_TRUNCATED_DRIFT, (
        f"truncated MSE drift {drift:.2e} exceeds the documented bound"
    )

    benchmark(lambda: error_moments(PMF_CELL, PMF_WIDTH, 0.5, 0.5, 0.5))
