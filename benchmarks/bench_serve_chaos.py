"""Chaos soak: the multi-worker fleet under injected faults stays correct.

The robustness ISSUE's acceptance criterion, measured end to end against
a real ``sealpaa serve --workers 2`` supervisor subprocess:

* **faults on**: every worker runs with a ``SEALPAA_CHAOS`` spec that
  fails every 7th engine dispatch, delays every batch by 2 ms, and
  fails every 5th disk-cache read; on top of that the soak SIGKILLs a
  live worker twice, mid-traffic;
* **zero incorrect responses**: every answer a retrying
  :class:`repro.serve.AnalysisClient` accepts must be bit-identical to
  the same request served by a plain single-worker in-process server
  with no chaos at all -- crash recovery is allowed to cost latency,
  never correctness;
* **bounded client-visible error rate**: after the client's retry
  budget the residual failure rate stays under 10%;
* **recovery within the restart budget**: the supervisor restores the
  full worker fleet after each kill, and its ``/healthz`` SLO verdict
  stays a sane document throughout;
* the headline numbers land in ``BENCH_chaos.json``
  (``sealpaa-bench-v1``) for trajectory comparison.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.serve import AnalysisClient, AnalysisServer, ServeConfig
from repro.serve.client import ClientError

from bench_trajectory import metric, write_trajectory
from conftest import bench_output_path, emit

WORKERS = 2
CLIENT_THREADS = 4
KILLS = 2
SOAK_S = float(os.environ.get("SEALPAA_SOAK_S", "20"))
CHAOS_SPEC = {
    "engine_fail_every": 7,   # every 7th engine dispatch raises
    "engine_delay_s": 0.002,  # every dispatch is a little slow
    "cache_read_fail_every": 5,
}
_BANNER = re.compile(
    r"http://([\d.]+):(\d+)\s+\(status/metrics on http://[\d.]+:(\d+)")


def _docs():
    """A pool of distinct requests the soak cycles through."""
    docs = []
    for k in range(40):
        width = 16
        p_a = [((k * 37 + i) % 1009) / 1009.0 for i in range(width)]
        docs.append({"cell": "LPAA 6", "width": width, "p_a": p_a})
    return docs


def _golden_answers(docs):
    """The ground truth: a single worker, in-process, zero chaos."""
    server = AnalysisServer(ServeConfig(port=0, batch_window_s=0.002))
    base = server.start()
    try:
        with AnalysisClient(base, total_deadline_s=60.0) as client:
            return [client.analyze(doc)["p_error"] for doc in docs]
    finally:
        server.stop()


def _healthz(host, port):
    try:
        with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=5) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def _ready_pids(host, status_port):
    """Workers that have bound their listener, not merely been spawned."""
    with urllib.request.urlopen(
            f"http://{host}:{status_port}/metrics", timeout=5) as resp:
        doc = json.loads(resp.read().decode())
    return [w["pid"] for w in doc["supervisor"]["workers"] if w["ready"]]


def _wait_fleet(host, status_port, n, deadline_s, without_pid=None):
    """Seconds until *n* workers are ready (none of them *without_pid*)."""
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        try:
            pids = _ready_pids(host, status_port)
            if len(pids) == n and without_pid not in pids:
                return time.monotonic() - start, pids
        except OSError:
            pass
        time.sleep(0.1)
    raise AssertionError(f"fleet did not recover to {n} workers "
                         f"within {deadline_s}s")


class _Soaker(threading.Thread):
    """One open-loop client cycling the doc pool until told to stop."""

    def __init__(self, base_url, docs, golden, stop):
        super().__init__(daemon=True)
        self.docs, self.golden, self.stop = docs, golden, stop
        self.client = AnalysisClient(base_url, total_deadline_s=10.0,
                                     max_attempts=8, backoff_max_s=1.0)
        self.ok = 0
        self.failed = 0
        self.incorrect = 0

    def run(self):
        k = 0
        while not self.stop.is_set():
            index = k % len(self.docs)
            k += 1
            try:
                answer = self.client.analyze(self.docs[index])
            except ClientError:
                self.failed += 1
                continue
            if answer["p_error"] == self.golden[index]:
                self.ok += 1
            else:
                self.incorrect += 1
        self.client.close()


def test_chaos_soak_zero_incorrect_responses(tmp_path):
    docs = _docs()
    golden = _golden_answers(docs)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in (
        os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src")),
        env.get("PYTHONPATH")) if p)
    env["SEALPAA_CHAOS"] = json.dumps(CHAOS_SPEC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--workers", str(WORKERS), "--port", "0",
         "--batch-window-ms", "2", "--drain-grace", "2",
         "--restart-budget", str(4 * KILLS),
         "--cache-dir", str(tmp_path / "cache")],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, cwd=str(tmp_path))
    try:
        match = _BANNER.search(proc.stdout.readline())
        assert match, "no supervisor banner"
        host, port, status_port = (match.group(1), int(match.group(2)),
                                   int(match.group(3)))
        _wait_fleet(host, status_port, WORKERS, 30.0)

        stop = threading.Event()
        soakers = [_Soaker(f"http://{host}:{port}", docs, golden, stop)
                   for _ in range(CLIENT_THREADS)]
        started = time.monotonic()
        for soaker in soakers:
            soaker.start()

        recoveries = []
        kill_at = [SOAK_S * (k + 1) / (KILLS + 1) for k in range(KILLS)]
        for when in kill_at:
            time.sleep(max(0.0, started + when - time.monotonic()))
            victim = _ready_pids(host, status_port)[0]
            os.kill(victim, signal.SIGKILL)
            recovery_s, _ = _wait_fleet(host, status_port, WORKERS, 30.0,
                                        without_pid=victim)
            recoveries.append(recovery_s)

        time.sleep(max(0.0, started + SOAK_S - time.monotonic()))
        stop.set()
        for soaker in soakers:
            soaker.join(timeout=30)
        elapsed = time.monotonic() - started

        status, health = _healthz(host, status_port)
        proc.send_signal(signal.SIGTERM)
        exit_code = proc.wait(timeout=30)

        ok = sum(s.ok for s in soakers)
        failed = sum(s.failed for s in soakers)
        incorrect = sum(s.incorrect for s in soakers)
        total = ok + failed + incorrect
        error_rate = failed / total if total else 1.0
        retries = sum(s.client.requests_sent for s in soakers) - total

        emit(f"chaos soak: {total} requests over {elapsed:.1f}s "
             f"({CLIENT_THREADS} clients, {KILLS} worker kills, "
             f"engine fault every {CHAOS_SPEC['engine_fail_every']}th "
             f"dispatch)")
        emit(f"  ok={ok} failed={failed} incorrect={incorrect} "
             f"retries={retries}")
        emit(f"  client-visible error rate: {error_rate:.4f}")
        emit(f"  fleet recovery after kills: "
             f"{', '.join(f'{r:.2f}s' for r in recoveries)}")
        emit(f"  final /healthz: {status} {health['status']} "
             f"restarts {health['workers']['restarts_used']}"
             f"/{health['workers']['restart_budget']}")

        # Pin the trajectory before the assertions so a failing run
        # still leaves its numbers behind.
        write_trajectory(bench_output_path("BENCH_chaos.json"),
                         "serve_chaos", [
            metric("client_error_rate", error_rate, unit="ratio",
                   higher_is_better=False),
            metric("incorrect_responses", float(incorrect), unit="count",
                   higher_is_better=False),
            metric("max_recovery_s", max(recoveries), unit="s",
                   higher_is_better=False),
            metric("soak_rps", ok / elapsed, unit="req/s"),
            metric("retries_per_request",
                   retries / total if total else 0.0, unit="ratio",
                   higher_is_better=False),
        ])

        assert incorrect == 0, (
            f"{incorrect} responses differed from the chaos-free "
            "single-worker golden answers")
        assert total >= 50, f"soak too thin to be meaningful: {total}"
        assert error_rate <= 0.10, (
            f"client-visible error rate {error_rate:.3f} exceeds 10% "
            "after retries")
        assert all(r <= 30.0 for r in recoveries)
        assert health["status"] in ("ok", "degraded")
        assert (health["workers"]["restarts_used"]
                <= health["workers"]["restart_budget"])
        assert {c["name"] for c in health["slo"]["checks"]} >= {
            "latency_p50", "latency_p99", "shed_rate"}
        assert exit_code == 0, f"drain after soak exited {exit_code}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
