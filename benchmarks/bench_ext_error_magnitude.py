"""Extension bench: how large are the errors (not just how frequent).

The paper reports error probability only; applications also need
magnitude.  This bench regenerates, at the Table 7 operating point
(p = 0.1, N = 8), the exact error PMF, the derived MED/NMED/MSE/WCE
metrics and the per-bit error marginals -- all analytical -- and
cross-validates against a million-sample simulation.
"""

from __future__ import annotations

import pytest

from repro.core.adders import PAPER_LPAAS
from repro.core.magnitude import error_moments, error_pmf
from repro.core.metrics import metrics_from_pmf, metrics_from_samples
from repro.core.sum_analysis import bit_error_probabilities
from repro.reporting import ascii_table
from repro.simulation.montecarlo import simulate_samples

from conftest import emit

P = 0.1
WIDTH = 8


def test_ext_magnitude_metrics_table(benchmark):
    rows = []
    for cell in PAPER_LPAAS:
        pmf = error_pmf(cell, WIDTH, P, P, P)
        metrics = metrics_from_pmf(pmf, WIDTH)
        moments = error_moments(cell, WIDTH, P, P, P)
        rows.append([
            cell.name, metrics.error_rate, metrics.med, metrics.nmed,
            moments.rms, metrics.wce,
        ])
    emit(ascii_table(
        ["cell", "ER", "MED", "NMED", "RMS", "WCE"],
        rows, digits=4,
        title=f"Ext: exact error-magnitude metrics at p = {P}, N = {WIDTH}",
    ))
    # ER must reproduce Table 7's column ordering: LPAA 7 best, 2/3 worst.
    ers = {row[0]: row[1] for row in rows}
    assert min(ers, key=ers.get) == "LPAA 7"
    assert max(ers, key=ers.get) in ("LPAA 2", "LPAA 3")
    # magnitude tells a different story than rate: LPAA 2/3's frequent
    # errors are small (their WCE stays well under the worst cells').
    wces = {row[0]: row[5] for row in rows}
    assert wces["LPAA 2"] < max(wces.values())

    benchmark.pedantic(
        lambda: error_pmf(PAPER_LPAAS[5], WIDTH, P, P, P),
        rounds=5, iterations=1,
    )


def test_ext_magnitude_vs_simulation(benchmark):
    cell = "LPAA 6"
    pmf = error_pmf(cell, WIDTH, P, P, P)
    analytic = metrics_from_pmf(pmf, WIDTH)
    approx, exact = simulate_samples(cell, WIDTH, P, P, P,
                                     samples=1_000_000, seed=5)
    sampled = metrics_from_samples(approx, exact, WIDTH)
    emit(f"Ext: {cell} MED analytic {analytic.med:.5f} vs sampled "
         f"{sampled.med:.5f}; MSE {analytic.mse:.4f} vs {sampled.mse:.4f}")
    assert sampled.error_rate == pytest.approx(analytic.error_rate, abs=2e-3)
    assert sampled.med == pytest.approx(analytic.med, rel=0.02)
    assert sampled.mse == pytest.approx(analytic.mse, rel=0.05)
    assert sampled.wce <= analytic.wce

    benchmark.pedantic(
        lambda: error_moments(cell, 64, P, P, P), rounds=5, iterations=1
    )


def test_ext_per_bit_marginals(benchmark):
    cell = "LPAA 6"
    bits, cout = bit_error_probabilities(cell, WIDTH, P, P, P)
    emit(ascii_table(
        ["output bit", "P(bit wrong)"],
        [[f"s{i}", p] for i, p in enumerate(bits)] + [["cout", cout]],
        digits=5,
        title=f"Ext: exact per-bit error marginals ({cell}, p = {P})",
    ))
    # LPAA 6's LSB only errs through its carry, never its own sum.
    assert bits[0] == pytest.approx(0.0)
    # interior bits settle to a steady-state marginal.
    assert bits[-1] == pytest.approx(bits[-2], abs=5e-3)

    benchmark(lambda: bit_error_probabilities(cell, WIDTH, P, P, P))
