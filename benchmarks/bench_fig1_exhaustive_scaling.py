"""Figure 1: exhaustive simulation cost explodes with adder width while
the proposed analysis stays flat.

The paper's plot (Intel i7) shows simulation time and operation count
growing exponentially in N.  We regenerate both series: the closed-form
operation counts to N = 32, and *measured* wall-clock of this repo's
exhaustive simulator up to a tractable width, against the measured
(sub-millisecond) analytical time at the same and much larger widths.
"""

from __future__ import annotations

from repro.core.recursive import analyze_chain
from repro.reporting import ascii_table
from repro.simulation.cost_model import (
    exhaustive_case_count,
    exhaustive_operation_count,
    measure_analytical_time,
    measure_exhaustive_time,
)
from repro.simulation.exhaustive import exhaustive_error_count

from conftest import emit

MEASURED_WIDTHS = [2, 4, 6, 8, 10]
MODELED_WIDTHS = [2, 4, 8, 12, 16, 20, 24, 28, 32]


def test_fig1_operation_count_model(benchmark):
    """The modelled op-count series (x-axis of Fig. 1 out to 32 bits)."""
    rows = [
        [n, exhaustive_case_count(n), exhaustive_operation_count(n)]
        for n in MODELED_WIDTHS
    ]
    emit(ascii_table(
        ["N", "Simulation cases 2^(2N+1)", "Arithmetic ops"],
        rows,
        title="Fig. 1 (modelled): exhaustive simulation cost vs width",
    ))
    # Exponential shape: each +4 bits multiplies the cases by 256.
    for (n1, c1, _), (n2, c2, _) in zip(rows, rows[1:]):
        assert c2 == c1 * (1 << (2 * (n2 - n1)))
    benchmark(lambda: [exhaustive_operation_count(n) for n in MODELED_WIDTHS])


def test_fig1_measured_simulation_time(benchmark):
    """Measured exhaustive-simulation seconds on this machine."""
    points = measure_exhaustive_time("LPAA 1", MEASURED_WIDTHS)
    analytical = measure_analytical_time("LPAA 1", MEASURED_WIDTHS + [32, 64])
    rows = [
        [p.width, p.cases, p.seconds * 1e3] for p in points
    ]
    emit(ascii_table(
        ["N", "cases", "exhaustive ms"],
        rows, digits=3,
        title="Fig. 1 (measured): exhaustive simulation wall-clock",
    ))
    emit(ascii_table(
        ["N", "analytical ms"],
        [[p.width, p.seconds * 1e3] for p in analytical],
        digits=4,
        title="Fig. 1 (measured): proposed method wall-clock",
    ))
    # Shape: simulation time grows super-linearly (>= 30x from N=2 to
    # N=10 despite vectorisation); analytical stays < 1 ms at any width
    # (the paper's claim in §5).
    assert points[-1].seconds > 30 * max(points[0].seconds, 1e-7)
    assert all(p.seconds < 1e-3 for p in analytical)
    # Timed kernel: one mid-size exhaustive run.
    benchmark.pedantic(
        lambda: exhaustive_error_count("LPAA 1", 8), rounds=3, iterations=1
    )


def test_fig1_analytical_kernel(benchmark):
    """The proposed method's kernel at 32 bits (the width the paper
    calls practically impossible for the traditional analysis)."""
    result = benchmark(
        lambda: analyze_chain("LPAA 1", width=32, p_a=0.3, p_b=0.7)
    )
    assert 0.0 <= float(result.p_success) <= 1.0
