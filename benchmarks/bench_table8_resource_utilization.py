"""Table 8: resource utilisation of the proposed method.

Prints the paper's published per-iteration hardware resources verbatim
(32/48 multipliers, 21 adders, 3 / N+1 memory units) next to an
*instrumented* count of what this implementation actually executes, and
asserts the scaling claims: per-stage cost is width-independent, total
cost is linear in N, and both are exponentially below the Table 3
inclusion-exclusion numbers.
"""

from __future__ import annotations

from repro.baselines.operation_counter import (
    TABLE8_EQUAL_PROBABILITIES,
    TABLE8_VARYING_PROBABILITIES,
    count_recursion_operations,
    inclusion_exclusion_additions,
    inclusion_exclusion_multiplications,
    table8_memory_units,
)
from repro.reporting import ascii_table

from conftest import emit

WIDTH = 32


def test_table8_published_and_measured(benchmark):
    equal = TABLE8_EQUAL_PROBABILITIES
    varying = TABLE8_VARYING_PROBABILITIES
    emit(ascii_table(
        ["Scenario", "Multipliers", "Adders", "Memory units"],
        [
            ["equal probabilities (paper)", equal["multipliers"],
             equal["adders"], equal["memory_units"]],
            ["varying probabilities (paper)", varying["multipliers"],
             varying["adders"], f"N+1 = {table8_memory_units(WIDTH, True)}"],
        ],
        title="Table 8 (published): per-iteration hardware resources",
    ))

    measured_eq = count_recursion_operations(
        "LPAA 1", WIDTH, share_operand_products=True
    )
    measured_var = count_recursion_operations("LPAA 1", WIDTH)
    per_stage_eq = measured_eq.per_stage()
    per_stage_var = measured_var.per_stage()
    emit(ascii_table(
        ["Scenario", "mults/stage", "adds/stage", "total mults", "total adds"],
        [
            ["equal (this impl.)", per_stage_eq.multiplications,
             per_stage_eq.additions, measured_eq.multiplications,
             measured_eq.additions],
            ["varying (this impl.)", per_stage_var.multiplications,
             per_stage_var.additions, measured_var.multiplications,
             measured_var.additions],
        ],
        title="Table 8 (measured on this implementation)",
    ))

    # published constants carried verbatim
    assert equal == {"multipliers": 32, "adders": 21, "memory_units": 3}
    assert varying["multipliers"] == 48 and varying["adders"] == 21
    assert table8_memory_units(WIDTH, True) == WIDTH + 1

    # measured: same order of magnitude per stage, strictly linear total,
    # exponentially below Table 3 at 32 stages.
    assert per_stage_var.multiplications <= 48
    assert per_stage_var.additions <= 21
    double = count_recursion_operations("LPAA 1", 2 * WIDTH)
    assert abs(double.total - 2 * measured_var.total) <= 4
    assert measured_var.multiplications < inclusion_exclusion_multiplications(WIDTH)
    assert measured_var.additions < inclusion_exclusion_additions(WIDTH)

    benchmark(lambda: count_recursion_operations("LPAA 1", WIDTH))
