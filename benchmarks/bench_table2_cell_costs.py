"""Table 2: error cases / power / area per LPAA cell.

The published transistor-level numbers (Gupta et al. [7]) are carried
verbatim; alongside them we print this repo's structural estimates --
gate-equivalent area of the re-synthesised cells and activity-based
power calibrated to the published values.  The assertions pin (a) the
verbatim column, (b) the structural model's qualitative agreements:
LPAA 5 degenerates to zero-cost wiring, and every approximate cell is
cheaper than the accurate adder.
"""

from __future__ import annotations

import pytest

from repro.circuits.power import PowerModel
from repro.core.adders import CELL_CHARACTERISTICS, PAPER_LPAAS
from repro.reporting import ascii_table

from conftest import emit


@pytest.fixture(scope="module")
def model():
    return PowerModel()


def test_table2_cell_costs(benchmark, model):
    rows = []
    for cell in PAPER_LPAAS:
        char = CELL_CHARACTERISTICS[cell.name]
        cost = model.cell_cost(cell.name)
        rows.append([
            cell.name,
            char.error_cases,
            char.power_nw,
            char.area_ge,
            cost.power_nw,
            cost.area_ge,
        ])
    emit(ascii_table(
        ["LPAA", "Error cases", "Power nW (paper)", "Area GE (paper)",
         "Power nW (model)", "Area GE (model)"],
        rows, digits=2,
        title="Table 2: cell characteristics (published vs structural model)",
    ))

    # published column carried verbatim
    assert rows[0][2] == 771.0 and rows[0][3] == 4.23
    assert rows[4][2] == 0.0 and rows[4][3] == 0.0
    # structural model: LPAA 5 is wiring-only; all cells beat AccuFA.
    lpaa5 = model.cell_cost("LPAA 5")
    assert lpaa5.area_ge == 0.0 and lpaa5.power_nw == 0.0
    accurate_area = model.area_ge("accurate")
    for cell in PAPER_LPAAS:
        assert model.area_ge(cell) < accurate_area

    benchmark(lambda: [model.cell_cost(c.name) for c in PAPER_LPAAS])
