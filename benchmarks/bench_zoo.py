"""Adder-zoo validation matrix and the widened Pareto sweep.

Two claims are pinned here.  First, correctness: at width 8 every
windowed zoo member's cut DP (``zoo-dp``) answers ER, MED, WCE and MRED
*bit-identically* to weighted enumeration over all ``4^N`` operand
pairs (``zoo-exhaustive``) -- at ``p = 0.5`` every probability is
dyadic, so ER/MED/WCE are compared with *no* tolerance, and MRED (whose
``|d|/exact`` quotients are not dyadic) within one part in 1e12.  Chain
members get the same treatment through the established chain ladder.  Second, scale:
the full catalog sweep at width 16 (every named zoo config measured on
four request kinds through one ``run_batch`` call, then Pareto-reduced
over error/delay/area) completes in seconds because everything routes
to linear- or near-linear-time DPs, never enumeration.

The measured trajectory lands in ``BENCH_zoo.json``
(``sealpaa-bench-v1``; CI compares it informationally against the
committed baseline).
"""

from __future__ import annotations

import math
import time

from repro import engine
from repro.core.adder_zoo import named_zoo
from repro.engine.request import AnalysisRequest
from repro.explore import sweep_zoo_space, zoo_pareto_front
from repro.reporting import ascii_table

from bench_trajectory import metric, write_trajectory
from conftest import bench_output_path, emit

CROSSVAL_WIDTH = 8
SWEEP_WIDTH = 16
CROSSVAL_KINDS = ("chain", "med", "wce", "mred")
MAX_SWEEP_SECONDS = 60.0


def _metrics_of(result, kind):
    """ER plus the kind's headline metric (engines may add extras)."""
    out = {"p_error": float(result.p_error)}
    if kind != "chain":
        out[kind] = float(getattr(result, kind))
    return out


def test_zoo_cross_validation_matrix(benchmark):
    """Every zoo member x every kind: DP == exhaustive, no tolerance."""
    zoo = named_zoo(CROSSVAL_WIDTH)
    start = time.perf_counter()
    checked = rows = 0
    for adder in zoo:
        for kind in CROSSVAL_KINDS:
            request = AnalysisRequest.zoo(adder, kind=kind)
            if request.block is not None:
                fast = engine.run(request, engine="zoo-dp")
                oracle = engine.run(request, engine="zoo-exhaustive")
            else:
                fast = engine.run(request)
                oracle = engine.run(
                    AnalysisRequest.zoo(adder, kind="chain"),
                    engine="exhaustive",
                ) if kind == "chain" else engine.run(
                    request, engine="distribution-exhaustive")
            want = _metrics_of(oracle, kind)
            got = _metrics_of(fast, kind)
            for name, reference in want.items():
                if name == "mred":
                    # |d|/exact quotients are not dyadic; only the
                    # float summation order differs between the DPs
                    # and enumeration.
                    assert math.isclose(got[name], reference,
                                        rel_tol=1e-12, abs_tol=0.0), (
                        f"{adder.config_string} mred: DP {got[name]!r} "
                        f"!= oracle {reference!r}"
                    )
                else:
                    assert got[name] == reference, (
                        f"{adder.config_string} {kind} {name}: "
                        f"DP {got[name]!r} != oracle {reference!r}"
                    )
                checked += 1
            rows += 1
    crossval_s = time.perf_counter() - start
    emit(f"cross-validation: {len(zoo)} adders x {len(CROSSVAL_KINDS)} "
         f"kinds at width {CROSSVAL_WIDTH} -- {checked} metric values "
         f"bit-identical to enumeration in {crossval_s:.2f}s")

    # The widened Pareto sweep: the whole catalog at width 16.
    start = time.perf_counter()
    points = sweep_zoo_space(SWEEP_WIDTH)
    sweep_s = time.perf_counter() - start
    front = zoo_pareto_front(points)
    assert points, "empty sweep"
    assert any(p.is_exact_adder for p in front), (
        "the exact baseline family must survive the error/delay/area front"
    )
    assert sweep_s < MAX_SWEEP_SECONDS

    emit(ascii_table(
        ["Adder", "ER", "MED", "WCE", "Delay", "Area"],
        [[p.adder, f"{p.p_error:.6f}",
          "-" if p.med is None else f"{p.med:.4g}",
          "-" if p.wce is None else f"{p.wce:g}",
          f"{p.delay_units:g}", f"{p.area_units:g}"]
         for p in front],
        title=f"Pareto front (error/delay/area) of {len(points)} zoo "
              f"configs at N={SWEEP_WIDTH}, swept in {sweep_s:.2f}s",
    ))

    write_trajectory(bench_output_path("BENCH_zoo.json"), "zoo", [
        metric("crossval_metric_values", float(checked), unit=""),
        metric("crossval_s", crossval_s, unit="s",
               higher_is_better=False),
        metric("sweep_w16_s", sweep_s, unit="s", higher_is_better=False),
        metric("sweep_w16_points", float(len(points)), unit=""),
        metric("pareto_front_size", float(len(front)), unit=""),
    ])

    benchmark(lambda: sweep_zoo_space(
        CROSSVAL_WIDTH, adders=["aca1:8:4", "gda:8:2:2", "axppa-ks:8:2"]))
