"""Ablation: hybrid-chain search strategies.

DESIGN.md S16 claims the value-vector DP finds the *optimal* hybrid
assignment at negligible cost.  This bench compares the three searchers
-- exact vector DP, brute-force enumeration, per-stage greedy -- on
quality and wall-clock, and shows the paper-motivated scenario where a
hybrid beats every uniform chain.
"""

from __future__ import annotations

import time

import pytest

from repro.core.hybrid import HybridChain
from repro.explore.hybrid_search import (
    brute_force_hybrid,
    greedy_hybrid,
    optimal_hybrid,
)
from repro.reporting import ascii_table

from conftest import emit

CELLS = [f"LPAA {i}" for i in range(1, 8)]
#: low-probability LSBs, high-probability MSBs -- the paper's hybrid case
SPLIT_P = [0.1] * 3 + [0.9] * 3


def test_ablation_search_strategies(benchmark):
    rows = []
    start = time.perf_counter()
    opt = optimal_hybrid(CELLS, 6, SPLIT_P, SPLIT_P)
    opt_seconds = time.perf_counter() - start

    start = time.perf_counter()
    brute = brute_force_hybrid(CELLS, 6, SPLIT_P, SPLIT_P)
    brute_seconds = time.perf_counter() - start

    start = time.perf_counter()
    greedy = greedy_hybrid(CELLS, 6, SPLIT_P, SPLIT_P)
    greedy_seconds = time.perf_counter() - start

    rows = [
        ["vector DP (exact)", opt.p_error, opt.chain.describe(),
         opt_seconds * 1e3],
        ["brute force 7^6", brute.p_error, brute.chain.describe(),
         brute_seconds * 1e3],
        ["greedy", greedy.p_error, greedy.chain.describe(),
         greedy_seconds * 1e3],
    ]
    emit(ascii_table(
        ["strategy", "P(E)", "chain", "ms"],
        rows, digits=5,
        title="Ablation: hybrid search strategies (split probabilities)",
    ))

    assert opt.p_error == pytest.approx(brute.p_error, abs=1e-12)
    assert greedy.p_error >= opt.p_error - 1e-12
    assert opt_seconds < brute_seconds / 10  # DP must crush enumeration

    benchmark(lambda: optimal_hybrid(CELLS, 6, SPLIT_P, SPLIT_P))


def test_ablation_hybrid_beats_uniform(benchmark):
    opt = optimal_hybrid(CELLS, 6, SPLIT_P, SPLIT_P)
    rows = [["optimal hybrid", opt.chain.describe(), opt.p_error]]
    for name in CELLS:
        uniform = HybridChain.uniform(name, 6)
        err = float(uniform.error_probability(SPLIT_P, SPLIT_P))
        rows.append([f"uniform {name}", uniform.describe(), err])
        assert opt.p_error <= err + 1e-12
    emit(ascii_table(
        ["design", "chain", "P(E)"],
        rows, digits=5,
        title="Ablation: optimal hybrid vs every uniform chain",
    ))
    assert len(opt.chain.cell_histogram()) >= 2  # genuinely hybrid

    benchmark(lambda: optimal_hybrid(CELLS, 6, SPLIT_P, SPLIT_P))


def test_ablation_dp_scales_where_brute_force_cannot(benchmark):
    """Exact optimum at width 24 (7^24 assignments for brute force)."""
    result = benchmark(lambda: optimal_hybrid(CELLS, 24, 0.2, 0.2))
    assert result.exact
    assert result.chain.width == 24
