"""Extension bench: accelerator datapaths, approximate multipliers, VOS.

Three §1/§2.1 threads of the paper made measurable:

* an adder-tree accelerator stage, with node-sensitivity analysis
  showing where approximation hurts;
* an array multiplier with approximate/truncated accumulation
  (the ref-[16] direction);
* voltage over-scaling of an exact RCA: the error-vs-energy signature.
"""

from __future__ import annotations

import pytest

from repro.circuits.ripple import build_ripple_netlist
from repro.circuits.vos import vos_quality_energy_sweep
from repro.datapath import (
    Datapath,
    datapath_error_metrics,
    node_sensitivity,
)
from repro.multiop.multiplier import (
    exhaustive_multiplier_check,
    multiplier_error_metrics,
)
from repro.reporting import ascii_table

from conftest import emit


def _tree(cell):
    dp = Datapath("tree")
    for name in "abcd":
        dp.add_input(name, 8)
    dp.add_add("s0", "a", "b", cell=cell)
    dp.add_add("s1", "c", "d", cell=cell)
    dp.add_add("total", "s0", "s1", cell=cell)
    dp.mark_output("total")
    return dp


def test_ext_datapath_sensitivity(benchmark):
    dp = _tree("LPAA 6")
    metrics = datapath_error_metrics(dp, samples=30_000, seed=0)
    sens = node_sensitivity(dp, samples=30_000, seed=0)
    emit(ascii_table(
        ["node", "lone error rate"],
        sorted(sens.items(), key=lambda kv: -kv[1]),
        digits=4,
        title=f"Ext: adder-tree sensitivity "
              f"(full graph P(E) = {metrics.error_rate:.4f})",
    ))
    # the final (widest) adder must be the most sensitive node
    assert max(sens, key=sens.get) == "total"
    # and no single node explains the full error (they compound)
    assert max(sens.values()) < metrics.error_rate

    benchmark.pedantic(
        lambda: node_sensitivity(dp, samples=10_000, seed=0),
        rounds=3, iterations=1,
    )


def test_ext_approximate_multiplier(benchmark):
    rows = []
    for compress, truncate in (("accurate", 0), ("LPAA 6", 0),
                               ("accurate", 2), ("accurate", 4)):
        errors, total = exhaustive_multiplier_check(
            4, compress_cell=compress, truncate_bits=truncate
        )
        rows.append([f"compress={compress}, truncate={truncate}",
                     errors / total])
    emit(ascii_table(
        ["multiplier variant", "P(Error) (exhaustive, 4x4)"],
        rows, digits=4,
        title="Ext: approximate array multipliers",
    ))
    assert rows[0][1] == 0.0                  # fully exact
    assert all(r[1] > 0 for r in rows[1:])    # every approximation errs
    # truncating more columns errs more
    assert rows[3][1] > rows[2][1]

    benchmark.pedantic(
        lambda: multiplier_error_metrics(6, truncate_bits=2,
                                         samples=5_000, seed=1),
        rounds=3, iterations=1,
    )


def test_ext_vos_signature(benchmark):
    netlist = build_ripple_netlist("accurate", 8)
    sweep = vos_quality_energy_sweep(
        netlist, list(netlist.outputs),
        supplies=[1.0, 0.9, 0.8, 0.7, 0.6],
        samples=8_000, seed=3,
    )
    emit(ascii_table(
        ["supply", "delay x", "power x", "failing", "P(Error)"],
        [[r["supply"], r["delay_scale"], r["power_scale"],
          int(r["failing_outputs"]), r["error_rate"]] for r in sweep],
        digits=3,
        title="Ext: VOS error/energy signature (exact 8-bit RCA)",
    ))
    assert sweep[0]["error_rate"] == 0.0          # nominal is clean
    powers = [r["power_scale"] for r in sweep]
    assert powers == sorted(powers, reverse=True)  # energy falls
    errors = [r["error_rate"] for r in sweep]
    assert errors[-1] > errors[1] > 0.0            # quality collapses
    failing = [r["failing_outputs"] for r in sweep]
    assert failing == sorted(failing)              # more paths miss

    benchmark.pedantic(
        lambda: vos_quality_energy_sweep(
            netlist, list(netlist.outputs), supplies=[0.8],
            samples=4_000, seed=3,
        ),
        rounds=3, iterations=1,
    )
