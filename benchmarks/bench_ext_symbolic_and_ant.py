"""Extension bench: symbolic error equations and ANT protection.

Two claims the paper makes in passing, made concrete:

* §5: "analytically derived generic error equations ... can be
  instantiated to obtain the error for any given value of the input
  probabilities" -- the symbolic engine prints those equations and this
  bench instantiates one across a probability grid against the numeric
  engine;
* §2.1's ANT architecture: wrapping a poor LPAA in a reduced-precision
  replica buys a *hard* worst-case error bound the raw cell lacks.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.ant import AntAdder, ant_quality_experiment
from repro.core.recursive import error_probability
from repro.core.symbolic import symbolic_error_probability
from repro.reporting import ascii_table

from conftest import emit


def test_ext_symbolic_equations(benchmark):
    rows = []
    for name in ("LPAA 1", "LPAA 5", "LPAA 6", "LPAA 7"):
        poly = symbolic_error_probability(name, 2)
        rows.append([f"{name}, N=2", poly.to_string()])
    emit(ascii_table(
        ["chain", "closed-form P(Error)(p)"],
        rows,
        title="Ext: generic error equations (uniform input probability p)",
    ))

    # instantiate the LPAA 6 N=8 equation across a grid vs the numeric
    # engine -- identical to float precision.
    poly = symbolic_error_probability("LPAA 6", 8)
    for p in np.linspace(0, 1, 21):
        sym = float(poly.evaluate(p=Fraction(p).limit_denominator(1000)))
        num = float(error_probability(
            "LPAA 6", 8,
            float(Fraction(p).limit_denominator(1000)),
            float(Fraction(p).limit_denominator(1000)),
            float(Fraction(p).limit_denominator(1000)),
        ))
        assert sym == pytest.approx(num, abs=1e-9)
    emit(f"Ext: LPAA 6 N=8 equation has degree {poly.degree()} and "
         f"{len(poly.terms)} terms; matches numeric engine on a 21-point "
         "grid.")

    benchmark(lambda: symbolic_error_probability("LPAA 6", 8))


def test_ext_ant_protection(benchmark):
    width, k = 8, 3
    adder = AntAdder(width, "LPAA 2", truncation_bits=k)
    main, ant, usage = ant_quality_experiment(
        width, "LPAA 2", truncation_bits=k, samples=200_000, seed=4
    )
    emit(ascii_table(
        ["datapath", "ER", "MED", "MSE", "WCE"],
        [
            ["raw LPAA 2 x8", main.error_rate, main.med, main.mse, main.wce],
            [f"ANT(k={k})", ant.error_rate, ant.med, ant.mse, ant.wce],
        ],
        digits=4,
        title=f"Ext: ANT protection (replica usage {usage:.1%}, "
              f"hard bound {adder.worst_case_error_bound()})",
    ))
    assert ant.wce <= adder.worst_case_error_bound()
    assert main.wce > adder.worst_case_error_bound()
    assert ant.mse < main.mse

    benchmark.pedantic(
        lambda: ant_quality_experiment(width, "LPAA 2", truncation_bits=k,
                                       samples=50_000, seed=4),
        rounds=3, iterations=1,
    )
