"""Extension bench: the latency/error trade-off of GeAr vs an exact RCA.

The LLAA half of the paper's taxonomy trades carry-chain delay for
error; this bench regenerates that trade-off from the library's timing
model (unit-gate STA over synthesised cells) and exact GeAr error DP,
asserting the two defining shapes:

* GeAr delay equals the delay of an L-bit chain (< the N-bit RCA);
* error probability falls monotonically as the delay budget (L) grows,
  hitting zero only at the exact configuration.
"""

from __future__ import annotations

from repro.circuits.timing import latency_error_tradeoff, ripple_delay
from repro.reporting import ascii_table

from conftest import emit

N = 16


def test_ext_latency_error_tradeoff(benchmark):
    rows = latency_error_tradeoff(N)
    rca_delay = ripple_delay("accurate", N)
    table_rows = [
        [f"GeAr({N},{r['r']},{r['p']})", r["subadders"], r["l"],
         r["delay"], r["p_error"]]
        for r in rows
        if r["l"] <= 8 or r["p_error"] == 0.0
    ]
    emit(ascii_table(
        ["config", "k", "L", "delay (unit gates)", "P(Error)"],
        table_rows, digits=4,
        title=f"Ext: GeAr latency/error trade-off "
              f"(exact {N}-bit RCA delay = {rca_delay:.1f})",
    ))

    # every approximate config is faster than the full RCA
    for r in rows:
        if r["p_error"] > 0:
            assert r["delay"] < rca_delay
    # the Pareto shape: the minimum error achievable at each delay is
    # non-increasing in delay.
    best_at_delay = {}
    for r in rows:
        best_at_delay[r["delay"]] = min(
            best_at_delay.get(r["delay"], 1.0), r["p_error"]
        )
    delays = sorted(best_at_delay)
    frontier = [best_at_delay[d] for d in delays]
    running_min = 1.0
    for value in frontier:
        running_min = min(running_min, value)
        # no later (slower) point should be forced above the running min
    assert frontier[-1] == 0.0  # the exact config sits at the end

    benchmark.pedantic(lambda: latency_error_tradeoff(12), rounds=3,
                       iterations=1)
