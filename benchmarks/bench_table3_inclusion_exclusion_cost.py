"""Table 3: inclusion-exclusion terms / multiplications / additions /
memory vs number of stages.

Regenerated from the closed forms fitted to the paper's exactly-printed
rows (k = 4, 8, 12 and the scientific-notation magnitudes).  The paper's
own table contains typos that the bench flags explicitly:

* k >= 20 terms/additions are printed with 10^9 where the formula (and
  the surrounding text, "40 x 10^6 terms" for 32 bits... itself also
  inconsistent) gives 10^6-scale values;
* the k = 16 multiplications entry "52427" dropped the final digit of
  524272.
"""

from __future__ import annotations

from repro.baselines.operation_counter import table3_row
from repro.reporting import ascii_table

from conftest import emit

STAGES = [4, 8, 12, 16, 20, 24, 28, 32]

#: Rows of the paper that are printed as exact integers and correct.
PAPER_EXACT = {
    4: (15, 28, 14, 31),
    8: (255, 1016, 254, 511),
    12: (4095, 24564, 4094, 8191),
}


def test_table3_cost_rows(benchmark):
    rows = []
    for k in STAGES:
        data = table3_row(k)
        rows.append([
            k, data["terms"], data["multiplications"],
            data["additions"], data["memory_units"],
        ])
    emit(ascii_table(
        ["Stages", "Terms", "Multiplications", "Additions", "Memory units"],
        rows,
        title="Table 3: traditional inclusion-exclusion analysis cost",
    ))
    emit("note: paper rows k>=20 print terms/additions x1000 too large; "
         "paper's k=16 multiplications '52427' dropped a digit (524272).")

    for k, expected in PAPER_EXACT.items():
        data = table3_row(k)
        assert (
            data["terms"], data["multiplications"],
            data["additions"], data["memory_units"],
        ) == expected
    # magnitude checks against the paper's scientific rows that are
    # internally consistent with the formulas:
    assert abs(table3_row(20)["multiplications"] - 10.5e6) / 10.5e6 < 0.01
    assert abs(table3_row(20)["memory_units"] - 2.10e6) / 2.10e6 < 0.01
    assert abs(table3_row(24)["multiplications"] - 201e6) / 201e6 < 0.01
    assert abs(table3_row(32)["multiplications"] - 68.7e9) / 68.7e9 < 0.01
    assert abs(table3_row(32)["memory_units"] - 8.5e9) / 8.5e9 < 0.02

    benchmark(lambda: [table3_row(k) for k in STAGES])
