"""Ablation: scalar reference engine vs NumPy batch engine.

DESIGN.md keeps two engines -- the readable scalar Algorithm 1 and the
vectorised batch version -- on the claim that the batch engine pays off
for sweeps.  This bench quantifies the claim: at a 256-point probability
grid the vectorised engine must beat per-point scalar calls comfortably,
while agreeing to 1e-12.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.recursive import analyze_chain
from repro.core.vectorized import analyze_batch
from repro.reporting import ascii_table

from conftest import emit

WIDTH = 16
GRID = np.linspace(0.0, 1.0, 256)


def _scalar_sweep():
    return [
        analyze_chain("LPAA 6", width=WIDTH, p_a=float(p), p_b=float(p)).p_success
        for p in GRID
    ]


def _vector_sweep():
    return analyze_batch("LPAA 6", width=WIDTH, p_a=GRID, p_b=GRID)


def test_ablation_engines_agree_and_vectorized_wins(benchmark):
    start = time.perf_counter()
    scalar = _scalar_sweep()
    scalar_seconds = time.perf_counter() - start
    start = time.perf_counter()
    vector = _vector_sweep()
    vector_seconds = time.perf_counter() - start

    assert np.allclose(scalar, vector, atol=1e-12)
    speedup = scalar_seconds / max(vector_seconds, 1e-9)
    emit(ascii_table(
        ["engine", "seconds for 256-point sweep"],
        [["scalar (per point)", scalar_seconds],
         ["vectorised (one batch)", vector_seconds],
         ["speedup", speedup]],
        digits=4,
        title="Ablation: scalar vs vectorised recursion",
    ))
    assert speedup > 3.0, f"vectorised engine only {speedup:.1f}x faster"

    benchmark(_vector_sweep)


def test_ablation_scalar_reference_kernel(benchmark):
    result = benchmark(
        lambda: analyze_chain("LPAA 6", width=WIDTH, p_a=0.3, p_b=0.7)
    )
    assert 0.0 <= float(result.p_success) <= 1.0
