"""Ablation: inclusion-exclusion baseline vs the recursive method.

The paper's central argument (§3 + Table 3): IE computes the same
quantity at exponential cost.  This bench demonstrates both halves on
running code -- numerical identity at every feasible width, and the
measured cost blow-up (terms and wall-clock) against the flat recursive
cost.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.inclusion_exclusion import (
    inclusion_exclusion_error_probability,
)
from repro.core.recursive import error_probability
from repro.reporting import ascii_table

from conftest import emit

POINT = dict(p_a=0.3, p_b=0.6, p_cin=0.5)
WIDTHS = [2, 4, 6, 8, 10, 12, 14]


def test_ablation_ie_equals_recursion_at_exponential_cost(benchmark):
    rows = []
    for width in WIDTHS:
        start = time.perf_counter()
        report = inclusion_exclusion_error_probability(
            "LPAA 1", width, POINT["p_a"], POINT["p_b"], POINT["p_cin"]
        )
        ie_seconds = time.perf_counter() - start

        start = time.perf_counter()
        recursive = float(
            error_probability("LPAA 1", width, POINT["p_a"], POINT["p_b"],
                              POINT["p_cin"])
        )
        rec_seconds = time.perf_counter() - start

        assert report.p_error == pytest.approx(recursive, abs=1e-9)
        rows.append([
            width, report.terms_evaluated, ie_seconds * 1e3,
            rec_seconds * 1e3, report.p_error,
        ])
    emit(ascii_table(
        ["N", "IE terms", "IE ms", "recursive ms", "P(E) (identical)"],
        rows, digits=4,
        title="Ablation: inclusion-exclusion vs recursion",
    ))
    # Cost shape: IE terms double per stage; IE time at N=14 dwarfs the
    # recursion's.
    assert rows[-1][1] == 2 ** 14 - 1
    assert rows[-1][2] > 50 * max(rows[-1][3], 1e-4)

    benchmark.pedantic(
        lambda: inclusion_exclusion_error_probability(
            "LPAA 1", 10, POINT["p_a"], POINT["p_b"], POINT["p_cin"]
        ),
        rounds=3, iterations=1,
    )


def test_ablation_recursive_kernel_at_ie_limit(benchmark):
    """The recursion at a width (20) where IE already needs ~1M terms."""
    result = benchmark(
        lambda: error_probability("LPAA 1", 20, POINT["p_a"], POINT["p_b"],
                                  POINT["p_cin"])
    )
    assert 0.0 <= float(result) <= 1.0
