"""Extension bench: named LLAA variants under one exact analysis.

Paper §2.2 adopts GeAr because it "captures all of the prominent
previously proposed LLAAs".  This bench instantiates the named adders
from the literature (ACA-I, ETAII) as GeAr configurations and prints
their exact error/latency table -- the comparison the LLAA papers run
with simulation, here fully analytical.
"""

from __future__ import annotations

import pytest

from repro.gear.variants import aca_i, etaii, variant_comparison
from repro.gear.analysis import gear_error_probability, gear_exhaustive
from repro.reporting import ascii_table

from conftest import emit

N = 12


def test_ext_llaa_variant_table(benchmark):
    rows = [
        [r["name"], r["config"], r["delay"], r["p_error"]]
        for r in variant_comparison(N)
    ]
    emit(ascii_table(
        ["adder", "GeAr form", "delay", "P(Error)"],
        rows, digits=5,
        title=f"Ext: named LLAA variants at N = {N} (exact analysis)",
    ))
    # ACA-I windows: larger L -> lower error, higher delay.
    aca_rows = [r for r in variant_comparison(N) if r["name"].startswith("ACA")]
    by_l = sorted(aca_rows, key=lambda r: r["l"])
    errors = [r["p_error"] for r in by_l]
    delays = [r["delay"] for r in by_l]
    assert errors == sorted(errors, reverse=True)
    assert delays == sorted(delays)

    benchmark.pedantic(lambda: variant_comparison(N), rounds=3, iterations=1)


def test_ext_variants_cross_checked_exhaustively(benchmark):
    # exact DP == exhaustive count for representative named instances
    # (8-bit words keep the 4^N enumeration cheap)
    for config in (aca_i(8, 4), aca_i(8, 2), etaii(8, 2), etaii(8, 4)):
        errors, total = gear_exhaustive(config)
        analytical = gear_error_probability(config)
        assert errors / total == pytest.approx(analytical, abs=1e-12)
    emit("Ext: ACA-I/ETAII exact DP == exhaustive enumeration.")

    benchmark.pedantic(
        lambda: gear_error_probability(aca_i(32, 8)), rounds=5, iterations=1
    )
