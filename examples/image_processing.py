#!/usr/bin/env python3
"""Image processing on approximate adders (the paper's motivating app).

Blends and blurs synthetic grayscale images with pixel arithmetic routed
through LPAA cells, and connects the measured PSNR to the library's
*analytical* predictions: the analytically computed RMS error of the
adder chain predicts the observed image quality, and the power model
quantifies what the quality loss buys.

Run:  python examples/image_processing.py
"""

import numpy as np

from repro.apps.imaging import (
    approximate_blend,
    approximate_box_blur,
    lsb_approximate_chain,
    psnr,
    synthetic_image,
)
from repro.circuits.power import PowerModel
from repro.core.magnitude import error_moments
from repro.reporting import ascii_table


def ascii_preview(image: np.ndarray, cols: int = 32) -> str:
    """Tiny ASCII-art rendering of a grayscale image."""
    ramp = " .:-=+*#%@"
    step = max(image.shape[1] // cols, 1)
    sampled = image[::2 * step, ::step]
    lines = []
    for row in sampled:
        lines.append(
            "".join(ramp[min(int(v) * len(ramp) // 256, 9)] for v in row)
        )
    return "\n".join(lines)


def main() -> None:
    model = PowerModel()
    image_a = synthetic_image((64, 64), "disk")
    image_b = synthetic_image((64, 64), "gradient")
    reference = approximate_blend(image_a, image_b, "accurate",
                                  approx_bits=0)

    print("Reference blend (accurate adder):")
    print(ascii_preview(reference))
    print()

    # Sweep: which cell, and how many approximate LSBs?
    rows = []
    for cell in ("LPAA 1", "LPAA 2", "LPAA 5", "LPAA 6", "LPAA 7"):
        for approx_bits in (2, 4, 6):
            blended = approximate_blend(image_a, image_b, cell,
                                        approx_bits=approx_bits)
            chain = lsb_approximate_chain(cell, 8, approx_bits)
            predicted_rms = error_moments(chain, None, 0.5, 0.5, 0.0).rms
            power = model.chain_power_nw(chain)
            rows.append([
                cell, approx_bits,
                psnr(reference, blended),
                predicted_rms,
                power,
            ])
    accurate_power = model.chain_power_nw("accurate", 8)
    print(ascii_table(
        ["cell", "approx LSBs", "PSNR dB", "analytical RMS", "power nW"],
        rows, digits=2,
        title="Blend quality vs analytically predicted error "
              f"(accurate 8-bit chain: {accurate_power:.0f} nW)",
    ))
    print()

    # The analytical RMS ordering should predict the PSNR ordering for a
    # fixed approx-bit budget.
    fixed = sorted((r for r in rows if r[1] == 4), key=lambda r: r[3])
    print("At 4 approximate LSBs, ordered by analytical RMS "
          "(PSNR should fall as RMS grows):")
    for cell, _, quality, rms, _ in fixed:
        print(f"  {cell}: RMS={rms:7.3f}  PSNR={quality:6.2f} dB")
    print()

    # Box blur: a heavier accumulation workload.
    blurred_exact = approximate_box_blur(image_a, "accurate", approx_bits=0)
    blurred_approx = approximate_box_blur(image_a, "LPAA 6", approx_bits=4)
    print(f"3x3 box blur with LPAA 6 on the low 4 bits: "
          f"PSNR = {psnr(blurred_exact, blurred_approx):.2f} dB")
    print(ascii_preview(blurred_approx))


if __name__ == "__main__":
    main()
