#!/usr/bin/env python3
"""Bring your own adder: the full workflow for a user-defined cell.

Designs a new approximate full adder, then walks it through every stage
of the library the way the paper intends its tooling to be used:

1. define the truth table and check its error cases,
2. derive the analysis masks and run the recursion,
3. verify exactness (masking analysis) and cross-check against the
   exhaustive oracle,
4. get the closed-form error equation,
5. synthesise it to gates, price it, and grade its stuck-at faults,
6. find where it belongs in an optimal hybrid chain,
7. save it to a JSON cell library for the CLI.

Run:  python examples/custom_cell_workflow.py
"""

import tempfile

from repro import (
    FullAdderTruthTable,
    analyze_chain,
    chain_is_exact,
    derive_matrices,
    error_probability,
    masking_analysis,
    registry,
    symbolic_error_probability,
)
from repro.circuits.cells import synthesize_cell
from repro.circuits.faults import fault_detectability
from repro.circuits.power import PowerModel
from repro.explore.hybrid_search import optimal_hybrid
from repro.io import save_cell_library
from repro.reporting import ascii_table
from repro.simulation.exhaustive import exhaustive_error_probability


def main() -> None:
    # 1. A new cell: exact everywhere except it ignores the carry when
    #    both operands are 1 (saving the majority gate's third input).
    cell = FullAdderTruthTable.from_functions(
        lambda a, b, c: (a ^ b ^ c) if not (a and b) else 0,
        lambda a, b, c: (a & b) | (a & c) | (b & c),
        name="LazyMajority",
    )
    print(f"cell: {cell.name}, error cases: {cell.num_error_cases()}")
    for case in cell.error_cases():
        print(f"  ({case.a},{case.b},{case.cin}): sum {case.sum_out} "
              f"(exact {case.expected_sum}), cout {case.cout} "
              f"(exact {case.expected_cout})")
    print()

    # 2. masks + recursion.
    mkl = derive_matrices(cell)
    print(f"M = {list(mkl.m)}\nK = {list(mkl.k)}\nL = {list(mkl.l)}")
    result = analyze_chain(cell, width=8, p_a=0.3, p_b=0.3, p_cin=0.3)
    print(f"8-bit chain at p=0.3: P(Error) = {float(result.p_error):.6f}\n")

    # 3. exactness + oracle.
    report = masking_analysis(cell)
    print(f"recursion always exact for uniform chains: "
          f"{report.recursion_is_always_exact}")
    print(f"chain_is_exact at width 8: {chain_is_exact(cell, 8)}")
    oracle = exhaustive_error_probability(cell, 8, 0.3, 0.3, 0.3)
    print(f"exhaustive oracle          : {oracle:.6f} "
          f"(analytical {float(result.p_error):.6f})\n")

    # 4. the closed form.
    poly = symbolic_error_probability(cell, 2)
    print(f"P(Error)(p) for 2 bits = {poly.to_string()}\n")

    # 5. gates, power, faults.
    impl = synthesize_cell(cell)
    model = PowerModel()
    print(f"synthesis: {impl.gate_count()} gates, depth {impl.depth()}, "
          f"{model.area_ge(cell):.2f} GE, "
          f"{model.power_nw(cell):.1f} nW (model)")
    worst = fault_detectability(cell, width=8)[:3]
    print(ascii_table(
        ["worst stuck-at fault", "P(Error) faulty", "delta"],
        [[fi.fault.describe(), fi.p_error_faulty, fi.delta] for fi in worst],
        digits=4,
    ))
    print()

    # 6. where does it fit in a hybrid?
    candidates = ["LPAA 7", "LPAA 1", cell]
    best = optimal_hybrid(candidates, 8, p_a=0.3, p_b=0.3, p_cin=0.3)
    print(f"optimal 8-bit hybrid from {{LPAA 7, LPAA 1, LazyMajority}} "
          f"at p=0.3:")
    print(f"  {best.chain.describe()}  (P(Error) = {best.p_error:.6f})")
    for name in ("LPAA 7", "LPAA 1"):
        uniform = float(error_probability(name, 8, 0.3, 0.3, 0.3))
        print(f"  uniform {name}: {uniform:.6f}")
    print()

    # 7. persist for the CLI.
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        path = handle.name
    save_cell_library([cell], path)
    registry.register(cell, overwrite=True)
    print(f"saved to {path} -- analyse from the shell with:")
    print(f"  sealpaa analyze --cells-file {path} "
          f'--cell "LazyMajority" --width 8 --pa 0.3 --pb 0.3 --pcin 0.3')


if __name__ == "__main__":
    main()
