#!/usr/bin/env python3
"""Quickstart: the paper's method in five minutes.

Walks the core API end to end:

1. look at an approximate cell's truth table,
2. analyse a multi-bit chain analytically (the paper's Algorithm 1),
3. reproduce the paper's Table 4 worked example,
4. cross-check against exhaustive and Monte-Carlo simulation,
5. go beyond the paper: exact error-magnitude metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    LPAA1,
    analyze_chain,
    error_pmf,
    error_probability,
    metrics_from_pmf,
)
from repro.core.stages import format_trace_table, trace_chain
from repro.reporting import ascii_table
from repro.simulation.exhaustive import exhaustive_error_probability
from repro.simulation.montecarlo import simulate_error_probability


def main() -> None:
    # 1. A low-power approximate full adder is just a truth table.
    print("LPAA 1 truth table (paper Table 1):")
    rows = []
    for idx in range(8):
        a, b, cin = (idx >> 2) & 1, (idx >> 1) & 1, idx & 1
        s, c = LPAA1.rows[idx]
        rows.append([f"{a}{b}{cin}", s, c])
    print(ascii_table(["A B Cin", "Sum", "Cout"], rows))
    print(f"error cases: {LPAA1.num_error_cases()} of 8 rows\n")

    # 2. Analyse an 8-bit ripple chain of LPAA 1 cells where every input
    #    bit is 1 with probability 0.2.
    result = analyze_chain("LPAA 1", width=8, p_a=0.2, p_b=0.2, p_cin=0.2)
    print(f"8-bit LPAA 1 at p=0.2:  P(Succ) = {result.p_success:.6f}, "
          f"P(Error) = {result.p_error:.6f}\n")

    # 3. The paper's Table 4 worked example, stage by stage.
    traced = trace_chain(
        "LPAA 1", width=4,
        p_a=[0.9, 0.5, 0.4, 0.8],
        p_b=[0.8, 0.7, 0.6, 0.9],
        p_cin=0.5,
    )
    print("Paper Table 4 (4-bit LPAA 1, per-bit probabilities):")
    print(format_trace_table(traced))
    print(f"-> P(Succ) = {traced.p_success:.6f}  (paper prints 0.738476)\n")

    # 4. Validation: the analytical number is exact.
    analytical = float(error_probability("LPAA 6", 8, 0.1, 0.1, 0.1))
    exhaustive = exhaustive_error_probability("LPAA 6", 8, 0.1, 0.1, 0.1)
    monte_carlo = simulate_error_probability(
        "LPAA 6", 8, 0.1, 0.1, 0.1, samples=1_000_000, seed=0
    ).p_error
    print("Cross-validation (LPAA 6, N=8, p=0.1 -- a Table 7 entry):")
    print(ascii_table(
        ["method", "P(Error)"],
        [["analytical recursion", analytical],
         ["weighted exhaustive enumeration", exhaustive],
         ["Monte-Carlo, 1M samples", monte_carlo]],
        digits=6,
    ))
    print()

    # 5. Beyond the paper: how LARGE are the errors?
    pmf = error_pmf("LPAA 6", width=8, p_a=0.1, p_b=0.1, p_cin=0.1)
    metrics = metrics_from_pmf(pmf, width=8)
    print("Exact error-magnitude metrics for the same adder:")
    print(f"  error rate : {metrics.error_rate:.6f}")
    print(f"  MED        : {metrics.med:.4f}")
    print(f"  NMED       : {metrics.nmed:.6f}")
    print(f"  RMSE       : {metrics.rmse:.4f}")
    print(f"  worst case : +/-{metrics.wce}")


if __name__ == "__main__":
    main()
