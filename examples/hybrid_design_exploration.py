#!/usr/bin/env python3
"""Designing an optimal hybrid multi-bit adder (paper §5's proposal).

The paper observes that LPAA 7 excels when input bits are mostly 0 (MSBs
of natural data) while LPAA 1 excels when they are mostly 1, and
proposes hybrid chains mixing cell types.  This example:

1. profiles a realistic per-bit probability pattern (small magnitudes in
   a wide word: high-activity LSBs, near-zero MSBs),
2. finds the provably optimal hybrid assignment with the value-vector
   DP (`repro.explore.optimal_hybrid`),
3. compares it against every uniform design and the greedy heuristic,
4. adds a power-aware variant and the error/power Pareto front.

Run:  python examples/hybrid_design_exploration.py
"""

import numpy as np

from repro.circuits.power import PowerModel
from repro.core.hybrid import HybridChain
from repro.explore.design_space import sweep_design_space
from repro.explore.hybrid_search import greedy_hybrid, optimal_hybrid
from repro.explore.pareto import pareto_front
from repro.reporting import ascii_table

CELLS = [f"LPAA {i}" for i in range(1, 8)]
WIDTH = 12


def operand_bit_profile(width: int, magnitude_bits: int = 6) -> list:
    """Per-bit one-probability of uniformly random *small* operands.

    Values are drawn from [0, 2^magnitude_bits): the low bits are fair
    coins, the bits above are always 0 -- the classic MSB skew the paper
    exploits.
    """
    return [0.5 if i < magnitude_bits else 0.0 for i in range(width)]


def main() -> None:
    model = PowerModel()
    profile = operand_bit_profile(WIDTH)
    print(f"operand profile (LSB..MSB): {profile}\n")

    # 2. The provably optimal hybrid for this profile.
    optimal = optimal_hybrid(CELLS, WIDTH, profile, profile, p_cin=0.0)
    greedy = greedy_hybrid(CELLS, WIDTH, profile, profile, p_cin=0.0)

    rows = [
        ["optimal (vector DP)", optimal.chain.describe(), optimal.p_error],
        ["greedy heuristic", greedy.chain.describe(), greedy.p_error],
    ]
    for name in CELLS:
        chain = HybridChain.uniform(name, WIDTH)
        rows.append([
            f"uniform {name}", chain.describe(),
            float(chain.error_probability(profile, profile, 0.0)),
        ])
    print(ascii_table(
        ["design", "chain (LSB..MSB)", "P(Error)"],
        rows, digits=6,
        title=f"Hybrid design space at width {WIDTH}",
    ))
    print()

    # 4a. Power-aware optimisation: trade error for nanowatts.
    rows = []
    for weight in (0.0, 1e-5, 1e-4, 1e-3):
        result = optimal_hybrid(
            CELLS, WIDTH, profile, profile, p_cin=0.0,
            power_weight=weight, power_model=model,
        )
        rows.append([
            weight, result.chain.describe(), result.p_error, result.power_nw,
        ])
    print(ascii_table(
        ["power weight", "chain", "P(Error)", "power nW"],
        rows, digits=6,
        title="Power-aware optima (objective = P(Succ) - w * power)",
    ))
    print()

    # 4b. Error/power Pareto front over uniform designs and widths.
    points = sweep_design_space(CELLS, [4, 8, 12], [0.5],
                                power_model=model)
    front = pareto_front(points, ("error", "power"))
    print(ascii_table(
        ["cell", "width", "P(Error)", "power nW"],
        [[p.cell_name, p.width, p.p_error, p.power_nw] for p in front],
        digits=4,
        title="Error/power Pareto front (uniform chains, p = 0.5)",
    ))


if __name__ == "__main__":
    main()
