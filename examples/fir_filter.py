#!/usr/bin/env python3
"""FIR filtering on approximate accumulators (DSP, the paper's §1 domain).

Runs a fixed-point low-pass FIR over a noisy tone with the accumulation
datapath approximated three different ways, and connects each design
back to the library's analytical predictions:

* approximate cells in the CSA reduction tree,
* approximate low bits of the final carry-propagate adder,
* a GeAr final adder, with and without error correction.

Run:  python examples/fir_filter.py
"""

import numpy as np

from repro.apps.dsp import (
    fir_filter,
    fir_quality_experiment,
    lowpass_taps,
    make_tone,
    quantize,
    snr_db,
)
from repro.apps.imaging import lsb_approximate_chain
from repro.gear.analysis import gear_error_probability
from repro.gear.config import GeArConfig
from repro.gear.correction import corrected_error_probability
from repro.multiop.compressor import reduction_final_width
from repro.reporting import ascii_table

INPUT_BITS = 6
NUM_TAPS = 5
LENGTH = 160


def main() -> None:
    samples = quantize(
        make_tone(LENGTH, 0.04, noise_level=0.25, seed=3), INPUT_BITS
    )
    taps = lowpass_taps(NUM_TAPS, 0.12, INPUT_BITS)
    reference = fir_filter(samples, taps, INPUT_BITS)
    final_width = reduction_final_width(NUM_TAPS, 2 * INPUT_BITS)
    print(f"{NUM_TAPS}-tap FIR, {INPUT_BITS}-bit samples, "
          f"{final_width}-bit final accumulation adder\n")

    # 1. Where to approximate? Tree cells vs final-adder LSBs.
    rows = []
    for label, kwargs in [
        ("LPAA 6 compressors", dict(compress_cell="LPAA 6")),
        ("LPAA 6 final adder, low 4 bits",
         dict(final_adder=lsb_approximate_chain("LPAA 6", final_width, 4))),
        ("LPAA 6 final adder, low 8 bits",
         dict(final_adder=lsb_approximate_chain("LPAA 6", final_width, 8))),
        ("LPAA 5 final adder, low 4 bits",
         dict(final_adder=lsb_approximate_chain("LPAA 5", final_width, 4))),
    ]:
        output = fir_filter(samples, taps, INPUT_BITS, **kwargs)
        rows.append([label, snr_db(reference, output)])
    print(ascii_table(
        ["datapath variant", "SNR dB"], rows, digits=2,
        title="Output quality by approximation site",
    ))
    print()

    # 2. The analytical-RMS-predicts-SNR pairing across cells.
    rows = []
    for cell in ("LPAA 1", "LPAA 5", "LPAA 6", "LPAA 7"):
        rms, quality = fir_quality_experiment(
            cell, approx_bits=6, input_bits=INPUT_BITS,
            num_taps=NUM_TAPS, signal_length=LENGTH,
        )
        rows.append([cell, rms, quality])
    rows.sort(key=lambda r: r[1])
    print(ascii_table(
        ["cell (6 approx LSBs)", "analytical RMS", "measured SNR dB"],
        rows, digits=2,
        title="Analytical error magnitude vs application quality",
    ))
    print()

    # 3. A GeAr adder in a post-filter smoothing stage:
    #    y[i] = (out[i] + out[i+1]) / 2 -- real carries cross the
    #    sub-adder boundaries here, so prediction misses show up, and
    #    one block of error correction recovers most of the quality.
    config = next(
        c for c in GeArConfig.valid_configs(final_width)
        if not c.is_exact and c.p >= 3 and c.num_subadders >= 3
    )
    from repro.gear.correction import gear_add_corrected
    from repro.gear.functional import gear_add

    exact_smooth = (reference[:-1] + reference[1:]) // 2

    def smooth(add):
        out = np.empty(reference.size - 1, dtype=np.int64)
        for i in range(out.size):
            out[i] = add(int(reference[i]), int(reference[i + 1])) // 2
        return out

    gear_plain = smooth(lambda x, y: gear_add(config, x, y))
    gear_fixed = smooth(
        lambda x, y: gear_add_corrected(config, x, y, budget=1)[0]
    )
    print(ascii_table(
        ["smoothing adder", "P(Error) analytical", "SNR dB"],
        [
            [config.describe(), gear_error_probability(config),
             snr_db(exact_smooth, gear_plain)],
            [config.describe() + " + 1 correction",
             corrected_error_probability(config, 1),
             snr_db(exact_smooth, gear_fixed)],
        ],
        digits=4,
        title="GeAr in a smoothing stage, with and without correction",
    ))


if __name__ == "__main__":
    main()
