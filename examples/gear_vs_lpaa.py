#!/usr/bin/env python3
"""Low-latency (GeAr) vs low-power (LPAA) approximation, analysed with
one toolbox.

The paper's §1.1 claims the proposed analysis philosophy covers both
adder families.  This example puts that side by side:

* sweep GeAr(16, R, P) configurations and compute their exact error
  probability with the linear DP (no inclusion-exclusion);
* compare against 16-bit LPAA chains at the same input statistics;
* show where each family's error comes from (per-sub-adder marginals vs
  per-stage survival), and validate one GeAr point three ways.

Run:  python examples/gear_vs_lpaa.py
"""

from repro.core.recursive import analyze_chain
from repro.gear.analysis import (
    gear_error_probability,
    gear_inclusion_exclusion,
    gear_monte_carlo,
    gear_subadder_error_probabilities,
)
from repro.gear.config import GeArConfig
from repro.reporting import ascii_table

N = 16
P_INPUT = 0.5


def main() -> None:
    # GeAr configuration sweep: error falls as prediction bits grow,
    # and rises with the number of independent sub-adders.
    rows = []
    for config in GeArConfig.valid_configs(N):
        if config.is_exact or config.r < 2:
            continue
        p_error = gear_error_probability(config, P_INPUT, P_INPUT)
        rows.append([
            f"R={config.r}, P={config.p}",
            config.num_subadders,
            config.l,
            p_error,
        ])
    rows.sort(key=lambda r: r[3])
    print(ascii_table(
        ["GeAr(16, R, P)", "sub-adders k", "latency chain L", "P(Error)"],
        rows[:12], digits=6,
        title="GeAr design points at p = 0.5 (best 12 by error)",
    ))
    print()

    # LPAA chains at the same width/statistics for contrast.
    lpaa_rows = []
    for i in (1, 6, 7):
        result = analyze_chain(f"LPAA {i}", width=N,
                               p_a=P_INPUT, p_b=P_INPUT, p_cin=P_INPUT)
        lpaa_rows.append([f"LPAA {i} x{N}", float(result.p_error)])
    print(ascii_table(
        ["LPAA chain", "P(Error)"], lpaa_rows, digits=6,
        title="16-bit LPAA chains at p = 0.5",
    ))
    print("""
reading: GeAr trades *latency* for error and keeps P(E) moderate with a
few prediction bits, while 16-bit LPAA chains trade *power* and at
p = 0.5 are already deep in the paper's '>10 bits is hopeless' regime.
""")

    # Where GeAr errors come from: the carry each sub-adder misses.
    config = GeArConfig(16, 4, 4)
    marginals = gear_subadder_error_probabilities(config, P_INPUT, P_INPUT)
    print(config.describe())
    for i, marginal in enumerate(marginals, start=1):
        print(f"  P(sub-adder {i} mispredicts): {marginal:.6f}")
    print()

    # One point, three methods (the ablation in miniature).
    dp = gear_error_probability(config, P_INPUT, P_INPUT)
    ie = gear_inclusion_exclusion(config, P_INPUT, P_INPUT)
    mc = gear_monte_carlo(config, P_INPUT, P_INPUT, samples=500_000, seed=1)
    print(ascii_table(
        ["method", "P(Error)"],
        [["linear DP (exact)", dp],
         [f"inclusion-exclusion ({ie.terms_evaluated} terms)", ie.p_error],
         ["Monte-Carlo 500k", mc]],
        digits=6,
        title=f"Cross-validation for {config.describe()}",
    ))


if __name__ == "__main__":
    main()
