#!/usr/bin/env python3
"""Serving walkthrough: the analysis service end to end.

Boots the HTTP/JSON service in-process (the same server `sealpaa serve`
runs), then drives it with :class:`repro.serve.AnalysisClient` -- the
production client with capped-exponential-backoff retries, Retry-After
handling, fingerprinted idempotent request IDs, deadlines and
connection reuse:

1. a single `/v1/analyze` request,
2. an explicit `/v1/analyze_batch` call,
3. concurrent clients whose requests coalesce into engine micro-batches,
4. a `/metrics` scrape showing what the service did,
5. a graceful stop that drains in-flight work.

Run:  python examples/serve_client.py
"""

import shutil
import tempfile
from concurrent.futures import ThreadPoolExecutor

from repro.reporting import ascii_table
from repro.serve import AnalysisClient, AnalysisServer, ServeConfig


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="sealpaa-serve-example-")
    server = AnalysisServer(ServeConfig(
        port=0,                  # pick a free port
        max_batch=32,
        batch_window_s=0.005,    # coalesce concurrent arrivals for 5 ms
        cache_dir=cache_dir,     # persist exact answers across restarts
    ))
    base = server.start()
    print(f"service listening on {base}  (in-process thread, port 0)\n")

    # One AnalysisClient per thread: it keeps one TCP connection alive,
    # retries 429/503/504 with jittered backoff, and stamps every retry
    # of a request with the same fingerprinted X-Request-Id.
    client = AnalysisClient(base, total_deadline_s=30.0)
    try:
        # 1. One request: the paper's Table 7 shape over HTTP.
        answer = client.analyze({"cell": "LPAA 6", "width": 8,
                                 "p_a": 0.1, "p_b": 0.1, "p_cin": 0.1})
        print("single /v1/analyze (LPAA 6, N=8, p=0.1):")
        print(f"  P(Error) = {answer['p_error']:.6f}  "
              f"engine={answer['engine']}  exact={answer['exact']}\n")

        # 2. A batch: one HTTP round-trip, one vectorised engine call.
        results = client.analyze_batch([
            {"cell": "LPAA 1", "width": 8, "p_a": p, "p_b": p}
            for p in (0.1, 0.5, 0.9)
        ])
        print("explicit /v1/analyze_batch (LPAA 1, N=8):")
        rows = [[f"p={p}", item["p_error"]]
                for p, item in zip((0.1, 0.5, 0.9), results)]
        print(ascii_table(["inputs", "P(Error)"], rows, digits=6))
        print()

        # 3. Concurrent independent clients: the service coalesces their
        #    requests into micro-batches behind the scenes.  A client
        #    instance serves one thread, so each worker gets its own.
        docs = [{"cell": "LPAA 6", "width": 16,
                 "p_a": round(0.05 * (k + 1), 2)} for k in range(12)]

        def ask(doc):
            with AnalysisClient(base) as thread_client:
                return thread_client.analyze(doc)

        with ThreadPoolExecutor(max_workers=12) as pool:
            list(pool.map(ask, docs))

        # 4. What did the service do?  /metrics tells you.
        snapshot = client.metrics()
        stats = snapshot["service"]
        print("service stats after the burst of 12 concurrent clients:")
        print(f"  requests served : {stats['served']}")
        print(f"  engine batches  : {stats['batches']}  "
              f"(< served because requests coalesced)")
        print(f"  shed (429)      : {stats['shed']}")
        cache = stats.get("result_cache") or {}
        disk = cache.get("disk") or {}
        print(f"  disk cache      : {disk.get('writes', 0)} writes, "
              f"{disk.get('hits', 0)} hits "
              f"(warm restarts replay these -- docs/caching.md)")
        print(f"  client retries  : {client.retries} "
              f"(over {client.requests_sent} requests sent)")
    finally:
        # 5. Graceful stop: drains queued work, then closes the port.
        client.close()
        server.stop()
        shutil.rmtree(cache_dir, ignore_errors=True)
    print("\nserver drained and stopped cleanly")


if __name__ == "__main__":
    main()
