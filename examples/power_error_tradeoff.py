#!/usr/bin/env python3
"""From truth table to nanowatts: the gate-level substrate end to end.

Shows the circuit side of the library that stands in for the paper's
transistor-level data:

1. synthesise each LPAA cell from its truth table (Quine-McCluskey),
2. inspect the structural costs (gates, depth, gate-equivalents),
3. propagate signal probabilities / switching activity through a
   multi-bit ripple netlist,
4. estimate chain power with the Table-2-calibrated model and plot the
   error/power landscape textually.

Run:  python examples/power_error_tradeoff.py
"""

from repro.circuits.activity import propagate_probabilities, switching_activity
from repro.circuits.cells import synthesis_report
from repro.circuits.power import PowerModel
from repro.circuits.ripple import build_ripple_netlist
from repro.core.recursive import error_probability
from repro.reporting import ascii_table

CELLS = ["accurate"] + [f"LPAA {i}" for i in range(1, 8)]
WIDTH = 8


def main() -> None:
    # 1-2. Synthesis report for every cell.
    rows = [
        [r["name"], r["gates"], r["depth"], r["sum_terms"],
         r["cout_terms"], r["literals"]]
        for r in synthesis_report(CELLS)
    ]
    print(ascii_table(
        ["cell", "gates", "depth", "sum terms", "cout terms", "literals"],
        rows,
        title="Gate-level synthesis of every cell (Quine-McCluskey, verified)",
    ))
    print()

    # 3. Activity inside an 8-bit LPAA 1 ripple netlist.
    netlist = build_ripple_netlist("LPAA 1", WIDTH)
    inputs = {net: 0.5 for net in netlist.inputs}
    probabilities = propagate_probabilities(netlist, inputs)
    activity = switching_activity(probabilities)
    carries = [(f"c{i}", activity.get(f"c{i}", 0.0)) for i in range(1, WIDTH + 1)]
    print(f"8-bit LPAA 1 netlist: {netlist.num_gates()} gates, "
          f"depth {netlist.depth()}")
    print("carry-net switching activity along the chain "
          "(2p(1-p), independence model):")
    for net, alpha in carries:
        print(f"  {net}: {alpha:.4f}")
    print()

    # 4. The error/power landscape at p = 0.5.
    model = PowerModel()
    rows = []
    for name in CELLS:
        power = model.chain_power_nw(name, WIDTH)
        err = float(error_probability(name, WIDTH, 0.5, 0.5, 0.5))
        area = model.chain_area_ge(name, WIDTH)
        rows.append([name, err, power, area])
    rows.sort(key=lambda r: r[2])
    print(ascii_table(
        ["chain (x8)", "P(Error)", "power nW (model)", "area GE (model)"],
        rows, digits=4,
        title="8-bit chains: what the power savings cost in correctness",
    ))
    print("\n(model calibrated against the paper's published Table 2 "
          f"cell powers; scale = {model.scale_nw:.1f} nW/unit)")


if __name__ == "__main__":
    main()
