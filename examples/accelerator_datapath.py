#!/usr/bin/env python3
"""An approximate accelerator datapath, end to end.

Builds the inner product stage of a tiny convolution accelerator --
four exact multipliers feeding an adder tree -- then asks the questions
a designer would:

1. how wrong is the whole pipeline for a given adder choice?
2. which adder node dominates the error (node sensitivity)?
3. what does approximating each node buy in power?
4. does an approximate *multiplier* (truncated partial products) change
   the picture?
5. what happens under voltage over-scaling of the exact design?

Run:  python examples/accelerator_datapath.py
"""

from repro.circuits.power import PowerModel
from repro.circuits.ripple import build_ripple_netlist
from repro.circuits.vos import vos_quality_energy_sweep
from repro.datapath import (
    Datapath,
    datapath_cost,
    datapath_error_metrics,
    node_sensitivity,
)
from repro.multiop.multiplier import multiplier_error_metrics
from repro.reporting import ascii_table


def build_conv_stage(cell, approx_bits: int = None) -> Datapath:
    """sum(x_i * w_i) for a 4-tap window, with configurable adders.

    With *approx_bits* set, only the low bits of each adder use *cell*
    (the realistic LSB-only deployment); otherwise every stage does.
    """
    from repro.apps.imaging import lsb_approximate_chain

    dp = Datapath("conv4")
    for i in range(4):
        dp.add_input(f"x{i}", 6)
        dp.add_input(f"w{i}", 6)
    for i in range(4):
        dp.add_mul(f"p{i}", f"x{i}", f"w{i}")

    def adder(width):
        if approx_bits is None:
            return cell
        return lsb_approximate_chain(cell, width, approx_bits)

    dp.add_add("s0", "p0", "p1", cell=adder(12))
    dp.add_add("s1", "p2", "p3", cell=adder(12))
    dp.add_add("acc", "s0", "s1", cell=adder(13))
    dp.mark_output("acc")
    return dp


def main() -> None:
    model = PowerModel()

    # 1-3. datapath quality, sensitivity and power per adder choice.
    rows = []
    for label, cell, approx_bits in (
        ("accurate", "accurate", None),
        ("LPAA 6, all bits", "LPAA 6", None),
        ("LPAA 2, all bits", "LPAA 2", None),
        ("LPAA 6, low 4 bits only", "LPAA 6", 4),
        ("LPAA 5, low 4 bits only", "LPAA 5", 4),
    ):
        dp = build_conv_stage(cell, approx_bits)
        metrics = datapath_error_metrics(dp, samples=30_000, seed=0)
        cost = datapath_cost(dp, model)
        rows.append([
            label, metrics.error_rate, metrics.med, cost["power_nw"],
        ])
    print(ascii_table(
        ["adder configuration", "P(Error)", "MED", "adder power nW"],
        rows, digits=3,
        title="4-tap convolution stage: quality vs adder power "
              "(full-width approximation is hopeless; LSB-only is the "
              "practical point)",
    ))
    print()

    sens = node_sensitivity(build_conv_stage("LPAA 6"), samples=30_000,
                            seed=1)
    print(ascii_table(
        ["adder node", "lone error rate"],
        sorted(sens.items(), key=lambda kv: -kv[1]), digits=4,
        title="Node sensitivity (LPAA 6 everywhere): the final "
              "accumulator dominates",
    ))
    print()

    # 4. approximate multipliers instead (truncated partial products).
    rows = []
    for truncate in (0, 2, 4):
        er, med, wce = multiplier_error_metrics(
            6, truncate_bits=truncate, samples=10_000, seed=2
        )
        rows.append([f"truncate {truncate} LSB columns", er, med, wce])
    print(ascii_table(
        ["multiplier variant", "P(Error)", "MED", "WCE"],
        rows, digits=3,
        title="6-bit array multiplier with truncated accumulation",
    ))
    print()

    # 5. VOS on the exact adder: the other way to trade quality for
    #    energy, on the same gate-level substrate.
    netlist = build_ripple_netlist("accurate", 8)
    sweep = vos_quality_energy_sweep(
        netlist, list(netlist.outputs),
        supplies=[1.0, 0.9, 0.8, 0.7, 0.6],
        samples=8_000, seed=3,
    )
    print(ascii_table(
        ["supply V", "delay x", "power x", "failing outs", "P(Error)"],
        [[r["supply"], r["delay_scale"], r["power_scale"],
          int(r["failing_outputs"]), r["error_rate"]] for r in sweep],
        digits=3,
        title="Voltage over-scaling an exact 8-bit RCA "
              "(clock fixed at the nominal critical path)",
    ))


if __name__ == "__main__":
    main()
