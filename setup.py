"""Legacy setup shim.

All metadata lives in ``pyproject.toml``; this file exists only so that
``pip install -e .`` works in offline environments without the ``wheel``
package (pip's legacy editable path needs a ``setup.py``).
"""

from setuptools import setup

setup()
