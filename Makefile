# Convenience targets for the sealpaa-py reproduction.

PYTHON ?= python

.PHONY: install test bench examples all clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex > /dev/null && echo OK || exit 1; \
	done

all: test bench examples

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
