"""Tests for the accelerator-datapath layer."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.datapath import (
    Datapath,
    datapath_cost,
    datapath_error_metrics,
    node_sensitivity,
)


def _adder_tree(cell="accurate"):
    """(a + b) + (c + d) with configurable adders."""
    dp = Datapath("tree")
    for name in "abcd":
        dp.add_input(name, 8)
    dp.add_add("s0", "a", "b", cell=cell)
    dp.add_add("s1", "c", "d", cell=cell)
    dp.add_add("total", "s0", "s1", cell=cell)
    dp.mark_output("total")
    return dp


def _mac(cell="accurate"):
    """a*b + c*d (two exact products, one approximate accumulate)."""
    dp = Datapath("mac")
    for name in "abcd":
        dp.add_input(name, 4)
    dp.add_mul("p0", "a", "b")
    dp.add_mul("p1", "c", "d")
    dp.add_add("acc", "p0", "p1", cell=cell)
    dp.mark_output("acc")
    return dp


class TestConstruction:
    def test_duplicate_node_rejected(self):
        dp = Datapath()
        dp.add_input("a", 4)
        with pytest.raises(AnalysisError, match="already defined"):
            dp.add_input("a", 4)

    def test_unknown_operand_rejected(self):
        dp = Datapath()
        dp.add_input("a", 4)
        with pytest.raises(AnalysisError, match="unknown node"):
            dp.add_add("s", "a", "ghost")

    def test_widths_grow_correctly(self):
        dp = Datapath()
        dp.add_input("a", 4)
        dp.add_input("b", 6)
        dp.add_add("s", "a", "b")
        dp.add_mul("m", "a", "b")
        dp.add_shl("sh", "a", 3)
        assert dp._width_of("s") == 7    # max(4,6)+1
        assert dp._width_of("m") == 10
        assert dp._width_of("sh") == 7

    def test_output_bookkeeping(self):
        dp = _adder_tree()
        assert dp.outputs == ["total"]
        with pytest.raises(AnalysisError, match="twice"):
            dp.mark_output("total")


class TestEvaluation:
    def test_exact_tree_is_plain_arithmetic(self, rng):
        dp = _adder_tree()
        for _ in range(50):
            vals = {k: int(rng.integers(0, 256)) for k in "abcd"}
            out = dp.evaluate(vals)
            assert out["total"] == sum(vals.values())

    def test_exact_mac(self, rng):
        dp = _mac()
        for _ in range(50):
            vals = {k: int(rng.integers(0, 16)) for k in "abcd"}
            out = dp.evaluate(vals)
            assert out["acc"] == vals["a"] * vals["b"] + vals["c"] * vals["d"]

    def test_approximate_tree_errs(self):
        dp = _adder_tree(cell="LPAA 2")
        wrong = 0
        for a in range(0, 256, 17):
            for b in range(0, 256, 19):
                out = dp.evaluate({"a": a, "b": b, "c": 5, "d": 9})
                if out["total"] != a + b + 14:
                    wrong += 1
        assert wrong > 0

    def test_hybrid_adder_node(self):
        dp = Datapath()
        dp.add_input("a", 4)
        dp.add_input("b", 4)
        dp.add_add("s", "a", "b", cell=["LPAA 5", "LPAA 5",
                                        "accurate", "accurate"])
        dp.mark_output("s")
        # errors confined to the two approximate LSBs (no masking of the
        # divergence above bit 1 since upper cells are accurate)
        for a in range(16):
            for b in range(16):
                delta = dp.evaluate({"a": a, "b": b})["s"] - (a + b)
                assert abs(delta) < 8

    def test_missing_stimulus(self):
        dp = _adder_tree()
        with pytest.raises(AnalysisError, match="missing stimulus"):
            dp.evaluate({"a": 1, "b": 2, "c": 3})

    def test_stimulus_range_checked(self):
        dp = _adder_tree()
        with pytest.raises(AnalysisError, match="fit"):
            dp.evaluate({"a": 256, "b": 0, "c": 0, "d": 0})

    def test_no_outputs_rejected(self):
        dp = Datapath()
        dp.add_input("a", 4)
        with pytest.raises(AnalysisError, match="no outputs"):
            dp.evaluate({"a": 1})


class TestAnalysis:
    def test_exact_graph_has_zero_error(self):
        metrics = datapath_error_metrics(_adder_tree(), samples=5_000, seed=0)
        assert metrics.error_rate == 0.0

    def test_approximate_graph_metrics(self):
        metrics = datapath_error_metrics(
            _adder_tree("LPAA 6"), samples=20_000, seed=1
        )
        assert 0.0 < metrics.error_rate < 1.0
        assert metrics.med > 0.0

    def test_sensitivity_identifies_every_adder(self):
        dp = _adder_tree("LPAA 2")
        sens = node_sensitivity(dp, samples=10_000, seed=2)
        assert set(sens) == {"s0", "s1", "total"}
        assert all(0.0 < v < 1.0 for v in sens.values())

    def test_final_adder_dominates_in_mac(self):
        # the accumulate adder is the only approximate node: its lone
        # sensitivity equals the whole graph's error rate.
        dp = _mac("LPAA 6")
        sens = node_sensitivity(dp, samples=20_000, seed=3)
        metrics = datapath_error_metrics(dp, samples=20_000, seed=3)
        assert sens["acc"] == pytest.approx(metrics.error_rate, abs=1e-12)

    def test_cost_aggregation(self):
        from repro.circuits.power import PowerModel

        model = PowerModel()
        cost = datapath_cost(_adder_tree("LPAA 1"), model)
        assert cost["power_nw"] > 0 and cost["area_ge"] > 0
        # three adder nodes: 8+8 -> widths 8, 8, 9 stages
        expected_area = (
            model.chain_area_ge("LPAA 1", 8) * 2
            + model.chain_area_ge("LPAA 1", 9)
        )
        assert cost["area_ge"] == pytest.approx(expected_area)
