"""Property tests for serialisation round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.truth_table import FullAdderTruthTable
from repro.io import cells_from_json, cells_to_json

truth_tables = st.builds(
    FullAdderTruthTable,
    st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1)),
        min_size=8,
        max_size=8,
    ),
    name=st.text(
        alphabet=st.characters(whitelist_categories=("L", "N"),
                               max_codepoint=0x2000),
        min_size=1,
        max_size=30,
    ),
)


@given(cells=st.lists(truth_tables, min_size=1, max_size=5))
@settings(max_examples=80)
def test_cell_library_round_trip(cells):
    restored = cells_from_json(cells_to_json(cells))
    assert restored == cells
    assert [c.name for c in restored] == [c.name for c in cells]


@given(cell=truth_tables)
@settings(max_examples=80)
def test_single_cell_dict_round_trip(cell):
    assert FullAdderTruthTable.from_dict(cell.as_dict()) == cell
