"""Cross-subsystem property tests (hypothesis).

These properties tie different engines to each other across randomly
generated configurations -- the strongest regression net the repo has.
"""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.adders import PAPER_LPAAS, paper_cell
from repro.core.hybrid import HybridChain
from repro.core.recursive import analyze_chain
from repro.explore.hybrid_search import optimal_hybrid
from repro.gear.analysis import (
    gear_error_probability,
    gear_subadder_error_probabilities,
)
from repro.gear.config import GeArConfig
from repro.gear.correction import (
    corrected_error_probability,
    detect_errors,
    error_count_distribution,
    gear_add_corrected,
)
from repro.gear.functional import gear_add
from repro.multiop.compressor import csa_compress, multi_operand_add
from repro.simulation.functional import ripple_add

cells = st.integers(1, 7).map(paper_cell)
probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def gear_configs(max_n: int = 12):
    """Strategy over valid GeAr configurations up to max_n bits."""
    def build(draw_tuple):
        n, r_seed, p_seed = draw_tuple
        configs = GeArConfig.valid_configs(n)
        return configs[(r_seed * 31 + p_seed) % len(configs)]

    return st.tuples(
        st.integers(2, max_n), st.integers(0, 97), st.integers(0, 89)
    ).map(build)


# -- GeAr -----------------------------------------------------------------------


@given(config=gear_configs(), a_seed=st.integers(0, 10 ** 9),
       b_seed=st.integers(0, 10 ** 9))
@settings(max_examples=80, deadline=None)
def test_gear_functional_error_iff_detection(config, a_seed, b_seed):
    a = a_seed % (1 << config.n)
    b = b_seed % (1 << config.n)
    flagged = detect_errors(config, a, b)
    assert (gear_add(config, a, b) != a + b) == bool(flagged)


@given(config=gear_configs(), a_seed=st.integers(0, 10 ** 9),
       b_seed=st.integers(0, 10 ** 9))
@settings(max_examples=80, deadline=None)
def test_gear_full_correction_is_exact(config, a_seed, b_seed):
    a = a_seed % (1 << config.n)
    b = b_seed % (1 << config.n)
    result, _ = gear_add_corrected(config, a, b)
    assert result == a + b


@given(config=gear_configs(10), p=probabilities)
@settings(max_examples=50, deadline=None)
def test_gear_error_between_union_bounds(config, p):
    marginals = gear_subadder_error_probabilities(config, p, p)
    total = gear_error_probability(config, p, p)
    assert total <= sum(marginals) + 1e-9
    assert total >= max(marginals, default=0.0) - 1e-9


@given(config=gear_configs(10), p=probabilities)
@settings(max_examples=50, deadline=None)
def test_gear_count_distribution_consistency(config, p):
    pmf = error_count_distribution(config, p, p)
    assert math.isclose(sum(pmf), 1.0, abs_tol=1e-9)
    assert math.isclose(
        1.0 - pmf[0], gear_error_probability(config, p, p), abs_tol=1e-9
    )
    # residual error with budget b is the tail of the count PMF
    for budget in range(len(pmf)):
        residual = corrected_error_probability(config, budget, p, p)
        assert math.isclose(residual, sum(pmf[budget + 1:]), abs_tol=1e-9)


# -- carry-save -------------------------------------------------------------------


@given(
    cell=cells,
    x=st.integers(0, 255), y=st.integers(0, 255), z=st.integers(0, 255),
)
@settings(max_examples=80)
def test_csa_column_independence(cell, x, y, z):
    """Each compressor column equals the cell applied to that column."""
    s, c = csa_compress(cell, x, y, z, 8)
    for i in range(8):
        expected_s, expected_c = cell.evaluate(
            (x >> i) & 1, (y >> i) & 1, (z >> i) & 1
        )
        assert (s >> i) & 1 == expected_s
        assert (c >> (i + 1)) & 1 == expected_c


@given(
    operands=st.lists(st.integers(0, 63), min_size=1, max_size=9),
)
@settings(max_examples=80)
def test_accurate_multi_operand_add_is_sum(operands):
    assert multi_operand_add(operands, 6) == sum(operands)


@given(
    cell=cells,
    operands=st.lists(st.integers(0, 15), min_size=3, max_size=6),
)
@settings(max_examples=60)
def test_approximate_tree_with_accurate_cells_in_disguise(cell, operands):
    """If the approximate cell happens to act accurately on every column
    pattern that occurs, the tree result must equal the exact sum."""
    result = multi_operand_add(operands, 4, compress_cell=cell)
    exact = sum(operands)
    if result != exact:
        # then some column somewhere must have hit an error case
        assert cell.num_error_cases() > 0


# -- hybrid optimality ---------------------------------------------------------------


@given(
    p=st.lists(probabilities, min_size=3, max_size=5),
    subset=st.sets(st.integers(1, 7), min_size=1, max_size=3),
)
@settings(max_examples=30, deadline=None)
def test_optimal_hybrid_never_loses_to_any_uniform(p, subset):
    names = [f"LPAA {i}" for i in sorted(subset)]
    width = len(p)
    best = optimal_hybrid(names, width, p, p)
    for name in names:
        uniform = float(
            HybridChain.uniform(name, width).error_probability(p, p)
        )
        assert best.p_error <= uniform + 1e-9


# -- correlated operands ---------------------------------------------------------------


@given(
    cell=cells,
    p_a=st.lists(probabilities, min_size=4, max_size=4),
    p_b=st.lists(probabilities, min_size=4, max_size=4),
    p_cin=probabilities,
)
@settings(max_examples=50)
def test_correlated_engine_reduces_to_standard_under_independence(
    cell, p_a, p_b, p_cin
):
    from repro.core.correlated import (
        JointBitDistribution,
        error_probability_correlated,
    )
    from repro.core.recursive import error_probability

    joints = [
        JointBitDistribution.independent(pa, pb)
        for pa, pb in zip(p_a, p_b)
    ]
    got = error_probability_correlated(cell, joints, p_cin)
    ref = float(error_probability(cell, 4, p_a, p_b, p_cin))
    assert math.isclose(got, ref, abs_tol=1e-9)


@given(cell=cells, a=st.integers(0, 63))
@settings(max_examples=60)
def test_self_addition_deterministic_case(cell, a):
    """Pinning every operand bit makes the correlated analysis reduce to
    one functional doubling."""
    from repro.core.correlated import JointBitDistribution, \
        analyze_chain_correlated

    width = 6
    joints = [
        JointBitDistribution.identical(float((a >> i) & 1))
        for i in range(width)
    ]
    p_success, _ = analyze_chain_correlated(cell, joints, p_cin=0.0)
    functional_ok = ripple_add(cell, a, a, 0, width) == 2 * a
    assert p_success in (0.0, 1.0)
    if p_success == 1.0:
        assert functional_ok


# -- ripple vs paper cells -------------------------------------------------------------


@given(
    cell=cells,
    a=st.integers(0, 255), b=st.integers(0, 255), cin=st.integers(0, 1),
)
@settings(max_examples=100)
def test_paper_cells_error_iff_some_stage_errs(cell, a, b, cin):
    """For the (masking-free) paper cells, a wrong word-level output
    happens exactly when some stage hits an error row along the
    approximate carry chain."""
    width = 8
    result = ripple_add(cell, a, b, cin, width)
    stage_err = False
    carry = cin
    for i in range(width):
        bits = ((a >> i) & 1, (b >> i) & 1, carry)
        out = cell.evaluate(*bits)
        from repro.core.truth_table import ACCURATE

        if out != ACCURATE.evaluate(*bits):
            stage_err = True
        carry = out[1]
    assert (result != a + b + cin) == stage_err
