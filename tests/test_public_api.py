"""The public API surface: every exported name resolves and is stable."""

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name!r} " \
                "but the attribute is missing"

    def test_version_is_pep440_ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(p.isdigit() for p in parts[:2])

    def test_headline_entry_points_exist(self):
        # the names the README quickstart relies on
        for name in (
            "analyze_chain", "error_probability", "error_pmf",
            "metrics_from_pmf", "HybridChain", "chain_is_exact",
            "symbolic_error_probability", "paper_cell", "get_cell",
            "PAPER_LPAAS", "derive_matrices",
        ):
            assert name in repro.__all__
            assert callable(getattr(repro, name)) or name == "PAPER_LPAAS"

    def test_subpackages_importable(self):
        import repro.ant
        import repro.baselines
        import repro.circuits
        import repro.datapath
        import repro.explore
        import repro.gear
        import repro.io
        import repro.multiop
        import repro.simulation

        for module in (
            repro.simulation, repro.baselines, repro.gear,
            repro.circuits, repro.explore, repro.multiop,
        ):
            assert module.__all__, f"{module.__name__} exports nothing"
            for name in module.__all__:
                assert hasattr(module, name), (
                    f"{module.__name__}.__all__ lists {name!r} "
                    "but the attribute is missing"
                )

    def test_no_accidental_module_reexports(self):
        # __all__ should list API objects, not submodules
        import types

        for name in repro.__all__:
            assert not isinstance(getattr(repro, name), types.ModuleType)
