"""Unit tests for repro.explore.design_space."""

import pytest

from repro.circuits.power import PowerModel
from repro.core.exceptions import ExplorationError
from repro.core.recursive import error_probability
from repro.explore.design_space import (
    best_cell_per_probability,
    sweep_design_space,
    useful_width_limit,
)


class TestSweep:
    def test_point_values_match_recursion(self):
        points = sweep_design_space(["LPAA 1", "LPAA 6"], [2, 4], [0.1, 0.9])
        assert len(points) == 2 * 2 * 2
        for point in points:
            expected = float(
                error_probability(
                    point.cell_name, point.width,
                    point.p_input, point.p_input, point.p_input,
                )
            )
            assert point.p_error == pytest.approx(expected, abs=1e-12)

    def test_power_model_attaches_costs(self):
        model = PowerModel()
        points = sweep_design_space(["LPAA 3"], [4], [0.5], power_model=model)
        (point,) = points
        assert point.power_nw == pytest.approx(
            model.chain_power_nw("LPAA 3", 4, 0.5, 0.5, 0.5)
        )
        assert point.area_ge == pytest.approx(model.chain_area_ge("LPAA 3", 4))

    def test_without_power_model_costs_are_none(self):
        (point,) = sweep_design_space(["LPAA 3"], [4], [0.5])
        assert point.power_nw is None and point.area_ge is None

    def test_as_dict_round_trip(self):
        (point,) = sweep_design_space(["LPAA 2"], [3], [0.25])
        d = point.as_dict()
        assert d["cell"] == "LPAA 2" and d["width"] == 3

    def test_validation(self):
        with pytest.raises(ExplorationError):
            sweep_design_space([], [4], [0.5])
        with pytest.raises(ExplorationError):
            sweep_design_space(["LPAA 1"], [0], [0.5])
        with pytest.raises(ExplorationError):
            sweep_design_space(["LPAA 1"], [4], [1.5])


class TestPaperReadings:
    """The Fig. 5 qualitative claims, via the sweep API."""

    def test_lpaa7_wins_low_probability(self):
        points = sweep_design_space(
            [f"LPAA {i}" for i in range(1, 8)], [8], [0.1]
        )
        best = best_cell_per_probability(points, width=8)
        assert best[0.1].cell_name == "LPAA 7"

    def test_lpaa1_wins_high_probability(self):
        points = sweep_design_space(
            [f"LPAA {i}" for i in range(1, 8)], [8], [0.9]
        )
        best = best_cell_per_probability(points, width=8)
        assert best[0.9].cell_name == "LPAA 1"

    def test_lpaa6_is_the_four_season_adder(self):
        # The paper's "Four Season Adder" reading: LPAA 6 is top-2 at
        # both probability extremes (where the specialists LPAA 1 and
        # LPAA 7 respectively collapse) and has the best average rank
        # across low/equal/high probabilities.
        cells = [f"LPAA {i}" for i in range(1, 8)]
        total_error = {name: 0.0 for name in cells}
        for p in (0.1, 0.5, 0.9):
            points = sweep_design_space(cells, [8], [p])
            ranked = sorted(points, key=lambda pt: pt.p_error)
            for pt in points:
                total_error[pt.cell_name] += pt.p_error
            if p in (0.1, 0.9):
                top2 = [pt.cell_name for pt in ranked[:2]]
                assert "LPAA 6" in top2, f"not top-2 at p={p}: {top2}"
        best_average = min(total_error, key=total_error.get)
        assert best_average == "LPAA 6", total_error

    def test_no_cell_useful_beyond_ten_bits_at_half(self):
        # Paper §5: "none of the LPAA is useful beyond 10-bits cascading"
        # for equally probable inputs (P(E) > 0.5).
        for i in range(1, 8):
            limit = useful_width_limit(f"LPAA {i}", p=0.5, threshold=0.5)
            assert limit is not None and limit <= 11

    def test_useful_width_limit_none_for_accurate(self):
        assert useful_width_limit("accurate", p=0.5) is None
