"""Pareto exploration over the adder-family zoo."""

import pytest

from repro.core.adder_zoo import named_zoo
from repro.core.exceptions import ExplorationError
from repro.explore import (
    ZooDesignPoint,
    sweep_zoo_space,
    zoo_objective_vector,
    zoo_pareto_front,
)
from repro.runtime.budget import RunBudget


class TestSweep:
    def test_covers_the_reference_catalog(self):
        points = sweep_zoo_space(8)
        assert len(points) == len(named_zoo(8))
        by_name = {p.adder: p for p in points}
        assert by_name["rca:8"].p_error == 0.0
        assert by_name["rca:8"].is_exact_adder
        assert by_name["aca1:8:4"].p_error == 0.125
        assert by_name["aca1:8:4"].med == 7.5
        assert by_name["aca1:8:4"].wce == 128
        assert by_name["gda:8:2:2"].med == 1.5

    def test_custom_adder_subset(self):
        points = sweep_zoo_space(8, adders=["loa:8:4", "rca:8"])
        assert [p.adder for p in points] == ["loa:8:4", "rca:8"]
        assert points[0].p_error == 0.68359375
        assert points[0].representation == "chain"

    def test_width_mismatch_raises(self):
        with pytest.raises(ExplorationError, match="width"):
            sweep_zoo_space(8, adders=["aca1:16:4"])

    def test_budget_truncation_drops_points_not_crashes(self):
        points = sweep_zoo_space(
            8, adders=["aca1:8:4", "gda:8:2:2"],
            budget=RunBudget(deadline_s=1e-9),
        )
        assert isinstance(points, list)  # possibly empty, never an error


class TestPareto:
    def _points(self):
        return sweep_zoo_space(
            8, adders=["rca:8", "loa:8:4", "aca1:8:4", "axppa-ks:8:2"])

    def test_front_is_non_dominated(self):
        points = self._points()
        front = zoo_pareto_front(points, ("error", "delay"))
        assert front
        for point in front:
            vec = zoo_objective_vector(point, ("error", "delay"))
            for other in points:
                ovec = zoo_objective_vector(other, ("error", "delay"))
                assert not (ovec[0] < vec[0] and ovec[1] < vec[1]) or \
                    not all(o <= v for o, v in zip(ovec, vec))

    def test_single_objective_reduces_to_min(self):
        points = self._points()
        front = zoo_pareto_front(points, ("error",))
        best = min(p.p_error for p in points)
        assert all(p.p_error == best for p in front)

    def test_unknown_objective_raises(self):
        with pytest.raises(ExplorationError, match="unknown zoo objective"):
            zoo_objective_vector(self._points()[0], ("speed",))

    def test_empty_input_is_empty_front(self):
        assert zoo_pareto_front([]) == []

    def test_point_is_a_frozen_record(self):
        point = self._points()[0]
        assert isinstance(point, ZooDesignPoint)
        with pytest.raises(Exception):
            point.p_error = 1.0
