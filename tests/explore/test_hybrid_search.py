"""Tests for the optimal hybrid search (vector DP vs brute force)."""

import pytest

from repro.circuits.power import PowerModel
from repro.core.exceptions import ExplorationError
from repro.explore.hybrid_search import (
    brute_force_hybrid,
    greedy_hybrid,
    optimal_hybrid,
)

ALL_CELLS = [f"LPAA {i}" for i in range(1, 8)]


class TestExactness:
    """The value-vector DP must equal brute force wherever the latter
    is feasible -- this is the module's core correctness claim."""

    @pytest.mark.parametrize(
        "p_a,p_b",
        [
            (0.1, 0.1),
            (0.9, 0.9),
            (0.5, 0.5),
            ([0.1, 0.2, 0.7, 0.9], [0.9, 0.5, 0.3, 0.1]),
        ],
    )
    def test_matches_brute_force_width4(self, p_a, p_b):
        opt = optimal_hybrid(ALL_CELLS, 4, p_a, p_b)
        ref = brute_force_hybrid(ALL_CELLS, 4, p_a, p_b)
        assert opt.exact
        assert opt.p_error == pytest.approx(ref.p_error, abs=1e-12)

    def test_matches_brute_force_mixed_point(self):
        p = [0.1, 0.1, 0.5, 0.9, 0.9]
        opt = optimal_hybrid(ALL_CELLS, 5, p, p)
        ref = brute_force_hybrid(ALL_CELLS, 5, p, p)
        assert opt.p_error == pytest.approx(ref.p_error, abs=1e-12)
        assert opt.chain == ref.chain

    def test_single_cell_candidate_is_trivial(self):
        opt = optimal_hybrid(["LPAA 3"], 6, 0.4, 0.4)
        assert opt.chain.is_uniform()
        assert opt.chain.width == 6


class TestKnownStructure:
    def test_low_probability_selects_lpaa7(self):
        opt = optimal_hybrid(ALL_CELLS, 6, 0.1, 0.1)
        assert set(opt.chain.cell_histogram()) == {"LPAA 7"}

    def test_high_probability_selects_lpaa1(self):
        opt = optimal_hybrid(ALL_CELLS, 6, 0.9, 0.9)
        assert set(opt.chain.cell_histogram()) == {"LPAA 1"}

    def test_split_point_selects_hybrid(self):
        # Low-probability LSBs, high-probability MSBs: the optimum mixes
        # cell types (the paper's hybrid motivation).
        p = [0.1] * 4 + [0.9] * 4
        opt = optimal_hybrid(ALL_CELLS, 8, p, p)
        assert len(opt.chain.cell_histogram()) >= 2
        # and beats every uniform choice.
        for name in ALL_CELLS:
            uniform = brute_force_hybrid([name], 8, p, p)
            assert opt.p_error <= uniform.p_error + 1e-12

    def test_wide_chain_is_fast_and_exact(self):
        opt = optimal_hybrid(ALL_CELLS, 32, 0.3, 0.3)
        assert opt.exact
        assert opt.chain.width == 32


class TestPowerTradeOff:
    def test_power_penalty_changes_choice(self):
        model = PowerModel()
        free = optimal_hybrid(ALL_CELLS, 6, 0.5, 0.5, power_model=model)
        # An extreme power weight should push towards LPAA 5 (0 nW).
        constrained = optimal_hybrid(
            ALL_CELLS, 6, 0.5, 0.5, power_weight=1.0, power_model=model
        )
        assert constrained.power_nw <= free.power_nw + 1e-9
        assert constrained.chain.cell_histogram() == {"LPAA 5": 6}

    def test_tiny_weight_preserves_error_optimum(self):
        free = optimal_hybrid(ALL_CELLS, 5, 0.2, 0.2)
        nearly_free = optimal_hybrid(ALL_CELLS, 5, 0.2, 0.2,
                                     power_weight=1e-12)
        assert nearly_free.p_error == pytest.approx(free.p_error, abs=1e-9)


class TestBaselines:
    def test_greedy_never_beats_optimal(self):
        for p in (0.1, 0.5, 0.9):
            opt = optimal_hybrid(ALL_CELLS, 6, p, p)
            greedy = greedy_hybrid(ALL_CELLS, 6, p, p)
            assert greedy.p_error >= opt.p_error - 1e-12

    def test_greedy_has_a_real_gap_somewhere(self):
        # Documented ablation: greedy is suboptimal at p = 0.1.
        opt = optimal_hybrid(ALL_CELLS, 5, 0.1, 0.1)
        greedy = greedy_hybrid(ALL_CELLS, 5, 0.1, 0.1)
        assert greedy.p_error > opt.p_error + 1e-6

    def test_brute_force_guard(self):
        with pytest.raises(ExplorationError, match="exceeds"):
            brute_force_hybrid(ALL_CELLS, 12, 0.5, 0.5)


class TestTradeoffCurve:
    def test_curve_spans_error_to_power_extremes(self):
        from repro.explore.hybrid_search import hybrid_tradeoff_curve

        model = PowerModel()
        curve = hybrid_tradeoff_curve(
            ALL_CELLS, 6, [0.0, 1e-5, 1e-3, 1.0],
            p_a=0.5, p_b=0.5, power_model=model,
        )
        assert curve  # at least the pure-error optimum
        # weight 0 end: the minimum-error design; weight 1 end: the
        # zero-power LPAA 5 chain.
        errors = [r.p_error for r in curve]
        powers = [r.power_nw for r in curve]
        assert errors == sorted(errors)           # error grows with weight
        assert powers == sorted(powers, reverse=True)  # power falls
        assert curve[-1].chain.cell_histogram() == {"LPAA 5": 6}

    def test_duplicate_chains_collapsed(self):
        from repro.explore.hybrid_search import hybrid_tradeoff_curve

        curve = hybrid_tradeoff_curve(
            ALL_CELLS, 4, [0.0, 1e-15], p_a=0.3, p_b=0.3,
        )
        assert len(curve) == 1  # negligible weights give the same chain

    def test_empty_weights_rejected(self):
        from repro.explore.hybrid_search import hybrid_tradeoff_curve

        with pytest.raises(ExplorationError):
            hybrid_tradeoff_curve(ALL_CELLS, 4, [])


class TestValidation:
    def test_bad_width(self):
        with pytest.raises(ExplorationError):
            optimal_hybrid(ALL_CELLS, 0, 0.5, 0.5)

    def test_no_cells(self):
        with pytest.raises(ExplorationError):
            optimal_hybrid([], 4, 0.5, 0.5)

    def test_negative_power_weight(self):
        with pytest.raises(ExplorationError):
            optimal_hybrid(ALL_CELLS, 4, power_weight=-1.0)
