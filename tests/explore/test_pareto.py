"""Unit tests for repro.explore.pareto."""

import pytest

from repro.core.exceptions import ExplorationError
from repro.explore.design_space import DesignPoint
from repro.explore.pareto import dominates, objective_vector, pareto_front


def _point(cell, error, power=None, area=None, width=8):
    return DesignPoint(
        cell_name=cell, width=width, p_input=0.5,
        p_error=error, power_nw=power, area_ge=area,
    )


class TestDominates:
    def test_strict_domination(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))

    def test_no_domination_between_trade_offs(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 3.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))


class TestParetoFront:
    def test_front_extraction(self):
        points = [
            _point("A", 0.1, power=100.0),
            _point("B", 0.2, power=50.0),
            _point("C", 0.3, power=40.0),
            _point("D", 0.25, power=90.0),   # dominated by B
            _point("E", 0.15, power=120.0),  # dominated by A
        ]
        front = pareto_front(points, ("error", "power"))
        assert [p.cell_name for p in front] == ["A", "B", "C"]

    def test_single_objective_reduces_to_min(self):
        points = [_point("A", 0.3), _point("B", 0.1), _point("C", 0.2)]
        front = pareto_front(points, ("error",))
        assert [p.cell_name for p in front] == ["B"]

    def test_empty_input(self):
        assert pareto_front([], ("error",)) == []

    def test_duplicate_points_both_kept(self):
        points = [_point("A", 0.1, power=10.0), _point("B", 0.1, power=10.0)]
        front = pareto_front(points, ("error", "power"))
        assert len(front) == 2

    def test_unknown_objective(self):
        with pytest.raises(ExplorationError, match="unknown objective"):
            pareto_front([_point("A", 0.1)], ("error", "speed"))

    def test_missing_data_raises(self):
        with pytest.raises(ExplorationError, match="lacks"):
            pareto_front([_point("A", 0.1)], ("error", "power"))

    def test_width_objective_prefers_wider(self):
        points = [
            _point("A", 0.1, width=4),
            _point("B", 0.1, width=8),
        ]
        front = pareto_front(points, ("error", "width"))
        assert [p.cell_name for p in front] == ["B"]


class TestObjectiveVector:
    def test_extraction(self):
        point = _point("A", 0.25, power=7.5, area=3.0)
        assert objective_vector(point, ("error", "power", "area")) == (
            0.25, 7.5, 3.0,
        )
