"""Unit tests for the calibrated power/area model (paper Table 2)."""

import pytest

from repro.circuits.power import (
    CellCost,
    PowerModel,
    gate_area_ge,
    published_characteristics,
)
from repro.circuits.netlist import Gate
from repro.core.adders import PAPER_LPAAS
from repro.core.exceptions import AnalysisError


@pytest.fixture(scope="module")
def model():
    return PowerModel()


class TestGateArea:
    def test_nand2_is_the_unit(self):
        assert gate_area_ge(Gate("NAND", ("a", "b"), "y")) == 1.0

    def test_wider_gates_cost_more(self):
        two = gate_area_ge(Gate("AND", ("a", "b"), "y"))
        three = gate_area_ge(Gate("AND", ("a", "b", "c"), "y"))
        assert three > two

    def test_buffers_are_free_wiring(self):
        assert gate_area_ge(Gate("BUF", ("a",), "y")) == 0.0


class TestCalibration:
    def test_scale_is_positive(self, model):
        assert model.scale_nw > 0

    def test_lpaa5_matches_published_zero(self, model):
        cost = model.cell_cost("LPAA 5")
        assert cost.area_ge == 0.0
        assert cost.power_nw == 0.0
        assert cost.published_power_nw == 0.0
        assert cost.published_area_ge == 0.0

    def test_model_powers_are_in_published_ballpark(self, model):
        # The model cannot reproduce transistor-level numbers exactly,
        # but calibrated estimates must land within the published order
        # of magnitude for the tabulated logic cells.
        for name in ("LPAA 1", "LPAA 2", "LPAA 3", "LPAA 4"):
            cost = model.cell_cost(name)
            assert cost.published_power_nw is not None
            ratio = cost.power_nw / cost.published_power_nw
            assert 0.2 < ratio < 5.0

    def test_unpublished_cells_get_model_estimates(self, model):
        cost = model.cell_cost("LPAA 6")
        assert cost.published_power_nw is None
        assert cost.power_nw > 0

    def test_bad_calibration_point(self):
        with pytest.raises(AnalysisError):
            PowerModel(calibration_point=0.0)


class TestCellCosts:
    def test_all_paper_cells_cheaper_than_accurate(self, model):
        accurate_area = model.area_ge("accurate")
        for cell in PAPER_LPAAS:
            assert model.area_ge(cell) < accurate_area

    def test_activity_depends_on_input_stats(self, model):
        busy = model.activity_cost("LPAA 1", 0.5, 0.5, 0.5)
        quiet = model.activity_cost("LPAA 1", 0.99, 0.99, 0.99)
        assert busy > quiet

    def test_power_scales_with_activity(self, model):
        activity = model.activity_cost("LPAA 2", 0.4, 0.4, 0.4)
        assert model.power_nw("LPAA 2", 0.4, 0.4, 0.4) == pytest.approx(
            model.scale_nw * activity
        )


class TestChainCosts:
    def test_chain_area_is_stage_sum(self, model):
        assert model.chain_area_ge("LPAA 3", 8) == pytest.approx(
            8 * model.area_ge("LPAA 3")
        )
        hybrid = ["LPAA 5", "LPAA 1"]
        assert model.chain_area_ge(hybrid) == pytest.approx(
            model.area_ge("LPAA 5") + model.area_ge("LPAA 1")
        )

    def test_chain_power_positive_and_monotone_in_width(self, model):
        p4 = model.chain_power_nw("LPAA 1", 4)
        p8 = model.chain_power_nw("LPAA 1", 8)
        assert 0 < p4 < p8

    def test_chain_power_uses_carry_profile(self, model):
        # At p_a=p_b=1.0 the LPAA 1 carry chain saturates to constant 1
        # (row (1,1,1) -> carry 1) and downstream stages see a constant
        # carry: their activity contribution must be below the uniform
        # assumption's.
        saturated = model.chain_power_nw("LPAA 1", 8, p_a=1.0, p_b=1.0,
                                         p_cin=1.0)
        uniform_per_cell = model.power_nw("LPAA 1", 1.0, 1.0, 0.5)
        assert saturated < 8 * uniform_per_cell + 1e-9

    def test_published_characteristics_lookup(self):
        char = published_characteristics("LPAA 1")
        assert char is not None and char.power_nw == 771.0
        assert published_characteristics("AccuFA") is None
