"""Tests for stuck-at fault injection and statistical fault analysis."""

import pytest

from repro.circuits.cells import synthesize_cell
from repro.circuits.faults import (
    StuckAtFault,
    enumerate_faults,
    exhaustive_test_set,
    fault_coverage,
    fault_detectability,
    faulted_truth_table,
)
from repro.core.exceptions import AnalysisError
from repro.core.truth_table import ACCURATE


class TestEnumeration:
    def test_two_faults_per_net(self):
        impl = synthesize_cell("accurate")
        faults = enumerate_faults(impl.netlist)
        nets = len(impl.netlist.inputs) + impl.netlist.num_gates()
        assert len(faults) == 2 * nets
        assert StuckAtFault("a", 0) in faults
        assert StuckAtFault("sum", 1) in faults

    def test_bad_value_rejected(self):
        with pytest.raises(AnalysisError):
            StuckAtFault("a", 2)

    def test_describe(self):
        assert StuckAtFault("n_cin", 1).describe() == "n_cin/SA1"


class TestFaultedTruthTable:
    def test_stuck_input_fixes_column(self):
        # a stuck at 1: rows with a=0 behave like their a=1 twins.
        table = faulted_truth_table(ACCURATE, StuckAtFault("a", 1))
        for idx in range(8):
            twin = idx | 0b100
            assert table.rows[idx] == ACCURATE.rows[twin]

    def test_stuck_output_pins_bit(self):
        table = faulted_truth_table(ACCURATE, StuckAtFault("sum", 0))
        assert all(s == 0 for s, _ in table.rows)
        # carries untouched
        assert [c for _, c in table.rows] == [c for _, c in ACCURATE.rows]

    def test_unknown_net_rejected(self):
        with pytest.raises(AnalysisError, match="does not exist"):
            faulted_truth_table(ACCURATE, StuckAtFault("ghost", 0))

    def test_fault_turns_accurate_into_approximate(self):
        table = faulted_truth_table(ACCURATE, StuckAtFault("cin", 0))
        assert not table.is_accurate()
        assert table.num_error_cases() == 4  # all cin=1 rows break


class TestDetectability:
    def test_healthy_baseline_matches_engine(self):
        impacts = fault_detectability("LPAA 1", width=4, p_a=0.3, p_b=0.3)
        from repro.core.recursive import error_probability

        healthy = float(error_probability("LPAA 1", 4, 0.3, 0.3, 0.5))
        assert all(
            fi.p_error_healthy == pytest.approx(healthy) for fi in impacts
        )

    def test_sorted_by_impact(self):
        impacts = fault_detectability("accurate", width=4)
        deltas = [abs(fi.delta) for fi in impacts]
        assert deltas == sorted(deltas, reverse=True)

    def test_faults_on_accurate_cell_only_increase_error(self):
        impacts = fault_detectability("accurate", width=5, p_a=0.4, p_b=0.6)
        assert all(fi.delta >= -1e-12 for fi in impacts)
        assert any(fi.delta > 0.1 for fi in impacts)  # some faults hurt

    def test_faults_can_reduce_apparent_error_of_approx_cell(self):
        # Counter-intuitive but real: a stuck net can push an
        # approximate cell back TOWARDS accurate behaviour at some
        # input distribution.
        impacts = fault_detectability("LPAA 2", width=4, p_a=0.1, p_b=0.1,
                                      p_cin=0.1)
        assert any(fi.delta < 0 for fi in impacts)

    def test_restricted_fault_list(self):
        impacts = fault_detectability(
            "LPAA 1", width=3, faults=[StuckAtFault("cin", 1)]
        )
        assert len(impacts) == 1
        assert impacts[0].fault.net == "cin"


class TestCoverage:
    def test_exhaustive_vectors_cover_all_detectable_faults(self):
        impl = synthesize_cell("accurate")
        vectors = exhaustive_test_set(impl.netlist)
        assert len(vectors) == 8
        coverage, undetected = fault_coverage(impl.netlist, vectors)
        # every stuck-at on an irredundant two-level network is testable
        assert coverage == pytest.approx(1.0)
        assert undetected == []

    def test_single_vector_misses_faults(self):
        impl = synthesize_cell("accurate")
        coverage, undetected = fault_coverage(
            impl.netlist, [{"a": 0, "b": 0, "cin": 0}]
        )
        assert coverage < 1.0
        assert undetected

    def test_requires_vectors(self):
        impl = synthesize_cell("LPAA 1")
        with pytest.raises(AnalysisError):
            fault_coverage(impl.netlist, [])

    def test_exhaustive_test_set_guard(self):
        from repro.circuits.ripple import build_ripple_netlist

        netlist = build_ripple_netlist("accurate", 9)  # 19 inputs
        with pytest.raises(AnalysisError, match="refused"):
            exhaustive_test_set(netlist)
