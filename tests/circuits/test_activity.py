"""Unit tests for signal probability / switching activity estimation."""

import numpy as np
import pytest

from repro.circuits.activity import (
    exact_probabilities,
    measured_activity,
    propagate_probabilities,
    switching_activity,
    total_activity,
)
from repro.circuits.cells import synthesize_cell
from repro.circuits.netlist import Netlist
from repro.core.exceptions import AnalysisError


def _tree_netlist() -> Netlist:
    """Fanout-free tree: independence propagation is exact here."""
    nl = Netlist("tree", inputs=["a", "b", "c", "d"])
    nl.add_gate("AND", ("a", "b"), "ab")
    nl.add_gate("OR", ("c", "d"), "cd")
    nl.add_gate("XOR", ("ab", "cd"), "y")
    nl.mark_output("y")
    return nl


def _reconvergent_netlist() -> Netlist:
    """a fans out and reconverges: independence is only approximate."""
    nl = Netlist("reconv", inputs=["a", "b"])
    nl.add_gate("NOT", ("a",), "na")
    nl.add_gate("AND", ("a", "b"), "t1")
    nl.add_gate("AND", ("na", "b"), "t2")
    nl.add_gate("OR", ("t1", "t2"), "y")  # == b, but looks like logic
    nl.mark_output("y")
    return nl


class TestPropagation:
    def test_gate_formulas(self):
        nl = Netlist("g", inputs=["a", "b"])
        for kind in ("AND", "OR", "NAND", "NOR", "XOR", "XNOR"):
            nl.add_gate(kind, ("a", "b"), f"y{kind}")
        nl.add_gate("NOT", ("a",), "yn")
        probs = propagate_probabilities(nl, {"a": 0.3, "b": 0.6})
        assert probs["yAND"] == pytest.approx(0.18)
        assert probs["yOR"] == pytest.approx(1 - 0.7 * 0.4)
        assert probs["yNAND"] == pytest.approx(1 - 0.18)
        assert probs["yNOR"] == pytest.approx(0.7 * 0.4)
        assert probs["yXOR"] == pytest.approx(0.3 * 0.4 + 0.6 * 0.7)
        assert probs["yXNOR"] == pytest.approx(1 - (0.3 * 0.4 + 0.6 * 0.7))
        assert probs["yn"] == pytest.approx(0.7)

    def test_exact_on_trees(self):
        nl = _tree_netlist()
        inputs = {"a": 0.2, "b": 0.9, "c": 0.4, "d": 0.7}
        fast = propagate_probabilities(nl, inputs)
        exact = exact_probabilities(nl, inputs)
        for net in fast:
            assert fast[net] == pytest.approx(exact[net], abs=1e-12)

    def test_reconvergence_error_detected(self):
        nl = _reconvergent_netlist()
        inputs = {"a": 0.5, "b": 0.5}
        fast = propagate_probabilities(nl, inputs)
        exact = exact_probabilities(nl, inputs)
        assert exact["y"] == pytest.approx(0.5)     # y == b exactly
        assert fast["y"] != pytest.approx(0.5)      # independence overshoots

    def test_missing_input_probability(self):
        with pytest.raises(AnalysisError, match="missing"):
            propagate_probabilities(_tree_netlist(), {"a": 0.5})

    def test_range_check(self):
        with pytest.raises(AnalysisError, match="out of range"):
            propagate_probabilities(
                _tree_netlist(), {"a": 1.5, "b": 0.5, "c": 0.5, "d": 0.5}
            )

    def test_exact_guard_on_wide_inputs(self):
        nl = Netlist("wide", inputs=[f"i{j}" for j in range(21)])
        nl.add_gate("OR", ("i0", "i1"), "y")
        nl.mark_output("y")
        with pytest.raises(AnalysisError, match="refused"):
            exact_probabilities(nl, {f"i{j}": 0.5 for j in range(21)})


class TestActivity:
    def test_alpha_peaks_at_half(self):
        alphas = switching_activity({"x": 0.5, "y": 0.1, "z": 1.0})
        assert alphas["x"] == pytest.approx(0.5)
        assert alphas["y"] == pytest.approx(0.18)
        assert alphas["z"] == 0.0

    def test_total_activity_excludes_inputs(self):
        nl = _tree_netlist()
        inputs = {"a": 0.5, "b": 0.5, "c": 0.5, "d": 0.5}
        total = total_activity(nl, inputs)
        probs = propagate_probabilities(nl, inputs)
        alphas = switching_activity(probs)
        expected = alphas["ab"] + alphas["cd"] + alphas["y"]
        assert total == pytest.approx(expected)

    def test_exact_flag_switches_estimator(self):
        nl = _reconvergent_netlist()
        inputs = {"a": 0.5, "b": 0.5}
        assert total_activity(nl, inputs, exact=True) != pytest.approx(
            total_activity(nl, inputs, exact=False)
        )

    def test_constant_net_never_toggles(self):
        cell = synthesize_cell("LPAA 5")  # pure wiring
        total = total_activity(cell.netlist, {"a": 1.0, "b": 1.0, "cin": 0.5})
        assert total == pytest.approx(0.0)


class TestMeasuredActivity:
    def test_toggle_rates_from_series(self):
        nl = Netlist("t", inputs=["a"])
        nl.add_gate("NOT", ("a",), "y")
        nl.mark_output("y")
        series = np.array([0, 1, 1, 0, 1])
        rates = measured_activity(nl, {"a": series})
        assert rates["a"] == pytest.approx(3 / 4)
        assert rates["y"] == rates["a"]  # inverter toggles with input

    def test_requires_time_series(self):
        nl = _tree_netlist()
        with pytest.raises(AnalysisError, match="length >= 2"):
            measured_activity(
                nl,
                {"a": np.array([1]), "b": np.array([0]),
                 "c": np.array([0]), "d": np.array([1])},
            )

    def test_random_series_converges_to_model(self):
        # For independent uniform inputs the measured toggle rate of a
        # tree's output approaches 2p(1-p) of its exact probability.
        nl = _tree_netlist()
        rng = np.random.default_rng(0)
        series = {k: rng.integers(0, 2, 40_000) for k in ("a", "b", "c", "d")}
        rates = measured_activity(nl, series)
        probs = exact_probabilities(nl, {k: 0.5 for k in ("a", "b", "c", "d")})
        expected = 2 * probs["y"] * (1 - probs["y"])
        assert rates["y"] == pytest.approx(expected, abs=0.02)
