"""Tests for structural CSA reduction trees."""

import numpy as np
import pytest

from repro.circuits.csa import (
    build_csa_tree_netlist,
    csa_netlist_add,
    csa_vs_rca_report,
)
from repro.circuits.netlist import Netlist
from repro.circuits.timing import critical_path
from repro.core.exceptions import ChainLengthError
from repro.multiop.compressor import multi_operand_add


class TestConstantDrivers:
    def test_zero_one_gates_evaluate(self):
        nl = Netlist("consts", inputs=["a"])
        nl.add_gate("ZERO", (), "z")
        nl.add_gate("ONE", (), "o")
        nl.add_gate("OR", ("a", "z"), "pass")
        nl.add_gate("AND", ("a", "o"), "also")
        nl.mark_output("pass")
        nl.mark_output("also")
        for a in (0, 1):
            out = nl.evaluate_outputs({"a": a})
            assert out["pass"] == a and out["also"] == a

    def test_constants_cost_nothing(self):
        from repro.circuits.power import gate_area_ge
        from repro.circuits.netlist import Gate

        assert gate_area_ge(Gate("ZERO", (), "z")) == 0.0
        nl = Netlist("c", inputs=[])
        nl.add_gate("ONE", (), "o")
        nl.mark_output("o")
        assert nl.depth() == 0
        assert critical_path(nl).delay == 0.0


class TestStructuralEquivalence:
    @pytest.mark.parametrize("count", [2, 3, 4, 5, 6])
    def test_matches_behavioural_model(self, count):
        netlist = build_csa_tree_netlist(
            count, 3, compress_cell="LPAA 6", final_adder="LPAA 1"
        )
        rng = np.random.default_rng(count)
        for _ in range(100):
            operands = [int(v) for v in rng.integers(0, 8, count)]
            got = csa_netlist_add(netlist, operands, 3)
            ref = multi_operand_add(
                operands, 3, compress_cell="LPAA 6", final_adder="LPAA 1"
            )
            assert got == ref

    def test_accurate_tree_sums_exactly(self):
        netlist = build_csa_tree_netlist(4, 4)
        assert csa_netlist_add(netlist, [15, 15, 15, 15], 4) == 60
        assert csa_netlist_add(netlist, [0, 0, 0, 0], 4) == 0

    def test_operand_count_enforced(self):
        netlist = build_csa_tree_netlist(3, 4)
        with pytest.raises(ChainLengthError, match="operands"):
            csa_netlist_add(netlist, [1, 2], 4)

    def test_operand_range_enforced(self):
        netlist = build_csa_tree_netlist(3, 4)
        with pytest.raises(ChainLengthError):
            csa_netlist_add(netlist, [16, 0, 0], 4)

    def test_validation(self):
        with pytest.raises(ChainLengthError):
            build_csa_tree_netlist(1, 4)
        with pytest.raises(ChainLengthError):
            build_csa_tree_netlist(3, 0)


class TestCsaVsRca:
    def test_report_shape_and_classic_result(self):
        report = csa_vs_rca_report(6, 8)
        assert set(report) == {"csa_tree", "rca_cascade"}
        # the textbook outcome: the tree is much faster...
        assert report["csa_tree"]["delay"] < report["rca_cascade"]["delay"] / 2
        # ...at comparable gate cost.
        assert report["csa_tree"]["gates"] < 1.5 * report["rca_cascade"]["gates"]

    def test_tree_delay_grows_slowly_with_operands(self):
        d4 = csa_vs_rca_report(4, 6)["csa_tree"]["delay"]
        d8 = csa_vs_rca_report(8, 6)["csa_tree"]["delay"]
        # logarithmic-ish growth: doubling operands adds far less than 2x
        assert d8 < 1.8 * d4
