"""Unit tests for structural ripple-adder composition."""

import itertools

import numpy as np
import pytest

from repro.circuits.ripple import (
    build_ripple_netlist,
    netlist_add,
    netlist_add_array,
    stage_gate_counts,
)
from repro.core.exceptions import NetlistError
from repro.simulation.functional import ripple_add


class TestStructuralEquivalence:
    def test_netlist_matches_behavioural_model(self, lpaa_cell):
        width = 3
        netlist = build_ripple_netlist(lpaa_cell, width)
        for a, b, cin in itertools.product(range(8), range(8), (0, 1)):
            assert netlist_add(netlist, a, b, cin, width) == ripple_add(
                lpaa_cell, a, b, cin, width
            )

    def test_hybrid_netlist(self):
        chain = ["LPAA 5", "accurate", "LPAA 1"]
        netlist = build_ripple_netlist(chain)
        for a, b in itertools.product(range(8), repeat=2):
            assert netlist_add(netlist, a, b, 0, 3) == ripple_add(chain, a, b, 0)

    def test_accurate_netlist_is_an_adder(self):
        netlist = build_ripple_netlist("accurate", 4)
        for a, b in [(0, 0), (5, 11), (15, 15), (9, 6)]:
            assert netlist_add(netlist, a, b, 1, 4) == a + b + 1


class TestArrayPath:
    def test_array_matches_scalar(self):
        netlist = build_ripple_netlist("LPAA 6", 4)
        rng = np.random.default_rng(3)
        a = rng.integers(0, 16, size=64)
        b = rng.integers(0, 16, size=64)
        got = netlist_add_array(netlist, a, b, 0, 4)
        for j in range(64):
            assert got[j] == netlist_add(netlist, int(a[j]), int(b[j]), 0, 4)


class TestStructure:
    def test_interface_nets(self):
        netlist = build_ripple_netlist("LPAA 2", 3)
        assert set(netlist.inputs) == {
            "a0", "a1", "a2", "b0", "b1", "b2", "cin",
        }
        assert set(netlist.outputs) == {"s0", "s1", "s2", "cout"}

    def test_gate_count_scales_with_width(self):
        small = build_ripple_netlist("LPAA 1", 2).num_gates()
        large = build_ripple_netlist("LPAA 1", 8).num_gates()
        # one BUF for cout plus width x cell gates.
        assert (large - 1) == 4 * (small - 1)

    def test_stage_gate_counts(self):
        counts = stage_gate_counts(["LPAA 5", "LPAA 1", "LPAA 5"])
        assert counts[0] == counts[2]
        assert counts[1] > counts[0]

    def test_operand_bounds_checked(self):
        netlist = build_ripple_netlist("LPAA 1", 2)
        with pytest.raises(NetlistError):
            netlist_add(netlist, 4, 0, 0, 2)

    def test_depth_grows_with_carry_chain(self):
        d2 = build_ripple_netlist("accurate", 2).depth()
        d6 = build_ripple_netlist("accurate", 6).depth()
        assert d6 > d2
