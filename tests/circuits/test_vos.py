"""Tests for the voltage-over-scaling error model."""

import numpy as np
import pytest

from repro.circuits.ripple import build_ripple_netlist
from repro.circuits.timing import arrival_times
from repro.circuits.vos import (
    VoltageModel,
    evaluate_with_timing,
    failing_outputs,
    vos_error_rate,
    vos_quality_energy_sweep,
)
from repro.core.exceptions import AnalysisError


@pytest.fixture(scope="module")
def adder8():
    return build_ripple_netlist("accurate", 8)


class TestVoltageModel:
    def test_nominal_is_unity(self):
        model = VoltageModel()
        assert model.delay_scale(1.0) == pytest.approx(1.0)
        assert model.power_scale(1.0) == pytest.approx(1.0)

    def test_lower_supply_is_slower_and_cheaper(self):
        model = VoltageModel()
        assert model.delay_scale(0.7) > 1.0
        assert model.power_scale(0.7) == pytest.approx(0.49)

    def test_delay_diverges_towards_threshold(self):
        model = VoltageModel()
        assert model.delay_scale(0.35) > model.delay_scale(0.5) > \
            model.delay_scale(0.8)

    def test_threshold_guard(self):
        with pytest.raises(AnalysisError):
            VoltageModel().delay_scale(0.3)
        with pytest.raises(AnalysisError):
            VoltageModel().power_scale(0.0)


class TestFailingOutputs:
    def test_nominal_clock_passes_everything(self, adder8):
        arrivals = arrival_times(adder8)
        critical = max(arrivals[net] for net in adder8.outputs)
        assert failing_outputs(adder8, critical, 1.0) == []

    def test_msbs_fail_first(self, adder8):
        # the carry chain means high sum bits arrive last: shrinking the
        # clock must kill them before the LSBs.
        arrivals = arrival_times(adder8)
        critical = max(arrivals[net] for net in adder8.outputs)
        stale = failing_outputs(adder8, 0.6 * critical, 1.0)
        assert "cout" in stale or "s7" in stale
        assert "s0" not in stale

    def test_scaling_is_equivalent_to_shorter_clock(self, adder8):
        arrivals = arrival_times(adder8)
        critical = max(arrivals[net] for net in adder8.outputs)
        assert failing_outputs(adder8, critical, 2.0) == \
            failing_outputs(adder8, critical / 2.0, 1.0)

    def test_validation(self, adder8):
        with pytest.raises(AnalysisError):
            failing_outputs(adder8, 0.0)
        with pytest.raises(AnalysisError):
            failing_outputs(adder8, 1.0, delay_scale=0.0)


class TestTimingEvaluation:
    def test_no_failures_matches_plain_evaluation(self, adder8):
        rng = np.random.default_rng(0)
        prev = {net: rng.integers(0, 2, 64) for net in adder8.inputs}
        curr = {net: rng.integers(0, 2, 64) for net in adder8.inputs}
        arrivals = arrival_times(adder8)
        critical = max(arrivals[net] for net in adder8.outputs)
        got = evaluate_with_timing(adder8, prev, curr, critical, 1.0)
        reference = adder8.evaluate_array(curr)
        for net in adder8.outputs:
            assert np.array_equal(got[net], reference[net])

    def test_failed_outputs_hold_previous_values(self, adder8):
        rng = np.random.default_rng(1)
        prev = {net: rng.integers(0, 2, 64) for net in adder8.inputs}
        curr = {net: rng.integers(0, 2, 64) for net in adder8.inputs}
        arrivals = arrival_times(adder8)
        critical = max(arrivals[net] for net in adder8.outputs)
        period = 0.5 * critical
        stale = set(failing_outputs(adder8, period, 1.0))
        assert stale
        got = evaluate_with_timing(adder8, prev, curr, period, 1.0)
        before = adder8.evaluate_array(prev)
        for net in stale:
            assert np.array_equal(got[net], before[net])


class TestSweep:
    def test_signature_curve(self, adder8):
        word = list(adder8.outputs)
        rows = vos_quality_energy_sweep(
            adder8, word, supplies=[1.0, 0.9, 0.7, 0.5],
            samples=4_000, seed=2,
        )
        # nominal: free of timing errors; power falls monotonically;
        # error rate is non-decreasing as the supply drops.
        assert rows[0]["error_rate"] == 0.0
        powers = [r["power_scale"] for r in rows]
        assert powers == sorted(powers, reverse=True)
        errors = [r["error_rate"] for r in rows]
        assert all(b >= a - 0.02 for a, b in zip(errors, errors[1:]))
        assert errors[-1] > 0.1  # deep scaling really hurts

    def test_sample_guard(self, adder8):
        with pytest.raises(AnalysisError):
            vos_error_rate(adder8, ["s0"], 10.0, 1.0, samples=0)
