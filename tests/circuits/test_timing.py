"""Unit tests for static timing analysis."""

import pytest

from repro.circuits.netlist import Netlist
from repro.circuits.timing import (
    arrival_times,
    cell_delay,
    critical_path,
    gear_delay_model,
    latency_error_tradeoff,
    ripple_delay,
)
from repro.core.exceptions import AnalysisError
from repro.gear.config import GeArConfig


def _chain_netlist(length: int) -> Netlist:
    nl = Netlist("chain", inputs=["a"])
    prev = "a"
    for i in range(length):
        prev = nl.add_gate("NOT", (prev,), f"n{i}")
    nl.mark_output(prev)
    return nl


class TestArrivalTimes:
    def test_inverter_chain(self):
        nl = _chain_netlist(4)
        arrivals = arrival_times(nl)
        assert arrivals["a"] == 0.0
        assert arrivals["n3"] == 4.0

    def test_input_arrival_overrides(self):
        nl = _chain_netlist(2)
        arrivals = arrival_times(nl, input_arrivals={"a": 5.0})
        assert arrivals["n1"] == 7.0

    def test_custom_gate_delays(self):
        nl = _chain_netlist(3)
        arrivals = arrival_times(nl, gate_delays={"NOT": 2.0})
        assert arrivals["n2"] == 6.0

    def test_missing_delay_kind(self):
        nl = _chain_netlist(1)
        with pytest.raises(AnalysisError, match="no delay"):
            arrival_times(nl, gate_delays={"AND": 1.0})

    def test_longest_path_wins(self):
        nl = Netlist("diamond", inputs=["a", "b"])
        nl.add_gate("NOT", ("a",), "slow1")
        nl.add_gate("NOT", ("slow1",), "slow2")
        nl.add_gate("AND", ("slow2", "b"), "y")
        nl.mark_output("y")
        arrivals = arrival_times(nl)
        assert arrivals["y"] == pytest.approx(2.0 + 1.5)


class TestCriticalPath:
    def test_path_trace(self):
        nl = _chain_netlist(3)
        cp = critical_path(nl)
        assert cp.delay == 3.0
        assert cp.endpoint == "n2"
        assert cp.nets == ("a", "n0", "n1", "n2")

    def test_requires_outputs(self):
        nl = Netlist("t", inputs=["a"])
        nl.add_gate("NOT", ("a",), "y")
        with pytest.raises(AnalysisError, match="no primary outputs"):
            critical_path(nl)


class TestCellDelays:
    def test_lpaa5_has_zero_carry_increment(self):
        # LPAA 5 is pure wiring: no carry chain contribution at all.
        delays = cell_delay("LPAA 5")
        assert delays["cin_to_cout"] == 0.0
        assert delays["sum"] == 0.0

    def test_accurate_cell_has_carry_increment(self):
        delays = cell_delay("accurate")
        assert delays["cin_to_cout"] > 0.0
        assert delays["sum"] > 0.0

    def test_fields_present(self, lpaa_cell):
        delays = cell_delay(lpaa_cell)
        assert set(delays) == {"sum", "cout", "cin_to_cout"}
        assert all(v >= 0.0 for v in delays.values())


class TestRippleAndGear:
    def test_ripple_delay_grows_linearly(self):
        d4 = ripple_delay("accurate", 4)
        d8 = ripple_delay("accurate", 8)
        d16 = ripple_delay("accurate", 16)
        assert d8 > d4 and d16 > d8
        # linear: equal increments per doubling segment
        assert (d16 - d8) == pytest.approx(2 * (d8 - d4), rel=0.2)

    def test_gear_beats_rca_latency(self):
        # GeAr(16, 4, 4): critical path is an 8-bit chain vs 16-bit RCA.
        config = GeArConfig(16, 4, 4)
        assert gear_delay_model(config) < ripple_delay("accurate", 16)
        assert gear_delay_model(config) == pytest.approx(
            ripple_delay("accurate", config.l)
        )

    def test_exact_gear_config_has_rca_delay(self):
        config = GeArConfig(8, 8, 0)
        assert gear_delay_model(config) == pytest.approx(
            ripple_delay("accurate", 8)
        )

    def test_tradeoff_rows(self):
        rows = latency_error_tradeoff(8)
        assert rows  # non-empty
        exact_rows = [r for r in rows if r["p_error"] == 0.0]
        assert exact_rows, "the exact config must appear"
        # delay must be sorted ascending (primary sort key)
        delays = [r["delay"] for r in rows]
        assert delays == sorted(delays)
        # faster configurations err at least as much as the exact one
        fastest = rows[0]
        assert fastest["delay"] <= exact_rows[0]["delay"]
        assert fastest["p_error"] >= 0.0
