"""Unit tests for cell synthesis (truth table -> verified netlist)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.cells import synthesize_cell, synthesis_report
from repro.core.truth_table import ACCURATE, FullAdderTruthTable


class TestPaperCells:
    def test_every_cell_row_matches(self, any_cell):
        cell = synthesize_cell(any_cell)
        for idx in range(8):
            a, b, cin = (idx >> 2) & 1, (idx >> 1) & 1, idx & 1
            assert cell.evaluate(a, b, cin) == any_cell.rows[idx]

    def test_lpaa5_degenerates_to_wiring(self):
        # LPAA 5's truth table is sum = b, cout = a: two buffers, zero
        # logic -- matching its published 0 GE / 0 nW in Table 2.
        cell = synthesize_cell("LPAA 5")
        assert cell.gate_count() == 2
        assert cell.netlist.gate_histogram() == {"BUF": 2}
        assert cell.depth() == 1

    def test_simpler_cells_use_fewer_gates(self):
        accurate = synthesize_cell(ACCURATE)
        for name in ("LPAA 1", "LPAA 3", "LPAA 4", "LPAA 5"):
            assert synthesize_cell(name).gate_count() < accurate.gate_count()

    def test_literal_cost_positive_for_logic_cells(self, lpaa_cell):
        cell = synthesize_cell(lpaa_cell)
        assert cell.literal_cost() >= 2


class TestReport:
    def test_report_fields(self):
        rows = synthesis_report(["LPAA 1", "LPAA 2"])
        assert [r["name"] for r in rows] == ["LPAA 1", "LPAA 2"]
        for row in rows:
            assert row["gates"] > 0
            assert row["depth"] >= 1
            assert row["literals"] > 0


@given(
    st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1)),
        min_size=8,
        max_size=8,
    )
)
@settings(max_examples=80, deadline=None)
def test_any_truth_table_synthesises_and_verifies(rows):
    """Synthesis must be correct for every possible cell behaviour,
    including constant outputs."""
    table = FullAdderTruthTable(rows, name="random")
    cell = synthesize_cell(table)  # raises SynthesisError on any mismatch
    # double check one row beyond the built-in verification
    assert cell.evaluate(1, 0, 1) == table.rows[5]
