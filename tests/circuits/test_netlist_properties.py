"""Property tests: the netlist evaluator against an independent
reference interpreter, over randomly generated DAGs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.netlist import Netlist

_BINARY = ("AND", "OR", "NAND", "NOR", "XOR", "XNOR")


def _reference_eval(kind, values):
    """Plain-Python semantics, written independently of the evaluator."""
    if kind == "ZERO":
        return 0
    if kind == "ONE":
        return 1
    if kind == "BUF":
        return values[0]
    if kind == "NOT":
        return 1 - values[0]
    conj = all(values)
    disj = any(values)
    parity = sum(values) % 2
    return {
        "AND": int(conj),
        "NAND": int(not conj),
        "OR": int(disj),
        "NOR": int(not disj),
        "XOR": parity,
        "XNOR": 1 - parity,
    }[kind]


@st.composite
def random_dags(draw):
    """A random small combinational netlist plus its gate recipe."""
    n_inputs = draw(st.integers(1, 4))
    inputs = [f"i{k}" for k in range(n_inputs)]
    n_gates = draw(st.integers(1, 12))
    recipe = []
    available = list(inputs)
    for g in range(n_gates):
        kind = draw(st.sampled_from(_BINARY + ("NOT", "BUF", "ZERO", "ONE")))
        if kind in ("ZERO", "ONE"):
            operands = ()
        elif kind in ("NOT", "BUF"):
            operands = (draw(st.sampled_from(available)),)
        else:
            arity = draw(st.integers(2, 3))
            operands = tuple(
                draw(st.sampled_from(available)) for _ in range(arity)
            )
            # gate inputs must not equal the output; guaranteed since
            # the output name is fresh.
        recipe.append((kind, operands, f"g{g}"))
        available.append(f"g{g}")
    return inputs, recipe


@given(dag=random_dags(), seed=st.integers(0, 2 ** 31))
@settings(max_examples=80, deadline=None)
def test_evaluator_matches_reference_interpreter(dag, seed):
    inputs, recipe = dag
    netlist = Netlist("random", inputs=inputs)
    for kind, operands, output in recipe:
        netlist.add_gate(kind, operands, output)
    netlist.mark_output(recipe[-1][2])

    rng = np.random.default_rng(seed)
    stimulus = {net: int(rng.integers(0, 2)) for net in inputs}
    got = netlist.evaluate(stimulus)

    reference = dict(stimulus)
    for kind, operands, output in recipe:
        reference[output] = _reference_eval(
            kind, [reference[o] for o in operands]
        )
    for net, value in reference.items():
        assert got[net] == value


@given(dag=random_dags())
@settings(max_examples=40, deadline=None)
def test_array_and_scalar_evaluation_agree(dag):
    inputs, recipe = dag
    netlist = Netlist("random", inputs=inputs)
    for kind, operands, output in recipe:
        netlist.add_gate(kind, operands, output)
    netlist.mark_output(recipe[-1][2])

    rng = np.random.default_rng(7)
    stimulus_arrays = {net: rng.integers(0, 2, 16) for net in inputs}
    batched = netlist.evaluate_array(stimulus_arrays)
    for j in range(16):
        single = netlist.evaluate(
            {net: int(arr[j]) for net, arr in stimulus_arrays.items()}
        )
        for net in netlist.outputs:
            assert int(np.broadcast_to(batched[net], (16,))[j]) == single[net]
