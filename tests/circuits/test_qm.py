"""Unit tests for the Quine-McCluskey minimiser."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.qm import (
    Implicant,
    cover_cost,
    evaluate_cover,
    minimize,
    minimum_cover,
    prime_implicants,
)
from repro.core.exceptions import SynthesisError


class TestImplicant:
    def test_covers(self):
        cube = Implicant(value=0b10, mask=0b01)  # var1=1, var0 free
        assert cube.covers(0b10) and cube.covers(0b11)
        assert not cube.covers(0b00)

    def test_literals_and_count(self):
        cube = Implicant(value=0b100, mask=0b010)
        lits = cube.literals(3)
        assert (0, True) in lits      # var0 complemented
        assert (2, False) in lits     # var2 plain
        assert cube.num_literals(3) == 2

    def test_expand(self):
        cube = Implicant(value=0b00, mask=0b11)
        assert cube.expand(2) == [0, 1, 2, 3]
        point = Implicant(value=5, mask=0)
        assert point.expand(3) == [5]

    def test_to_string(self):
        cube = Implicant(value=0b01, mask=0b00)
        assert cube.to_string("xy") == "x & ~y"
        assert Implicant(0, 0b11).to_string("xy") == "1"


class TestMinimize:
    def test_classic_textbook_example(self):
        # f(a,b,c,d) with minterms 4,8,10,11,12,15 -> known 4-term cover.
        cover = minimize([4, 8, 10, 11, 12, 15], 4)
        for m in range(16):
            expected = m in {4, 8, 10, 11, 12, 15}
            assert evaluate_cover(cover, m) == expected

    def test_constant_functions(self):
        assert minimize([], 3) == []
        cover = minimize(list(range(8)), 3)
        assert len(cover) == 1 and cover[0].num_literals(3) == 0

    def test_xor_does_not_reduce(self):
        # XOR has no adjacent minterms: cover == minterms.
        cover = minimize([1, 2], 2)
        assert len(cover) == 2
        assert all(term.num_literals(2) == 2 for term in cover)

    def test_single_variable_extraction(self):
        cover = minimize([1, 3, 5, 7], 3)  # f = var0
        assert len(cover) == 1
        assert cover[0].to_string("cba") == "c"

    def test_majority_function(self):
        # carry of the accurate FA: 3 two-literal terms.
        cover = minimize([3, 5, 6, 7], 3)
        terms, literals = cover_cost(cover, 3)
        assert terms == 3 and literals == 6

    def test_out_of_range_minterm(self):
        with pytest.raises(SynthesisError):
            minimize([8], 3)

    @pytest.mark.parametrize("n_vars", [2, 3])
    def test_every_function_is_reproduced(self, n_vars):
        # Exhaustive semantic check over ALL boolean functions.
        size = 1 << n_vars
        for bits in range(1 << size):
            minterms = [m for m in range(size) if (bits >> m) & 1]
            cover = minimize(minterms, n_vars)
            for m in range(size):
                assert evaluate_cover(cover, m) == ((bits >> m) & 1)


class TestPrimes:
    def test_primes_are_maximal(self):
        primes = prime_implicants([0, 1, 2, 3], 2)
        assert primes == [Implicant(value=0, mask=3)]

    def test_minimum_cover_subset_of_primes(self):
        minterms = [0, 1, 2, 5, 6, 7]
        primes = prime_implicants(minterms, 3)
        cover = minimum_cover(primes, minterms, 3)
        assert set(cover) <= set(primes)
        for m in minterms:
            assert any(term.covers(m) for term in cover)


@given(
    st.sets(st.integers(0, 15), max_size=16),
)
@settings(max_examples=100)
def test_minimized_cover_is_semantically_equal(minterms):
    cover = minimize(sorted(minterms), 4)
    for m in range(16):
        assert evaluate_cover(cover, m) == (m in minterms)


@given(st.sets(st.integers(0, 15), min_size=1, max_size=16))
@settings(max_examples=60)
def test_cover_is_no_larger_than_minterm_list(minterms):
    cover = minimize(sorted(minterms), 4)
    assert len(cover) <= len(minterms)
