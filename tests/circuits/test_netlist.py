"""Unit tests for the netlist IR."""

import numpy as np
import pytest

from repro.circuits.netlist import Gate, Netlist, fresh_namer
from repro.core.exceptions import NetlistError


def _half_adder() -> Netlist:
    nl = Netlist("half", inputs=["a", "b"])
    nl.add_gate("XOR", ("a", "b"), "s")
    nl.add_gate("AND", ("a", "b"), "c")
    nl.mark_output("s")
    nl.mark_output("c")
    return nl


class TestGate:
    def test_unknown_kind_rejected(self):
        with pytest.raises(NetlistError, match="unknown gate kind"):
            Gate(kind="MUX", inputs=("a", "b"), output="y")

    def test_arity_enforced(self):
        with pytest.raises(NetlistError):
            Gate(kind="NOT", inputs=("a", "b"), output="y")
        with pytest.raises(NetlistError):
            Gate(kind="AND", inputs=("a",), output="y")

    def test_self_loop_rejected(self):
        with pytest.raises(NetlistError, match="feeds back"):
            Gate(kind="AND", inputs=("a", "y"), output="y")


class TestConstruction:
    def test_duplicate_driver_rejected(self):
        nl = Netlist("t", inputs=["a", "b"])
        nl.add_gate("AND", ("a", "b"), "y")
        with pytest.raises(NetlistError, match="already driven"):
            nl.add_gate("OR", ("a", "b"), "y")

    def test_driving_an_input_rejected(self):
        nl = Netlist("t", inputs=["a", "b"])
        with pytest.raises(NetlistError, match="already driven"):
            nl.add_gate("NOT", ("b",), "a")

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(NetlistError, match="duplicate"):
            Netlist("t", inputs=["a", "a"])

    def test_duplicate_output_declaration_rejected(self):
        nl = _half_adder()
        with pytest.raises(NetlistError, match="twice"):
            nl.mark_output("s")


class TestValidation:
    def test_missing_driver_detected(self):
        nl = Netlist("t", inputs=["a"])
        nl.add_gate("AND", ("a", "ghost"), "y")
        nl.mark_output("y")
        with pytest.raises(NetlistError, match="no driver"):
            nl.topological_order()

    def test_cycle_detected(self):
        nl = Netlist("t", inputs=["a"])
        nl.add_gate("AND", ("a", "q"), "p")
        nl.add_gate("OR", ("a", "p"), "q")
        with pytest.raises(NetlistError, match="cycle"):
            nl.topological_order()

    def test_undriven_output_detected(self):
        nl = Netlist("t", inputs=["a"])
        nl.mark_output("nowhere")
        with pytest.raises(NetlistError, match="undriven"):
            nl.topological_order()


class TestEvaluation:
    def test_half_adder_truth(self):
        nl = _half_adder()
        for a in (0, 1):
            for b in (0, 1):
                out = nl.evaluate_outputs({"a": a, "b": b})
                assert out == {"s": a ^ b, "c": a & b}

    def test_all_gate_kinds(self):
        nl = Netlist("kinds", inputs=["a", "b"])
        for kind in ("AND", "OR", "NAND", "NOR", "XOR", "XNOR"):
            nl.add_gate(kind, ("a", "b"), f"y_{kind}")
        nl.add_gate("NOT", ("a",), "y_NOT")
        nl.add_gate("BUF", ("b",), "y_BUF")
        out = nl.evaluate({"a": 1, "b": 0})
        assert out["y_AND"] == 0 and out["y_OR"] == 1
        assert out["y_NAND"] == 1 and out["y_NOR"] == 0
        assert out["y_XOR"] == 1 and out["y_XNOR"] == 0
        assert out["y_NOT"] == 0 and out["y_BUF"] == 0

    def test_multi_input_gates(self):
        nl = Netlist("wide", inputs=["a", "b", "c"])
        nl.add_gate("AND", ("a", "b", "c"), "y")
        nl.mark_output("y")
        assert nl.evaluate_outputs({"a": 1, "b": 1, "c": 1})["y"] == 1
        assert nl.evaluate_outputs({"a": 1, "b": 0, "c": 1})["y"] == 0

    def test_array_evaluation(self):
        nl = _half_adder()
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        values = nl.evaluate_array({"a": a, "b": b})
        assert np.array_equal(values["s"], a ^ b)
        assert np.array_equal(values["c"], a & b)

    def test_missing_stimulus_rejected(self):
        nl = _half_adder()
        with pytest.raises(NetlistError, match="missing stimulus"):
            nl.evaluate({"a": 1})

    def test_non_binary_stimulus_rejected(self):
        nl = _half_adder()
        with pytest.raises(NetlistError, match="0/1"):
            nl.evaluate({"a": 2, "b": 0})


class TestIntrospection:
    def test_histogram_and_counts(self):
        nl = _half_adder()
        assert nl.gate_histogram() == {"XOR": 1, "AND": 1}
        assert nl.num_gates() == 2

    def test_depth(self):
        nl = Netlist("chain", inputs=["a"])
        nl.add_gate("NOT", ("a",), "n1")
        nl.add_gate("NOT", ("n1",), "n2")
        nl.add_gate("NOT", ("n2",), "n3")
        nl.mark_output("n3")
        assert nl.depth() == 3

    def test_nets_lists_everything(self):
        nl = _half_adder()
        assert set(nl.nets()) == {"a", "b", "s", "c"}

    def test_fresh_namer(self):
        namer = fresh_namer("w")
        assert namer() == "w0"
        assert namer() == "w1"

    def test_repr(self):
        assert "gates=2" in repr(_half_adder())
