"""Golden constants copied verbatim from the paper's tables.

Keeping them in one module (rather than scattered through tests) makes
the provenance obvious: every number below appears printed in the DAC'17
paper and is used to pin the reproduction.
"""

from __future__ import annotations

# --- Table 4: 4-bit LPAA 1 worked example ---------------------------------
TABLE4_P_A = [0.9, 0.5, 0.4, 0.8]
TABLE4_P_B = [0.8, 0.7, 0.6, 0.9]
TABLE4_P_CIN = 0.5
#: Stage-indexed (P(~C_next & Succ), P(C_next & Succ)) for stages 0..2.
TABLE4_CARRY_ROWS = [
    (0.02, 0.85),
    (0.1305, 0.7295),
    (0.2064, 0.58574),
]
TABLE4_P_SUCC = 0.738476

# --- Table 7: analytical P(E), p = 0.1, all LPAAs, N = 2..12 ---------------
#: {width: [LPAA1 .. LPAA7]} -- the "Analyt." columns.
TABLE7_ANALYTICAL = {
    2: [0.30780, 0.9271, 0.95707, 0.31851, 0.27000, 0.1143, 0.01980],
    4: [0.53090, 0.99468, 0.99763, 0.54033, 0.40950, 0.13533, 0.02333],
    6: [0.68240, 0.99961, 0.99986, 0.68999, 0.52170, 0.15266, 0.02685],
    8: [0.78498, 0.99997, 0.99999, 0.79092, 0.61258, 0.16953, 0.03035],
    10: [0.85443, 0.99999, 0.99999, 0.85899, 0.68618, 0.18605, 0.03385],
    12: [0.90145, 0.99999, 0.99999, 0.90490, 0.74581, 0.20225, 0.03733],
}
TABLE7_P = 0.1

# --- Table 2: published cell characteristics -------------------------------
#: (error cases, power nW, area GE) for LPAA 1..5 from Gupta et al. [7].
TABLE2_ROWS = {
    "LPAA 1": (2, 771.0, 4.23),
    "LPAA 2": (2, 294.0, 1.94),
    "LPAA 3": (3, 198.0, 1.59),
    "LPAA 4": (3, 416.0, 1.76),
    "LPAA 5": (4, 0.0, 0.0),
}

# --- Table 3: inclusion-exclusion cost rows the paper prints exactly -------
#: {stages: (terms, multiplications, additions, memory units)} -- only the
#: rows the paper prints as exact integers (it switches to rounded
#: scientific notation from k=20, and the k=16 multiplications entry is a
#: typo in the paper; see tests/baselines/test_operation_counter.py).
TABLE3_EXACT_ROWS = {
    4: (15, 28, 14, 31),
    8: (255, 1016, 254, 511),
    12: (4095, 24564, 4094, 8191),
}

# --- Table 8: resource utilisation of the proposed method ------------------
TABLE8_EQUAL = {"multipliers": 32, "adders": 21, "memory_units": 3}
TABLE8_VARYING = {"multipliers": 48, "adders": 21}


def table8_varying_memory(width: int) -> int:
    """Table 8's "No. of bits + 1" memory-unit entry."""
    return width + 1
