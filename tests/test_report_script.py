"""Smoke test for scripts/make_report.py (the one-command reproduction)."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def test_report_script_produces_all_sections(tmp_path):
    out = tmp_path / "report.md"
    result = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "make_report.py"), str(out)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    text = out.read_text()
    for heading in (
        "Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 7",
        "Fig. 5(a)", "Fig. 5(b)", "Fig. 5(c)",
        "Generic error equations", "Named LLAA variants",
    ):
        assert heading in text, f"missing section: {heading}"
    # spot-check two golden numbers
    assert "0.738476" in text            # Table 4 P(Succ)
    assert "0.16953" in text             # Table 7 LPAA 6 N=8
