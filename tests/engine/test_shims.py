"""Deprecated entry points: still correct, but warn and point at the engine."""

from __future__ import annotations

import pytest

from repro.engine import AnalysisRequest, run
from repro.gear.config import GeArConfig


def _deprecated_call(func, *args, **kwargs):
    with pytest.warns(DeprecationWarning, match="use repro.engine"):
        return func(*args, **kwargs)


class TestChainShims:
    def test_error_probability(self):
        from repro.core.recursive import error_probability

        old = _deprecated_call(error_probability, "LPAA 1", 6, 0.3, 0.7)
        assert float(old) == pytest.approx(
            run("LPAA 1", 6, 0.3, 0.7).p_error, abs=1e-15
        )

    def test_success_probability(self):
        from repro.core.recursive import success_probability

        old = _deprecated_call(success_probability, "LPAA 2", 5)
        assert float(old) == pytest.approx(
            run("LPAA 2", 5).p_success, abs=1e-15
        )

    def test_error_batch(self):
        import numpy as np

        from repro.core.vectorized import error_batch

        pa = np.array([[0.2] * 4, [0.8] * 4])
        old = _deprecated_call(error_batch, "LPAA 3", 4, pa, 0.5)
        for row, p in zip(old, (0.2, 0.8)):
            assert float(row) == pytest.approx(
                run("LPAA 3", 4, p, 0.5).p_error, abs=1e-12
            )

    def test_error_by_width(self):
        from repro.core.vectorized import error_by_width
        from repro.engine import error_curves

        old = _deprecated_call(error_by_width, "LPAA 1", 5, 0.4)
        new = error_curves("LPAA 1", 5, 0.4)
        assert list(old) == pytest.approx(list(new), abs=1e-15)

    def test_correlated_error_probability(self):
        from repro.core.correlated import (
            JointBitDistribution,
            error_probability_correlated,
        )

        joints = [JointBitDistribution.identical(0.5) for _ in range(4)]
        old = _deprecated_call(error_probability_correlated, "LPAA 1", joints)
        assert float(old) == pytest.approx(
            run("LPAA 1", 4, joints=joints).p_error, abs=1e-15
        )


class TestBaselineAndGearShims:
    def test_inclusion_exclusion(self):
        from repro.baselines.inclusion_exclusion import (
            inclusion_exclusion_error_probability,
        )

        old = _deprecated_call(
            inclusion_exclusion_error_probability, "LPAA 1", 5
        )
        assert float(old.p_error) == pytest.approx(
            run("LPAA 1", 5, engine="inclusion-exclusion").p_error, abs=1e-15
        )

    def test_gear_error_probability(self):
        from repro.gear.analysis import gear_error_probability

        config = GeArConfig(8, 2, 2)
        old = _deprecated_call(gear_error_probability, config)
        request = AnalysisRequest.for_gear(config)
        assert float(old) == pytest.approx(
            run(request, engine="gear-dp").p_error, abs=1e-15
        )


class TestRouterShim:
    def test_resilient_error_probability(self):
        from repro.runtime.router import resilient_error_probability

        routed = _deprecated_call(resilient_error_probability, "LPAA 1", 4)
        assert routed.decision.engine == "exhaustive"
        assert routed.result.p_error == pytest.approx(
            run("LPAA 1", 4, simulate=True).p_error, abs=1e-15
        )


class TestInternalCallersAreClean:
    """The library itself must not trip its own deprecation shims.

    Mirrors the CI job that runs the suite with
    ``-W error::DeprecationWarning:repro``: every internal caller has to
    go through ``repro.engine``, so user-facing paths raise no warnings.
    """

    @pytest.mark.filterwarnings("error::DeprecationWarning")
    def test_engine_run_paths(self):
        run("LPAA 1", 4)
        run("LPAA 1", 4, engine="exhaustive")
        run("LPAA 1", 4, simulate=True)
        run(AnalysisRequest.for_gear(GeArConfig(8, 2, 2)))

    @pytest.mark.filterwarnings("error::DeprecationWarning")
    def test_cli_analyze_path(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--cell", "LPAA 1", "--width", "4"]) == 0
        capsys.readouterr()

    @pytest.mark.filterwarnings("error::DeprecationWarning")
    def test_design_space_and_variants(self):
        from repro.explore.design_space import sweep_design_space
        from repro.gear.variants import variant_comparison

        assert sweep_design_space(["LPAA 1"], [4], [0.5])
        assert variant_comparison(8)
