"""The segment cache tier: memory LRU, disk store, prefill, wiring.

Covers the :mod:`repro.engine.segcache` mechanics (tier interplay,
counters, persistence, corruption tolerance, worker-delta merging) and
the executor/parallel integration: an installed segment cache routes
eligible chain requests through the exact ``transfer`` engine, traced
requests keep the stage-by-stage recursion, and parallel fan-outs fold
worker hit/miss deltas back into the parent's counters.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path

import pytest

from repro.core.recursive import analyze_chain, resolve_chain
from repro.engine import executor
from repro.engine.request import AnalysisRequest
from repro.engine.segcache import (
    DiskSegmentStore,
    SegmentCache,
    configure_segment_cache,
    disable_segment_cache,
    ensure_worker_cache,
    export_config,
    get_segment_cache,
)
from repro.obs import metrics as _metrics

WIDTH = 32
TABLES = resolve_chain("LPAA 2", WIDTH)
P_A = [0.3] * WIDTH
P_B = [0.7] * WIDTH
P_CIN = 0.25
EXACT = float(analyze_chain(
    "LPAA 2", WIDTH,
    [Fraction(p) for p in P_A], [Fraction(p) for p in P_B],
    Fraction(P_CIN),
).p_success)


@pytest.fixture(autouse=True)
def _no_process_segcache():
    """Tests must not leak a process-wide segment cache into each other."""
    disable_segment_cache()
    yield
    disable_segment_cache()


@pytest.fixture()
def metrics_registry():
    registry = _metrics.MetricsRegistry()
    _metrics.enable()
    try:
        with _metrics.use_registry(registry):
            yield registry
    finally:
        _metrics.disable()


class TestMemoryTier:
    def test_cold_then_warm_bit_identical(self):
        cache = SegmentCache(store=None)
        cold = cache.success_probability(TABLES, P_A, P_B, P_CIN)
        warm = cache.success_probability(TABLES, P_A, P_B, P_CIN)
        assert cold == warm == EXACT
        stats = cache.stats()["memory"]
        assert stats["hits"] > 0 and stats["misses"] > 0
        assert stats["size"] == stats["misses"]  # every miss was stored

    def test_zero_capacity_disables_memoisation(self):
        cache = SegmentCache(store=None, memory_entries=0)
        assert cache.success_probability(TABLES, P_A, P_B, P_CIN) == EXACT
        stats = cache.stats()["memory"]
        assert stats["hits"] == 0 and stats["size"] == 0

    def test_lru_eviction_bounds_size(self):
        cache = SegmentCache(store=None, memory_entries=4)
        cache.success_probability(TABLES, P_A, P_B, P_CIN)
        assert cache.stats()["memory"]["size"] <= 4

    def test_counters_reach_obs_registry(self, metrics_registry):
        cache = SegmentCache(store=None)
        cache.success_probability(TABLES, P_A, P_B, P_CIN)
        counters = metrics_registry.snapshot()["counters"]
        assert counters["engine.cache.segment.misses"] > 0
        gauges = metrics_registry.snapshot()["gauges"]
        assert gauges["engine.cache.segment.size"] > 0

    def test_merge_stats_validates_and_accumulates(self):
        cache = SegmentCache(store=None)
        cache.merge_stats(3, 4)
        stats = cache.stats()["memory"]
        assert stats["hits"] == 3 and stats["misses"] == 4
        with pytest.raises(ValueError):
            cache.merge_stats(-1, 0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SegmentCache(store=None, memory_entries=-1)
        with pytest.raises(ValueError):
            SegmentCache(store=None, min_disk_span=0)


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        first = SegmentCache(DiskSegmentStore(tmp_path))
        assert first.success_probability(TABLES, P_A, P_B, P_CIN) == EXACT
        assert first.stats()["disk"]["writes"] > 0

        second = SegmentCache(DiskSegmentStore(tmp_path))
        assert second.success_probability(TABLES, P_A, P_B, P_CIN) == EXACT
        disk = second.stats()["disk"]
        assert disk["hits"] > 0 and disk["writes"] == 0

    def test_min_disk_span_gates_writes(self, tmp_path):
        cache = SegmentCache(DiskSegmentStore(tmp_path), min_disk_span=128)
        cache.success_probability(TABLES, P_A, P_B, P_CIN)
        assert cache.stats()["disk"]["writes"] == 0  # widest span is 32

    def test_prefill_restores_memory_tier(self, tmp_path):
        SegmentCache(DiskSegmentStore(tmp_path)).success_probability(
            TABLES, P_A, P_B, P_CIN)
        warmed = SegmentCache(DiskSegmentStore(tmp_path))
        loaded = warmed.prefill()
        assert loaded > 0
        assert warmed.stats()["memory"]["size"] == loaded
        hits_from_prefill = warmed.stats()["disk"]["hits"]
        assert warmed.success_probability(TABLES, P_A, P_B, P_CIN) == EXACT
        # The prefilled nodes were re-indexed under their native memory
        # keys: the composed segments now hit memory, so evaluation adds
        # no disk reads beyond prefill's own.
        assert warmed.stats()["disk"]["hits"] == hits_from_prefill
        assert warmed.stats()["memory"]["hits"] > 0

    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = SegmentCache(DiskSegmentStore(tmp_path))
        cache.success_probability(TABLES, P_A, P_B, P_CIN)
        entries = sorted(Path(tmp_path).glob("*/*.json"))
        assert entries
        entries[0].write_text("{not json", encoding="utf-8")
        fresh = SegmentCache(DiskSegmentStore(tmp_path))
        assert fresh.success_probability(TABLES, P_A, P_B, P_CIN) == EXACT
        assert fresh.stats()["disk"]["corrupt"] >= 0  # tolerated either way

    def test_rejects_foreign_store_format(self, tmp_path):
        store = DiskSegmentStore(tmp_path)
        cache = SegmentCache(store)
        cache.success_probability(TABLES, P_A, P_B, P_CIN)
        entry = sorted(Path(tmp_path).glob("*/*.json"))[0]
        doc = json.loads(entry.read_text(encoding="utf-8"))
        doc["format"] = "something-else-v9"
        entry.write_text(json.dumps(doc), encoding="utf-8")
        key = entry.stem
        assert DiskSegmentStore(tmp_path).get(key) is None

    def test_list_keys_newest_first(self, tmp_path):
        store = DiskSegmentStore(tmp_path)
        SegmentCache(store).success_probability(TABLES, P_A, P_B, P_CIN)
        keys = store.list_keys(newest_first=True)
        assert keys and len(keys) == len(set(keys))
        assert set(keys) == set(store.list_keys())


class TestProcessWideConfig:
    def test_configure_and_disable(self, tmp_path):
        cache = configure_segment_cache(tmp_path, memory_entries=128)
        assert get_segment_cache() is cache
        disable_segment_cache()
        assert get_segment_cache() is None

    def test_export_and_worker_install_round_trip(self, tmp_path):
        cache = configure_segment_cache(
            tmp_path, memory_entries=256, min_disk_span=16)
        doc = export_config(cache)
        disable_segment_cache()
        ensure_worker_cache(doc)
        worker = get_segment_cache()
        assert worker is not None
        assert worker.min_disk_span == 16
        assert str(worker.store.root) == str(cache.store.root)

    def test_ensure_worker_cache_is_idempotent(self, tmp_path):
        installed = configure_segment_cache(tmp_path)
        ensure_worker_cache({"path": None, "memory_entries": 8})
        assert get_segment_cache() is installed  # did not replace
        assert export_config(None) is None
        disable_segment_cache()
        ensure_worker_cache(None)
        assert get_segment_cache() is None


class TestExecutorRouting:
    def test_run_prefers_transfer_when_installed(self, tmp_path):
        request = AnalysisRequest.chain("LPAA 2", WIDTH, 0.3, 0.7, P_CIN)
        assert executor.run(request=request).engine == "recursive"
        configure_segment_cache(tmp_path)
        routed = executor.run(request=request)
        assert routed.engine == "transfer"
        assert routed.exact
        assert routed.p_success == EXACT

    def test_forced_transfer_works_without_install(self):
        request = AnalysisRequest.chain("LPAA 2", WIDTH, 0.3, 0.7, P_CIN)
        result = executor.run(request=request, engine="transfer")
        assert result.engine == "transfer"
        assert result.p_success == EXACT

    def test_keep_trace_stays_on_recursion(self, tmp_path):
        configure_segment_cache(tmp_path)
        traced = executor.run(request=AnalysisRequest.chain(
            "LPAA 2", 8, 0.3, 0.7, P_CIN, keep_trace=True))
        assert traced.engine == "recursive"
        assert traced.trace  # per-stage Table 4 records intact

    def test_run_batch_groups_through_segment_tier(
        self, tmp_path, metrics_registry
    ):
        configure_segment_cache(tmp_path)
        requests = [AnalysisRequest.chain("LPAA 2", WIDTH, 0.3, 0.7, p)
                    for p in (0.1, 0.25, 0.5, 0.9)]
        results = executor.run_batch(requests)
        assert [r.engine for r in results] == ["transfer"] * 4
        assert results[1].p_success == EXACT
        counters = metrics_registry.snapshot()["counters"]
        assert counters["engine.batch.segment_points"] == 4

    def test_run_batch_falls_back_to_vectorized(self):
        requests = [AnalysisRequest.chain("LPAA 2", WIDTH, 0.3, 0.7, p)
                    for p in (0.1, 0.5)]
        results = executor.run_batch(requests)
        assert [r.engine for r in results] == ["vectorized"] * 2

    def test_transfer_registered_with_higher_base_cost(self):
        from repro.engine.registry import REGISTRY
        info = REGISTRY.get("transfer")
        recursive = REGISTRY.get("recursive")
        # Short chains stay on the recursion; long ones cross over.
        assert info.cost_estimate(8, None) > recursive.cost_estimate(8, None)
        assert info.cost_estimate(256, None) < recursive.cost_estimate(
            256, None)
        assert info.deterministic and info.parallel_safe
        assert not info.supports_trace


class TestParallelMerge:
    def test_worker_deltas_fold_into_parent(self, tmp_path, metrics_registry):
        configure_segment_cache(tmp_path)
        sweep = [AnalysisRequest.chain("LPAA 2", WIDTH, 0.3, 0.7, i / 31)
                 for i in range(32)]
        parallel = executor.run_batch(sweep, parallelism=2)
        assert all(r is not None and r.engine == "transfer"
                   for r in parallel)
        serial = executor.run_batch(sweep)
        assert [r.p_success for r in parallel] == \
            [r.p_success for r in serial]
        stats = get_segment_cache().stats()["memory"]
        assert stats["hits"] > 0
        counters = metrics_registry.snapshot()["counters"]
        assert counters["engine.cache.segment.hits"] > 0
