"""AnalysisRequest/AnalysisResult: normalisation, validation, hashing."""

from __future__ import annotations

import pytest

from repro.core.exceptions import AnalysisError, ProbabilityError
from repro.core.hybrid import HybridChain
from repro.engine import (
    KIND_CHAIN,
    KIND_GEAR,
    KIND_MULTIOP,
    METRIC_P_ERROR,
    METRIC_P_SUCCESS,
    AnalysisRequest,
)
from repro.gear.config import GeArConfig


class TestChainNormalisation:
    def test_name_and_width(self):
        request = AnalysisRequest.chain("LPAA 1", 4)
        assert request.kind == KIND_CHAIN
        assert request.width == 4
        assert request.cell_names == ("LPAA 1",) * 4
        assert request.p_a == (0.5,) * 4
        assert request.p_b == (0.5,) * 4
        assert request.p_cin == 0.5

    def test_scalar_probability_broadcasts(self):
        request = AnalysisRequest.chain("LPAA 2", 3, p_a=0.1, p_b=[0.2, 0.3, 0.4])
        assert request.p_a == (0.1, 0.1, 0.1)
        assert request.p_b == (0.2, 0.3, 0.4)

    def test_hybrid_chain_unwraps(self):
        chain = HybridChain(["LPAA 1", "LPAA 2", "AccuFA"])
        request = AnalysisRequest.chain(chain)
        assert request.cell_names == ("LPAA 1", "LPAA 2", "AccuFA")

    def test_per_stage_cell_list(self):
        request = AnalysisRequest.chain(["LPAA 1", "AccuFA"])
        assert request.width == 2

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ProbabilityError):
            AnalysisRequest.chain("LPAA 1", 4, p_a=1.5)

    def test_wrong_length_vector_rejected(self):
        with pytest.raises(ProbabilityError):
            AnalysisRequest.chain("LPAA 1", 4, p_b=[0.5, 0.5])

    def test_joint_count_must_match_width(self):
        with pytest.raises(AnalysisError):
            AnalysisRequest.chain("LPAA 1", 3, joints=[object(), object()])


class TestMetrics:
    def test_default_metric(self):
        assert AnalysisRequest.chain("LPAA 1", 2).metrics == (METRIC_P_ERROR,)

    def test_unknown_metric_rejected(self):
        with pytest.raises(AnalysisError):
            AnalysisRequest.chain("LPAA 1", 2, metrics=["p_banana"])

    def test_metrics_deduplicated(self):
        request = AnalysisRequest.chain(
            "LPAA 1", 2,
            metrics=[METRIC_P_ERROR, METRIC_P_SUCCESS, METRIC_P_ERROR],
        )
        assert request.metrics.count(METRIC_P_ERROR) == 1


class TestHashability:
    def test_equal_requests_hash_equal(self):
        a = AnalysisRequest.chain("LPAA 3", 5, p_a=0.25)
        b = AnalysisRequest.chain("LPAA 3", 5, p_a=0.25)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_distinct_probability_distinguishes(self):
        a = AnalysisRequest.chain("LPAA 3", 5, p_a=0.25)
        b = AnalysisRequest.chain("LPAA 3", 5, p_a=0.26)
        assert a != b


class TestOtherKinds:
    def test_gear_request(self):
        request = AnalysisRequest.for_gear(GeArConfig(8, 2, 2))
        assert request.kind == KIND_GEAR
        assert request.width == 8

    def test_multiop_request(self):
        request = AnalysisRequest.for_multiop([[0.5] * 4] * 3, 4)
        assert request.kind == KIND_MULTIOP
        assert request.width == 4


class TestResult:
    def test_value_accessor(self):
        from repro.engine import run

        result = run("LPAA 1", 4)
        assert result.value(METRIC_P_ERROR) == pytest.approx(result.p_error)
        assert result.value(METRIC_P_SUCCESS) == pytest.approx(
            1.0 - result.p_error
        )
