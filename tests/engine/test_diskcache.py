"""Persistent result cache: keying, two tiers, corruption, concurrency."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro import engine
from repro.engine.diskcache import (
    STORE_FORMAT,
    DiskResultStore,
    ResultCache,
    cacheable_result,
    payload_from_result,
    request_key,
    result_from_payload,
)
from repro.engine.request import AnalysisRequest


@pytest.fixture(autouse=True)
def _no_process_cache():
    """Each test opts in explicitly; never leak the global cache."""
    engine.disable_result_cache()
    yield
    engine.disable_result_cache()


def _request(width=4, p_a=0.3, cell="LPAA 1", **kwargs):
    return AnalysisRequest.chain(cell, width, p_a=p_a, **kwargs)


def _payload(width=4, p_a=0.3):
    return payload_from_result(engine.run(_request(width, p_a)))


class TestRequestKey:
    def test_stable_across_equivalent_requests(self):
        assert request_key(_request()) == request_key(_request())

    def test_quantisation_merges_float_noise(self):
        base = request_key(_request(p_a=0.3))
        jitter = request_key(_request(p_a=0.3 + 1e-15))
        assert base == jitter

    def test_distinct_questions_get_distinct_keys(self):
        keys = {
            request_key(_request(p_a=0.3)),
            request_key(_request(p_a=0.4)),
            request_key(_request(width=5)),
            request_key(_request(cell="LPAA 2")),
        }
        assert len(keys) == 4

    def test_uncacheable_shapes_have_no_key(self):
        assert request_key(_request(keep_trace=True)) is None
        gear_like = AnalysisRequest.chain("LPAA 1", 4, joints=((0.25,) * 4,) * 4)
        assert request_key(gear_like) is None

    def test_check_masking_is_part_of_the_identity(self):
        masked = request_key(_request(check_masking=True))
        unmasked = request_key(_request(check_masking=False))
        assert masked != unmasked


class TestCacheability:
    def test_analytical_result_is_cacheable(self):
        assert cacheable_result(engine.run(_request()))

    def test_montecarlo_result_is_not(self):
        result = engine.run(_request(), engine="montecarlo",
                            samples=500, seed=1)
        assert not cacheable_result(result)

    def test_payload_roundtrip_is_bit_identical(self):
        result = engine.run(_request(width=6, p_a=0.37))
        restored = result_from_payload(
            json.loads(json.dumps(payload_from_result(result)))
        )
        assert restored.p_error == result.p_error
        assert restored.p_success == result.p_success
        assert restored.engine == result.engine
        assert restored.cell_names == result.cell_names


class TestDiskResultStore:
    def test_miss_then_hit(self, tmp_path):
        store = DiskResultStore(tmp_path)
        key = request_key(_request())
        assert store.get(key) is None
        store.put(key, _payload())
        assert store.get(key)["p_error"] == _payload()["p_error"]
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)

    def test_restart_survival_bit_identical(self, tmp_path):
        request = _request(width=8, p_a=0.42)
        key = request_key(request)
        result = engine.run(request)
        DiskResultStore(tmp_path).put(key, payload_from_result(result))
        # A brand-new store over the same directory = process restart.
        reborn = DiskResultStore(tmp_path)
        replayed = result_from_payload(reborn.get(key))
        assert replayed.p_error == result.p_error
        assert reborn.stats().hits == 1

    @pytest.mark.parametrize("damage", [
        "truncate", "garbage", "bad-json", "wrong-format", "wrong-key",
        "payload-missing-field", "payload-out-of-range", "payload-not-dict",
    ])
    def test_corrupt_entry_reads_as_miss_and_is_rewritten(
        self, tmp_path, damage
    ):
        store = DiskResultStore(tmp_path)
        key = request_key(_request())
        payload = _payload()
        store.put(key, payload)
        path = store.entry_path(key)
        doc = json.loads(path.read_text())
        if damage == "truncate":
            path.write_text(path.read_text()[: len(path.read_text()) // 2])
        elif damage == "garbage":
            path.write_bytes(b"\x00\xffnot json at all\x80")
        elif damage == "bad-json":
            path.write_text('{"format": ')
        elif damage == "wrong-format":
            doc["format"] = "sealpaa-diskcache-v999"
            path.write_text(json.dumps(doc))
        elif damage == "wrong-key":
            doc["key"] = "0" * 64
            path.write_text(json.dumps(doc))
        elif damage == "payload-missing-field":
            del doc["payload"]["p_error"]
            path.write_text(json.dumps(doc))
        elif damage == "payload-out-of-range":
            doc["payload"]["p_error"] = 3.5
            path.write_text(json.dumps(doc))
        elif damage == "payload-not-dict":
            doc["payload"] = [1, 2, 3]
            path.write_text(json.dumps(doc))

        assert store.get(key) is None, damage
        stats = store.stats()
        assert stats.corrupt == 1
        assert not path.exists(), "corrupt entry must be deleted"
        # The slot is rewritable and healthy again afterwards.
        store.put(key, payload)
        assert store.get(key) == payload

    def test_unreadable_entry_is_a_plain_miss_not_corrupt(self, tmp_path):
        store = DiskResultStore(tmp_path)
        assert store.get("ab" + "0" * 62) is None
        stats = store.stats()
        assert stats.misses == 1 and stats.corrupt == 0

    def test_prune_evicts_oldest_beyond_limit(self, tmp_path):
        store = DiskResultStore(tmp_path, max_entries=3)
        payload = _payload()
        keys = []
        for width in range(2, 8):
            key = request_key(_request(width=width))
            keys.append(key)
            store.put(key, payload)
            mtime = 1_000_000_000 + width
            os.utime(store.entry_path(key), (mtime, mtime))
        assert store.prune() == 3
        assert store.entry_count() == 3
        # The newest three survive.
        assert all(store.entry_path(k).exists() for k in keys[3:])
        assert store.stats().evictions == 3

    def test_clear_removes_all_entries(self, tmp_path):
        store = DiskResultStore(tmp_path)
        store.put(request_key(_request()), _payload())
        store.clear()
        assert store.entry_count() == 0


class TestResultCacheTiers:
    def test_memory_tier_promotes_disk_hits(self, tmp_path):
        request = _request()
        result = engine.run(request)
        writer = ResultCache(DiskResultStore(tmp_path))
        assert writer.put_result(request, result)
        # Fresh cache over the same store: first read comes from disk,
        # the second from the promoted in-memory entry.
        reader = ResultCache(DiskResultStore(tmp_path))
        assert reader.get_result(request).p_error == result.p_error
        assert reader.get_result(request).p_error == result.p_error
        stats = reader.stats()
        assert stats["disk"]["hits"] == 1
        assert stats["memory"]["hits"] == 1

    def test_memory_lru_evicts_oldest(self):
        cache = ResultCache(store=None, memory_entries=2)
        requests = [_request(width=w) for w in (2, 3, 4)]
        for request in requests:
            cache.put_result(request, engine.run(request))
        assert cache.get_result(requests[0]) is None  # evicted
        assert cache.get_result(requests[2]) is not None

    def test_noncacheable_results_are_refused(self):
        cache = ResultCache(store=None)
        request = _request()
        mc = engine.run(request, engine="montecarlo", samples=500, seed=1)
        assert not cache.put_result(request, mc)
        assert cache.get_result(request) is None


class TestExecutorIntegration:
    def test_run_replays_from_disk_across_restart(self, tmp_path):
        request = _request(width=10, p_a=0.21)
        engine.configure_result_cache(tmp_path)
        first = engine.run(request)
        # Simulate a restart: new process-wide cache, same directory.
        engine.configure_result_cache(tmp_path)
        replayed = engine.run(request)
        assert replayed.p_error == first.p_error
        assert engine.get_result_cache().stats()["disk"]["hits"] == 1

    def test_run_batch_mixes_cached_and_fresh(self, tmp_path):
        requests = [_request(width=w, p_a=0.3) for w in (3, 4, 5, 6)]
        engine.configure_result_cache(tmp_path)
        baseline = engine.run_batch(requests[:2])
        engine.configure_result_cache(tmp_path)  # drop the memory tier
        mixed = engine.run_batch(requests)
        assert [r.p_error for r in mixed[:2]] == [r.p_error for r in baseline]
        disk = engine.get_result_cache().stats()["disk"]
        # The two replayed answers hit; only the two fresh ones write.
        assert disk["hits"] == 2 and disk["writes"] == 2

    def test_forced_engine_and_simulation_bypass_the_cache(self, tmp_path):
        engine.configure_result_cache(tmp_path)
        request = _request()
        engine.run(request, engine="recursive")
        engine.run(request, engine="montecarlo", samples=500, seed=1)
        stats = engine.get_result_cache().stats()
        assert stats["disk"]["writes"] == 0


# -- concurrent multi-process writers ----------------------------------------

_N_KEYS = 8


def _hammer_store(root: str, worker: int) -> int:
    """One writer process: repeatedly rewrite a shared key set."""
    from repro.engine.diskcache import DiskResultStore

    store = DiskResultStore(root)
    payload = {
        "p_error": 0.25, "p_success": 0.75, "engine": "recursive",
        "exact": True, "width": 4, "kind": "chain",
        "cell_names": ["LPAA 1"] * 4, "is_upper_bound": False,
        "worker": worker,
    }
    wrote = 0
    for round_no in range(20):
        for i in range(_N_KEYS):
            key = ("%02x" % i) + ("%02x" % worker) * 31
            store.put(key, dict(payload, round=round_no))
            wrote += 1
            store.get(("%02x" % i) + ("%02x" % ((worker + 1) % 4)) * 31)
    return wrote


class TestConcurrentWriters:
    def test_parallel_writers_never_corrupt_the_store(self, tmp_path):
        workers = 4
        with multiprocessing.Pool(workers) as pool:
            wrote = pool.starmap(
                _hammer_store, [(str(tmp_path), w) for w in range(workers)]
            )
        assert sum(wrote) == workers * 20 * _N_KEYS
        # Every surviving entry parses and validates; nothing is torn.
        store = DiskResultStore(tmp_path)
        seen = 0
        for path in sorted(tmp_path.glob("??/*.json")):
            key = path.stem
            payload = store.get(key)
            assert payload is not None, f"torn entry at {path}"
            assert payload["p_error"] == 0.25
            seen += 1
        assert seen == store.entry_count() == workers * _N_KEYS
        assert store.stats().corrupt == 0
