"""Stage-matrix cache: keying, LRU eviction, quantisation, stats."""

from __future__ import annotations

import pytest

from repro.core.adders import PAPER_LPAAS
from repro.core.truth_table import ACCURATE
from repro.engine.cache import (
    GLOBAL_CACHE,
    StageMatrixCache,
    StageTransition,
    analysis_matrices,
    cache_stats,
    clear_cache,
    stage_transition,
)


@pytest.fixture(autouse=True)
def _fresh_global_cache():
    clear_cache()
    yield
    clear_cache()


class TestStageTransition:
    def test_matches_direct_recursion(self):
        # Accurate cell at p=0.5: carry-out of a successful stage is
        # correct by construction, and success from (0.5, 0.5) is 1.
        t = stage_transition(ACCURATE, 0.5, 0.5)
        assert isinstance(t, StageTransition)
        assert t.success(0.5, 0.5) == pytest.approx(1.0)

    def test_apply_conserves_mass_for_accurate(self):
        t = stage_transition(ACCURATE, 0.3, 0.8)
        c0, c1 = t.apply(1.0, 0.0)
        assert 0.0 <= c0 <= 1.0 and 0.0 <= c1 <= 1.0
        assert c0 + c1 == pytest.approx(1.0)  # exact cell never fails

    def test_matrix_and_final_views(self):
        t = stage_transition(PAPER_LPAAS[0], 0.25, 0.75)
        (t00, t01), (t10, t11) = t.matrix
        assert (t00, t01, t10, t11) == (t.t00, t.t01, t.t10, t.t11)
        assert t.final == (t.l0, t.l1)


class TestCaching:
    def test_hit_on_identical_query(self):
        stage_transition(PAPER_LPAAS[0], 0.5, 0.5)
        before = cache_stats()
        stage_transition(PAPER_LPAAS[0], 0.5, 0.5)
        after = cache_stats()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_quantisation_merges_sub_tolerance_probabilities(self):
        # Differences below the 1e-12 quantum map to one cache entry.
        stage_transition(PAPER_LPAAS[1], 0.5, 0.5)
        before = cache_stats()
        stage_transition(PAPER_LPAAS[1], 0.5 + 1e-14, 0.5)
        assert cache_stats().hits == before.hits + 1

    def test_same_rows_share_entries_across_table_objects(self):
        # The key is the truth-table fingerprint, not object identity.
        clone = type(ACCURATE)(ACCURATE.rows, name="clone-of-accurate")
        stage_transition(ACCURATE, 0.5, 0.5)
        before = cache_stats()
        stage_transition(clone, 0.5, 0.5)
        assert cache_stats().hits == before.hits + 1

    def test_distinct_probabilities_miss(self):
        stage_transition(PAPER_LPAAS[2], 0.1, 0.9)
        before = cache_stats()
        stage_transition(PAPER_LPAAS[2], 0.2, 0.9)
        after = cache_stats()
        assert after.misses == before.misses + 1


class TestLRUBehaviour:
    def test_eviction_at_capacity(self):
        cache = StageMatrixCache(capacity=2)
        cache.stage_transition(ACCURATE, 0.1, 0.1)
        cache.stage_transition(ACCURATE, 0.2, 0.2)
        cache.stage_transition(ACCURATE, 0.3, 0.3)  # evicts (0.1, 0.1)
        assert cache.stats().size == 2
        before = cache.stats()
        cache.stage_transition(ACCURATE, 0.1, 0.1)  # re-computed
        assert cache.stats().misses == before.misses + 1

    def test_recent_use_protects_from_eviction(self):
        cache = StageMatrixCache(capacity=2)
        cache.stage_transition(ACCURATE, 0.1, 0.1)
        cache.stage_transition(ACCURATE, 0.2, 0.2)
        cache.stage_transition(ACCURATE, 0.1, 0.1)  # touch: now MRU
        cache.stage_transition(ACCURATE, 0.3, 0.3)  # evicts (0.2, 0.2)
        before = cache.stats()
        cache.stage_transition(ACCURATE, 0.1, 0.1)
        assert cache.stats().hits == before.hits + 1

    def test_capacity_zero_disables_memoisation(self):
        cache = StageMatrixCache(capacity=0)
        a = cache.stage_transition(ACCURATE, 0.5, 0.5)
        b = cache.stage_transition(ACCURATE, 0.5, 0.5)
        assert a.success(0.5, 0.5) == b.success(0.5, 0.5)
        assert cache.stats().hits == 0
        assert cache.stats().size == 0

    def test_clear_resets_entries_and_stats(self):
        cache = StageMatrixCache(capacity=8)
        cache.stage_transition(ACCURATE, 0.5, 0.5)
        cache.stage_transition(ACCURATE, 0.5, 0.5)
        cache.clear()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)

    def test_configure_shrinks_existing_population(self):
        cache = StageMatrixCache(capacity=8)
        for k in range(6):
            cache.stage_transition(ACCURATE, k / 10.0, 0.5)
        cache.configure(capacity=3)
        assert cache.stats().size <= 3

    def test_hit_rate(self):
        cache = StageMatrixCache(capacity=8)
        assert cache.stats().hit_rate == 0.0
        cache.stage_transition(ACCURATE, 0.5, 0.5)
        cache.stage_transition(ACCURATE, 0.5, 0.5)
        cache.stage_transition(ACCURATE, 0.5, 0.5)
        assert cache.stats().hit_rate == pytest.approx(2.0 / 3.0)


class TestDerivedArtifacts:
    def test_analysis_matrices_memoised_per_table(self):
        first = analysis_matrices(PAPER_LPAAS[3])
        second = analysis_matrices(PAPER_LPAAS[3])
        assert first is second

    def test_global_cache_is_module_singleton(self):
        stage_transition(ACCURATE, 0.5, 0.5)
        assert GLOBAL_CACHE.stats().misses >= 1


class TestStatMerging:
    def test_merge_stats_accumulates(self):
        cache = StageMatrixCache(capacity=8)
        cache.stage_transition(ACCURATE, 0.5, 0.5)  # one miss
        cache.merge_stats(hits=10, misses=3)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (10, 4)

    def test_merge_stats_rejects_negative_deltas(self):
        cache = StageMatrixCache(capacity=8)
        with pytest.raises(ValueError, match=">= 0"):
            cache.merge_stats(hits=-1)

    def test_counters_consistent_under_concurrent_lookups(self):
        # Regression: hit/miss read-modify-writes must happen under the
        # LRU lock, or concurrent lookups (threaded callers, the pool's
        # parent-side merge) lose increments.
        import threading

        cache = StageMatrixCache(capacity=64)
        points = [(i / 40.0, 0.5) for i in range(20)]
        workers = 8
        rounds = 30
        barrier = threading.Barrier(workers)

        def hammer():
            barrier.wait()
            for _ in range(rounds):
                for p_a, p_b in points:
                    cache.stage_transition(ACCURATE, p_a, p_b)
                cache.merge_stats(hits=1)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        lookups = workers * rounds * len(points)
        assert stats.hits + stats.misses == lookups + workers * rounds
        assert stats.misses >= len(points)
