"""The zoo engines, end to end.

Cross-validates every windowed zoo member against weighted enumeration
for every request kind (bit-identical at dyadic probabilities), pins
the ``plan_zoo_engine`` degradation ladder, and exercises block
requests through ``run()``/``run_batch()``, the two-way
``supports_block`` capability gate, the persistent result cache and
the Monte-Carlo fallback.
"""

import math

import pytest

from repro import engine
from repro.core.adder_zoo import named_zoo, parse_adder
from repro.core.exceptions import AnalysisError
from repro.engine.diskcache import (
    cacheable_result,
    payload_from_result,
    request_key,
    result_from_payload,
)
from repro.engine.request import AnalysisRequest, DISTRIBUTION_KINDS
from repro.engine.zoo import (
    ZOO_EXACT_MAX_WIDTH,
    ZOO_MRED_EXACT_MAX_WIDTH,
    ZOO_TRUNCATED_MAX_WIDTH,
    zoo_exact_width_limit,
)
from repro.runtime.budget import RunBudget
from repro.runtime.router import plan_zoo_engine

WIDTH = 8
ALL_KINDS = ("chain",) + DISTRIBUTION_KINDS


def _windowed(width):
    return [a for a in named_zoo(width) if a.representation == "windowed"]


class TestCrossValidationMatrix:
    """The acceptance bar: every zoo member x every kind == oracle."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_every_windowed_member_matches_enumeration(self, kind):
        for adder in _windowed(WIDTH):
            request = AnalysisRequest.zoo(adder, kind=kind)
            fast = engine.run(request, engine="zoo-dp")
            oracle = engine.run(request, engine="zoo-exhaustive")
            assert fast.p_error == oracle.p_error, adder.config_string
            if kind == "chain":
                continue
            if kind == "mred":
                assert math.isclose(fast.mred, oracle.mred,
                                    rel_tol=1e-12), adder.config_string
            else:
                value = getattr(fast, kind if kind != "error_distribution"
                                else "med")
                ref = getattr(oracle, kind if kind != "error_distribution"
                              else "med")
                assert value == ref, adder.config_string
            if kind == "error_distribution":
                assert fast.distribution == oracle.distribution

    def test_every_chain_member_matches_enumeration(self):
        for adder in named_zoo(WIDTH):
            if adder.representation != "chain":
                continue
            request = AnalysisRequest.zoo(adder)
            routed = engine.run(request)
            oracle = engine.run(request, engine="exhaustive")
            assert routed.p_error == oracle.p_error, adder.config_string

    def test_routed_default_equals_forced_dp(self):
        for config in ("aca1:8:4", "gda:8:2:2", "axppa-lf:8:2"):
            request = AnalysisRequest.zoo(config, kind="med")
            assert engine.run(request).med == \
                engine.run(request, engine="zoo-dp").med


class TestRouterLadder:
    def test_chain_and_wce_always_get_the_exact_dp(self):
        wide = f"aca1:{ZOO_TRUNCATED_MAX_WIDTH + 8}:4"
        for kind in ("chain", "wce"):
            decision = plan_zoo_engine(AnalysisRequest.zoo(wide, kind=kind))
            assert decision.engine == "zoo-dp"
            assert decision.degraded_from is None

    def test_pmf_kinds_inside_the_guard_get_the_exact_dp(self):
        decision = plan_zoo_engine(
            AnalysisRequest.zoo("aca1:8:4", kind="med"))
        assert decision.engine == "zoo-dp"

    def test_pmf_kinds_past_the_guard_degrade_to_truncated(self):
        wide = f"aca1:{ZOO_EXACT_MAX_WIDTH + 4}:4"
        decision = plan_zoo_engine(AnalysisRequest.zoo(wide, kind="med"))
        assert decision.engine == "zoo-dp-truncated"
        assert decision.degraded_from == "zoo-dp"

    def test_mred_skips_the_truncated_rung(self):
        wide = f"aca1:{ZOO_MRED_EXACT_MAX_WIDTH + 4}:4"
        decision = plan_zoo_engine(AnalysisRequest.zoo(wide, kind="mred"))
        assert decision.engine == "zoo-mc"

    def test_past_the_truncated_guard_samples(self):
        wide = f"aca1:{ZOO_TRUNCATED_MAX_WIDTH + 8}:4"
        decision = plan_zoo_engine(AnalysisRequest.zoo(wide, kind="med"))
        assert decision.engine == "zoo-mc"

    def test_tight_deadline_drops_to_sampling(self):
        decision = plan_zoo_engine(
            AnalysisRequest.zoo("aca1:16:4", kind="med"),
            budget=RunBudget(deadline_s=1e-9),
        )
        assert decision.engine == "zoo-mc"

    def test_exact_width_limits(self):
        assert zoo_exact_width_limit("chain") is None
        assert zoo_exact_width_limit("wce") is None
        assert zoo_exact_width_limit("mred") == ZOO_MRED_EXACT_MAX_WIDTH
        assert zoo_exact_width_limit("med") == ZOO_EXACT_MAX_WIDTH


class TestCapabilityGate:
    """supports_block cuts both ways."""

    def test_block_requests_never_reach_chain_engines(self):
        request = AnalysisRequest.zoo("aca1:8:4")
        for name in ("recursive", "vectorized", "exhaustive",
                     "montecarlo", "distribution-dp"):
            info = engine.REGISTRY.get(name)
            assert not info.accepts(request), name

    def test_chain_requests_never_reach_zoo_engines(self):
        request = AnalysisRequest.chain("LPAA 1", 8)
        for name in ("zoo-dp", "zoo-dp-truncated", "zoo-exhaustive",
                     "zoo-mc"):
            info = engine.REGISTRY.get(name)
            assert not info.accepts(request), name

    def test_forcing_a_chain_engine_on_a_block_request_raises(self):
        with pytest.raises(AnalysisError):
            engine.run(AnalysisRequest.zoo("aca1:8:4"), engine="recursive")


class TestExecutorIntegration:
    def test_run_batch_mixes_block_chain_and_cell_requests(self):
        requests = [
            AnalysisRequest.zoo("aca1:8:4"),
            AnalysisRequest.chain("LPAA 1", 8),
            AnalysisRequest.zoo("loa:8:4"),
            AnalysisRequest.zoo("gda:8:2:2", kind="med"),
        ]
        results = engine.run_batch(requests)
        assert results[0].p_error == 0.125
        assert results[1].p_error == pytest.approx(
            engine.run("LPAA 1", 8).p_error)
        assert results[2].p_error == 0.68359375
        assert results[3].med == 1.5

    def test_simulate_forces_the_sampling_backend(self):
        result = engine.run(AnalysisRequest.zoo("aca1:8:4"),
                            simulate=True, samples=20_000, seed=7)
        assert result.engine == "zoo-mc"
        assert result.p_error == pytest.approx(0.125, abs=0.02)

    def test_zoo_mc_is_seeded_and_converges(self):
        request = AnalysisRequest.zoo("gda:8:2:2", kind="med")
        a = engine.run(request, engine="zoo-mc", samples=50_000, seed=3)
        b = engine.run(request, engine="zoo-mc", samples=50_000, seed=3)
        assert a.p_error == b.p_error and a.med == b.med
        assert a.med == pytest.approx(1.5, rel=0.1)
        assert a.interval is not None and not a.exact

    def test_truncated_engine_refuses_mred(self):
        with pytest.raises(AnalysisError):
            engine.run(AnalysisRequest.zoo("aca1:8:4", kind="mred"),
                       engine="zoo-dp-truncated")

    def test_zoo_requests_use_the_result_cache(self, tmp_path):
        engine.configure_result_cache(tmp_path / "cache")
        try:
            request = AnalysisRequest.zoo("aca1:8:4", kind="med")
            first = engine.run(request)
            second = engine.run(request)
            assert first.med == second.med == 7.5
            key = request_key(request)
            assert key is not None
        finally:
            engine.disable_result_cache()

    def test_block_request_key_is_stable_and_distinct(self):
        a = request_key(AnalysisRequest.zoo("aca1:8:4"))
        b = request_key(AnalysisRequest.zoo("aca1:8:4"))
        c = request_key(AnalysisRequest.zoo("aca2:8:4"))
        d = request_key(AnalysisRequest.zoo("aca1:8:4", kind="med"))
        assert a == b
        assert a != c and a != d

    def test_block_results_round_trip_the_cache_payload(self):
        request = AnalysisRequest.zoo("gda:8:2:2", kind="wce")
        result = engine.run(request, engine="zoo-dp")
        assert cacheable_result(result)
        payload = payload_from_result(result)
        restored = result_from_payload(payload)
        assert restored.p_error == result.p_error
        assert restored.wce == result.wce


class TestRequestConstruction:
    def test_zoo_rejects_unknown_kind(self):
        with pytest.raises(AnalysisError):
            AnalysisRequest.zoo("aca1:8:4", kind="gear")

    def test_zoo_width_comes_from_the_block(self):
        request = AnalysisRequest.zoo("aca1:12:4")
        assert request.width == 12
        assert request.cell_names == ("aca1:12:4",)

    def test_chain_members_become_plain_chain_requests(self):
        request = AnalysisRequest.zoo("loa:8:4")
        assert request.block is None
        assert request.cells is not None and len(request.cells) == 8

    def test_windowed_members_carry_the_block(self):
        request = AnalysisRequest.zoo("axppa-ks:8:2")
        assert request.block is not None
        assert request.p_cin == 0.0
