"""Cross-engine parity: every backend answers the same question identically.

Property test over random chain configurations (hybrid cells, per-bit
probabilities, width <= 8): the recursive, vectorized,
inclusion-exclusion and exhaustive engines must agree to 1e-12 through
the unified ``repro.engine.run`` entry point, and Monte-Carlo must land
inside its own Wilson interval around that exact value.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import AnalysisRequest, run

CELL_NAMES = ["AccuFA"] + [f"LPAA {i}" for i in range(1, 8)]

probabilities = st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False)


@st.composite
def chain_requests(draw, max_width=8):
    width = draw(st.integers(min_value=1, max_value=max_width))
    cells = draw(st.lists(st.sampled_from(CELL_NAMES),
                          min_size=width, max_size=width))
    p_a = draw(st.lists(probabilities, min_size=width, max_size=width))
    p_b = draw(st.lists(probabilities, min_size=width, max_size=width))
    p_cin = draw(probabilities)
    return AnalysisRequest.chain(cells, None, p_a, p_b, p_cin)


class TestExactEngineParity:
    @given(request=chain_requests())
    @settings(max_examples=30, deadline=None)
    def test_all_exact_engines_agree(self, request):
        reference = run(request=request, engine="recursive")
        assert 0.0 <= reference.p_error <= 1.0
        # The three analytical engines implement the same stage-error
        # model and must agree bit-for-bit (to rounding).
        for name in ("vectorized", "inclusion-exclusion"):
            result = run(request=request, engine=name)
            assert result.p_error == pytest.approx(
                reference.p_error, abs=1e-12
            ), f"{name} disagrees with recursive on {request.cell_names}"
        # Exhaustive enumeration counts *numeric* word errors.  For
        # chains that cannot mask an internal stage error the models
        # coincide; for masking-capable chains the recursion is a sound
        # upper bound (the paper's §4 caveat, stamped on the result).
        exhaustive = run(request=request, engine="exhaustive")
        if reference.is_upper_bound:
            assert reference.p_error >= exhaustive.p_error - 1e-12
        else:
            assert exhaustive.p_error == pytest.approx(
                reference.p_error, abs=1e-12
            ), f"exhaustive disagrees on {request.cell_names}"

    @given(request=chain_requests())
    @settings(max_examples=15, deadline=None)
    def test_default_selection_matches_reference(self, request):
        # Whatever the registry picks must equal the explicit recursion.
        selected = run(request=request)
        reference = run(request=request, engine="recursive")
        assert selected.exact
        assert selected.p_error == pytest.approx(reference.p_error,
                                                 abs=1e-12)


class TestMonteCarloParity:
    @given(request=chain_requests(max_width=6),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_estimate_within_wilson_interval(self, request, seed):
        exact = run(request=request, engine="exhaustive").p_error
        mc = run(request=request, engine="montecarlo",
                 samples=20_000, seed=seed)
        assert not mc.exact
        assert mc.interval is not None
        low, high = mc.interval
        # The 95% Wilson interval misses ~1 time in 20 per draw; pad it
        # by its own half-width so the property is deterministic-safe
        # without hiding real bias (an engine bug shifts the estimate by
        # far more than one half-width).
        pad = (high - low) / 2.0
        assert low - pad <= exact <= high + pad, (
            f"exact={exact} outside padded interval "
            f"[{low - pad}, {high + pad}] (seed={seed})"
        )
