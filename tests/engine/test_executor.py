"""Unified executor: selection, explicit engines, batching, budgets."""

from __future__ import annotations

import pytest

from repro.core.exceptions import AnalysisError
from repro.engine import AnalysisRequest, run, run_batch, select_engine
from repro.engine.executor import error_curves
from repro.runtime import RunBudget


class TestRun:
    def test_positional_convenience_matches_request_form(self):
        direct = run("LPAA 1", 4, 0.3, 0.7, 0.5)
        request = AnalysisRequest.chain("LPAA 1", 4, 0.3, 0.7, 0.5)
        assert run(request).p_error == pytest.approx(direct.p_error)

    def test_default_chain_selection_is_recursive(self):
        result = run("LPAA 1", 8)
        assert result.engine == "recursive"
        assert result.exact

    def test_explicit_engine_override(self):
        result = run("LPAA 1", 4, engine="vectorized")
        assert result.engine == "vectorized"

    def test_engines_agree(self):
        reference = run("LPAA 2", 6).p_error
        for name in ("vectorized", "inclusion-exclusion", "exhaustive"):
            assert run("LPAA 2", 6, engine=name).p_error == pytest.approx(
                reference, abs=1e-12
            ), name

    def test_incapable_engine_rejected(self):
        with pytest.raises(AnalysisError, match="cannot serve"):
            run("LPAA 1", 40, engine="exhaustive")

    def test_keep_trace_returns_stage_records(self):
        result = run("LPAA 1", 4, keep_trace=True)
        assert result.trace is not None and len(result.trace) == 4

    def test_correlated_selection_from_joints(self):
        from repro.core.correlated import JointBitDistribution

        joints = [JointBitDistribution.identical(0.5) for _ in range(4)]
        result = run("LPAA 1", 4, joints=joints)
        assert result.engine == "correlated"


class TestSimulateRouting:
    def test_small_width_runs_exhaustive(self):
        result = run("LPAA 1", 4, simulate=True)
        assert result.engine == "exhaustive"
        assert result.p_error == pytest.approx(run("LPAA 1", 4).p_error,
                                               abs=1e-12)

    def test_budget_degrades_to_montecarlo(self):
        result = run(
            "LPAA 1", 14, simulate=True,
            budget=RunBudget(max_cases=1000, max_samples=2000), seed=1,
        )
        assert result.engine == "montecarlo"
        assert result.degraded_from == "chunked-exhaustive"
        assert result.samples == 2000

    def test_simulate_rejects_non_chain_requests(self):
        from repro.gear.config import GeArConfig

        request = AnalysisRequest.for_gear(GeArConfig(8, 2, 2))
        with pytest.raises(AnalysisError):
            run(request=request, simulate=True)


class TestSelectEngine:
    def test_chain_defaults_to_cheapest_exact(self):
        decision = select_engine(AnalysisRequest.chain("LPAA 1", 8))
        assert decision.engine == "recursive"

    def test_gear_defaults_to_dp(self):
        from repro.gear.config import GeArConfig

        decision = select_engine(AnalysisRequest.for_gear(GeArConfig(16, 4, 4)))
        assert decision.engine == "gear-dp"

    def test_large_multiop_degrades_to_sampling(self):
        request = AnalysisRequest.for_multiop([[0.5] * 16] * 4, 16)
        decision = select_engine(request)
        assert decision.engine == "multiop-mc"
        assert decision.degraded_from == "multiop-exact"


class TestRunBatch:
    def test_matches_scalar_results(self):
        requests = [
            AnalysisRequest.chain("LPAA 3", 6, p_a=k / 10.0, p_b=0.5)
            for k in range(1, 10)
        ]
        batched = run_batch(requests)
        for request, result in zip(requests, batched):
            assert result.engine == "vectorized"
            assert result.p_error == pytest.approx(
                run(request=request, engine="recursive").p_error, abs=1e-12
            )

    def test_mixed_cells_grouped_correctly(self):
        requests = [
            AnalysisRequest.chain("LPAA 1", 4, p_a=0.2),
            AnalysisRequest.chain("LPAA 2", 4, p_a=0.2),
            AnalysisRequest.chain("LPAA 1", 4, p_a=0.8),
        ]
        batched = run_batch(requests)
        for request, result in zip(requests, batched):
            assert result.p_error == pytest.approx(
                run(request=request).p_error, abs=1e-12
            )

    def test_order_is_preserved(self):
        requests = [
            AnalysisRequest.chain("LPAA 1", 3, p_a=p)
            for p in (0.9, 0.1, 0.5)
        ]
        batched = run_batch(requests)
        scalars = [run(request=r).p_error for r in requests]
        assert [r.p_error for r in batched] == pytest.approx(scalars,
                                                             abs=1e-12)

    def test_budget_truncates_tail(self):
        requests = [
            AnalysisRequest.chain("LPAA 1", 4, p_a=k / 100.0)
            for k in range(1, 51)
        ]
        batched = run_batch(requests, budget=RunBudget(max_configs=10))
        completed = [r for r in batched if r is not None]
        assert 0 < len(completed) < len(requests)

    def test_trace_requests_fall_back_to_scalar_engine(self):
        requests = [AnalysisRequest.chain("LPAA 1", 4, keep_trace=True)]
        batched = run_batch(requests)
        assert batched[0].trace is not None


class TestErrorCurves:
    def test_matches_pointwise_runs(self):
        curve = error_curves("LPAA 2", 6, 0.3)
        assert len(curve) == 6
        for width in (1, 3, 6):
            assert curve[width - 1] == pytest.approx(
                run("LPAA 2", width, 0.3, 0.3).p_error, abs=1e-12
            )
