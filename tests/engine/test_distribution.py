"""The error-magnitude request kinds, end to end.

Cross-validates every distribution engine against the exhaustive
oracle over the full cell zoo, pins the router's degradation ladder
(exact DP -> truncated DP -> Monte-Carlo, with the WCE and MRED
exceptions), and exercises the kinds through run()/run_batch(), the
result cache and the serving layer.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import engine
from repro.core.exceptions import AnalysisError
from repro.engine.diskcache import (
    cacheable_result,
    payload_from_result,
    request_key,
    result_from_payload,
)
from repro.engine.distribution import (
    DIST_EXACT_MAX_WIDTH,
    MRED_EXACT_MAX_WIDTH,
    exact_width_limit,
)
from repro.engine.request import (
    DISTRIBUTION_KINDS,
    KIND_ERROR_DISTRIBUTION,
    KIND_MED,
    KIND_MRED,
    KIND_WCE,
    AnalysisRequest,
)
from repro.runtime.budget import RunBudget
from repro.runtime.router import plan_distribution_engine
from repro.simulation.exhaustive import exhaustive_quality


class TestAnalyticalMatchesExhaustive:
    """The acceptance bar: DP == enumeration for every zoo cell."""

    WIDTH = 6
    P_A = [0.2, 0.7, 0.5, 0.9, 0.4, 0.6]
    P_B = [0.4, 0.1, 0.8, 0.3, 0.55, 0.25]
    P_CIN = 0.6

    def _run(self, cell, kind, backend):
        request = AnalysisRequest.distribution(
            cell, self.WIDTH, self.P_A, self.P_B, self.P_CIN, kind=kind)
        return engine.run(request, engine=backend)

    @pytest.mark.parametrize("kind", DISTRIBUTION_KINDS)
    def test_dp_matches_oracle_across_the_zoo(self, lpaa_cell, kind):
        report = exhaustive_quality(
            lpaa_cell, self.WIDTH, self.P_A, self.P_B, self.P_CIN)
        got = self._run(lpaa_cell, kind, "distribution-dp")
        oracle = self._run(lpaa_cell, kind, "distribution-exhaustive")
        assert got.exact and oracle.exact
        if kind == KIND_WCE:
            assert got.wce == oracle.wce
            assert got.wce == max((abs(d) for d in report.pmf), default=0)
        elif kind == KIND_MRED:
            assert got.mred == pytest.approx(report.mred, abs=1e-12)
            assert oracle.mred == pytest.approx(report.mred, abs=1e-12)
        else:
            assert got.med == pytest.approx(oracle.med, abs=1e-10)
            assert got.mse == pytest.approx(oracle.mse, abs=1e-8)
            assert got.p_error == pytest.approx(oracle.p_error, abs=1e-12)
        if kind == KIND_ERROR_DISTRIBUTION:
            assert dict(got.distribution) == pytest.approx(
                {d: p for d, p in report.pmf.items() if p > 0}, abs=1e-12)

    def test_hybrid_chain_matches_oracle(self):
        chain = ["LPAA 7", "LPAA 3", "LPAA 1", "accurate", "LPAA 5"]
        report = exhaustive_quality(chain, None, 0.5, 0.5, 0.5)
        result = engine.run(chain, None, kind="med")
        assert result.engine == "distribution-dp"
        med_ref = sum(abs(d) * p for d, p in report.pmf.items())
        assert result.med == pytest.approx(med_ref, abs=1e-10)
        assert result.bias == pytest.approx(report.bias, abs=1e-10)

    def test_truncated_dp_is_lossless_at_narrow_width(self):
        # At width 6 every |delta| < 2^QUANT_BITS, so quantisation is
        # the identity and the truncated rung must agree bit-for-bit --
        # while still flagging itself as an estimate.
        exact = self._run("LPAA 5", KIND_MED, "distribution-dp")
        trunc = self._run("LPAA 5", KIND_MED, "distribution-dp-truncated")
        assert trunc.med == pytest.approx(exact.med, abs=1e-12)
        assert trunc.exact is False and exact.exact is True


class TestHypothesisCrossValidation:
    """Randomised hybrid chains: DP == enumeration wherever both run."""

    chains = st.lists(
        st.sampled_from([f"LPAA {i}" for i in range(1, 8)] + ["accurate"]),
        min_size=1, max_size=5)
    # a 1/20 grid keeps the 0/1 edge cases while avoiding denormal
    # probabilities whose path weights underflow in the enumeration
    # oracle (the DP keeps any positive-probability path, however tiny).
    probabilities = st.integers(0, 20).map(lambda k: k / 20.0)

    @given(chain=chains, p_a=probabilities, p_b=probabilities,
           p_cin=probabilities)
    @settings(max_examples=30, deadline=None)
    def test_med_and_wce_match_enumeration(self, chain, p_a, p_b, p_cin):
        report = exhaustive_quality(chain, None, p_a, p_b, p_cin)
        med_ref = sum(abs(d) * p for d, p in report.pmf.items())
        wce_ref = max((abs(d) for d, p in report.pmf.items() if p > 0),
                      default=0)
        med = engine.run(chain, None, p_a, p_b, p_cin, kind=KIND_MED,
                         engine="distribution-dp")
        wce = engine.run(chain, None, p_a, p_b, p_cin, kind=KIND_WCE,
                         engine="distribution-dp")
        assert med.med == pytest.approx(med_ref, abs=1e-9)
        assert wce.wce == wce_ref


class TestWideWidths:
    def test_wce_is_exact_at_64_bits(self):
        result = engine.run("LPAA 5", 64, kind=KIND_WCE)
        assert result.engine == "distribution-dp"
        assert result.exact is True
        assert result.wce == 2 ** 63

    def test_truncated_med_near_exact_moments_at_32_bits(self):
        # error_moments is an independent exact O(N) computation of
        # E[|D|]-adjacent quantities; the truncated PMF's E[D^2] must
        # land within the documented ~width * 2^-11 relative drift.
        from repro.core.magnitude import error_moments

        result = engine.run("LPAA 1", 32, kind=KIND_MED)
        assert result.engine == "distribution-dp-truncated"
        mom = error_moments("LPAA 1", 32, 0.5, 0.5, 0.5)
        assert result.mse == pytest.approx(mom.second_moment, rel=1e-2)

    def test_mc_interval_contains_truncated_dp_med_at_32_bits(self):
        dp = engine.run("LPAA 1", 32, kind=KIND_MED)
        mc = engine.run("LPAA 1", 32, kind=KIND_MED,
                        engine="distribution-mc", samples=50_000, seed=3)
        assert mc.engine == "distribution-mc"
        lo, hi = mc.interval
        # the normal CI is on the MC estimate; the DP value must be
        # consistent with it (generous width at 50k samples).
        assert lo <= dp.med <= hi


class TestRouterLadder:
    def _req(self, width, kind=KIND_MED):
        return AnalysisRequest.distribution("LPAA 1", width, kind=kind)

    def test_exact_dp_inside_the_guard(self):
        decision = plan_distribution_engine(self._req(DIST_EXACT_MAX_WIDTH))
        assert decision.engine == "distribution-dp"
        assert decision.degraded_from is None

    def test_truncated_rung_past_the_guard(self):
        decision = plan_distribution_engine(
            self._req(DIST_EXACT_MAX_WIDTH + 1))
        assert decision.engine == "distribution-dp-truncated"
        assert decision.degraded_from == "distribution-dp"

    def test_mc_past_the_truncated_guard(self):
        decision = plan_distribution_engine(self._req(48))
        assert decision.engine == "distribution-mc"
        assert decision.degraded_from == "distribution-dp-truncated"
        assert decision.samples is not None

    def test_wce_never_degrades(self):
        for width in (8, 32, 64, 128):
            decision = plan_distribution_engine(
                self._req(width, kind=KIND_WCE))
            assert decision.engine == "distribution-dp"

    def test_mred_skips_the_truncated_rung(self):
        assert exact_width_limit(KIND_MRED) == MRED_EXACT_MAX_WIDTH
        decision = plan_distribution_engine(
            self._req(MRED_EXACT_MAX_WIDTH + 1, kind=KIND_MRED))
        assert decision.engine == "distribution-mc"
        assert decision.degraded_from == "distribution-dp"

    def test_tight_deadline_drops_to_sampling(self):
        decision = plan_distribution_engine(
            self._req(30), budget=RunBudget(deadline_s=1e-9),
        )
        assert decision.engine == "distribution-mc"

    def test_budget_clamps_samples(self):
        decision = plan_distribution_engine(
            self._req(48), budget=RunBudget(max_samples=1234))
        assert decision.samples == 1234

    def test_truncated_engine_refuses_mred(self):
        with pytest.raises(AnalysisError, match="mass-preserving"):
            engine.run("LPAA 1", 8, kind=KIND_MRED,
                       engine="distribution-dp-truncated")

    def test_simulate_forces_the_sampling_backend(self):
        result = engine.run("LPAA 1", 8, kind=KIND_MED, simulate=True,
                            samples=5_000, seed=1)
        assert result.engine == "distribution-mc"
        assert result.samples == 5_000


class TestExecutorSurface:
    def test_run_rejects_an_unknown_kind(self):
        with pytest.raises(AnalysisError, match="kind"):
            engine.run("LPAA 1", 4, kind="medx")

    def test_run_rejects_a_conflicting_prebuilt_kind(self):
        request = AnalysisRequest.distribution("LPAA 1", 4, kind=KIND_MED)
        with pytest.raises(AnalysisError):
            engine.run(request, kind=KIND_WCE)

    def test_run_batch_mixes_chain_and_distribution_kinds(self):
        requests = [
            AnalysisRequest.chain("LPAA 1", 6),
            AnalysisRequest.distribution("LPAA 1", 6, kind=KIND_MED),
            AnalysisRequest.distribution("LPAA 5", 6, kind=KIND_WCE),
        ]
        results = engine.run_batch(requests)
        assert [r.kind for r in results] == ["chain", KIND_MED, KIND_WCE]
        assert results[1].med == pytest.approx(
            engine.run(requests[1]).med, abs=1e-12)
        assert results[2].wce == engine.run(requests[2]).wce

    def test_distribution_result_carries_provenance(self):
        result = engine.run("LPAA 1", 20, kind=KIND_MED)
        assert result.engine == "distribution-dp-truncated"
        assert result.degraded_from == "distribution-dp"
        assert "support guard" in result.reason


class TestResultCachePayloads:
    def test_distribution_kinds_are_keyable_and_kind_distinct(self):
        keys = {
            request_key(AnalysisRequest.distribution(
                "LPAA 1", 6, kind=kind))
            for kind in DISTRIBUTION_KINDS
        }
        assert None not in keys
        assert len(keys) == len(DISTRIBUTION_KINDS)

    @pytest.mark.parametrize("kind", DISTRIBUTION_KINDS)
    def test_payload_round_trip_preserves_the_metrics(self, kind):
        result = engine.run(
            AnalysisRequest.distribution("LPAA 2", 5, kind=kind))
        restored = result_from_payload(
            json.loads(json.dumps(payload_from_result(result))))
        assert restored.kind == kind
        for field in ("med", "nmed", "mse", "wce", "mred", "bias"):
            assert getattr(restored, field) == getattr(result, field)
        assert restored.distribution == result.distribution

    def test_truncated_results_are_never_cached(self):
        result = engine.run("LPAA 1", 20, kind=KIND_MED)
        assert result.exact is False
        assert not cacheable_result(result)

    def test_exact_distribution_results_are_cacheable(self):
        result = engine.run("LPAA 1", 6, kind=KIND_MED)
        assert cacheable_result(result)


class TestServeDocs:
    def test_parse_analysis_doc_accepts_a_kind(self):
        from repro.serve.service import parse_analysis_doc

        request = parse_analysis_doc(
            {"cell": "LPAA 1", "width": 6, "kind": "med"})
        assert request.kind == KIND_MED
        assert request.width == 6

    def test_parse_analysis_doc_rejects_an_unknown_kind(self):
        from repro.serve.service import RequestParseError, parse_analysis_doc

        with pytest.raises(RequestParseError, match="kind"):
            parse_analysis_doc({"cell": "LPAA 1", "width": 6,
                                "kind": "nope"})

    def test_result_to_doc_keeps_the_plain_chain_shape(self):
        from repro.serve.service import result_to_doc

        doc = result_to_doc(engine.run("LPAA 1", 4))
        assert "kind" not in doc and "med" not in doc

    def test_result_to_doc_serialises_distribution_results(self):
        from repro.serve.service import result_to_doc

        doc = result_to_doc(engine.run(
            "LPAA 2", 4, kind=KIND_ERROR_DISTRIBUTION))
        assert doc["kind"] == KIND_ERROR_DISTRIBUTION
        assert doc["wce"] == 15
        assert doc["med"] == pytest.approx(3.6171875)
        assert all(len(pair) == 2 for pair in doc["distribution"])
        json.dumps(doc)  # must be JSON-clean end to end


class TestCli:
    @pytest.mark.parametrize("kind", ["med", "wce", "error_distribution"])
    def test_distribution_subcommand_prints_the_metrics(self, kind, capsys):
        from repro.cli import main

        assert main(["distribution", "--cell", "LPAA 1", "--width", "6",
                     "--kind", kind]) == 0
        out = capsys.readouterr().out
        assert "distribution-dp" in out
        assert kind in out

    def test_distribution_subcommand_reports_mc_interval(self, capsys):
        from repro.cli import main

        assert main(["distribution", "--cell", "LPAA 1", "--width", "40",
                     "--kind", "med", "--samples", "20000",
                     "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "distribution-mc" in out
        assert "interval" in out
