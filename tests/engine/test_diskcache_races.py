"""Cross-process prune/unlink races: tolerated and counted, never raised."""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib

import pytest

from repro.engine.diskcache import STORE_FORMAT, DiskResultStore

WIDTH = 64  # hex chars in a sha256 key


def _key(i: int) -> str:
    return format(i, "x").rjust(WIDTH, "0")


def _payload(i: int = 0):
    return {
        "p_error": 0.25, "p_success": 0.75, "engine": "recursive",
        "exact": True, "width": 4, "kind": "chain",
        "cell_names": ["LPAA 1"] * 4, "is_upper_bound": False, "i": i,
    }


def _fill(store: DiskResultStore, n: int) -> None:
    for i in range(n):
        store.put(_key(i), _payload(i))


class TestDeterministicRaces:
    """Each race window forced open with a vanish-underneath wrapper."""

    def test_corrupt_unlink_race_counts_not_raises(self, tmp_path,
                                                   monkeypatch):
        store = DiskResultStore(tmp_path)
        path = store.entry_path(_key(1))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ not json")

        real_unlink = os.unlink

        def vanish_then_unlink(target, *args, **kwargs):
            real_unlink(target)  # "another process" deletes it first
            return real_unlink(target, *args, **kwargs)

        monkeypatch.setattr(os, "unlink", vanish_then_unlink)
        assert store.get(_key(1)) is None  # miss, no exception
        stats = store.stats()
        assert stats.corrupt == 1
        assert stats.races == 1

    def test_prune_stat_race_counts_not_raises(self, tmp_path, monkeypatch):
        store = DiskResultStore(tmp_path, max_entries=1)
        _fill(store, 4)

        real_stat = pathlib.Path.stat
        vanished = []

        def vanish_then_stat(self, *args, **kwargs):
            if self.suffix == ".json" and not vanished:
                vanished.append(self)
                os.unlink(self)
            return real_stat(self, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "stat", vanish_then_stat)
        store.prune()
        monkeypatch.undo()
        assert store.stats().races == 1
        assert store.entry_count() == 1

    def test_prune_unlink_race_counts_not_raises(self, tmp_path,
                                                 monkeypatch):
        store = DiskResultStore(tmp_path, max_entries=1)
        _fill(store, 3)

        real_unlink = os.unlink

        def vanish_then_unlink(target, *args, **kwargs):
            real_unlink(target)
            return real_unlink(target, *args, **kwargs)

        monkeypatch.setattr(os, "unlink", vanish_then_unlink)
        evicted = store.prune()
        monkeypatch.undo()
        stats = store.stats()
        # Both excess entries are gone, but the wrapper stole each
        # unlink, so prune saw two races and claimed no evictions.
        assert evicted == 0
        assert stats.races == 2
        assert store.entry_count() == 1


def _prune_hammer(root: str) -> dict:
    """One pruner process: shrink a shared overfull store to one entry."""
    from repro.engine.diskcache import DiskResultStore

    store = DiskResultStore(root, max_entries=1)
    evicted = 0
    for _ in range(5):
        evicted += store.prune()
    stats = store.stats()
    return {"evicted": evicted, "races": stats.races}


class TestConcurrentPruners:
    def test_parallel_pruners_partition_the_evictions(self, tmp_path):
        n_entries, workers = 200, 4
        _fill(DiskResultStore(tmp_path), n_entries)
        with multiprocessing.Pool(workers) as pool:
            outcomes = pool.map(_prune_hammer, [str(tmp_path)] * workers)
        # Nobody raised; every entry beyond the limit was unlinked by
        # exactly one pruner (evictions partition, races absorb the
        # collisions), and the survivor still parses.
        survivor_store = DiskResultStore(tmp_path)
        survivors = survivor_store.entry_count()
        assert survivors == 1
        assert sum(o["evicted"] for o in outcomes) == n_entries - survivors
        for path in tmp_path.glob("??/*.json"):
            doc = json.loads(path.read_text())
            assert doc["format"] == STORE_FORMAT
