"""Engine registry: capability metadata, lookup, cost-ranked selection."""

from __future__ import annotations

import pytest

from repro.core.exceptions import AnalysisError
from repro.engine import (
    FAMILY_ANALYTICAL,
    FAMILY_SIMULATION,
    KIND_CHAIN,
    REGISTRY,
    AnalysisRequest,
    EngineInfo,
    EngineRegistry,
    register_builtin_engines,
)

register_builtin_engines()


def _dummy(name, **overrides):
    base = dict(
        name=name,
        family=FAMILY_ANALYTICAL,
        request_kinds=(KIND_CHAIN,),
        exact=True,
        run=lambda request, **options: None,
        cost_estimate=lambda width, samples: float(width),
    )
    base.update(overrides)
    return EngineInfo(**base)


class TestBuiltinPopulation:
    def test_expected_engines_present(self):
        for name in ("recursive", "vectorized", "correlated",
                     "inclusion-exclusion", "exhaustive", "montecarlo",
                     "gear-dp", "gear-ie", "gear-mc",
                     "multiop-exact", "multiop-mc"):
            assert name in REGISTRY

    def test_reregistration_is_idempotent(self):
        names = REGISTRY.names()
        register_builtin_engines()
        assert REGISTRY.names() == names

    def test_unknown_engine_error_lists_known(self):
        with pytest.raises(AnalysisError, match="unknown engine"):
            REGISTRY.get("quantum-annealer")


class TestCapabilities:
    def test_exhaustive_rejects_wide_requests(self):
        info = REGISTRY.get("exhaustive")
        narrow = AnalysisRequest.chain("LPAA 1", 4)
        wide = AnalysisRequest.chain("LPAA 1", info.max_width + 1)
        assert info.accepts(narrow)
        assert not info.accepts(wide)

    def test_only_correlated_engine_takes_joints(self):
        from repro.core.correlated import JointBitDistribution

        joints = tuple(
            JointBitDistribution.independent(0.5, 0.5) for _ in range(4)
        )
        request = AnalysisRequest.chain("LPAA 1", 4, joints=joints)
        assert REGISTRY.get("correlated").accepts(request)
        assert not REGISTRY.get("recursive").accepts(request)
        assert not REGISTRY.get("montecarlo").accepts(request)

    def test_trace_requests_need_trace_support(self):
        request = AnalysisRequest.chain("LPAA 1", 4, keep_trace=True)
        assert REGISTRY.get("recursive").accepts(request)
        assert not REGISTRY.get("vectorized").accepts(request)

    def test_montecarlo_is_inexact_simulation(self):
        info = REGISTRY.get("montecarlo")
        assert info.family == FAMILY_SIMULATION
        assert not info.exact
        assert info.default_samples is not None


class TestSelection:
    def test_for_request_sorted_by_cost(self):
        request = AnalysisRequest.chain("LPAA 1", 8)
        ranked = REGISTRY.for_request(request, family=FAMILY_ANALYTICAL,
                                      exact=True)
        costs = [info.cost_estimate(request.width, None) for info in ranked]
        assert costs == sorted(costs)
        assert ranked[0].name == "recursive"

    def test_family_filter(self):
        request = AnalysisRequest.chain("LPAA 1", 8)
        sims = REGISTRY.for_request(request, family=FAMILY_SIMULATION)
        assert {info.family for info in sims} == {FAMILY_SIMULATION}

    def test_exhaustive_cost_matches_case_count(self):
        info = REGISTRY.get("exhaustive")
        assert info.cost_estimate(4, None) == pytest.approx(float(1 << 9))
        assert info.cost_estimate(12, None) == pytest.approx(float(1 << 25))


class TestRegistration:
    def test_duplicate_name_rejected(self):
        registry = EngineRegistry()
        registry.register(_dummy("one"))
        with pytest.raises(AnalysisError, match="already registered"):
            registry.register(_dummy("one"))

    def test_replace_flag_overwrites(self):
        registry = EngineRegistry()
        registry.register(_dummy("one"))
        replacement = registry.register(_dummy("one", exact=False),
                                        replace=True)
        assert registry.get("one") is replacement

    def test_names_sorted(self):
        registry = EngineRegistry()
        registry.register(_dummy("zeta"))
        registry.register(_dummy("alpha"))
        assert registry.names() == ["alpha", "zeta"]
