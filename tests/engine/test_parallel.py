"""Process-pool executor: bit identity, budgets, merging, eligibility."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import engine
from repro.core.exceptions import AnalysisError
from repro.engine import AnalysisRequest
from repro.engine.cache import GLOBAL_CACHE, clear_cache
from repro.engine.parallel import (
    PARALLEL_EXHAUSTIVE,
    budget_allows_parallel,
    resolve_jobs,
)
from repro.engine.registry import REGISTRY
from repro.runtime import RunBudget
from repro.runtime.router import plan_engine

JOBS = 2  # modest: CI machines may expose few cores


def _chain_requests(count: int, width: int = 6):
    rng = np.random.default_rng(count * 7919 + width)
    cells = ("LPAA 6", "LPAA 3", "LPAA 1")
    return [
        AnalysisRequest.chain(
            cells[i % len(cells)], width,
            float(rng.uniform(0.02, 0.98)),
            float(rng.uniform(0.02, 0.98)),
            float(rng.uniform(0.02, 0.98)),
        )
        for i in range(count)
    ]


class TestResolveJobs:
    def test_serial_spellings(self):
        for value in ("off", None, False, 0, 1):
            assert resolve_jobs(value) == 0

    def test_explicit_count(self):
        assert resolve_jobs(4) == 4
        assert resolve_jobs("3") == 3

    def test_auto_uses_cpu_count(self):
        import os

        expected = os.cpu_count() or 1
        assert resolve_jobs("auto") == (0 if expected < 2 else expected)

    def test_rejects_garbage(self):
        with pytest.raises(AnalysisError, match="parallelism"):
            resolve_jobs("many")
        with pytest.raises(AnalysisError, match=">= 0"):
            resolve_jobs(-2)


class TestBudgetGate:
    def test_deadline_and_configs_parallelise(self):
        assert budget_allows_parallel(None)
        assert budget_allows_parallel(RunBudget(deadline_s=5.0))
        assert budget_allows_parallel(RunBudget(max_configs=10))

    def test_global_sample_and_case_caps_stay_serial(self):
        assert not budget_allows_parallel(RunBudget(max_samples=100))
        assert not budget_allows_parallel(RunBudget(max_cases=100))


class TestRegistryFlags:
    def test_stateless_engines_are_parallel_safe(self):
        for name in ("recursive", "vectorized", "inclusion-exclusion",
                     "exhaustive", "montecarlo"):
            assert REGISTRY.get(name).parallel_safe, name

    def test_correlated_stays_in_parent(self):
        assert not REGISTRY.get("correlated").parallel_safe


class TestBitIdentity:
    """Acceptance: parallel results bit-identical to a serial run."""

    def test_analytical_sweep_identical(self):
        requests = _chain_requests(24)
        serial = engine.run_batch(requests)
        parallel = engine.run_batch(requests, parallelism=JOBS)
        for s, p in zip(serial, parallel):
            assert s.p_error == p.p_error  # exact, not approx
            assert s.engine == p.engine == "vectorized"

    @settings(max_examples=3, deadline=None)
    @given(
        count=st.integers(min_value=2, max_value=12),
        width=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_analytical_property(self, count, width, seed):
        rng = np.random.default_rng(seed)
        requests = [
            AnalysisRequest.chain(
                "LPAA 6" if i % 2 else "LPAA 2", width,
                float(rng.uniform(0, 1)), float(rng.uniform(0, 1)),
                float(rng.uniform(0, 1)),
            )
            for i in range(count)
        ]
        serial = engine.run_batch(requests)
        parallel = engine.run_batch(requests, parallelism=JOBS)
        assert [s.p_error for s in serial] == [p.p_error for p in parallel]

    def test_montecarlo_seed_stable(self):
        requests = _chain_requests(4)
        serial = engine.run_batch(requests, engine="montecarlo",
                                  samples=2000, seed=42)
        parallel = engine.run_batch(requests, parallelism=JOBS,
                                    engine="montecarlo", samples=2000,
                                    seed=42)
        for s, p in zip(serial, parallel):
            assert s.p_error == p.p_error
            assert s.interval == p.interval
            assert s.raw.wilson_interval() == p.raw.wilson_interval()

    def test_error_curves_sliced_identically(self):
        p = np.linspace(0.02, 0.98, 17)
        serial = engine.error_curves("LPAA 6", 10, p, 0.3)
        parallel = engine.error_curves("LPAA 6", 10, p, 0.3,
                                       parallelism=JOBS)
        assert np.array_equal(serial, parallel)

    def test_error_curves_scalar_p_stays_serial(self):
        serial = engine.error_curves("LPAA 6", 8, 0.4, 0.3)
        parallel = engine.error_curves("LPAA 6", 8, 0.4, 0.3,
                                       parallelism=JOBS)
        assert np.array_equal(serial, parallel)

    def test_parallel_exhaustive_matches_exhaustive(self):
        request = AnalysisRequest.chain("LPAA 6", 7, 0.3, 0.4, 0.5)
        serial = engine.run(request=request, engine="exhaustive")
        sharded = engine.run(request=request, engine=PARALLEL_EXHAUSTIVE,
                             jobs=JOBS)
        assert serial.p_error == sharded.p_error
        assert sharded.engine == PARALLEL_EXHAUSTIVE
        assert sharded.exact and not sharded.truncated
        assert sharded.cases == 1 << (2 * 7 + 1)


class TestBatchInvariance:
    """The vectorised recursion is elementwise along the batch axis --
    the numerical contract the sharding rests on (fixed-order masked
    sums instead of BLAS matvecs whose reduction order varies with the
    batch shape)."""

    def test_analyze_batch_rows_independent_of_batch_mates(self):
        from repro.core import analyze_batch, get_cell

        cells = [get_cell("LPAA 6")] * 5
        rng = np.random.default_rng(3)
        pa = rng.uniform(0, 1, size=(9, 5))
        pb = rng.uniform(0, 1, size=(9, 5))
        pc = rng.uniform(0, 1, size=9)
        full = analyze_batch(cells, None, pa, pb, pc, batch=9)
        for split in (1, 4, 8):
            pieces = np.concatenate([
                analyze_batch(cells, None, pa[:split], pb[:split],
                              pc[:split], batch=split),
                analyze_batch(cells, None, pa[split:], pb[split:],
                              pc[split:], batch=9 - split),
            ])
            assert np.array_equal(full, pieces), split

    def test_success_by_width_rows_independent_of_batch_mates(self):
        from repro.core import get_cell, success_by_width

        table = get_cell("LPAA 3")
        rng = np.random.default_rng(5)
        p = rng.uniform(0, 1, size=11)
        full = success_by_width(table, 9, p, 0.3)
        singles = np.vstack([
            success_by_width(table, 9, p[i:i + 1], 0.3) for i in range(11)
        ])
        assert np.array_equal(full, singles)


class TestBudgets:
    def test_max_configs_admission_control(self):
        requests = _chain_requests(20)
        results = engine.run_batch(requests, parallelism=JOBS,
                                   budget=RunBudget(max_configs=7))
        assert sum(r is not None for r in results) == 7

    def test_sample_capped_budget_falls_back_to_serial(self):
        # The gate keeps global caps exact: same answers either way.
        requests = _chain_requests(4)
        capped = engine.run_batch(requests, parallelism=JOBS,
                                  budget=RunBudget(max_samples=10**6))
        serial = engine.run_batch(requests,
                                  budget=RunBudget(max_samples=10**6))
        assert [r.p_error for r in capped] == [r.p_error for r in serial]


class TestEligibility:
    def test_trace_requests_run_in_parent(self):
        plain = _chain_requests(3)
        traced = AnalysisRequest.chain("LPAA 6", 6, 0.3, 0.4, 0.5,
                                       keep_trace=True)
        results = engine.run_batch(plain + [traced], parallelism=JOBS)
        assert all(r is not None for r in results)
        assert len(results[-1].trace) == 6

    def test_forced_unsafe_engine_runs_in_parent(self):
        from repro.core.correlated import JointBitDistribution

        joints = [JointBitDistribution.identical(0.5) for _ in range(4)]
        correlated = AnalysisRequest.chain("LPAA 1", 4, joints=joints)
        results = engine.run_batch(
            _chain_requests(3, width=4) + [correlated], parallelism=JOBS)
        assert results[-1].engine == "correlated"


class TestRouterRung:
    def test_parallel_rung_between_exhaustive_and_montecarlo(self):
        budget = RunBudget(deadline_s=0.15)
        serial_plan = plan_engine(10, budget)
        pooled_plan = plan_engine(10, budget, jobs=8)
        assert serial_plan.engine == "montecarlo"
        assert pooled_plan.engine == PARALLEL_EXHAUSTIVE
        assert pooled_plan.degraded_from == "exhaustive"

    def test_pool_cannot_rescue_arbitrarily_large_widths(self):
        decision = plan_engine(16, RunBudget(deadline_s=0.01), jobs=8)
        assert decision.engine == "montecarlo"


class TestObsMerging:
    def test_worker_cache_deltas_merge_into_global_counters(self):
        clear_cache()
        try:
            requests = _chain_requests(8)
            engine.run_batch(requests, parallelism=JOBS, engine="recursive")
            stats = GLOBAL_CACHE.stats()
            assert stats.hits + stats.misses > 0
        finally:
            clear_cache()

    def test_worker_metric_deltas_merge_to_the_serial_totals(self):
        # S4 hammer: the per-backend timers and request counters the
        # workers record must fold back into the parent registry with
        # exactly the counts a serial pass produces -- bucket counts are
        # exact sums, never sampled or lost at the process boundary.
        from repro.obs import metrics

        def run(parallelism):
            registry = metrics.MetricsRegistry()
            metrics.enable()
            try:
                with metrics.use_registry(registry):
                    engine.run_batch(_chain_requests(8),
                                     parallelism=parallelism,
                                     engine="recursive")
            finally:
                metrics.disable()
            return registry.snapshot()

        serial = run(0)
        parallel = run(JOBS)
        for counter in ("engine.requests", "engine.selected.recursive",
                        "core.recursive.calls", "core.recursive.stages"):
            assert parallel["counters"][counter] == \
                serial["counters"][counter], counter
        # The workers' timer histograms merge bucket-for-bucket: same
        # observation count, all of them inside finite buckets.
        serial_timer = serial["timers"]["engine.recursive.seconds"]
        merged_timer = parallel["timers"]["engine.recursive.seconds"]
        assert merged_timer["count"] == serial_timer["count"] == 8
        assert merged_timer["buckets"][-1][0] == "+Inf"
        assert merged_timer["buckets"][-1][1] == 8
        assert merged_timer["total_s"] > 0
        # Quantiles survive the merge (bucketed fallback path).
        assert merged_timer["p50_s"] > 0

    def test_worker_request_id_reaches_chunk_spans(self):
        from repro.obs.correlate import use_request_id
        from repro.obs.tracing import Tracer, use_tracer

        tracer = Tracer()
        with use_request_id("req-parallel"), use_tracer(tracer):
            engine.run_batch(_chain_requests(6), parallelism=JOBS)
        chunk_attrs = []

        def walk(span):
            if span.name == "engine.parallel.chunk":
                chunk_attrs.append(span.attrs)
            for child in span.children:
                walk(child)

        for root in tracer.roots:
            walk(root)
        assert chunk_attrs
        assert all(a.get("request_id") == "req-parallel"
                   for a in chunk_attrs)

    def test_worker_spans_graft_with_pid_lanes(self):
        from repro.obs.tracing import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            engine.run_batch(_chain_requests(6), parallelism=JOBS)
        chunk_spans = []

        def walk(span):
            if span.name == "engine.parallel.chunk":
                chunk_spans.append(span)
            for child in span.children:
                walk(child)

        for root in tracer.roots:
            walk(root)
        assert chunk_spans
        import os

        parent = os.getpid()
        assert all(s.thread_id != parent for s in chunk_spans)
        # One Chrome trace, one lane per worker PID.
        events = tracer.to_chrome()["traceEvents"]
        assert {e["name"] for e in events} >= {"engine.run_batch",
                                              "engine.parallel.chunk"}

    def test_use_tracer_detaches_inherited_span(self):
        # Regression: forked workers inherit the parent's active span;
        # a fresh tracer must not attach new spans to the inherited copy.
        from repro.obs.tracing import Tracer, trace_span, use_tracer

        outer = Tracer()
        with use_tracer(outer):
            with trace_span("outer.region"):
                inner = Tracer()
                with use_tracer(inner):
                    with trace_span("inner.region"):
                        pass
        assert [s.name for s in inner.roots] == ["inner.region"]
        assert [s.name for s in outer.roots] == ["outer.region"]
        assert not outer.roots[0].children


class TestExploreLayer:
    def test_tradeoff_curve_parallel_matches_serial(self):
        from repro.explore.hybrid_search import hybrid_tradeoff_curve

        weights = [0.0, 0.002, 0.01]
        serial = hybrid_tradeoff_curve(["LPAA 1", "LPAA 6"], 5, weights,
                                       0.2, 0.2, 0.2)
        parallel = hybrid_tradeoff_curve(["LPAA 1", "LPAA 6"], 5, weights,
                                         0.2, 0.2, 0.2, parallelism=JOBS)
        assert len(serial.results) == len(parallel.results)
        for a, b in zip(serial.results, parallel.results):
            assert a.chain == b.chain
            assert a.p_error == b.p_error

    def test_design_space_parallel_matches_serial(self):
        from repro.explore.design_space import sweep_design_space

        probs = [0.1, 0.3, 0.5, 0.7, 0.9]
        serial = sweep_design_space(["LPAA 6"], [4, 6], probs)
        parallel = sweep_design_space(["LPAA 6"], [4, 6], probs,
                                      parallelism=JOBS)
        assert [p.p_error for p in serial] == [p.p_error for p in parallel]
