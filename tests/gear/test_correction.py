"""Tests for GeAr error detection and configurable correction."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.gear.analysis import (
    gear_error_probability,
    gear_subadder_error_probabilities,
)
from repro.gear.config import GeArConfig
from repro.gear.correction import (
    corrected_error_probability,
    detect_errors,
    error_count_distribution,
    expected_corrections,
    gear_add_corrected,
)
from repro.gear.functional import gear_add, gear_error_positions

CFG = GeArConfig(8, 2, 2)


class TestDetection:
    def test_detection_equals_block_comparison(self):
        # The hardware condition (carry & all-propagate) must flag
        # exactly the blocks whose output differs from the exact sum.
        for a in range(0, 256, 3):
            for b in range(0, 256, 7):
                assert detect_errors(CFG, a, b) == gear_error_positions(
                    CFG, a, b
                )

    def test_no_errors_for_carry_free_addition(self):
        assert detect_errors(CFG, 0b01010101, 0b00000000) == []

    def test_known_error_case(self):
        # generate at bit 0, propagate through bits 1..3: sub-adder 1's
        # prediction window [2,3] all-propagates with carry -> flagged.
        a, b = 0b00001111, 0b00000001
        assert 1 in detect_errors(CFG, a, b)

    def test_operand_validation(self):
        from repro.core.exceptions import GeArConfigError

        with pytest.raises(GeArConfigError):
            detect_errors(CFG, 256, 0)


class TestCorrection:
    def test_full_correction_is_exact(self):
        rng = np.random.default_rng(1)
        for _ in range(300):
            a, b = int(rng.integers(256)), int(rng.integers(256))
            result, fixes = gear_add_corrected(CFG, a, b)
            assert result == a + b
            assert fixes == len(detect_errors(CFG, a, b))

    def test_zero_budget_is_plain_gear(self):
        for a in range(0, 256, 5):
            for b in range(0, 256, 11):
                result, fixes = gear_add_corrected(CFG, a, b, budget=0)
                assert result == gear_add(CFG, a, b)
                assert fixes == 0

    def test_partial_budget_fixes_lsb_first(self):
        # find an input with two erroneous blocks
        found = None
        for a in range(256):
            for b in range(256):
                if len(detect_errors(CFG, a, b)) >= 2:
                    found = (a, b)
                    break
            if found:
                break
        assert found is not None
        a, b = found
        flagged = detect_errors(CFG, a, b)
        result, fixes = gear_add_corrected(CFG, a, b, budget=1)
        assert fixes == 1
        # the corrected (lowest) block now matches the exact sum...
        sub = CFG.subadders()[flagged[0]]
        width = sub.high - sub.result_low + 1
        mask = ((1 << width) - 1)
        assert (result >> sub.result_low) & mask == \
            ((a + b) >> sub.result_low) & mask
        # ...but the result as a whole is still wrong.
        assert result != a + b

    def test_negative_budget_rejected(self):
        with pytest.raises(AnalysisError):
            gear_add_corrected(CFG, 1, 1, budget=-1)


class TestCountDistribution:
    def test_pmf_sums_to_one(self):
        pmf = error_count_distribution(CFG, 0.5, 0.5)
        assert sum(pmf) == pytest.approx(1.0, abs=1e-12)
        assert len(pmf) == CFG.num_subadders  # counts 0..k-1

    def test_zero_count_matches_success_probability(self):
        pmf = error_count_distribution(CFG, 0.3, 0.8)
        assert pmf[0] == pytest.approx(
            1.0 - gear_error_probability(CFG, 0.3, 0.8), abs=1e-12
        )

    def test_matches_exhaustive_count_histogram(self):
        ref = np.zeros(CFG.num_subadders)
        for a in range(256):
            for b in range(256):
                ref[len(detect_errors(CFG, a, b))] += 1
        ref /= ref.sum()
        pmf = error_count_distribution(CFG, 0.5, 0.5)
        for got, expected in zip(pmf, ref):
            assert got == pytest.approx(expected, abs=1e-12)

    def test_expected_corrections_equals_marginal_sum(self):
        expected = expected_corrections(CFG, 0.4, 0.7)
        marginals = gear_subadder_error_probabilities(CFG, 0.4, 0.7)
        assert expected == pytest.approx(sum(marginals), abs=1e-12)

    def test_truncated_tail_bin(self):
        cfg = GeArConfig(12, 2, 2)  # 5 sub-adders, 4 events
        pmf = error_count_distribution(cfg, 0.5, 0.5, max_count=2)
        assert len(pmf) == 3
        assert sum(pmf) == pytest.approx(1.0, abs=1e-12)


class TestResidualError:
    def test_budget_zero_is_plain_error_probability(self):
        assert corrected_error_probability(CFG, 0, 0.5, 0.5) == pytest.approx(
            gear_error_probability(CFG, 0.5, 0.5), abs=1e-12
        )

    def test_full_budget_is_zero_error(self):
        budget = CFG.num_subadders - 1
        assert corrected_error_probability(CFG, budget, 0.5, 0.5) == \
            pytest.approx(0.0, abs=1e-12)

    def test_monotone_in_budget(self):
        cfg = GeArConfig(16, 2, 2)
        residuals = [
            corrected_error_probability(cfg, budget, 0.5, 0.5)
            for budget in range(cfg.num_subadders)
        ]
        assert residuals == sorted(residuals, reverse=True)

    def test_matches_functional_monte_carlo(self):
        rng = np.random.default_rng(0)
        budget = 1
        wrong = 0
        trials = 40_000
        a = rng.integers(0, 256, trials)
        b = rng.integers(0, 256, trials)
        for j in range(trials):
            result, _ = gear_add_corrected(CFG, int(a[j]), int(b[j]),
                                           budget=budget)
            if result != int(a[j]) + int(b[j]):
                wrong += 1
        analytical = corrected_error_probability(CFG, budget, 0.5, 0.5)
        assert wrong / trials == pytest.approx(analytical, abs=5e-3)

    def test_negative_budget_rejected(self):
        with pytest.raises(AnalysisError):
            corrected_error_probability(CFG, -1)
