"""Unit tests for repro.gear.config."""

import pytest

from repro.core.exceptions import GeArConfigError
from repro.gear.config import GeArConfig


class TestValidation:
    def test_paper_formula_for_k(self):
        # k = (N - L)/R + 1 with L = R + P (paper §2.2).
        assert GeArConfig(8, 2, 2).num_subadders == 3
        assert GeArConfig(8, 2, 0).num_subadders == 4
        assert GeArConfig(16, 4, 4).num_subadders == 3

    def test_single_subadder_is_exact(self):
        cfg = GeArConfig(8, 8, 0)
        assert cfg.num_subadders == 1
        assert cfg.is_exact

    def test_non_integral_k_rejected(self):
        with pytest.raises(GeArConfigError, match="multiple of R"):
            GeArConfig(8, 3, 1)  # (8-4)/3 not integral

    def test_window_longer_than_n_rejected(self):
        with pytest.raises(GeArConfigError, match="exceeds"):
            GeArConfig(4, 3, 2)

    @pytest.mark.parametrize("n,r,p", [(0, 1, 0), (4, 0, 0), (4, 1, -1)])
    def test_bad_parameters_rejected(self, n, r, p):
        with pytest.raises(GeArConfigError):
            GeArConfig(n, r, p)


class TestWindows:
    def test_subadder_layout(self):
        cfg = GeArConfig(8, 2, 2)
        subs = cfg.subadders()
        assert [(s.low, s.high, s.result_low) for s in subs] == [
            (0, 3, 0), (2, 5, 4), (4, 7, 6),
        ]
        assert all(s.width == cfg.l for s in subs)

    def test_result_sections_tile_the_word(self):
        for cfg in (GeArConfig(8, 2, 2), GeArConfig(12, 3, 3), GeArConfig(8, 1, 3)):
            covered = []
            for s in cfg.subadders():
                covered.extend(range(s.result_low, s.high + 1))
            assert sorted(covered) == list(range(cfg.n))

    def test_prediction_bits_empty_for_subadder0(self):
        cfg = GeArConfig(8, 2, 2)
        subs = cfg.subadders()
        low, high = subs[0].prediction_bits
        assert low == high  # empty range
        assert subs[1].prediction_bits == (2, 4)

    def test_error_checkpoints(self):
        cfg = GeArConfig(8, 2, 2)
        assert cfg.error_checkpoints() == [4, 6]
        assert GeArConfig(8, 8, 0).error_checkpoints() == []

    def test_checkpoints_below_n(self):
        for cfg in GeArConfig.valid_configs(10):
            assert all(cp < cfg.n for cp in cfg.error_checkpoints())


class TestEnumeration:
    def test_valid_configs_are_valid(self):
        configs = GeArConfig.valid_configs(8)
        assert configs  # non-empty
        assert all(c.n == 8 for c in configs)
        assert GeArConfig(8, 2, 2) in configs
        # the exact adder is always among them
        assert GeArConfig(8, 8, 0) in configs

    def test_describe_mentions_parameters(self):
        text = GeArConfig(8, 2, 2).describe()
        assert "N=8" in text and "R=2" in text and "P=2" in text and "k=3" in text
