"""Tests for repro.gear.analysis (exact DP vs IE vs simulation)."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.gear.analysis import (
    gear_error_probability,
    gear_exhaustive,
    gear_inclusion_exclusion,
    gear_monte_carlo,
    gear_subadder_error_probabilities,
    gear_success_probability,
)
from repro.gear.config import GeArConfig
from repro.gear.functional import gear_add_array


def _exhaustive_weighted(config, p_a, p_b):
    """Brute-force weighted error probability over all operand pairs."""
    n = config.n
    values = np.arange(1 << n, dtype=np.int64)
    a, b = np.meshgrid(values, values, indexing="ij")
    a, b = a.ravel(), b.ravel()
    wrong = gear_add_array(config, a, b) != (a + b)
    weights = np.ones(a.size)
    for i in range(n):
        pa = p_a[i] if isinstance(p_a, list) else p_a
        pb = p_b[i] if isinstance(p_b, list) else p_b
        weights *= np.where((a >> i) & 1 == 1, pa, 1 - pa)
        weights *= np.where((b >> i) & 1 == 1, pb, 1 - pb)
    return float(weights[wrong].sum())


CONFIGS = [
    GeArConfig(4, 2, 0),
    GeArConfig(6, 2, 2),
    GeArConfig(8, 2, 2),
    GeArConfig(8, 1, 3),   # heavy overlap: P > R
    GeArConfig(8, 4, 0),
    GeArConfig(6, 1, 1),
]


class TestExactDP:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
    def test_matches_weighted_enumeration_equiprobable(self, config):
        ref = _exhaustive_weighted(config, 0.5, 0.5)
        got = gear_error_probability(config, 0.5, 0.5)
        assert got == pytest.approx(ref, abs=1e-12)

    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
    def test_matches_weighted_enumeration_biased(self, config):
        p_a = [0.1 + 0.08 * i for i in range(config.n)]
        p_b = [0.9 - 0.07 * i for i in range(config.n)]
        ref = _exhaustive_weighted(config, p_a, p_b)
        got = gear_error_probability(config, p_a, p_b)
        assert got == pytest.approx(ref, abs=1e-12)

    def test_exact_config_has_zero_error(self):
        assert gear_error_probability(GeArConfig(8, 8, 0)) == pytest.approx(0.0)

    def test_matches_exhaustive_count(self):
        cfg = GeArConfig(8, 2, 2)
        errors, total = gear_exhaustive(cfg)
        assert errors / total == pytest.approx(
            gear_error_probability(cfg, 0.5, 0.5), abs=1e-12
        )

    def test_more_prediction_bits_reduce_error(self):
        # GeAr(8, 2, P): raising P monotonically lowers the error.
        errors = [
            gear_error_probability(GeArConfig(8, 2, p)) for p in (0, 2, 4, 6)
        ]
        assert errors == sorted(errors, reverse=True)
        assert errors[2] > 0.0      # P=4 is still approximate (k=2)
        assert errors[3] == 0.0     # P=6 makes L=N: a single exact window

    def test_success_complements_error(self):
        cfg = GeArConfig(6, 2, 2)
        assert gear_success_probability(cfg, 0.3, 0.7) == pytest.approx(
            1 - gear_error_probability(cfg, 0.3, 0.7)
        )


class TestSubAdderMarginals:
    def test_marginal_count(self):
        cfg = GeArConfig(8, 2, 2)
        marginals = gear_subadder_error_probabilities(cfg)
        assert len(marginals) == cfg.num_subadders - 1

    def test_known_value_for_p0_split(self):
        # GeAr(4,2,0): sub-adder 1 errs iff the true carry into bit 2 is
        # 1.  For uniform bits that probability is P(carry of 2-bit
        # add) = (2^2-1)* ... = by direct enumeration 6/16.
        cfg = GeArConfig(4, 2, 0)
        (marginal,) = gear_subadder_error_probabilities(cfg)
        count = sum(
            1 for a in range(4) for b in range(4) if a + b >= 4
        )
        assert marginal == pytest.approx(count / 16)

    def test_union_bound(self):
        cfg = GeArConfig(8, 1, 3)
        total = gear_error_probability(cfg)
        marginals = gear_subadder_error_probabilities(cfg)
        assert total <= sum(marginals) + 1e-12
        assert total >= max(marginals) - 1e-12


class TestInclusionExclusionBaseline:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
    def test_agrees_with_dp(self, config):
        report = gear_inclusion_exclusion(config, 0.4, 0.6)
        dp = gear_error_probability(config, 0.4, 0.6)
        assert report.p_error == pytest.approx(dp, abs=1e-10)

    def test_term_count(self):
        cfg = GeArConfig(8, 2, 2)  # k = 3 -> 2 events -> 3 terms
        report = gear_inclusion_exclusion(cfg)
        assert report.terms_evaluated == 3
        assert report.num_subadders == 3

    def test_width_guard(self):
        cfg = GeArConfig(46, 2, 2)  # k = 22 -> 21 events
        with pytest.raises(AnalysisError):
            gear_inclusion_exclusion(cfg)


class TestMonteCarlo:
    def test_converges_to_dp(self):
        cfg = GeArConfig(8, 2, 2)
        dp = gear_error_probability(cfg, 0.5, 0.5)
        mc = gear_monte_carlo(cfg, 0.5, 0.5, samples=400_000, seed=2)
        assert abs(mc - dp) < 3e-3

    def test_sample_validation(self):
        with pytest.raises(AnalysisError):
            gear_monte_carlo(GeArConfig(4, 2, 0), samples=0)


class TestScalability:
    def test_wide_gear_analysis_is_fast_and_sane(self):
        # 64-bit GeAr: hopeless for enumeration, trivial for the DP.
        cfg = GeArConfig(64, 4, 4)
        p = gear_error_probability(cfg)
        assert 0.0 < p < 1.0
        # sanity: more sub-adders (same P) err more than fewer.
        p_fewer = gear_error_probability(GeArConfig(64, 12, 4))
        assert p > p_fewer
