"""Unit tests for repro.gear.functional."""

import numpy as np
import pytest

from repro.core.exceptions import GeArConfigError
from repro.gear.config import GeArConfig
from repro.gear.functional import gear_add, gear_add_array, gear_error_positions


class TestGearAdd:
    def test_exact_configuration_is_plain_addition(self):
        cfg = GeArConfig(6, 6, 0)
        for a in range(64):
            for b in range(0, 64, 7):
                assert gear_add(cfg, a, b) == a + b

    def test_error_requires_carry_across_split(self):
        cfg = GeArConfig(4, 2, 0)  # split at bit 2, no prediction
        # 0b0011 + 0b0001 carries from bit 1 into bit 2: sub-adder 1
        # misses it.
        assert gear_add(cfg, 0b0011, 0b0001) != 0b0100
        # Without a crossing carry the result is exact.
        assert gear_add(cfg, 0b0101, 0b0010) == 0b0111

    def test_prediction_bits_recover_short_carries(self):
        # With P=2 the sub-adder sees two bits below its result section;
        # a carry generated inside that window is correctly predicted.
        cfg = GeArConfig(8, 2, 2)
        a, b = 0b00001100, 0b00000100  # carry generated at bit 2->3->4
        assert gear_add(cfg, a, b) == a + b

    def test_long_propagation_still_fails(self):
        # A carry generated below the prediction window that must ripple
        # through ALL P prediction bits is lost.
        cfg = GeArConfig(8, 2, 2)
        a, b = 0b00001111, 0b00000001  # generate at bit 0, propagate up
        assert gear_add(cfg, a, b) != a + b

    def test_final_carry_out_present(self):
        cfg = GeArConfig(4, 4, 0)
        assert gear_add(cfg, 0b1111, 0b0001) == 0b10000

    def test_operand_validation(self):
        cfg = GeArConfig(4, 2, 0)
        with pytest.raises(GeArConfigError):
            gear_add(cfg, 16, 0)
        with pytest.raises(GeArConfigError):
            gear_add(cfg, 0, -1)


class TestGearAddArray:
    def test_matches_scalar_exhaustively(self):
        cfg = GeArConfig(6, 2, 2)
        values = np.arange(64, dtype=np.int64)
        a, b = np.meshgrid(values, values, indexing="ij")
        a, b = a.ravel(), b.ravel()
        got = gear_add_array(cfg, a, b)
        for j in range(0, a.size, 17):
            assert got[j] == gear_add(cfg, int(a[j]), int(b[j]))

    def test_shape_validation(self):
        cfg = GeArConfig(4, 2, 0)
        with pytest.raises(GeArConfigError):
            gear_add_array(cfg, np.array([1, 2]), np.array([1]))
        with pytest.raises(GeArConfigError):
            gear_add_array(cfg, np.array([16]), np.array([0]))


class TestErrorPositions:
    def test_correct_addition_has_no_wrong_blocks(self):
        cfg = GeArConfig(8, 2, 2)
        assert gear_error_positions(cfg, 0b00000001, 0b00000010) == []

    def test_failing_block_is_identified(self):
        cfg = GeArConfig(4, 2, 0)
        wrong = gear_error_positions(cfg, 0b0011, 0b0001)
        assert wrong == [1]

    def test_all_positions_within_range(self):
        cfg = GeArConfig(8, 2, 2)
        rng = np.random.default_rng(5)
        for _ in range(200):
            a, b = int(rng.integers(256)), int(rng.integers(256))
            wrong = gear_error_positions(cfg, a, b)
            assert all(0 <= i < cfg.num_subadders for i in wrong)
            if gear_add(cfg, a, b) == a + b:
                assert wrong == []
            else:
                assert wrong
