"""Tests for named LLAA variants expressed as GeAr configurations."""

import pytest

from repro.core.exceptions import GeArConfigError
from repro.gear.analysis import gear_error_probability
from repro.gear.config import GeArConfig
from repro.gear.functional import gear_add
from repro.gear.variants import (
    aca_i,
    accurate_rca,
    etaii,
    named_variants,
    variant_comparison,
)


class TestAcaI:
    def test_mapping(self):
        config = aca_i(16, 4)
        assert (config.n, config.r, config.p) == (16, 1, 3)
        assert config.l == 4

    def test_window_equals_width_is_exact(self):
        config = aca_i(8, 8)
        assert config.is_exact
        for a in range(0, 256, 37):
            for b in range(0, 256, 41):
                assert gear_add(config, a, b) == a + b

    def test_bigger_windows_err_less(self):
        errors = [gear_error_probability(aca_i(12, w)) for w in (2, 4, 6)]
        assert errors == sorted(errors, reverse=True)

    def test_validation(self):
        with pytest.raises(GeArConfigError):
            aca_i(8, 0)
        with pytest.raises(GeArConfigError):
            aca_i(8, 9)


class TestEtaii:
    def test_mapping(self):
        config = etaii(16, 4)
        assert (config.n, config.r, config.p) == (16, 4, 4)
        assert config.num_subadders == 3

    def test_block_must_tile(self):
        with pytest.raises(GeArConfigError, match="tile"):
            etaii(16, 5)
        with pytest.raises(GeArConfigError, match="two"):
            etaii(8, 8)

    def test_larger_blocks_err_less(self):
        errors = [gear_error_probability(etaii(16, b)) for b in (2, 4, 8)]
        assert errors == sorted(errors, reverse=True)


class TestComparison:
    def test_rca_is_exact(self):
        assert gear_error_probability(accurate_rca(12)) == pytest.approx(0.0)

    def test_named_variants_cover_families(self):
        variants = named_variants(16)
        assert "RCA(16)" in variants
        assert "ACA-I(16,4)" in variants
        assert "ETAII(16,4)" in variants
        assert all(isinstance(c, GeArConfig) for c in variants.values())

    def test_comparison_rows_sorted_and_consistent(self):
        rows = variant_comparison(12)
        errors = [r["p_error"] for r in rows]
        assert errors == sorted(errors)
        assert errors[0] == 0.0  # the RCA leads
        # every approximate variant is faster than the exact RCA
        rca_delay = next(r for r in rows if r["name"] == "RCA(12)")["delay"]
        for row in rows:
            if row["p_error"] > 0:
                assert row["delay"] < rca_delay

    def test_etaii_matches_equivalent_gear_analysis(self):
        # the named wrapper must be bit-identical to the raw config
        config = etaii(12, 3)
        raw = GeArConfig(12, 3, 3)
        for a in range(0, 4096, 131):
            for b in range(0, 4096, 173):
                assert gear_add(config, a, b) == gear_add(raw, a, b)
