"""Run the doctest examples embedded in the library's docstrings.

Every ``>>>`` example in a public docstring is executable documentation;
this module keeps them honest.
"""

import doctest

import pytest

import repro.ant
import repro.core.adder_zoo
import repro.core.correlated
import repro.core.magnitude
import repro.core.masking
import repro.core.matrices
import repro.core.metrics
import repro.core.recursive
import repro.core.symbolic
import repro.core.truth_table
import repro.core.types
import repro.core.vectorized
import repro.circuits.qm
import repro.datapath
import repro.gear.config
import repro.gear.functional
import repro.gear.variants
import repro.multiop.compressor
import repro.simulation.functional

MODULES = [
    repro.core.types,
    repro.core.truth_table,
    repro.core.matrices,
    repro.core.recursive,
    repro.core.vectorized,
    repro.core.magnitude,
    repro.core.masking,
    repro.core.metrics,
    repro.core.symbolic,
    repro.core.correlated,
    repro.core.adder_zoo,
    repro.circuits.qm,
    repro.gear.config,
    repro.gear.functional,
    repro.gear.variants,
    repro.multiop.compressor,
    repro.simulation.functional,
    repro.datapath,
    repro.ant,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module.__name__}"
    )
