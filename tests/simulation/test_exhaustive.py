"""Unit tests for repro.simulation.exhaustive (exact oracle)."""

import pytest

from repro.core.exceptions import AnalysisError
from repro.core.magnitude import error_pmf
from repro.core.recursive import error_probability
from repro.core.truth_table import ACCURATE
from repro.simulation.exhaustive import (
    exhaustive_error_count,
    exhaustive_error_pmf,
    exhaustive_error_probability,
)


class TestErrorProbability:
    def test_matches_analytical_equiprobable(self, lpaa_cell):
        # The paper's "100 percent match (up to any decimal precision)".
        for width in (1, 2, 5):
            exact = exhaustive_error_probability(lpaa_cell, width)
            analytical = error_probability(lpaa_cell, width, 0.5, 0.5, 0.5)
            assert exact == pytest.approx(float(analytical), abs=1e-12)

    def test_matches_analytical_weighted(self, lpaa_cell):
        # Stronger than the paper: the weighted enumeration is exact for
        # arbitrary probabilities, not just p=0.5.
        p_a = [0.15, 0.9, 0.42, 0.68]
        p_b = [0.33, 0.05, 0.77, 0.5]
        exact = exhaustive_error_probability(lpaa_cell, 4, p_a, p_b, 0.22)
        analytical = error_probability(lpaa_cell, 4, p_a, p_b, 0.22)
        assert exact == pytest.approx(float(analytical), abs=1e-12)

    def test_accurate_adder_never_errs(self):
        assert exhaustive_error_probability(ACCURATE, 4) == 0.0

    def test_hybrid_chain_without_masking(self):
        # Every divergence of these cells corrupts a sum bit, so the
        # recursion stays exact for the mixed chain.
        chain = ["LPAA 2", "LPAA 1", "LPAA 7"]
        from repro.core.masking import chain_is_exact

        assert chain_is_exact(chain)
        exact = exhaustive_error_probability(chain, p_a=0.3, p_b=0.3, p_cin=0.3)
        analytical = error_probability(chain, None, 0.3, 0.3, 0.3)
        assert exact == pytest.approx(float(analytical), abs=1e-12)

    def test_hybrid_chain_with_masking_is_upper_bounded(self):
        # LPAA 6's silent carry drop at (1,1,0) followed by LPAA 1's
        # (0,1,0) row re-converges the carry chains without touching a
        # sum bit, so this mix CAN mask: the recursion must then be a
        # strict upper bound on the functional error probability.
        chain = ["LPAA 6", "LPAA 1", "LPAA 7"]
        from repro.core.masking import chain_is_exact

        assert not chain_is_exact(chain)
        functional = exhaustive_error_probability(chain, p_a=0.3, p_b=0.3,
                                                  p_cin=0.3)
        analytical = float(error_probability(chain, None, 0.3, 0.3, 0.3))
        assert analytical > functional

    def test_width_guard(self):
        with pytest.raises(AnalysisError, match="2\\^"):
            exhaustive_error_probability("LPAA 1", 17)


class TestErrorCount:
    def test_total_is_2_pow_2n_plus_1(self):
        errors, total = exhaustive_error_count("LPAA 1", 3)
        assert total == 2 ** 7

    def test_count_ratio_equals_probability(self, lpaa_cell):
        errors, total = exhaustive_error_count(lpaa_cell, 4)
        prob = exhaustive_error_probability(lpaa_cell, 4)
        assert errors / total == pytest.approx(prob, abs=1e-12)

    def test_single_stage_counts_error_rows(self, lpaa_cell):
        # At width 1 every truth-table row appears exactly once; the
        # error count must equal the cell's error-case count.
        errors, total = exhaustive_error_count(lpaa_cell, 1)
        assert total == 8
        assert errors == lpaa_cell.num_error_cases()


class TestErrorPmf:
    def test_matches_dp_pmf(self, lpaa_cell):
        p_a = [0.2, 0.8, 0.5]
        ref = error_pmf(lpaa_cell, 3, p_a, 0.4, 0.6)
        got = exhaustive_error_pmf(lpaa_cell, 3, p_a, 0.4, 0.6)
        assert set(got) == set(ref)
        for delta in ref:
            assert got[delta] == pytest.approx(ref[delta], abs=1e-12)

    def test_pmf_sums_to_one(self, lpaa_cell):
        pmf = exhaustive_error_pmf(lpaa_cell, 2)
        assert sum(pmf.values()) == pytest.approx(1.0, abs=1e-12)
