"""Unit tests for repro.simulation.functional."""

import numpy as np
import pytest

from repro.core.adders import LPAA5
from repro.core.exceptions import ChainLengthError, TruthTableError
from repro.core.truth_table import ACCURATE
from repro.simulation.functional import exact_add, ripple_add, ripple_add_array


class TestRippleAdd:
    def test_accurate_chain_is_plain_addition(self):
        for a in range(8):
            for b in range(8):
                for cin in (0, 1):
                    assert ripple_add(ACCURATE, a, b, cin, 3) == a + b + cin

    def test_known_lpaa5_example(self):
        # LPAA 5 at (a,b,cin)=(1,1,0) -> sum 1, carry 0 (error row 6 says
        # sum=1 carry=1); trace 3+1 through 2 bits by hand:
        # stage0: (1,1,0) -> s=1, c=1; stage1: (1,0,1) -> s=0, c=1.
        assert ripple_add(LPAA5, 3, 1, 0, 2) == 0b101
        # and the exact result would be 4, so this case errs.
        assert exact_add(3, 1, 0) == 4

    def test_hybrid_chain(self):
        # accurate LSB + LPAA5 MSB only corrupts the upper stage.
        chain = [ACCURATE, LPAA5]
        for a in range(4):
            for b in range(4):
                got = ripple_add(chain, a, b, 0)
                s0, c0 = ACCURATE.evaluate(a & 1, b & 1, 0)
                s1, c1 = LPAA5.evaluate((a >> 1) & 1, (b >> 1) & 1, c0)
                assert got == s0 | (s1 << 1) | (c1 << 2)

    def test_result_includes_final_carry(self):
        assert ripple_add(ACCURATE, 0b11, 0b11, 1, 2) == 0b111

    def test_operand_range_validation(self):
        with pytest.raises(ChainLengthError):
            ripple_add(ACCURATE, 4, 0, 0, 2)
        with pytest.raises(ChainLengthError):
            ripple_add(ACCURATE, 0, -1, 0, 2)

    def test_cin_validation(self):
        with pytest.raises(TruthTableError):
            ripple_add(ACCURATE, 1, 1, 2, 2)


class TestRippleAddArray:
    def test_matches_scalar_version_everywhere(self, lpaa_cell):
        width = 3
        a, b, cin = np.meshgrid(
            np.arange(8), np.arange(8), np.array([0, 1]), indexing="ij"
        )
        a, b, cin = a.ravel(), b.ravel(), cin.ravel()
        got = ripple_add_array(lpaa_cell, a, b, cin, width)
        for j in range(a.size):
            assert got[j] == ripple_add(
                lpaa_cell, int(a[j]), int(b[j]), int(cin[j]), width
            )

    def test_scalar_cin_broadcasts(self):
        a = np.array([1, 2, 3])
        b = np.array([3, 2, 1])
        got = ripple_add_array(ACCURATE, a, b, 1, 2)
        assert np.array_equal(got, a + b + 1)

    def test_preserves_shape(self):
        a = np.arange(4).reshape(2, 2)
        got = ripple_add_array(ACCURATE, a, a, 0, 2)
        assert got.shape == (2, 2)
        assert np.array_equal(got, 2 * a)

    def test_validation(self):
        with pytest.raises(ChainLengthError):
            ripple_add_array(ACCURATE, np.array([4]), np.array([0]), 0, 2)
        with pytest.raises(ChainLengthError):
            ripple_add_array(ACCURATE, np.array([1, 2]), np.array([1]), 0, 2)
        with pytest.raises(ChainLengthError):
            ripple_add_array(ACCURATE, np.array([-1]), np.array([0]), 0, 2)
        with pytest.raises(TruthTableError):
            ripple_add_array(ACCURATE, np.array([1]), np.array([1]), 3, 2)
