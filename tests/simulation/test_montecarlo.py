"""Unit tests for repro.simulation.montecarlo."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.core.recursive import error_probability
from repro.simulation.montecarlo import (
    MonteCarloResult,
    simulate_error_probability,
    simulate_samples,
)


class TestSimulateErrorProbability:
    def test_three_decimal_agreement_at_1m_samples(self):
        # The paper's Table 6 claim, at the Table 7 operating point.
        analytical = float(error_probability("LPAA 6", 8, 0.1, 0.1, 0.1))
        result = simulate_error_probability(
            "LPAA 6", 8, 0.1, 0.1, 0.1, samples=1_000_000, seed=7
        )
        assert abs(result.p_error - analytical) < 1.5e-3

    def test_seed_reproducibility(self):
        a = simulate_error_probability("LPAA 1", 4, 0.3, 0.3, 0.3,
                                       samples=10_000, seed=42)
        b = simulate_error_probability("LPAA 1", 4, 0.3, 0.3, 0.3,
                                       samples=10_000, seed=42)
        assert a.p_error == b.p_error
        assert a.errors == b.errors

    def test_result_bookkeeping(self):
        result = simulate_error_probability("LPAA 2", 3, samples=5_000, seed=1)
        assert isinstance(result, MonteCarloResult)
        assert result.samples == 5_000
        assert result.p_error == pytest.approx(result.errors / 5_000)
        assert result.p_success == pytest.approx(1 - result.p_error)
        assert 0 < result.half_width() < 0.05

    def test_estimate_within_confidence_interval(self, lpaa_cell):
        analytical = float(error_probability(lpaa_cell, 5, 0.4, 0.4, 0.4))
        result = simulate_error_probability(
            lpaa_cell, 5, 0.4, 0.4, 0.4, samples=200_000, seed=123
        )
        # 4-sigma band: overwhelmingly unlikely to fail by chance.
        assert abs(result.p_error - analytical) < result.half_width(z=4.0) + 1e-9

    def test_deterministic_inputs(self):
        # p in {0,1} pins the operands; the estimate must be exactly 0/1.
        result = simulate_error_probability(
            "LPAA 1", 2, p_a=[1, 1], p_b=[1, 1], p_cin=1,
            samples=1_000, seed=3,
        )
        assert result.p_error in (0.0, 1.0)


class TestSimulateSamples:
    def test_shapes_and_ranges(self):
        approx, exact = simulate_samples("LPAA 4", 4, samples=1_000, seed=0)
        assert approx.shape == exact.shape == (1_000,)
        assert approx.min() >= 0 and approx.max() < 1 << 5
        assert exact.max() <= 15 + 15 + 1

    def test_batching_preserves_stream(self):
        big = simulate_samples("LPAA 3", 3, samples=3_000, seed=9,
                               batch_size=1_000)
        small = simulate_samples("LPAA 3", 3, samples=3_000, seed=9,
                                 batch_size=3_000)
        # Different batching slices the identical RNG stream differently,
        # so only distributional agreement is required.
        assert np.mean(big[0] != big[1]) == pytest.approx(
            np.mean(small[0] != small[1]), abs=0.05
        )

    def test_operand_bias_respected(self):
        approx, exact = simulate_samples(
            "accurate", 8, p_a=0.9, p_b=0.1, samples=50_000, seed=11
        )
        # E[a] ~ 0.9 * 255, E[b] ~ 0.1 * 255; exact = a + b + cin.
        assert exact.mean() == pytest.approx(0.9 * 255 + 0.1 * 255 + 0.5, rel=0.02)

    def test_sample_count_validation(self):
        with pytest.raises(AnalysisError):
            simulate_samples("LPAA 1", 2, samples=0)


class TestConfidenceIntervals:
    def _result(self, errors, samples=10_000):
        return MonteCarloResult(p_error=errors / samples, samples=samples,
                                errors=errors, seed=0)

    def test_normal_is_the_default(self):
        result = self._result(2_500)
        assert result.half_width() == result.half_width(method="normal")

    def test_normal_half_width_value(self):
        result = self._result(2_500)
        p = 0.25
        expected = 1.96 * (p * (1 - p) / 10_000) ** 0.5
        assert result.half_width() == pytest.approx(expected)

    def test_wilson_interval_brackets_the_estimate(self):
        result = self._result(2_500)
        lo, hi = result.wilson_interval()
        assert lo < result.p_error < hi
        # Wilson and Wald agree closely away from the boundaries.
        assert (hi - lo) / 2 == pytest.approx(result.half_width(), rel=0.01)

    def test_wilson_stays_positive_at_zero_errors(self):
        result = self._result(0)
        assert result.half_width() == 0.0  # the Wald degeneracy
        lo, hi = result.wilson_interval()
        assert lo == 0.0
        assert hi > 0.0  # "no errors seen" != "errors impossible"
        assert result.half_width(method="wilson") == pytest.approx(
            (hi - lo) / 2
        )

    def test_wilson_is_clamped_to_unit_interval(self):
        lo, hi = self._result(10_000).wilson_interval()
        assert 0.0 <= lo <= hi <= 1.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown interval method"):
            self._result(1).half_width(method="bootstrap")


class TestManifest:
    def test_result_carries_a_manifest(self):
        result = simulate_error_probability("LPAA 2", 3, samples=1_000,
                                            seed=5)
        manifest = result.manifest
        assert manifest is not None
        assert manifest.kind == "montecarlo"
        assert manifest.seed == 5
        assert manifest.samples == 1_000
        assert manifest.cells == ("LPAA 2",) * 3
        assert manifest.wall_time_s > 0.0

    def test_fingerprint_is_seed_deterministic(self):
        a = simulate_error_probability("LPAA 1", 4, samples=1_000, seed=9)
        b = simulate_error_probability("LPAA 1", 4, samples=1_000, seed=9)
        c = simulate_error_probability("LPAA 1", 4, samples=1_000, seed=10)
        assert a.manifest.fingerprint() == b.manifest.fingerprint()
        assert a.manifest.fingerprint() != c.manifest.fingerprint()


class TestProgressReporting:
    def test_progress_callback_fires_in_order(self):
        ticks = []
        simulate_samples(
            "LPAA 1", 4, samples=10_000, batch_size=1_000, seed=0,
            progress=lambda done, total, label: ticks.append((done, total)),
        )
        assert ticks[0] == (1_000, 10_000)
        assert ticks[-1] == (10_000, 10_000)
        assert [d for d, _ in ticks] == sorted(d for d, _ in ticks)
