"""Unit tests for repro.simulation.montecarlo."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.core.recursive import error_probability
from repro.simulation.montecarlo import (
    MonteCarloResult,
    simulate_error_probability,
    simulate_samples,
)


class TestSimulateErrorProbability:
    def test_three_decimal_agreement_at_1m_samples(self):
        # The paper's Table 6 claim, at the Table 7 operating point.
        analytical = float(error_probability("LPAA 6", 8, 0.1, 0.1, 0.1))
        result = simulate_error_probability(
            "LPAA 6", 8, 0.1, 0.1, 0.1, samples=1_000_000, seed=7
        )
        assert abs(result.p_error - analytical) < 1.5e-3

    def test_seed_reproducibility(self):
        a = simulate_error_probability("LPAA 1", 4, 0.3, 0.3, 0.3,
                                       samples=10_000, seed=42)
        b = simulate_error_probability("LPAA 1", 4, 0.3, 0.3, 0.3,
                                       samples=10_000, seed=42)
        assert a.p_error == b.p_error
        assert a.errors == b.errors

    def test_result_bookkeeping(self):
        result = simulate_error_probability("LPAA 2", 3, samples=5_000, seed=1)
        assert isinstance(result, MonteCarloResult)
        assert result.samples == 5_000
        assert result.p_error == pytest.approx(result.errors / 5_000)
        assert result.p_success == pytest.approx(1 - result.p_error)
        assert 0 < result.half_width() < 0.05

    def test_estimate_within_confidence_interval(self, lpaa_cell):
        analytical = float(error_probability(lpaa_cell, 5, 0.4, 0.4, 0.4))
        result = simulate_error_probability(
            lpaa_cell, 5, 0.4, 0.4, 0.4, samples=200_000, seed=123
        )
        # 4-sigma band: overwhelmingly unlikely to fail by chance.
        assert abs(result.p_error - analytical) < result.half_width(z=4.0) + 1e-9

    def test_deterministic_inputs(self):
        # p in {0,1} pins the operands; the estimate must be exactly 0/1.
        result = simulate_error_probability(
            "LPAA 1", 2, p_a=[1, 1], p_b=[1, 1], p_cin=1,
            samples=1_000, seed=3,
        )
        assert result.p_error in (0.0, 1.0)


class TestSimulateSamples:
    def test_shapes_and_ranges(self):
        approx, exact = simulate_samples("LPAA 4", 4, samples=1_000, seed=0)
        assert approx.shape == exact.shape == (1_000,)
        assert approx.min() >= 0 and approx.max() < 1 << 5
        assert exact.max() <= 15 + 15 + 1

    def test_batching_preserves_stream(self):
        big = simulate_samples("LPAA 3", 3, samples=3_000, seed=9,
                               batch_size=1_000)
        small = simulate_samples("LPAA 3", 3, samples=3_000, seed=9,
                                 batch_size=3_000)
        # Different batching slices the identical RNG stream differently,
        # so only distributional agreement is required.
        assert np.mean(big[0] != big[1]) == pytest.approx(
            np.mean(small[0] != small[1]), abs=0.05
        )

    def test_operand_bias_respected(self):
        approx, exact = simulate_samples(
            "accurate", 8, p_a=0.9, p_b=0.1, samples=50_000, seed=11
        )
        # E[a] ~ 0.9 * 255, E[b] ~ 0.1 * 255; exact = a + b + cin.
        assert exact.mean() == pytest.approx(0.9 * 255 + 0.1 * 255 + 0.5, rel=0.02)

    def test_sample_count_validation(self):
        with pytest.raises(AnalysisError):
            simulate_samples("LPAA 1", 2, samples=0)
