"""Unit tests for repro.simulation.cost_model (Fig. 1 substrate)."""

import pytest

from repro.core.exceptions import AnalysisError
from repro.simulation.cost_model import (
    analytical_operation_count,
    exhaustive_case_count,
    exhaustive_operation_count,
    measure_analytical_time,
    measure_exhaustive_time,
)


class TestClosedForms:
    def test_case_count_formula(self):
        assert exhaustive_case_count(1) == 8
        assert exhaustive_case_count(4) == 2 ** 9
        assert exhaustive_case_count(16) == 2 ** 33

    def test_case_count_matches_paper_text(self):
        # "2^2N . 2 cases in total for N-bit un-symmetrical adders"
        for n in (2, 6, 10):
            assert exhaustive_case_count(n) == (2 ** (2 * n)) * 2

    def test_operation_count_dominates_case_count(self):
        for n in (2, 8, 12):
            assert exhaustive_operation_count(n) > exhaustive_case_count(n)

    def test_exponential_growth(self):
        # Doubling-like growth: each +1 bit multiplies cases by 4.
        assert exhaustive_case_count(9) == 4 * exhaustive_case_count(8)

    def test_analytical_count_is_linear(self):
        assert analytical_operation_count(10) == 2 * analytical_operation_count(5)
        assert analytical_operation_count(8, per_bit_probabilities=False) == 8 * 32
        assert analytical_operation_count(8, per_bit_probabilities=True) == 8 * 48

    def test_width_validation(self):
        with pytest.raises(AnalysisError):
            exhaustive_case_count(0)


class TestMeasurement:
    def test_exhaustive_timing_points(self):
        points = measure_exhaustive_time("LPAA 1", widths=[2, 4])
        assert [p.width for p in points] == [2, 4]
        assert all(p.seconds > 0 for p in points)
        assert points[0].cases == exhaustive_case_count(2)

    def test_exhaustive_refuses_huge_width(self):
        with pytest.raises(AnalysisError):
            measure_exhaustive_time("LPAA 1", widths=[20])

    def test_analytical_time_is_submillisecond(self):
        # The paper's "<1 ms for any length" claim, checked at 64 bits.
        points = measure_analytical_time("LPAA 1", widths=[8, 64])
        assert all(p.seconds < 1e-3 for p in points)

    def test_analytical_scaling_is_tame(self):
        # 64 bits should cost nowhere near 8x of 8 bits wall-clock-wise
        # being generous about timer noise: assert < 100x.
        points = measure_analytical_time("LPAA 1", widths=[8, 64], repeats=5)
        assert points[1].seconds < 100 * max(points[0].seconds, 1e-7)
