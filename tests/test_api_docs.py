"""The generated API reference must match the live code (no drift)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "make_api_docs.py"
REFERENCE = REPO_ROOT / "docs" / "api_reference.md"


def _load_generator():
    spec = importlib.util.spec_from_file_location("make_api_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_reference_is_current():
    generator = _load_generator()
    assert REFERENCE.exists(), (
        "docs/api_reference.md missing; run "
        "PYTHONPATH=src python scripts/make_api_docs.py"
    )
    assert REFERENCE.read_text() == generator.render(), (
        "docs/api_reference.md is stale; regenerate with "
        "PYTHONPATH=src python scripts/make_api_docs.py"
    )


def test_check_mode_passes_on_current_tree():
    generator = _load_generator()
    assert generator.main(["--check"]) == 0


def test_reference_covers_the_parallel_executor():
    text = REFERENCE.read_text()
    assert "## `repro.engine.parallel`" in text
    assert "run_batch_parallel" in text
    assert "resolve_jobs" in text


def test_signatures_are_annotation_free():
    # Annotation reprs differ across interpreter versions; the page must
    # stay byte-identical on every CI Python.
    for line in REFERENCE.read_text().splitlines():
        if line.startswith("### `") or line.startswith("- `."):
            assert "Optional[" not in line, line
            assert "->" not in line, line
            assert ": " not in line.split("`")[1], line
