"""Tests for the Algorithmic Noise Tolerance substrate."""

import itertools

import numpy as np
import pytest

from repro.ant import AntAdder, ant_quality_experiment
from repro.core.exceptions import AnalysisError, ChainLengthError


class TestConstruction:
    def test_default_threshold(self):
        adder = AntAdder(8, "LPAA 2", truncation_bits=3)
        assert adder.threshold == 1 << 4
        assert adder.truncation_bits == 3
        assert adder.width == 8

    def test_bounds(self):
        adder = AntAdder(8, "LPAA 2", truncation_bits=3)
        assert adder.replica_error_bound() == 2 * 7 + 1
        assert adder.worst_case_error_bound() == 16 + 15

    def test_validation(self):
        with pytest.raises(ChainLengthError):
            AntAdder(0, "LPAA 1", 0)
        with pytest.raises(AnalysisError):
            AntAdder(4, "LPAA 1", 5)
        with pytest.raises(AnalysisError):
            AntAdder(4, "LPAA 1", 2, threshold=-1)


class TestFunctional:
    def test_accurate_main_never_uses_replica(self):
        adder = AntAdder(6, "accurate", truncation_bits=2)
        for a in range(0, 64, 5):
            for b in range(0, 64, 7):
                result = adder.add(a, b)
                assert not result.used_replica
                assert result.value == a + b

    def test_replica_is_truncated_exact_sum(self):
        adder = AntAdder(6, "LPAA 2", truncation_bits=2)
        result = adder.add(0b101111, 0b001101)
        expected = ((0b101111 >> 2) + (0b001101 >> 2)) << 2
        assert result.replica_value == expected

    def test_worst_case_bound_holds_exhaustively(self):
        # The defining ANT property: no input can err beyond the bound,
        # even though the raw main adder (full-width LPAA 2) can.
        adder = AntAdder(6, "LPAA 2", truncation_bits=2)
        bound = adder.worst_case_error_bound()
        raw_worst = 0
        ant_worst = 0
        for a, b in itertools.product(range(64), repeat=2):
            result = adder.add(a, b)
            ant_worst = max(ant_worst, abs(result.value - (a + b)))
            raw_worst = max(raw_worst, abs(result.main_value - (a + b)))
        assert ant_worst <= bound
        assert raw_worst > bound  # the protection is doing real work

    def test_array_matches_scalar(self, rng):
        adder = AntAdder(8, "LPAA 6", truncation_bits=3)
        a = rng.integers(0, 256, 200)
        b = rng.integers(0, 256, 200)
        values, used = adder.add_array(a, b)
        for j in range(200):
            result = adder.add(int(a[j]), int(b[j]))
            assert values[j] == result.value
            assert used[j] == result.used_replica


class TestQualityExperiment:
    def test_ant_improves_worst_case_and_mse(self):
        main, ant, usage = ant_quality_experiment(
            8, "LPAA 2", truncation_bits=3, samples=100_000, seed=0
        )
        assert ant.wce < main.wce
        assert ant.mse < main.mse
        assert 0.0 < usage < 1.0

    def test_zero_truncation_replica_is_exact(self):
        # k = 0: the replica IS the exact adder, so with threshold 0 the
        # ANT output can only deviate when main == exact... i.e. never.
        main, ant, usage = ant_quality_experiment(
            6, "LPAA 5", truncation_bits=0, samples=20_000, seed=1,
            threshold=0,
        )
        assert ant.error_rate == 0.0
        assert ant.wce == 0
        assert main.error_rate > 0.0

    def test_usage_rate_increases_with_worse_main(self):
        _, _, usage_good = ant_quality_experiment(
            8, "LPAA 7", truncation_bits=3, p=0.1, samples=50_000, seed=2
        )
        _, _, usage_bad = ant_quality_experiment(
            8, "LPAA 2", truncation_bits=3, p=0.1, samples=50_000, seed=2
        )
        assert usage_bad > usage_good

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ant_quality_experiment(8, "LPAA 1", 2, samples=0)
        with pytest.raises(AnalysisError):
            ant_quality_experiment(8, "LPAA 1", 2, p=1.5)
