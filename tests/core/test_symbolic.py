"""Tests for the symbolic closed-form error expressions."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import AnalysisError
from repro.core.recursive import error_probability
from repro.core.symbolic import Polynomial, symbolic_error_probability
from repro.core.truth_table import ACCURATE


class TestPolynomialAlgebra:
    def test_constants_and_variables(self):
        assert Polynomial.constant(0).is_zero()
        assert Polynomial.constant(3).evaluate() == 3
        p = Polynomial.variable("p")
        assert p.evaluate(p=Fraction(1, 2)) == Fraction(1, 2)
        assert p.degree() == 1

    def test_arithmetic_identities(self):
        p = Polynomial.variable("p")
        q = Polynomial.variable("q")
        expr = (1 - p) * (1 - q) + p * q
        assert expr.evaluate(p=0, q=0) == 1
        assert expr.evaluate(p=1, q=0) == 0
        assert expr.evaluate(p=Fraction(1, 2), q=Fraction(1, 2)) == Fraction(1, 2)

    def test_reflected_operators(self):
        p = Polynomial.variable("p")
        assert (1 - p).evaluate(p=Fraction(1, 4)) == Fraction(3, 4)
        assert (2 * p).evaluate(p=3) == 6
        assert (1 + p).evaluate(p=1) == 2

    def test_negation_and_subtraction(self):
        p = Polynomial.variable("p")
        assert (-(p - 1)).evaluate(p=0) == 1
        assert (p - p).is_zero()

    def test_multiplication_merges_exponents(self):
        p = Polynomial.variable("p")
        cubed = p * p * p
        assert cubed.degree() == 3
        assert cubed.evaluate(p=2) == 8

    def test_equality_with_scalars(self):
        assert Polynomial.constant(2) == 2
        assert (Polynomial.variable("p") * 0) == 0

    def test_missing_variable_on_evaluate(self):
        with pytest.raises(AnalysisError, match="missing values"):
            Polynomial.variable("p").evaluate()

    def test_substitute_partial(self):
        p = Polynomial.variable("p")
        q = Polynomial.variable("q")
        expr = (p * q + q).substitute(p=Fraction(1, 2))
        assert expr.variables() == ["q"]
        assert expr.evaluate(q=2) == 3

    def test_to_string(self):
        p = Polynomial.variable("p")
        expr = 1 - 2 * p * p + p * p * p
        assert expr.to_string() == "1 - 2*p^2 + p^3"
        assert Polynomial().to_string() == "0"

    def test_hash_consistency(self):
        p = Polynomial.variable("p")
        assert hash(p + 1 - 1) == hash(p)


class TestSymbolicError:
    def test_known_closed_forms(self):
        # LPAA 5 single stage: error rows are (001),(011),(100),(110)
        # with total mass 2p(1-p) at uniform p.
        assert symbolic_error_probability("LPAA 5", 1).to_string() == \
            "2*p - 2*p^2"
        # the accurate adder: identically zero at any width.
        assert symbolic_error_probability(ACCURATE, 3).is_zero()

    def test_uniform_degree_bound(self):
        poly = symbolic_error_probability("LPAA 1", 4)
        assert poly.degree() <= 2 * 4 + 1

    def test_endpoint_probabilities_are_exact_bits(self):
        # at p = 0 or 1 every input is deterministic: P(E) in {0, 1}.
        for cell in ("LPAA 1", "LPAA 2", "LPAA 6"):
            poly = symbolic_error_probability(cell, 3)
            assert poly.evaluate(p=0) in (0, 1)
            assert poly.evaluate(p=1) in (0, 1)

    def test_per_bit_mode_matches_table7_point(self):
        poly = symbolic_error_probability("LPAA 1", 2, mode="per-bit")
        value = poly.evaluate(
            a0=Fraction(1, 10), a1=Fraction(1, 10),
            b0=Fraction(1, 10), b1=Fraction(1, 10),
            c=Fraction(1, 10),
        )
        assert value == Fraction(30780 - 0, 100000)  # 0.30780 exactly

    def test_per_bit_is_multilinear(self):
        poly = symbolic_error_probability("LPAA 6", 2, mode="per-bit")
        for mono in poly.terms:
            assert all(exp == 1 for _, exp in mono)

    def test_hybrid_chain_supported(self):
        poly = symbolic_error_probability(["LPAA 7", "LPAA 1"], None)
        numeric = float(error_probability(["LPAA 7", "LPAA 1"], None,
                                          0.3, 0.3, 0.3))
        sym = float(poly.evaluate(p=Fraction(3, 10)))
        assert sym == pytest.approx(numeric, abs=1e-12)

    def test_unknown_mode(self):
        with pytest.raises(AnalysisError, match="unknown mode"):
            symbolic_error_probability("LPAA 1", 2, mode="magic")

    def test_term_guard(self):
        with pytest.raises(AnalysisError, match="max_terms"):
            symbolic_error_probability("LPAA 1", 6, mode="per-bit",
                                       max_terms=10)


@given(
    cell_index=st.integers(1, 7),
    width=st.integers(1, 6),
    p=st.fractions(min_value=0, max_value=1, max_denominator=20),
)
@settings(max_examples=60, deadline=None)
def test_symbolic_matches_numeric_everywhere(cell_index, width, p):
    from repro.core.adders import paper_cell

    cell = paper_cell(cell_index)
    poly = symbolic_error_probability(cell, width)
    numeric = float(error_probability(cell, width, float(p), float(p),
                                      float(p)))
    assert float(poly.evaluate(p=p)) == pytest.approx(numeric, abs=1e-9)
