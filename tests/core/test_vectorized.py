"""Unit tests for repro.core.vectorized (NumPy batch engine)."""

import numpy as np
import pytest

from repro.core.exceptions import ProbabilityError
from repro.core.recursive import analyze_chain, error_probability
from repro.core.vectorized import (
    analyze_batch,
    error_batch,
    error_by_width,
    success_by_width,
)


class TestAgreementWithScalarEngine:
    """The vectorised engine must match the scalar reference to ~1e-12."""

    def test_scalar_point_matches(self, lpaa_cell):
        got = analyze_batch(lpaa_cell, width=6, p_a=0.23, p_b=0.71, p_cin=0.4)
        ref = analyze_chain(lpaa_cell, width=6, p_a=0.23, p_b=0.71, p_cin=0.4)
        assert got.shape == (1,)
        assert got[0] == pytest.approx(ref.p_success, abs=1e-12)

    def test_random_batch_matches(self, lpaa_cell, rng):
        batch, width = 17, 5
        p_a = rng.random((batch, width))
        p_b = rng.random((batch, width))
        p_cin = rng.random(batch)
        got = analyze_batch(lpaa_cell, width=width, p_a=p_a, p_b=p_b, p_cin=p_cin)
        for j in range(batch):
            ref = analyze_chain(
                lpaa_cell, width=width,
                p_a=list(p_a[j]), p_b=list(p_b[j]), p_cin=float(p_cin[j]),
            )
            assert got[j] == pytest.approx(ref.p_success, abs=1e-12)

    def test_hybrid_chain_matches(self, rng):
        cells = ["LPAA 7", "LPAA 6", "LPAA 1", "LPAA 4"]
        p = rng.random(9)
        got = error_batch(cells, p_a=p, p_b=p, p_cin=0.5)
        for j, pj in enumerate(p):
            ref = error_probability(cells, None, float(pj), float(pj), 0.5)
            assert got[j] == pytest.approx(ref, abs=1e-12)


class TestBroadcasting:
    def test_width_vector_is_per_bit_not_batch(self):
        # A 1-D array whose length equals the width is per-bit data.
        got = analyze_batch("LPAA 1", width=4, p_a=[0.9, 0.5, 0.4, 0.8],
                            p_b=[0.8, 0.7, 0.6, 0.9], p_cin=0.5)
        assert got.shape == (1,)
        assert got[0] == pytest.approx(0.738476, abs=5e-7)

    def test_batch_vector_broadcasts_over_bits(self):
        p = np.array([0.1, 0.5, 0.9])
        got = error_batch("LPAA 6", width=8, p_a=p, p_b=p, p_cin=0.5)
        assert got.shape == (3,)
        for j, pj in enumerate(p):
            ref = error_probability("LPAA 6", 8, float(pj), float(pj), 0.5)
            assert got[j] == pytest.approx(ref, abs=1e-12)

    def test_explicit_batch_argument(self):
        got = analyze_batch("LPAA 2", width=3, p_a=0.5, batch=4)
        assert got.shape == (4,)
        assert np.allclose(got, got[0])

    def test_bad_shapes_raise(self):
        with pytest.raises(ProbabilityError):
            analyze_batch("LPAA 1", width=4, p_a=np.zeros((2, 3)))
        with pytest.raises(ProbabilityError):
            analyze_batch("LPAA 1", width=4, p_a=np.zeros(5), batch=3)
        with pytest.raises(ProbabilityError):
            analyze_batch("LPAA 1", width=4, p_a=np.zeros((2, 2, 2)))

    def test_out_of_range_entries_raise(self):
        with pytest.raises(ProbabilityError):
            analyze_batch("LPAA 1", width=2, p_a=np.array([0.5, 1.5]), batch=2)
        with pytest.raises(ProbabilityError):
            analyze_batch("LPAA 1", width=2, p_cin=np.array([-0.1, 0.5]), batch=2)


class TestSuccessByWidth:
    def test_matches_per_width_scalar_runs(self, lpaa_cell):
        curve = success_by_width(lpaa_cell, max_width=8, p=0.1, p_cin=0.1)
        assert curve.shape == (8,)
        for n in range(1, 9):
            ref = analyze_chain(lpaa_cell, width=n, p_a=0.1, p_b=0.1, p_cin=0.1)
            assert curve[n - 1] == pytest.approx(ref.p_success, abs=1e-12)

    def test_error_by_width_complements(self):
        s = success_by_width("LPAA 5", 6, 0.3)
        e = error_by_width("LPAA 5", 6, 0.3)
        assert np.allclose(s + e, 1.0)

    def test_batched_probability_grid(self):
        grid = np.array([0.1, 0.9])
        curves = success_by_width("LPAA 7", 5, grid)
        assert curves.shape == (2, 5)
        lone = success_by_width("LPAA 7", 5, 0.9)
        assert np.allclose(curves[1], lone)

    def test_success_is_non_increasing_in_width(self, lpaa_cell):
        # Adding stages can only discard more success mass.
        curve = success_by_width(lpaa_cell, 16, 0.5)
        assert np.all(np.diff(curve) <= 1e-12)

    def test_validation(self):
        with pytest.raises(ProbabilityError):
            success_by_width("LPAA 1", 0, 0.5)
        with pytest.raises(ProbabilityError):
            success_by_width("LPAA 1", 4, 1.2)
        with pytest.raises(ProbabilityError):
            success_by_width("LPAA 1", 4, np.eye(2))
        with pytest.raises(ProbabilityError):
            success_by_width("LPAA 1", 4, [0.5, 0.5], p_cin=np.zeros(3))
