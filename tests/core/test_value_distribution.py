"""Tests for the word-level output-value distribution."""

import itertools

import pytest

from repro.core.exceptions import AnalysisError
from repro.core.magnitude import error_moments
from repro.core.sum_analysis import sum_bit_probabilities
from repro.core.truth_table import ACCURATE
from repro.core.value_distribution import (
    output_bias,
    output_mean,
    output_value_pmf,
    total_variation_distance,
)
from repro.simulation.functional import ripple_add


def _enumerate_pmf(cell, width, p_a, p_b, p_cin):
    pmf = {}
    for a, b in itertools.product(range(1 << width), repeat=2):
        for cin in (0, 1):
            w = p_cin if cin else 1 - p_cin
            for i in range(width):
                w *= p_a[i] if (a >> i) & 1 else 1 - p_a[i]
                w *= p_b[i] if (b >> i) & 1 else 1 - p_b[i]
            if w == 0.0:
                continue
            value = ripple_add(cell, a, b, cin, width)
            pmf[value] = pmf.get(value, 0.0) + w
    return pmf


class TestPmf:
    def test_matches_enumeration(self, lpaa_cell):
        p_a = [0.2, 0.7, 0.5]
        p_b = [0.4, 0.1, 0.8]
        got = output_value_pmf(lpaa_cell, 3, p_a, p_b, 0.6)
        ref = _enumerate_pmf(lpaa_cell, 3, p_a, p_b, 0.6)
        assert set(got) == set(ref)
        for value in ref:
            assert got[value] == pytest.approx(ref[value], abs=1e-12)

    def test_sums_to_one(self, any_cell):
        pmf = output_value_pmf(any_cell, 5, 0.3, 0.6, 0.5)
        assert sum(pmf.values()) == pytest.approx(1.0, abs=1e-12)

    def test_accurate_adder_gives_sum_distribution(self):
        # at p = 0.5 every (a, b, cin) is equally likely: the output law
        # is the convolution of two uniform 2-bit laws plus a fair bit.
        pmf = output_value_pmf(ACCURATE, 2, 0.5, 0.5, 0.5)
        ref = _enumerate_pmf(ACCURATE, 2, [0.5] * 2, [0.5] * 2, 0.5)
        for value, prob in ref.items():
            assert pmf[value] == pytest.approx(prob)

    def test_support_bound(self, lpaa_cell):
        pmf = output_value_pmf(lpaa_cell, 4, 0.5, 0.5, 0.5)
        assert all(0 <= v < (1 << 5) for v in pmf)

    def test_width_guard(self):
        with pytest.raises(AnalysisError, match="max_width"):
            output_value_pmf("LPAA 1", 24)


class TestMoments:
    def test_mean_matches_pmf(self, lpaa_cell):
        pmf = output_value_pmf(lpaa_cell, 4, 0.3, 0.8, 0.2)
        mean_pmf = sum(v * p for v, p in pmf.items())
        mean_linear = output_mean(lpaa_cell, 4, 0.3, 0.8, 0.2)
        assert mean_linear == pytest.approx(mean_pmf, abs=1e-10)

    def test_mean_scales_to_wide_adders(self):
        mean = output_mean("LPAA 6", 64, 0.5, 0.5, 0.5)
        # exact adder's mean at p = 0.5 is (2^64 - 1) + 0.5; approximate
        # deviates but stays in the representable range.
        assert 0 < mean < float(1 << 65)

    def test_bias_matches_error_mean(self, lpaa_cell):
        # E[approx] - E[exact] must equal the error-DP's E[D].
        bias = output_bias(lpaa_cell, 6, 0.4, 0.6, 0.5)
        moments = error_moments(lpaa_cell, 6, 0.4, 0.6, 0.5)
        assert bias == pytest.approx(moments.mean, abs=1e-9)

    def test_accurate_adder_has_zero_bias(self):
        assert output_bias(ACCURATE, 8, 0.3, 0.9, 0.1) == pytest.approx(0.0)

    def test_mean_consistent_with_bit_marginals(self, lpaa_cell):
        sums = sum_bit_probabilities(lpaa_cell, 3, 0.5, 0.5, 0.5)
        mean = output_mean(lpaa_cell, 3, 0.5, 0.5, 0.5)
        partial = sum(float(p) * (1 << i) for i, p in enumerate(sums))
        assert mean >= partial  # the carry term only adds


class TestTotalVariation:
    def test_identical_laws_are_zero(self):
        pmf = output_value_pmf("LPAA 4", 3)
        assert total_variation_distance(pmf, pmf) == pytest.approx(0.0)

    def test_tv_upper_bounds_error_probability_complement(self, lpaa_cell):
        # TV between approx and exact output laws can never exceed the
        # error probability (coupling argument: they agree whenever the
        # adder is correct).
        from repro.core.recursive import error_probability

        approx = output_value_pmf(lpaa_cell, 4, 0.3, 0.3, 0.3)
        exact = output_value_pmf(ACCURATE, 4, 0.3, 0.3, 0.3)
        tv = total_variation_distance(approx, exact)
        p_err = float(error_probability(lpaa_cell, 4, 0.3, 0.3, 0.3))
        assert tv <= p_err + 1e-12

    def test_disjoint_supports_are_one(self):
        assert total_variation_distance({0: 1.0}, {1: 1.0}) == pytest.approx(1.0)
