"""Unit tests for repro.core.truth_table."""

import pytest

from repro.core.exceptions import TruthTableError
from repro.core.truth_table import ACCURATE, FullAdderTruthTable


class TestAccurateAdder:
    def test_sum_is_parity_and_carry_is_majority(self):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    s, cout = ACCURATE.evaluate(a, b, c)
                    assert s == (a + b + c) % 2
                    assert cout == (a + b + c) // 2

    def test_is_accurate_flag(self):
        assert ACCURATE.is_accurate()
        assert ACCURATE.num_error_cases() == 0
        assert ACCURATE.error_cases() == []

    def test_accurate_singleton_equals_fresh_instance(self):
        assert FullAdderTruthTable.accurate() == ACCURATE


class TestConstruction:
    def test_requires_eight_rows(self):
        with pytest.raises(TruthTableError, match="8 rows"):
            FullAdderTruthTable([(0, 0)] * 7)

    def test_rejects_non_bit_outputs(self):
        rows = [(0, 0)] * 7 + [(2, 0)]
        with pytest.raises(TruthTableError):
            FullAdderTruthTable(rows)

    def test_rejects_malformed_rows(self):
        with pytest.raises(TruthTableError, match="pair"):
            FullAdderTruthTable([(0, 0)] * 7 + [(0, 0, 1)])

    def test_from_mapping_roundtrip(self):
        mapping = {
            (a, b, c): ACCURATE.evaluate(a, b, c)
            for a in (0, 1) for b in (0, 1) for c in (0, 1)
        }
        assert FullAdderTruthTable.from_mapping(mapping) == ACCURATE

    def test_from_mapping_requires_full_coverage(self):
        mapping = {(0, 0, 0): (0, 0)}
        with pytest.raises(TruthTableError, match="misses"):
            FullAdderTruthTable.from_mapping(mapping)

    def test_from_functions_builds_accurate_adder(self):
        table = FullAdderTruthTable.from_functions(
            lambda a, b, c: a ^ b ^ c,
            lambda a, b, c: (a & b) | (a & c) | (b & c),
            name="xor-maj",
        )
        assert table == ACCURATE
        assert table.name == "xor-maj"

    def test_dict_roundtrip(self):
        restored = FullAdderTruthTable.from_dict(ACCURATE.as_dict())
        assert restored == ACCURATE
        assert restored.name == "AccuFA"

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(TruthTableError):
            FullAdderTruthTable.from_dict({"rows": "nope"})


class TestProtocol:
    def test_immutability_via_hash_and_eq(self, lpaa_cell):
        clone = FullAdderTruthTable(lpaa_cell.rows, name="clone")
        assert clone == lpaa_cell  # name does not affect equality
        assert hash(clone) == hash(lpaa_cell)
        assert {clone, lpaa_cell} == {lpaa_cell}

    def test_eq_against_foreign_type(self):
        assert (ACCURATE == 42) is False

    def test_len_iter_getitem(self, lpaa_cell):
        assert len(lpaa_cell) == 8
        assert list(lpaa_cell) == list(lpaa_cell.rows)
        assert lpaa_cell[3] == lpaa_cell.rows[3]

    def test_renamed_keeps_rows(self, lpaa_cell):
        renamed = lpaa_cell.renamed("other")
        assert renamed == lpaa_cell
        assert renamed.name == "other"


class TestErrorCases:
    def test_paper_error_case_counts(self):
        # Table 2 ([7]) plus the two DATE'16 cells: LPAA1..7 error cases.
        from repro.core.adders import PAPER_LPAAS

        expected = [2, 2, 3, 3, 4, 2, 2]
        assert [cell.num_error_cases() for cell in PAPER_LPAAS] == expected

    def test_error_case_records_expected_outputs(self):
        from repro.core.adders import LPAA1

        cases = LPAA1.error_cases()
        assert [c.index for c in cases] == [2, 4]
        first = cases[0]
        assert (first.a, first.b, first.cin) == (0, 1, 0)
        assert (first.expected_sum, first.expected_cout) == (1, 0)
        assert first.sum_wrong and first.cout_wrong

    def test_lpaa6_silent_carry_errors(self):
        # LPAA 6 is the only paper cell whose error cases keep the sum
        # bit correct and corrupt only the carry.
        from repro.core.adders import LPAA6

        cases = LPAA6.error_cases()
        assert [c.index for c in cases] == [1, 6]
        assert all(not c.sum_wrong and c.cout_wrong for c in cases)

    def test_success_rows_complement_error_cases(self, lpaa_cell):
        flags = lpaa_cell.success_rows()
        assert sum(1 for ok in flags if not ok) == lpaa_cell.num_error_cases()


class TestMinterms:
    def test_accurate_minterms(self):
        assert ACCURATE.sum_minterms() == [1, 2, 4, 7]
        assert ACCURATE.cout_minterms() == [3, 5, 6, 7]

    def test_minterms_match_rows(self, lpaa_cell):
        for idx in lpaa_cell.sum_minterms():
            assert lpaa_cell.rows[idx][0] == 1
        for idx in lpaa_cell.cout_minterms():
            assert lpaa_cell.rows[idx][1] == 1
