"""Numerical behaviour at extreme widths and probabilities.

The recursion multiplies probabilities thousands of times for very wide
adders; these tests pin that nothing leaves [0, 1], nothing overflows,
and the exact-rational path stays available as the ground truth.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.magnitude import error_moments
from repro.core.recursive import analyze_chain
from repro.core.vectorized import success_by_width


class TestWideAdders:
    @pytest.mark.parametrize("width", [256, 1024])
    def test_scalar_engine_stays_in_unit_interval(self, width, lpaa_cell):
        result = analyze_chain(lpaa_cell, width=width, p_a=0.5, p_b=0.5)
        assert 0.0 <= float(result.p_success) <= 1.0
        assert 0.0 <= float(result.p_error) <= 1.0

    def test_vectorized_curve_monotone_at_width_512(self):
        curve = success_by_width("LPAA 6", 512, 0.5)
        assert curve.shape == (512,)
        assert np.all(np.diff(curve) <= 1e-15)
        assert np.all(curve >= -1e-15) and np.all(curve <= 1 + 1e-15)

    def test_moments_finite_at_width_128(self, lpaa_cell):
        # 2^128-scale deltas exceed float precision gracefully: moments
        # remain finite (they use float powers of two), variance >= 0.
        moments = error_moments(lpaa_cell, 128, 0.5, 0.5, 0.5)
        assert np.isfinite(moments.mean)
        assert np.isfinite(moments.second_moment)
        assert moments.variance >= 0.0

    def test_fraction_path_is_digit_exact_at_width_64(self):
        result = analyze_chain(
            "LPAA 7", width=64,
            p_a=Fraction(1, 10), p_b=Fraction(1, 10), p_cin=Fraction(1, 10),
        )
        assert isinstance(result.p_success, Fraction)
        assert 0 <= result.p_success <= 1
        # float engine agrees with the exact rational to double precision
        float_result = analyze_chain("LPAA 7", width=64,
                                     p_a=0.1, p_b=0.1, p_cin=0.1)
        assert float(result.p_success) == pytest.approx(
            float(float_result.p_success), abs=1e-12
        )


class TestExtremeProbabilities:
    def test_near_degenerate_probabilities(self, lpaa_cell):
        # probabilities a hair away from 0/1 must not produce NaNs or
        # values outside [0, 1].
        eps = 1e-300
        result = analyze_chain(lpaa_cell, width=32, p_a=eps, p_b=1 - eps,
                               p_cin=eps)
        value = float(result.p_success)
        assert 0.0 <= value <= 1.0
        assert value == value  # not NaN

    def test_saturating_chains_converge(self):
        # LPAA 2 at p = 0.1 saturates to P(E) -> 1; the success mass must
        # underflow cleanly towards 0, never negative.
        curve = success_by_width("LPAA 2", 200, 0.1, p_cin=0.1)
        assert curve[-1] >= 0.0
        assert curve[-1] < 1e-12
