"""Property-based tests (hypothesis) for the core invariants.

These encode the mathematical guarantees of DESIGN.md §6: probability
ranges, monotonicity, mask identities, engine agreement, and exactness
against the functional oracle -- over *randomly generated* cells and
probability points, not just the seven paper LPAAs.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.magnitude import error_moments, error_pmf
from repro.core.masking import chain_is_exact
from repro.core.matrices import derive_matrices
from repro.core.recursive import analyze_chain
from repro.core.truth_table import ACCURATE, FullAdderTruthTable
from repro.core.vectorized import analyze_batch, success_by_width
from repro.simulation.exhaustive import (
    exhaustive_error_pmf,
    exhaustive_error_probability,
)

probabilities = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_subnormal=False
)

truth_tables = st.builds(
    FullAdderTruthTable,
    st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1)),
        min_size=8,
        max_size=8,
    ),
)


def prob_vector(width: int):
    return st.lists(probabilities, min_size=width, max_size=width)


@given(table=truth_tables)
def test_mask_identities_hold_for_any_cell(table):
    mkl = derive_matrices(table)
    assert mkl.l == tuple(m | k for m, k in zip(mkl.m, mkl.k))
    assert all(m & k == 0 for m, k in zip(mkl.m, mkl.k))
    assert mkl.success_row_count() == 8 - table.num_error_cases()


@given(
    table=truth_tables,
    p_a=prob_vector(5),
    p_b=prob_vector(5),
    p_cin=probabilities,
)
@settings(max_examples=60)
def test_probabilities_stay_in_unit_interval(table, p_a, p_b, p_cin):
    result = analyze_chain(table, width=5, p_a=p_a, p_b=p_b, p_cin=p_cin,
                           keep_trace=True)
    assert -1e-12 <= result.p_success <= 1 + 1e-12
    for record in result.trace:
        assert -1e-12 <= record.p_c0_curr_succ <= 1 + 1e-12
        assert -1e-12 <= record.p_c1_curr_succ <= 1 + 1e-12


@given(
    table=truth_tables,
    p_a=prob_vector(6),
    p_b=prob_vector(6),
    p_cin=probabilities,
)
@settings(max_examples=60)
def test_survival_mass_monotonically_decreases(table, p_a, p_b, p_cin):
    result = analyze_chain(table, width=6, p_a=p_a, p_b=p_b, p_cin=p_cin,
                           keep_trace=True)
    survivals = [r.survival for r in result.trace]
    for earlier, later in zip(survivals, survivals[1:]):
        assert later <= earlier + 1e-12


@given(p=probabilities, p_cin=probabilities, width=st.integers(1, 12))
@settings(max_examples=60)
def test_accurate_cell_always_succeeds(p, p_cin, width):
    result = analyze_chain(ACCURATE, width=width, p_a=p, p_b=p, p_cin=p_cin)
    assert math.isclose(result.p_success, 1.0, abs_tol=1e-12)


@given(
    table=truth_tables,
    p_a=prob_vector(4),
    p_b=prob_vector(4),
    p_cin=probabilities,
)
@settings(max_examples=40)
def test_vectorized_engine_matches_scalar(table, p_a, p_b, p_cin):
    scalar = analyze_chain(table, width=4, p_a=p_a, p_b=p_b, p_cin=p_cin)
    batch = analyze_batch(table, width=4, p_a=p_a, p_b=p_b, p_cin=p_cin)
    assert math.isclose(batch[0], scalar.p_success, abs_tol=1e-12)


@given(table=truth_tables, p=probabilities)
@settings(max_examples=40)
def test_success_by_width_is_monotone(table, p):
    curve = success_by_width(table, 10, p)
    for earlier, later in zip(curve, curve[1:]):
        assert later <= earlier + 1e-12


@given(
    table=truth_tables,
    p_a=prob_vector(3),
    p_b=prob_vector(3),
    p_cin=probabilities,
)
@settings(max_examples=40)
def test_recursion_upper_bounds_functional_error(table, p_a, p_b, p_cin):
    """For arbitrary cells the recursion may over-count errors (masking)
    but can never under-count them; when the structural checker says the
    chain is exact, the two must agree."""
    analytical = float(
        1 - analyze_chain(table, width=3, p_a=p_a, p_b=p_b, p_cin=p_cin).p_success
    )
    functional = exhaustive_error_probability(table, 3, p_a, p_b, p_cin)
    assert analytical >= functional - 1e-9
    if chain_is_exact(table, 3):
        assert math.isclose(analytical, functional, abs_tol=1e-9)


@given(
    table=truth_tables,
    p_a=prob_vector(3),
    p_b=prob_vector(3),
    p_cin=probabilities,
)
@settings(max_examples=40)
def test_error_pmf_matches_exhaustive_for_any_cell(table, p_a, p_b, p_cin):
    dp = error_pmf(table, 3, p_a, p_b, p_cin)
    brute = exhaustive_error_pmf(table, 3, p_a, p_b, p_cin)
    # compare above an underflow floor: extreme probabilities can make
    # products vanish in one summation order but not the other.
    floor = 1e-30
    assert {d for d, p in dp.items() if p > floor} == \
        {d for d, p in brute.items() if p > floor}
    for delta, prob in brute.items():
        if prob > floor:
            assert math.isclose(dp[delta], prob, abs_tol=1e-9)


@given(
    table=truth_tables,
    p_a=prob_vector(5),
    p_b=prob_vector(5),
)
@settings(max_examples=40)
def test_moments_match_pmf_for_any_cell(table, p_a, p_b):
    pmf = error_pmf(table, 5, p_a, p_b, 0.5)
    mom = error_moments(table, 5, p_a, p_b, 0.5)
    mean_ref = sum(d * p for d, p in pmf.items())
    m2_ref = sum(d * d * p for d, p in pmf.items())
    assert math.isclose(mom.mean, mean_ref, rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(mom.second_moment, m2_ref, rel_tol=1e-9, abs_tol=1e-9)
    assert mom.variance >= -1e-12


@given(
    table=truth_tables,
    width=st.integers(1, 6),
    a=st.integers(min_value=0),
    b=st.integers(min_value=0),
    cin=st.integers(0, 1),
)
@settings(max_examples=60)
def test_degenerate_probabilities_reduce_to_functional_sim(table, width, a, b, cin):
    """0/1 probabilities pin a single input vector; P(Succ) must then be
    the indicator of that addition being correct."""
    from repro.simulation.functional import ripple_add

    a %= 1 << width
    b %= 1 << width
    p_a = [float((a >> i) & 1) for i in range(width)]
    p_b = [float((b >> i) & 1) for i in range(width)]
    result = analyze_chain(table, width=width, p_a=p_a, p_b=p_b, p_cin=float(cin))
    functional_correct = ripple_add(table, a, b, cin, width) == a + b + cin
    stage_correct = result.p_success > 0.5
    # stage-exactness implies functional correctness (never the reverse).
    if stage_correct:
        assert functional_correct
    assert result.p_success in (0.0, 1.0)
