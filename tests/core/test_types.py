"""Unit tests for repro.core.types (conventions and validators)."""

from fractions import Fraction

import pytest

from repro.core.exceptions import ProbabilityError, TruthTableError
from repro.core.types import (
    NUM_ROWS,
    all_rows,
    bits_of,
    complement,
    int_of,
    row_index,
    row_inputs,
    validate_bit,
    validate_probability,
    validate_probability_vector,
)


class TestRowIndexing:
    def test_canonical_ordering_matches_table1(self):
        # Table 1 lists rows 000, 001, 010, ..., 111 with Cin least
        # significant; the whole library depends on this exact order.
        assert row_index(0, 0, 0) == 0
        assert row_index(0, 0, 1) == 1
        assert row_index(0, 1, 0) == 2
        assert row_index(1, 0, 0) == 4
        assert row_index(1, 1, 1) == 7

    def test_row_inputs_inverts_row_index(self):
        for idx in range(NUM_ROWS):
            assert row_index(*row_inputs(idx)) == idx

    def test_row_inputs_rejects_out_of_range(self):
        with pytest.raises(TruthTableError):
            row_inputs(8)
        with pytest.raises(TruthTableError):
            row_inputs(-1)

    def test_all_rows_yields_eight_in_order(self):
        rows = list(all_rows())
        assert [r[0] for r in rows] == list(range(8))
        assert rows[5] == (5, 1, 0, 1)


class TestValidators:
    def test_validate_bit_accepts_bits_and_bools(self):
        assert validate_bit(0) == 0
        assert validate_bit(1) == 1
        assert validate_bit(True) == 1

    @pytest.mark.parametrize("bad", [2, -1, 0.5, "1", None])
    def test_validate_bit_rejects_non_bits(self, bad):
        with pytest.raises(TruthTableError):
            validate_bit(bad)

    def test_validate_probability_accepts_edges_and_fractions(self):
        assert validate_probability(0) == 0.0
        assert validate_probability(1) == 1.0
        assert validate_probability(Fraction(1, 3)) == Fraction(1, 3)
        assert isinstance(validate_probability(Fraction(1, 3)), Fraction)

    @pytest.mark.parametrize("bad", [-0.1, 1.0001, float("nan"), "x", None, True])
    def test_validate_probability_rejects_bad_values(self, bad):
        with pytest.raises(ProbabilityError):
            validate_probability(bad)

    def test_vector_broadcasts_scalar(self):
        assert validate_probability_vector(0.3, 4) == [0.3] * 4

    def test_vector_checks_length(self):
        with pytest.raises(ProbabilityError):
            validate_probability_vector([0.1, 0.2], 3)

    def test_vector_checks_each_element(self):
        with pytest.raises(ProbabilityError, match=r"\[1\]"):
            validate_probability_vector([0.1, 1.5], 2)

    def test_vector_rejects_zero_length(self):
        with pytest.raises(ProbabilityError):
            validate_probability_vector(0.5, 0)

    def test_complement_preserves_fraction_exactness(self):
        assert complement(Fraction(1, 3)) == Fraction(2, 3)
        assert isinstance(complement(Fraction(1, 3)), Fraction)
        assert complement(0.25) == 0.75


class TestBitConversions:
    def test_bits_roundtrip(self):
        for value in range(16):
            assert int_of(bits_of(value, 4)) == value

    def test_bits_of_is_little_endian(self):
        assert bits_of(1, 3) == [1, 0, 0]
        assert bits_of(4, 3) == [0, 0, 1]

    def test_bits_of_rejects_overflow_and_negative(self):
        with pytest.raises(TruthTableError):
            bits_of(8, 3)
        with pytest.raises(TruthTableError):
            bits_of(-1, 3)

    def test_int_of_validates_bits(self):
        with pytest.raises(TruthTableError):
            int_of([0, 2, 0])
