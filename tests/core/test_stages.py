"""Unit tests for repro.core.stages (Table 4 trace rendering)."""

import pytest

from repro.core.stages import format_trace_table, trace_chain, trace_rows

from ..paper_data import TABLE4_P_A, TABLE4_P_B, TABLE4_P_CIN


@pytest.fixture
def table4_result():
    return trace_chain(
        "LPAA 1", width=4, p_a=TABLE4_P_A, p_b=TABLE4_P_B, p_cin=TABLE4_P_CIN
    )


class TestTraceRows:
    def test_rows_have_paper_labels_in_order(self, table4_result):
        labels = [label for label, _ in trace_rows(table4_result)]
        assert labels == [
            "P(A_i)",
            "P(B_i)",
            "P(~C_curr & Succ)",
            "P(C_curr & Succ)",
            "P(~C_next & Succ)",
            "P(C_next & Succ)",
            "P(Succ)",
        ]

    def test_nr_markers_match_paper(self, table4_result):
        rows = dict(trace_rows(table4_result))
        # carry-out of the last stage is "not required"...
        assert rows["P(~C_next & Succ)"][-1] == "NR"
        assert rows["P(C_next & Succ)"][-1] == "NR"
        # ... and P(Succ) exists only at the last stage.
        assert rows["P(Succ)"][:3] == ["NR", "NR", "NR"]
        assert rows["P(Succ)"][3] != "NR"

    def test_values_match_table4(self, table4_result):
        rows = dict(trace_rows(table4_result))
        assert rows["P(C_next & Succ)"][:3] == ["0.85", "0.7295", "0.58574"]
        assert rows["P(~C_next & Succ)"][:3] == ["0.02", "0.1305", "0.2064"]
        assert rows["P(Succ)"][3] == "0.738476"

    def test_requires_a_traced_result(self):
        from repro.core.recursive import analyze_chain

        untraced = analyze_chain("LPAA 1", width=2)
        with pytest.raises(ValueError, match="no trace"):
            trace_rows(untraced)


class TestFormatting:
    def test_table_contains_header_and_all_stages(self, table4_result):
        text = format_trace_table(table4_result)
        lines = text.splitlines()
        assert lines[0].startswith("Stage (i)")
        assert len(lines) == 8  # header + 7 rows
        assert "0.738476" in text
        assert "NR" in text

    def test_digits_parameter_controls_precision(self, table4_result):
        text = format_trace_table(table4_result, digits=3)
        assert "0.738" in text
        assert "0.738476" not in text

    def test_columns_are_aligned(self, table4_result):
        lines = format_trace_table(table4_result).splitlines()
        # Every stage-0 column entry starts at the same offset.
        offsets = {line.index("  ") for line in lines if "  " in line}
        assert len(offsets) >= 1
