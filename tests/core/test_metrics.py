"""Unit tests for repro.core.metrics."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError
from repro.core.magnitude import error_pmf
from repro.core.metrics import (
    max_exact_output,
    metrics_from_pmf,
    metrics_from_samples,
)


class TestMaxExactOutput:
    def test_values(self):
        assert max_exact_output(1) == 3       # 1+1+1
        assert max_exact_output(4) == 31
        assert max_exact_output(8) == 511

    def test_rejects_zero_width(self):
        with pytest.raises(AnalysisError):
            max_exact_output(0)


class TestMetricsFromPmf:
    def test_hand_built_pmf(self):
        pmf = {0: 0.5, 2: 0.25, -4: 0.25}
        m = metrics_from_pmf(pmf, width=3)
        assert m.error_rate == pytest.approx(0.5)
        assert m.med == pytest.approx(0.25 * 2 + 0.25 * 4)
        assert m.mse == pytest.approx(0.25 * 4 + 0.25 * 16)
        assert m.wce == 4
        assert m.nmed == pytest.approx(m.med / 15.0)
        assert m.mred is None
        assert m.rmse == pytest.approx(m.mse ** 0.5)

    def test_perfect_adder(self):
        m = metrics_from_pmf({0: 1.0}, width=8)
        assert m.error_rate == 0.0
        assert m.med == 0.0 and m.mse == 0.0 and m.wce == 0

    def test_rejects_unnormalised_pmf(self):
        with pytest.raises(AnalysisError, match="sums to"):
            metrics_from_pmf({0: 0.4, 1: 0.4}, width=4)

    def test_rejects_empty_pmf(self):
        with pytest.raises(AnalysisError, match="empty"):
            metrics_from_pmf({}, width=4)

    def test_consistent_with_library_pmf(self, lpaa_cell):
        pmf = error_pmf(lpaa_cell, 5, 0.4, 0.6, 0.5)
        m = metrics_from_pmf(pmf, width=5)
        assert 0.0 <= m.error_rate <= 1.0
        assert m.med <= m.wce
        assert m.mse <= m.wce ** 2
        assert 0.0 <= m.nmed <= 1.0

    def test_as_dict_round_trips_fields(self):
        m = metrics_from_pmf({0: 0.9, 1: 0.1}, width=2)
        d = m.as_dict()
        assert d["error_rate"] == pytest.approx(0.1)
        assert set(d) == {"error_rate", "med", "nmed", "mse", "wce", "mred"}


class TestMetricsFromSamples:
    def test_simple_samples(self):
        exact = np.array([10, 20, 30, 40])
        approx = np.array([10, 22, 30, 36])
        m = metrics_from_samples(approx, exact, width=6)
        assert m.error_rate == pytest.approx(0.5)
        assert m.med == pytest.approx((0 + 2 + 0 + 4) / 4)
        assert m.mse == pytest.approx((0 + 4 + 0 + 16) / 4)
        assert m.wce == 4
        assert m.mred == pytest.approx((0 + 2 / 20 + 0 + 4 / 40) / 4)

    def test_mred_guards_zero_exact_values(self):
        m = metrics_from_samples(np.array([1]), np.array([0]), width=2)
        assert m.mred == pytest.approx(1.0)  # |1-0| / max(0, 1)

    def test_shape_validation(self):
        with pytest.raises(AnalysisError):
            metrics_from_samples(np.zeros(3), np.zeros(4), width=4)
        with pytest.raises(AnalysisError):
            metrics_from_samples(np.zeros((2, 2)), np.zeros((2, 2)), width=4)
        with pytest.raises(AnalysisError):
            metrics_from_samples(np.array([]), np.array([]), width=4)

    def test_agrees_with_pmf_on_exhaustive_samples(self):
        # Enumerate every equiprobable input of a 3-bit LPAA 4 chain and
        # compare sample metrics against the exact PMF metrics.
        from repro.core.adders import LPAA4
        from repro.simulation.functional import ripple_add

        width = 3
        approx, exact = [], []
        for a in range(8):
            for b in range(8):
                for cin in (0, 1):
                    approx.append(ripple_add(LPAA4, a, b, cin, width))
                    exact.append(a + b + cin)
        sample_metrics = metrics_from_samples(
            np.array(approx), np.array(exact), width=width
        )
        pmf_metrics = metrics_from_pmf(
            error_pmf(LPAA4, width, 0.5, 0.5, 0.5), width=width
        )
        assert sample_metrics.error_rate == pytest.approx(pmf_metrics.error_rate)
        assert sample_metrics.med == pytest.approx(pmf_metrics.med)
        assert sample_metrics.mse == pytest.approx(pmf_metrics.mse)
        assert sample_metrics.wce == pmf_metrics.wce
