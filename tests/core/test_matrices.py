"""Unit tests for repro.core.matrices (M/K/L derivation vs paper Table 5)."""

import numpy as np

from repro.core.adders import PAPER_LPAAS
from repro.core.matrices import (
    TABLE5_MATRICES,
    derive_carry_matrices,
    derive_matrices,
    derive_sum_matrix,
)
from repro.core.truth_table import ACCURATE


class TestTable5Golden:
    """The derived masks must equal the paper's Table 5 exactly."""

    def test_all_seven_cells_match_table5(self, lpaa_cell):
        derived = derive_matrices(lpaa_cell)
        golden = TABLE5_MATRICES[lpaa_cell.name]
        assert derived.m == golden.m
        assert derived.k == golden.k
        assert derived.l == golden.l

    def test_table5_covers_exactly_the_seven_cells(self):
        assert sorted(TABLE5_MATRICES) == [f"LPAA {i}" for i in range(1, 8)]


class TestMaskIdentities:
    def test_l_is_elementwise_or_of_m_and_k(self, any_cell):
        mkl = derive_matrices(any_cell)
        assert mkl.l == tuple(m | k for m, k in zip(mkl.m, mkl.k))

    def test_m_and_k_are_disjoint(self, any_cell):
        mkl = derive_matrices(any_cell)
        assert all(m & k == 0 for m, k in zip(mkl.m, mkl.k))

    def test_success_rows_equal_eight_minus_error_cases(self, any_cell):
        mkl = derive_matrices(any_cell)
        assert mkl.success_row_count() == 8 - any_cell.num_error_cases()

    def test_accurate_adder_masks_are_full(self):
        mkl = derive_matrices(ACCURATE)
        assert mkl.l == (1,) * 8
        assert mkl.m == (0, 0, 0, 1, 0, 1, 1, 1)  # majority function
        assert mkl.k == (1, 1, 1, 0, 1, 0, 0, 0)

    def test_as_arrays_returns_float_vectors(self):
        m, k, l = derive_matrices(ACCURATE).as_arrays()
        for arr in (m, k, l):
            assert arr.dtype == np.float64
            assert arr.shape == (8,)
        assert np.array_equal(m + k, l)


class TestAuxiliaryMasks:
    def test_carry_masks_partition_all_rows(self, any_cell):
        c1, c0 = derive_carry_matrices(any_cell)
        assert tuple(a + b for a, b in zip(c1, c0)) == (1,) * 8
        assert c1 == tuple(cout for _, cout in any_cell.rows)

    def test_sum_mask_matches_rows(self, any_cell):
        s1 = derive_sum_matrix(any_cell)
        assert s1 == tuple(s for s, _ in any_cell.rows)

    def test_unconditioned_masks_dominate_success_masks(self, any_cell):
        # M (success & carry=1) can never exceed the raw carry mask, etc.
        mkl = derive_matrices(any_cell)
        c1, c0 = derive_carry_matrices(any_cell)
        assert all(m <= c for m, c in zip(mkl.m, c1))
        assert all(k <= c for k, c in zip(mkl.k, c0))
