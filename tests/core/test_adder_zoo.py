"""The adder-family zoo: config grammar, windowed model, DPs, prefixes.

The load-bearing guarantees: (1) every config string round-trips
through ``parse_adder`` exactly; (2) the windowed functional model is
bit-identical to ``gear_add`` on GeAr configs; (3) all five cut DPs
match weighted enumeration bit-for-bit at dyadic probabilities; (4)
full-depth prefix graphs are exact and truncation degrades
monotonically.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adder_zoo import (
    ZOO_FAMILIES,
    WindowedAdderSpec,
    ZooAdder,
    from_gear,
    named_zoo,
    parse_adder,
    prefix_depth,
    prefix_levels,
    truncated_prefix_spec,
    windowed_add,
    windowed_error_moments,
    windowed_error_pmf,
    windowed_error_probability,
    windowed_exhaustive_quality,
    windowed_joint_error_pmf,
    windowed_worst_case_error,
    zoo_cost,
)
from repro.core.adders import LOA_GEN, LOA_OR
from repro.core.exceptions import AnalysisError
from repro.gear.config import GeArConfig
from repro.gear.functional import gear_add


# ---------------------------------------------------------------- grammar

@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_config_grammar_round_trips(data):
    """parse(render(parse(s))) == parse(s) for every valid config.

    Drawing through ``st.data()`` keeps the width-dependent parameter
    ranges valid per family.
    """
    family = data.draw(st.sampled_from(sorted(ZOO_FAMILIES)))
    n = data.draw(st.integers(2, 16))
    if family == "rca":
        adder = ZooAdder("rca", n)
    elif family in ("loa", "loawa"):
        adder = ZooAdder(family, n, (data.draw(st.integers(1, n - 1)),))
    elif family == "aca1":
        adder = ZooAdder("aca1", n, (data.draw(st.integers(1, n)),))
    elif family == "aca2":
        qs = [q for q in range(2, n + 1, 2) if (n - q) % (q // 2) == 0]
        adder = ZooAdder("aca2", n, (data.draw(st.sampled_from(qs)),))
    elif family == "eta":
        xs = [x for x in range(1, n // 2 + 1) if n % x == 0]
        adder = ZooAdder("eta", n, (data.draw(st.sampled_from(xs)),))
    elif family == "gear":
        r = data.draw(st.integers(1, n - 1))
        ps = [p for p in range(0, n - r + 1) if (n - r - p) % r == 0]
        adder = ZooAdder("gear", n, (r, data.draw(st.sampled_from(ps))))
    elif family == "gda":
        bs = [b for b in range(2, n + 1) if n % b == 0]
        b = data.draw(st.sampled_from(bs))
        adder = ZooAdder("gda", n, (b, data.draw(st.integers(1, n // b))))
    else:
        topo = family.split("-")[1]
        lvl = data.draw(st.integers(1, prefix_depth(topo, n)))
        adder = ZooAdder(family, n, (lvl,))
    rendered = adder.config_string
    reparsed = parse_adder(rendered)
    assert reparsed == adder
    assert reparsed.config_string == rendered


def test_parse_is_case_and_separator_insensitive():
    for spelling in ("ACA_1:8:4", "aca-1:8:4", "Aca 1:8:4", "aca1:8:4"):
        assert parse_adder(spelling).config_string == "aca1:8:4"
    assert parse_adder("AXPPA-KS:8:2").config_string == "axppa-ks:8:2"


def test_invalid_configs_raise_actionable_errors():
    for bad in ("nope:8", "loa:8", "loa:8:0", "loa:8:8", "aca2:8:3",
                "eta:8:3", "eta:8:5", "gda:8:3:1", "axppa-ks:8:9",
                "axppa-ks:8:0", "gear:8:3:3", "loa:one:2", ""):
        with pytest.raises((AnalysisError, Exception)) as exc:
            parse_adder(bad)
        assert str(exc.value)


def test_parsed_adders_hash_and_compare():
    a = parse_adder("gda:8:2:2")
    b = parse_adder("GDA:8:2:2")
    assert a == b and hash(a) == hash(b)
    assert a != parse_adder("gda:8:2:1")


# ------------------------------------------------------ functional model

def test_windowed_add_matches_gear_add_exhaustively():
    n = 8
    for r in range(1, n):
        for p in range(0, n - r + 1):
            if (n - r - p) % r:
                continue
            config = GeArConfig(n, r, p)
            spec = from_gear(config)
            for a in range(0, 1 << n, 7):
                for b in range(0, 1 << n, 5):
                    assert windowed_add(spec, a, b) == gear_add(config, a, b)


def test_loa_cells_match_their_definitions():
    # OR cell: sum = a | b, never generates a carry.
    for row in range(8):
        a, b, cin = row >> 2 & 1, row >> 1 & 1, row & 1
        s, c = LOA_OR.rows[row]
        assert (s, c) == (a | b, 0)
        s, c = LOA_GEN.rows[row]
        assert (s, c) == (a | b, a & b)


def test_chain_families_build_expected_cells():
    from repro.core.truth_table import ACCURATE

    assert parse_adder("rca:4").build() == (ACCURATE,) * 4
    assert parse_adder("loa:4:2").build() == (LOA_OR, LOA_GEN,
                                              ACCURATE, ACCURATE)
    assert parse_adder("loawa:4:2").build() == (LOA_OR, LOA_OR,
                                                ACCURATE, ACCURATE)


# ----------------------------------------------------------------- DPs

def _windowed_members(width):
    return [a for a in named_zoo(width) if a.representation == "windowed"]


@pytest.mark.parametrize("width", [4, 6, 8])
def test_dps_match_enumeration_bit_for_bit(width):
    """All five DPs vs the 4^N oracle, zero tolerance at p = 0.5."""
    for adder in _windowed_members(width):
        spec = adder.build()
        oracle = windowed_exhaustive_quality(spec)
        er_ref = sum(p for d, p in oracle.pmf.items() if d != 0)

        assert windowed_error_probability(spec) == er_ref
        assert windowed_error_pmf(spec) == oracle.pmf

        moments = windowed_error_moments(spec)
        mean_ref = sum(d * p for d, p in oracle.pmf.items())
        m2_ref = sum(d * d * p for d, p in oracle.pmf.items())
        assert moments.mean == pytest.approx(mean_ref, abs=1e-9)
        assert moments.second_moment == pytest.approx(m2_ref, rel=1e-12)

        wce = windowed_worst_case_error(spec)
        assert wce.wce == max(abs(d) for d in oracle.pmf)

        joint = windowed_joint_error_pmf(spec)
        mred = sum(abs(d) / max(exact, 1) * p
                   for (d, exact), p in joint.items())
        assert mred == pytest.approx(oracle.mred, rel=1e-12)


def test_dps_accept_per_bit_probability_vectors():
    spec = parse_adder("aca1:6:3").build()
    pa = [0.1, 0.9, 0.25, 0.5, 0.75, 0.3]
    pb = [0.6, 0.2, 0.8, 0.4, 0.5, 0.9]
    oracle = windowed_exhaustive_quality(spec, pa, pb)
    er_ref = sum(p for d, p in oracle.pmf.items() if d != 0)
    assert windowed_error_probability(spec, pa, pb) == \
        pytest.approx(er_ref, abs=1e-12)
    pmf = windowed_error_pmf(spec, pa, pb)
    assert set(pmf) == set(oracle.pmf)
    for delta, mass in oracle.pmf.items():
        assert pmf[delta] == pytest.approx(mass, abs=1e-12)


def test_exact_spec_never_errs():
    spec = WindowedAdderSpec("exact", (0,) * 6, 0)
    assert spec.is_exact
    assert windowed_error_probability(spec) == 0.0
    assert windowed_error_pmf(spec) == {0: 1.0}
    assert windowed_worst_case_error(spec).wce == 0


# ------------------------------------------------------------- prefixes

def test_prefix_level_shapes_are_the_classic_ones():
    assert [len(l) for l in prefix_levels("ks", 8)] == [7, 6, 4]
    assert [len(l) for l in prefix_levels("bk", 8)] == [4, 2, 1, 1, 3]
    assert [len(l) for l in prefix_levels("sk", 8)] == [4, 4, 4]
    assert [len(l) for l in prefix_levels("lf", 8)] == [4, 2, 2, 3]
    assert prefix_depth("ks", 32) == 5
    assert prefix_depth("bk", 32) == 9


@pytest.mark.parametrize("topology", ["bk", "ks", "sk", "lf"])
@pytest.mark.parametrize("n", [2, 5, 8, 13, 16])
def test_full_depth_prefix_is_exact_and_truncation_monotone(topology, n):
    depth = prefix_depth(topology, n)
    full = truncated_prefix_spec(topology, n, depth)
    assert full.is_exact

    errors = [
        windowed_error_probability(truncated_prefix_spec(topology, n, lvl))
        for lvl in range(1, depth + 1)
    ]
    assert errors[-1] == 0.0
    for shallow, deep in zip(errors, errors[1:]):
        assert deep <= shallow + 1e-15


def test_truncation_out_of_range_raises():
    # levels_used = 0 is legal for the *function* (generate-only carry)
    # but not for the config grammar, which starts at LVL = 1.
    assert not truncated_prefix_spec("ks", 8, 0).is_exact
    with pytest.raises(AnalysisError):
        truncated_prefix_spec("ks", 8, 4)
    with pytest.raises(AnalysisError):
        prefix_levels("unknown", 8)


# ----------------------------------------------------------- cost model

def test_zoo_cost_orders_families_sensibly():
    rca = zoo_cost("rca:8")
    assert zoo_cost("loa:8:4").delay_units < rca.delay_units
    assert zoo_cost("loa:8:4").area_units < rca.area_units
    assert zoo_cost("axppa-ks:8:2").delay_units < rca.delay_units
    # deeper truncation costs more delay and area
    assert zoo_cost("axppa-ks:8:3").delay_units > \
        zoo_cost("axppa-ks:8:1").delay_units
    assert math.isfinite(rca.area_units)


def test_named_zoo_members_are_all_buildable_and_unique():
    for width in (4, 8, 16):
        zoo = named_zoo(width)
        names = [a.config_string for a in zoo]
        assert len(names) == len(set(names))
        assert names[0] == f"rca:{width}"
        for adder in zoo:
            adder.build()
        families = {a.family for a in zoo}
        assert {"rca", "loa", "loawa", "aca1", "aca2", "eta", "gda",
                "axppa-bk", "axppa-ks", "axppa-sk", "axppa-lf"} <= families
