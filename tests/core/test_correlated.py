"""Tests for the correlated-operand generalisation of the recursion."""

import itertools

import pytest

from repro.core.correlated import (
    JointBitDistribution,
    analyze_chain_correlated,
    error_probability_correlated,
    self_addition_error,
)
from repro.core.exceptions import ProbabilityError
from repro.core.recursive import error_probability
from repro.simulation.functional import ripple_add


def _exhaustive_correlated(cell, joints, p_cin, width):
    """Brute-force P(error) with per-stage joint operand laws."""
    p_error = 0.0
    for bits in itertools.product(range(4), repeat=width):
        for cin in (0, 1):
            weight = p_cin if cin else 1 - p_cin
            a = b = 0
            for i, ab in enumerate(bits):
                a_bit, b_bit = ab >> 1, ab & 1
                weight *= joints[i].weight(a_bit, b_bit)
                a |= a_bit << i
                b |= b_bit << i
            if weight == 0.0:
                continue
            if ripple_add(cell, a, b, cin, width) != a + b + cin:
                p_error += weight
    return p_error


class TestJointDistribution:
    def test_independent_factors(self):
        joint = JointBitDistribution.independent(0.3, 0.6)
        assert joint.p11 == pytest.approx(0.18)
        assert joint.correlation_free

    def test_identical_and_complementary(self):
        same = JointBitDistribution.identical(0.25)
        assert same.weight(1, 1) == 0.25 and same.weight(1, 0) == 0.0
        assert not same.correlation_free
        anti = JointBitDistribution.complementary(0.25)
        assert anti.weight(1, 0) == 0.25 and anti.weight(1, 1) == 0.0

    def test_normalisation_enforced(self):
        with pytest.raises(ProbabilityError, match="sums to"):
            JointBitDistribution(0.5, 0.5, 0.5, 0.5)
        with pytest.raises(ProbabilityError, match="out of"):
            JointBitDistribution(1.5, -0.5, 0.0, 0.0)


class TestAgainstOracle:
    def test_matches_enumeration_mixed_laws(self, lpaa_cell):
        joints = [
            JointBitDistribution.independent(0.2, 0.7),
            JointBitDistribution.identical(0.4),
            JointBitDistribution.complementary(0.6),
        ]
        got = error_probability_correlated(lpaa_cell, joints, p_cin=0.3)
        ref = _exhaustive_correlated(lpaa_cell, joints, 0.3, 3)
        assert got == pytest.approx(ref, abs=1e-12)

    def test_independent_laws_reduce_to_standard_engine(self, lpaa_cell):
        p_a, p_b = [0.1, 0.8, 0.5, 0.3], [0.6, 0.2, 0.9, 0.4]
        joints = [
            JointBitDistribution.independent(pa, pb)
            for pa, pb in zip(p_a, p_b)
        ]
        got = error_probability_correlated(lpaa_cell, joints, p_cin=0.25)
        ref = float(error_probability(lpaa_cell, 4, p_a, p_b, 0.25))
        assert got == pytest.approx(ref, abs=1e-12)

    def test_self_addition_matches_functional(self, lpaa_cell):
        # exact check of a + a over all values at p = 0.5
        width = 4
        errors = sum(
            1 for a in range(1 << width)
            if ripple_add(lpaa_cell, a, a, 0, width) != 2 * a
        )
        got = self_addition_error(lpaa_cell, width, p=0.5, p_cin=0.0)
        assert got == pytest.approx(errors / (1 << width), abs=1e-12)

    def test_independence_assumption_can_mislead(self):
        # For a + a on LPAA 1, pretending the operands are independent
        # mis-estimates the true error; the correlated analysis nails it.
        width = 6
        truth = self_addition_error("LPAA 1", width, p=0.5, p_cin=0.0)
        independent = float(
            error_probability("LPAA 1", width, 0.5, 0.5, 0.0)
        )
        assert truth != pytest.approx(independent, abs=1e-3)


class TestApi:
    def test_trace_shape(self):
        joints = [JointBitDistribution.independent(0.5, 0.5)] * 3
        p_success, trace = analyze_chain_correlated("LPAA 2", joints)
        assert len(trace) == 3
        assert trace[0] == (0.5, 0.5)
        assert 0.0 <= p_success <= 1.0

    def test_stage_count_mismatch(self):
        joints = [JointBitDistribution.independent(0.5, 0.5)] * 2
        with pytest.raises(ProbabilityError, match="per stage"):
            analyze_chain_correlated("LPAA 2", joints, width=3)
