"""Unit tests for repro.core.magnitude (error PMF and exact moments)."""

import itertools

import pytest

from repro.core.exceptions import AnalysisError, SupportLimitError
from repro.core.magnitude import (
    error_moments,
    error_pmf,
    joint_error_pmf,
    relative_error_from_joint,
    worst_case_error,
)
from repro.core.recursive import error_probability
from repro.core.truth_table import ACCURATE


def _enumerate_pmf(cell, width, p_a, p_b, p_cin):
    """Brute-force PMF of approx - exact over all weighted inputs."""
    pmf = {}
    for bits in itertools.product((0, 1), repeat=2 * width + 1):
        a_bits, b_bits, cin = bits[:width], bits[width:2 * width], bits[-1]
        w = p_cin if cin else 1 - p_cin
        for i in range(width):
            w *= p_a[i] if a_bits[i] else 1 - p_a[i]
            w *= p_b[i] if b_bits[i] else 1 - p_b[i]
        if w == 0.0:
            continue
        approx, carry = 0, cin
        for i in range(width):
            s, carry = cell.evaluate(a_bits[i], b_bits[i], carry)
            approx |= s << i
        approx |= carry << width
        a_val = sum(bit << i for i, bit in enumerate(a_bits))
        b_val = sum(bit << i for i, bit in enumerate(b_bits))
        delta = approx - (a_val + b_val + cin)
        pmf[delta] = pmf.get(delta, 0.0) + w
    return pmf


class TestErrorPmf:
    WIDTH = 4
    P_A = [0.2, 0.7, 0.5, 0.9]
    P_B = [0.4, 0.1, 0.8, 0.3]
    P_CIN = 0.6

    def test_matches_enumeration(self, lpaa_cell):
        ref = _enumerate_pmf(lpaa_cell, self.WIDTH, self.P_A, self.P_B, self.P_CIN)
        got = error_pmf(lpaa_cell, self.WIDTH, self.P_A, self.P_B, self.P_CIN)
        assert set(got) == {d for d, p in ref.items() if p > 0}
        for delta, prob in ref.items():
            if prob > 0:
                assert got[delta] == pytest.approx(prob, abs=1e-12)

    def test_sums_to_one(self, lpaa_cell):
        pmf = error_pmf(lpaa_cell, 6, 0.3, 0.3, 0.3)
        assert sum(pmf.values()) == pytest.approx(1.0, abs=1e-12)

    def test_zero_delta_mass_equals_success_probability(self, lpaa_cell):
        # The paper's P(Succ) must equal P(D = 0) for the paper cells
        # (they cannot mask, see repro.core.masking).
        pmf = error_pmf(lpaa_cell, 5, 0.17, 0.82, 0.5)
        p_err = error_probability(lpaa_cell, 5, 0.17, 0.82, 0.5)
        assert 1.0 - pmf.get(0, 0.0) == pytest.approx(float(p_err), abs=1e-12)

    def test_accurate_adder_is_a_point_mass(self):
        pmf = error_pmf(ACCURATE, 10, 0.42, 0.77, 0.1)
        assert pmf == {0: pytest.approx(1.0)}

    def test_max_entries_guard(self):
        with pytest.raises(AnalysisError, match="max_entries"):
            error_pmf("LPAA 5", 12, 0.5, 0.5, 0.5, max_entries=10)

    def test_pruning_drops_small_mass_only(self):
        full = error_pmf("LPAA 5", 8, 0.5, 0.5, 0.5)
        pruned = error_pmf("LPAA 5", 8, 0.5, 0.5, 0.5, prune_below=1e-4)
        assert set(pruned) <= set(full)
        lost = sum(full.values()) - sum(pruned.values())
        assert 0 <= lost < 1e-2


class TestErrorMoments:
    def test_matches_pmf_moments(self, lpaa_cell):
        p_a, p_b, p_cin = 0.35, 0.6, 0.5
        pmf = error_pmf(lpaa_cell, 7, p_a, p_b, p_cin)
        mom = error_moments(lpaa_cell, 7, p_a, p_b, p_cin)
        mean_ref = sum(d * p for d, p in pmf.items())
        m2_ref = sum(d * d * p for d, p in pmf.items())
        assert mom.mean == pytest.approx(mean_ref, rel=1e-10, abs=1e-10)
        assert mom.second_moment == pytest.approx(m2_ref, rel=1e-10, abs=1e-10)

    def test_scales_to_wide_adders(self):
        # 64 bits would be hopeless for enumeration; moments are O(N).
        mom = error_moments("LPAA 6", 64, 0.5, 0.5, 0.5)
        assert mom.width == 64
        assert mom.second_moment >= mom.mean ** 2 - 1e-9

    def test_accurate_adder_zero_moments(self):
        mom = error_moments(ACCURATE, 16, 0.3, 0.8, 0.9)
        assert mom.mean == pytest.approx(0.0)
        assert mom.second_moment == pytest.approx(0.0)
        assert mom.variance == pytest.approx(0.0)
        assert mom.rms == pytest.approx(0.0)

    def test_variance_never_negative(self, lpaa_cell):
        mom = error_moments(lpaa_cell, 9, 0.9, 0.9, 0.9)
        assert mom.variance >= 0.0

    def test_normalized_rms_uses_max_output(self):
        mom = error_moments("LPAA 1", 4, 0.5, 0.5, 0.5)
        assert mom.normalized_rms == pytest.approx(mom.rms / 31.0)

    def test_deterministic_inputs_reduce_to_single_case(self, lpaa_cell):
        # With 0/1 probabilities there is exactly one input vector, so
        # the PMF is a point mass and moments are its powers.
        p_a, p_b = [1, 0, 1], [1, 1, 0]
        pmf = error_pmf(lpaa_cell, 3, p_a, p_b, 0)
        assert len(pmf) == 1
        ((delta, prob),) = pmf.items()
        assert prob == pytest.approx(1.0)
        mom = error_moments(lpaa_cell, 3, p_a, p_b, 0)
        assert mom.mean == pytest.approx(delta)
        assert mom.second_moment == pytest.approx(delta * delta)

def _enumerate_joint(cell, width, p_a, p_b, p_cin):
    """Brute-force joint PMF of (approx - exact, exact) for the oracle."""
    joint = {}
    for bits in itertools.product((0, 1), repeat=2 * width + 1):
        a_bits, b_bits, cin = bits[:width], bits[width:2 * width], bits[-1]
        w = p_cin if cin else 1 - p_cin
        for i in range(width):
            w *= p_a[i] if a_bits[i] else 1 - p_a[i]
            w *= p_b[i] if b_bits[i] else 1 - p_b[i]
        if w == 0.0:
            continue
        approx, carry = 0, cin
        for i in range(width):
            s, carry = cell.evaluate(a_bits[i], b_bits[i], carry)
            approx |= s << i
        approx |= carry << width
        a_val = sum(bit << i for i, bit in enumerate(a_bits))
        b_val = sum(bit << i for i, bit in enumerate(b_bits))
        exact = a_val + b_val + cin
        key = (approx - exact, exact)
        joint[key] = joint.get(key, 0.0) + w
    return joint


class TestWorstCaseError:
    WIDTH = 5
    P_A = [0.2, 0.7, 0.5, 0.9, 0.4]
    P_B = [0.4, 0.1, 0.8, 0.3, 0.6]
    P_CIN = 0.6

    def test_matches_pmf_extremes(self, lpaa_cell):
        pmf = error_pmf(lpaa_cell, self.WIDTH, self.P_A, self.P_B, self.P_CIN)
        wce = worst_case_error(lpaa_cell, self.WIDTH, self.P_A, self.P_B,
                               self.P_CIN)
        assert wce.min_delta == min(pmf)
        assert wce.max_delta == max(pmf)
        assert wce.wce == max(abs(min(pmf)), abs(max(pmf)))

    def test_exact_big_integers_at_64_bits(self):
        # Enumeration is hopeless here; the interval DP stays exact
        # because it composes integer spans, never floats.
        wce = worst_case_error("LPAA 5", 64)
        assert wce.wce == 2 ** 63
        assert isinstance(wce.wce, int)

    def test_deterministic_bits_restrict_the_support(self, lpaa_cell):
        # With 0/1 probabilities only one input vector is reachable, so
        # min == max == the single attainable delta.
        p_a, p_b = [1, 0, 1], [1, 1, 0]
        wce = worst_case_error(lpaa_cell, 3, p_a, p_b, 0)
        ((delta, _),) = error_pmf(lpaa_cell, 3, p_a, p_b, 0).items()
        assert wce.min_delta == wce.max_delta == delta

    def test_accurate_adder_has_zero_wce(self):
        wce = worst_case_error(ACCURATE, 48)
        assert wce.min_delta == wce.max_delta == 0
        assert wce.normalized_wce == 0.0


class TestJointErrorPmf:
    WIDTH = 4
    P_A = [0.2, 0.7, 0.5, 0.9]
    P_B = [0.4, 0.1, 0.8, 0.3]
    P_CIN = 0.6

    def test_matches_enumeration(self, lpaa_cell):
        ref = _enumerate_joint(lpaa_cell, self.WIDTH, self.P_A, self.P_B,
                               self.P_CIN)
        got = joint_error_pmf(lpaa_cell, self.WIDTH, self.P_A, self.P_B,
                              self.P_CIN)
        assert set(got) == {k for k, p in ref.items() if p > 0}
        for key, prob in ref.items():
            if prob > 0:
                assert got[key] == pytest.approx(prob, abs=1e-12)

    def test_marginal_recovers_error_pmf(self, lpaa_cell):
        joint = joint_error_pmf(lpaa_cell, self.WIDTH, self.P_A, self.P_B,
                                self.P_CIN)
        marginal = {}
        for (delta, _), prob in joint.items():
            marginal[delta] = marginal.get(delta, 0.0) + prob
        pmf = error_pmf(lpaa_cell, self.WIDTH, self.P_A, self.P_B,
                        self.P_CIN)
        assert marginal == pytest.approx(pmf, abs=1e-12)

    def test_mred_matches_enumeration(self, lpaa_cell):
        ref = _enumerate_joint(lpaa_cell, self.WIDTH, self.P_A, self.P_B,
                               self.P_CIN)
        mred_ref = sum(abs(d) / max(v, 1) * p for (d, v), p in ref.items())
        joint = joint_error_pmf(lpaa_cell, self.WIDTH, self.P_A, self.P_B,
                                self.P_CIN)
        assert relative_error_from_joint(joint) == pytest.approx(
            mred_ref, abs=1e-12)

    def test_accurate_adder_mred_is_zero(self):
        joint = joint_error_pmf(ACCURATE, 6, 0.3, 0.7, 0.5)
        assert relative_error_from_joint(joint) == 0.0


class TestSupportLimitError:
    def test_error_pmf_carries_structured_context(self):
        with pytest.raises(SupportLimitError) as info:
            error_pmf("LPAA 5", 12, 0.5, 0.5, 0.5, max_entries=10)
        err = info.value
        assert err.width == 12
        assert err.limit == 10
        assert err.entries > err.limit
        assert isinstance(err.stage, int)

    def test_joint_pmf_carries_structured_context(self):
        with pytest.raises(SupportLimitError) as info:
            joint_error_pmf("LPAA 5", 10, max_entries=50)
        err = info.value
        assert err.width == 10
        assert err.limit == 50
        assert err.entries > 50

    def test_is_an_analysis_error_for_old_handlers(self):
        with pytest.raises(AnalysisError, match="max_entries"):
            error_pmf("LPAA 5", 12, max_entries=10)
