"""Unit tests for repro.core.adders (built-in cells, Table 1/2, registry)."""

import pytest

from repro.core.adders import (
    CELL_CHARACTERISTICS,
    PAPER_LPAAS,
    CellRegistry,
    get_cell,
    paper_cell,
    registry,
)
from repro.core.exceptions import RegistryError
from repro.core.truth_table import ACCURATE, FullAdderTruthTable

from ..paper_data import TABLE2_ROWS


class TestPaperTruthTables:
    """Pin the full Table 1 of the paper, cell by cell."""

    # (A,B,Cin)=000..111, values are (Sum, Cout) straight from Table 1.
    TABLE1 = {
        "LPAA 1": [(0, 0), (1, 0), (0, 1), (0, 1), (0, 0), (0, 1), (0, 1), (1, 1)],
        "LPAA 2": [(1, 0), (1, 0), (1, 0), (0, 1), (1, 0), (0, 1), (0, 1), (0, 1)],
        "LPAA 3": [(1, 0), (1, 0), (0, 1), (0, 1), (1, 0), (0, 1), (0, 1), (0, 1)],
        "LPAA 4": [(0, 0), (1, 0), (0, 0), (1, 0), (0, 1), (0, 1), (0, 1), (1, 1)],
        "LPAA 5": [(0, 0), (0, 0), (1, 0), (1, 0), (0, 1), (0, 1), (1, 1), (1, 1)],
        "LPAA 6": [(0, 0), (1, 1), (1, 0), (0, 1), (1, 0), (0, 1), (0, 0), (1, 1)],
        "LPAA 7": [(0, 0), (1, 0), (1, 0), (1, 1), (1, 0), (1, 1), (0, 1), (1, 1)],
    }

    def test_every_cell_matches_table1(self, lpaa_cell):
        assert list(lpaa_cell.rows) == self.TABLE1[lpaa_cell.name]

    def test_no_paper_cell_is_accurate(self, lpaa_cell):
        assert not lpaa_cell.is_accurate()

    def test_cells_are_pairwise_distinct(self):
        assert len(set(PAPER_LPAAS)) == 7


class TestCharacteristics:
    def test_table2_values_carried_verbatim(self):
        for name, (errors, power, area) in TABLE2_ROWS.items():
            char = CELL_CHARACTERISTICS[name]
            assert char.error_cases == errors
            assert char.power_nw == power
            assert char.area_ge == area

    def test_characteristics_error_cases_match_truth_tables(self):
        for cell in PAPER_LPAAS:
            assert (
                CELL_CHARACTERISTICS[cell.name].error_cases
                == cell.num_error_cases()
            )

    def test_date16_cells_have_no_published_power(self):
        assert CELL_CHARACTERISTICS["LPAA 6"].power_nw is None
        assert CELL_CHARACTERISTICS["LPAA 7"].area_ge is None


class TestRegistry:
    def test_lookup_is_name_normalising(self):
        assert get_cell("LPAA 1") is get_cell("lpaa1")
        assert get_cell("LPAA-1") is get_cell("Lpaa_1")
        assert get_cell("accurate") is ACCURATE
        assert get_cell("fa") is ACCURATE

    def test_unknown_name_lists_known_cells(self):
        with pytest.raises(RegistryError, match="LPAA 1"):
            get_cell("no-such-adder")

    def test_paper_cell_is_one_based(self):
        assert paper_cell(1).name == "LPAA 1"
        assert paper_cell(7).name == "LPAA 7"
        with pytest.raises(RegistryError):
            paper_cell(0)
        with pytest.raises(RegistryError):
            paper_cell(8)

    def test_contains_and_names(self):
        assert "lpaa3" in registry
        assert "nonsense" not in registry
        assert registry.names() == sorted(registry.names())
        assert "AccuFA" in registry.names()

    def test_custom_registration_and_conflicts(self):
        reg = CellRegistry()
        custom = FullAdderTruthTable(ACCURATE.rows, name="My Cell")
        reg.register(custom, aliases=("mc",))
        assert reg.get("my cell") == custom
        assert reg.get("MC") == custom
        other = FullAdderTruthTable(PAPER_LPAAS[0].rows, name="My Cell")
        with pytest.raises(RegistryError, match="already registered"):
            reg.register(other)
        reg.register(other, overwrite=True)
        assert reg.get("mycell") == other

    def test_reregistering_same_cell_is_idempotent(self):
        reg = CellRegistry()
        reg.register(ACCURATE)
        reg.register(ACCURATE)  # must not raise
        assert reg.get("AccuFA") == ACCURATE

    def test_iteration_yields_unique_cells(self):
        names = [cell.name for cell in registry]
        assert len(names) == len(set(names))
        assert len(names) >= 8  # AccuFA + 7 LPAAs
