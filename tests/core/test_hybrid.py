"""Unit tests for repro.core.hybrid (HybridChain)."""

import pytest

from repro.core.adders import LPAA1, LPAA7
from repro.core.exceptions import ChainLengthError
from repro.core.hybrid import HybridChain
from repro.core.recursive import analyze_chain


class TestConstruction:
    def test_uniform_factory(self):
        chain = HybridChain.uniform("LPAA 3", 5)
        assert chain.width == 5
        assert chain.is_uniform()
        assert all(cell.name == "LPAA 3" for cell in chain.cells)

    def test_uniform_rejects_bad_width(self):
        with pytest.raises(ChainLengthError):
            HybridChain.uniform("LPAA 1", 0)

    def test_empty_chain_rejected(self):
        with pytest.raises(ChainLengthError):
            HybridChain([])

    def test_from_spec_counts_and_bare_names(self):
        chain = HybridChain.from_spec("LPAA7:2, accurate, LPAA1:3")
        assert chain.width == 6
        assert [c.name for c in chain.cells] == [
            "LPAA 7", "LPAA 7", "AccuFA", "LPAA 1", "LPAA 1", "LPAA 1",
        ]

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ChainLengthError):
            HybridChain.from_spec("LPAA1:x")
        with pytest.raises(ChainLengthError):
            HybridChain.from_spec("LPAA1:0")
        with pytest.raises(ChainLengthError):
            HybridChain.from_spec("  ,  ")

    def test_spec_round_trip(self):
        chain = HybridChain([LPAA7, LPAA7, LPAA1])
        assert HybridChain.from_spec(chain.spec()) == chain


class TestStructure:
    def test_segments_run_length_encode(self):
        chain = HybridChain([LPAA7, LPAA7, LPAA1, LPAA7])
        segs = chain.segments()
        assert [(cell.name, n) for cell, n in segs] == [
            ("LPAA 7", 2), ("LPAA 1", 1), ("LPAA 7", 1),
        ]
        assert chain.describe() == "LPAA 7 x2 | LPAA 1 x1 | LPAA 7 x1"

    def test_cell_histogram(self):
        chain = HybridChain.from_spec("LPAA7:3, LPAA1:1")
        assert chain.cell_histogram() == {"LPAA 7": 3, "LPAA 1": 1}

    def test_replaced_returns_new_chain(self):
        chain = HybridChain.uniform("LPAA 7", 4)
        swapped = chain.replaced(-1, "LPAA 1")
        assert swapped != chain
        assert swapped[3].name == "LPAA 1"
        assert chain[3].name == "LPAA 7"  # original untouched

    def test_equality_and_hash(self):
        a = HybridChain.from_spec("LPAA7:2, LPAA1:2")
        b = HybridChain([LPAA7, LPAA7, LPAA1, LPAA1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != HybridChain.uniform("LPAA 7", 4)
        assert (a == "not-a-chain") is False

    def test_len_and_indexing(self):
        chain = HybridChain.from_spec("LPAA2:3")
        assert len(chain) == 3
        assert chain[0].name == "LPAA 2"


class TestAnalysis:
    def test_analyze_delegates_to_recursion(self):
        chain = HybridChain.from_spec("LPAA7:4, LPAA1:4")
        got = chain.analyze(p_a=0.1, p_b=0.1, p_cin=0.1)
        ref = analyze_chain(list(chain.cells), p_a=0.1, p_b=0.1, p_cin=0.1)
        assert got.p_success == pytest.approx(ref.p_success)
        assert got.cell_names == ref.cell_names

    def test_hybrid_can_beat_both_uniform_parents(self):
        # The paper's §5 point: with low-probability LSBs and
        # high-probability MSBs, a LPAA7 (low) + LPAA1 (high) split
        # should beat either uniform choice.
        p = [0.1] * 4 + [0.9] * 4
        hybrid = HybridChain.from_spec("LPAA7:4, LPAA1:4")
        e_hybrid = float(hybrid.error_probability(p_a=p, p_b=p))
        e_u7 = float(HybridChain.uniform("LPAA 7", 8).error_probability(p_a=p, p_b=p))
        e_u1 = float(HybridChain.uniform("LPAA 1", 8).error_probability(p_a=p, p_b=p))
        assert e_hybrid < e_u7
        assert e_hybrid < e_u1

    def test_error_pmf_and_moments_agree(self):
        chain = HybridChain.from_spec("LPAA5:2, LPAA6:2")
        pmf = chain.error_pmf(p_a=0.3, p_b=0.8)
        mom = chain.error_moments(p_a=0.3, p_b=0.8)
        assert sum(pmf.values()) == pytest.approx(1.0)
        assert mom.mean == pytest.approx(sum(d * p for d, p in pmf.items()))

    def test_error_probability_shortcut(self):
        chain = HybridChain.uniform("LPAA 4", 3)
        assert float(chain.error_probability(0.2, 0.2, 0.2)) == pytest.approx(
            float(1 - chain.analyze(0.2, 0.2, 0.2).p_success)
        )

    def test_repr_mentions_segments(self):
        assert "LPAA 7" in repr(HybridChain.uniform("LPAA 7", 2))
