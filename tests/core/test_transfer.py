"""Property suite for the segment transfer-matrix core.

The exactness contract of :mod:`repro.core.transfer` promises that the
segment-tree evaluation returns the *correctly rounded exact* value --
bit-identical to :func:`repro.core.recursive.analyze_chain` run in its
documented exact mode (``fractions.Fraction`` operands flow through
untouched).  Note the float-mode recursion is deliberately **not** the
bit reference: its per-stage roundings drift from the exact value by an
ulp at some widths, which is precisely what the transfer path removes.

Properties pinned here:

* bit-identity against the Fraction-lifted recursion over random cells,
  widths and probability vectors (including denormal-ish edge values);
* associativity of :func:`~repro.core.transfer.compose` at the *field*
  level -- any bracketing yields the same normalised entries/exponent;
* warm == cold: a :class:`repro.engine.segcache.SegmentCache` serving
  every node from memory returns the same bits as the pure builders;
* the canonical aligned decomposition really is aligned, complete and
  logarithmic;
* the Table 4 trace path (``trace_chain`` / ``keep_trace=True``) agrees
  bit-for-bit with the segment tree when both run exactly.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recursive import analyze_chain, resolve_chain
from repro.core.stages import trace_chain
from repro.core.transfer import (
    SegmentMatrix,
    aligned_blocks,
    analyze_chain_transfer,
    chain_matrix,
    compose,
    evaluate,
    lower_stage,
)
from repro.engine.segcache import SegmentCache

CELL_NAMES = ["AccuFA"] + [f"LPAA {i}" for i in range(1, 8)]

probabilities = st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False)

# Values float subtraction mangles (1.0 - 2**-70 rounds to 1.0) -- the
# integer-space complement must keep these exact.
EDGE_PROBABILITIES = [0.0, 1.0, 2.0 ** -70, 1.0 - 2.0 ** -53, 2.0 ** -52]

edge_probabilities = st.one_of(probabilities,
                               st.sampled_from(EDGE_PROBABILITIES))


@st.composite
def chain_configs(draw, max_width=24):
    width = draw(st.integers(min_value=1, max_value=max_width))
    cells = draw(st.lists(st.sampled_from(CELL_NAMES),
                          min_size=width, max_size=width))
    p_a = draw(st.lists(edge_probabilities, min_size=width, max_size=width))
    p_b = draw(st.lists(edge_probabilities, min_size=width, max_size=width))
    p_cin = draw(edge_probabilities)
    return cells, width, p_a, p_b, p_cin


def exact_success(cells, width, p_a, p_b, p_cin) -> float:
    """The bit reference: the recursion with Fraction-lifted floats."""
    return float(analyze_chain(
        cells, width,
        [Fraction(p) for p in p_a], [Fraction(p) for p in p_b],
        Fraction(p_cin),
    ).p_success)


class TestBitIdentity:
    @given(config=chain_configs())
    @settings(max_examples=60, deadline=None)
    def test_matches_exact_recursion(self, config):
        cells, width, p_a, p_b, p_cin = config
        got = analyze_chain_transfer(cells, width, p_a, p_b, p_cin)
        assert got == exact_success(cells, width, p_a, p_b, p_cin)

    @pytest.mark.parametrize("cell", CELL_NAMES)
    @pytest.mark.parametrize("width", [1, 2, 3, 7, 8, 16, 33, 64])
    def test_uniform_chains_every_cell(self, cell, width):
        got = analyze_chain_transfer(cell, width, 0.3, 0.7, 0.25)
        assert got == exact_success(cell, width, [0.3] * width,
                                    [0.7] * width, 0.25)

    def test_subnormal_scale_probabilities_stay_exact(self):
        # 1.0 - 2**-70 == 1.0 in float arithmetic; the dyadic
        # complement must not take that shortcut.
        p = 2.0 ** -70
        got = analyze_chain_transfer("LPAA 3", 8, p, 1.0 - 2.0 ** -53, p)
        assert got == exact_success("LPAA 3", 8, [p] * 8,
                                    [1.0 - 2.0 ** -53] * 8, p)


class TestComposition:
    @given(config=chain_configs(max_width=12),
           data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_bracketing_gives_identical_fields(self, config, data):
        cells, width, p_a, p_b, p_cin = config
        tables = resolve_chain(cells, width)
        leaves = [lower_stage(t, pa, pb)
                  for t, pa, pb in zip(tables, p_a, p_b)]

        def fold(lo, hi):
            if hi - lo == 1:
                return leaves[lo]
            mid = data.draw(st.integers(min_value=lo + 1, max_value=hi - 1),
                            label=f"split[{lo},{hi})")
            return compose(fold(lo, mid), fold(mid, hi))

        random_tree = fold(0, width)
        canonical = chain_matrix(tables, p_a, p_b)
        # Exact arithmetic + canonical normalisation: every bracketing
        # lands on the same entries and exponent (keys differ -- they
        # address tree *nodes*, not values).
        assert random_tree.entries() == canonical.entries()
        assert random_tree.exp == canonical.exp
        assert random_tree.span == canonical.span == width
        assert evaluate(random_tree, p_cin) == evaluate(canonical, p_cin)

    def test_compose_associative_triple(self):
        tables = resolve_chain("LPAA 5", 3)
        a, b, c = (lower_stage(t, 0.3, 0.6) for t in tables)
        left = compose(compose(a, b), c)
        right = compose(a, compose(b, c))
        assert left.entries() == right.entries()
        assert left.exp == right.exp


class TestCacheEquivalence:
    @given(config=chain_configs(max_width=16))
    @settings(max_examples=25, deadline=None)
    def test_warm_equals_cold(self, config):
        cells, width, p_a, p_b, p_cin = config
        # Cache keys quantise probabilities to 12 decimal digits (the
        # library-wide identity convention): values that are fixed
        # points of that quantisation round-trip bit-identically, so
        # feed the cache its own representatives.
        p_a = [round(p, 12) for p in p_a]
        p_b = [round(p, 12) for p in p_b]
        tables = resolve_chain(cells, width)
        cache = SegmentCache(store=None)
        cold = cache.success_probability(tables, p_a, p_b, p_cin)
        warm = cache.success_probability(tables, p_a, p_b, p_cin)
        pure = analyze_chain_transfer(cells, width, p_a, p_b, p_cin)
        assert cold == warm == pure
        stats = cache.stats()["memory"]
        assert stats["hits"] > 0 or width == 1

    def test_prefix_extension_hits_shared_nodes(self):
        # Chains extending a common aligned prefix must re-hit its
        # cached segments -- the whole point of aligned decomposition.
        cache = SegmentCache(store=None)
        tables = resolve_chain("LPAA 2", 64)
        cache.chain_root(tables[:32], [0.3] * 32, [0.7] * 32)
        misses_before = cache.stats()["memory"]["misses"]
        cache.chain_root(tables, [0.3] * 64, [0.7] * 64)
        stats = cache.stats()["memory"]
        # The 64-wide chain adds only the right half + the root: with a
        # uniform chain the right half dedups into the prefix's nodes,
        # so only the final 32+32 compose can miss.
        assert stats["misses"] - misses_before <= 1
        assert stats["hits"] > 0


class TestAlignedBlocks:
    @given(n=st.integers(min_value=1, max_value=4096))
    def test_blocks_cover_aligned_and_logarithmic(self, n):
        blocks = list(aligned_blocks(n))
        # Complete, in order, gap-free.
        assert blocks[0][0] == 0 and blocks[-1][1] == n
        for (_, hi), (lo, _) in zip(blocks, blocks[1:]):
            assert hi == lo
        for lo, hi in blocks:
            size = hi - lo
            assert size & (size - 1) == 0, "span must be a power of two"
            assert lo % size == 0, "block must be aligned to its span"
        assert len(blocks) <= max(1, 2 * n.bit_length())

    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError):
            list(aligned_blocks(0))


class TestTraceAgreement:
    @given(config=chain_configs(max_width=10))
    @settings(max_examples=25, deadline=None)
    def test_traced_result_matches_segment_tree_exactly(self, config):
        cells, width, p_a, p_b, p_cin = config
        # Both sides exact: the Fraction-lifted trace (per-stage Table 4
        # records intact) and the segment tree must agree bit-for-bit.
        traced = trace_chain(
            cells, width,
            [Fraction(p) for p in p_a], [Fraction(p) for p in p_b],
            Fraction(p_cin),
        )
        assert len(traced.trace) == width
        assert float(traced.p_success) == analyze_chain_transfer(
            cells, width, p_a, p_b, p_cin)

    def test_table4_trace_still_produced_with_segment_path(self):
        # The float-mode trace keeps its per-stage records regardless of
        # the segment tier (keep_trace forces the stage loop), and its
        # value stays within an ulp-scale tolerance of the exact path.
        traced = trace_chain("LPAA 1", 4, 0.5, 0.5, 0.5)
        assert len(traced.trace) == 4
        exact = analyze_chain_transfer("LPAA 1", 4, 0.5, 0.5, 0.5)
        assert float(traced.p_success) == pytest.approx(exact, abs=1e-12)


class TestSegmentMatrixShape:
    def test_leaf_fields_are_canonical(self):
        table = resolve_chain("LPAA 2", 1)[0]
        leaf = lower_stage(table, 0.5, 0.5)
        assert isinstance(leaf, SegmentMatrix)
        assert leaf.span == 1
        # p = 0.5 has tiny numerators: normalisation must strip the
        # common power of two down to a minimal exponent.
        assert leaf.exp <= 2
        again = lower_stage(table, 0.5, 0.5)
        assert again == leaf  # canonical form => equal values equal fields

    def test_evaluate_zero_mass(self):
        table = resolve_chain("LPAA 2", 1)[0]
        # P(A)=P(B)=1 on LPAA 2 with cin=1 is an always-error corner;
        # whatever the mass, evaluate must return a float in [0, 1].
        seg = lower_stage(table, 1.0, 1.0)
        value = evaluate(seg, 1.0)
        assert 0.0 <= value <= 1.0
