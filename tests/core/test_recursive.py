"""Unit + golden tests for repro.core.recursive (Algorithm 1)."""

from fractions import Fraction

import pytest

from repro.core.adders import LPAA1, PAPER_LPAAS
from repro.core.exceptions import ChainLengthError, ProbabilityError
from repro.core.recursive import (
    analyze_chain,
    build_ipm,
    error_probability,
    mask_dot,
    resolve_chain,
    success_probability,
)
from repro.core.truth_table import ACCURATE

from ..paper_data import (
    TABLE4_CARRY_ROWS,
    TABLE4_P_A,
    TABLE4_P_B,
    TABLE4_P_CIN,
    TABLE4_P_SUCC,
    TABLE7_ANALYTICAL,
    TABLE7_P,
)


class TestTable4Golden:
    """Reproduce the paper's 4-bit LPAA 1 worked example exactly."""

    def test_final_success_probability(self):
        result = analyze_chain(
            "LPAA 1", width=4, p_a=TABLE4_P_A, p_b=TABLE4_P_B, p_cin=TABLE4_P_CIN
        )
        assert result.p_success == pytest.approx(TABLE4_P_SUCC, abs=5e-7)

    def test_per_stage_carry_probabilities(self):
        result = analyze_chain(
            "LPAA 1",
            width=4,
            p_a=TABLE4_P_A,
            p_b=TABLE4_P_B,
            p_cin=TABLE4_P_CIN,
            keep_trace=True,
        )
        for stage, (c0, c1) in enumerate(TABLE4_CARRY_ROWS):
            record = result.trace[stage]
            assert record.p_c0_next_succ == pytest.approx(c0, abs=5e-6)
            assert record.p_c1_next_succ == pytest.approx(c1, abs=5e-6)
        # Eq. 6: stage i's carry-out feeds stage i+1's carry-in.
        for stage in range(3):
            assert (
                result.trace[stage + 1].p_c1_curr_succ
                == result.trace[stage].p_c1_next_succ
            )

    def test_last_stage_has_no_carry_out(self):
        result = analyze_chain("LPAA 1", width=4, keep_trace=True)
        last = result.trace[-1]
        assert last.p_c0_next_succ is None and last.p_c1_next_succ is None
        assert last.p_success is not None


class TestTable7Golden:
    """Reproduce every 'Analyt.' entry of paper Table 7 (p = 0.1)."""

    @pytest.mark.parametrize("width", sorted(TABLE7_ANALYTICAL))
    def test_analytical_column(self, width):
        for idx, expected in enumerate(TABLE7_ANALYTICAL[width]):
            got = error_probability(
                PAPER_LPAAS[idx], width=width,
                p_a=TABLE7_P, p_b=TABLE7_P, p_cin=TABLE7_P,
            )
            # The paper rounds/truncates to 5 decimals (and prints
            # 0.99999 for values that round to 1.0); match to 1e-5.
            assert got == pytest.approx(expected, abs=1.1e-5), (
                f"LPAA {idx + 1} at width {width}"
            )


class TestEngineBehaviour:
    def test_accurate_adder_never_errs(self):
        for width in (1, 3, 17, 64):
            assert success_probability(ACCURATE, width=width, p_a=0.37,
                                       p_b=0.81, p_cin=0.25) == pytest.approx(1.0)

    def test_single_stage_matches_direct_row_sum(self, lpaa_cell):
        # For N=1 the success probability is just the success-row mass.
        p_a, p_b, p_c = 0.3, 0.6, 0.2
        expected = 0.0
        for idx, ok in enumerate(lpaa_cell.success_rows()):
            if not ok:
                continue
            a, b, c = (idx >> 2) & 1, (idx >> 1) & 1, idx & 1
            expected += (
                (p_a if a else 1 - p_a)
                * (p_b if b else 1 - p_b)
                * (p_c if c else 1 - p_c)
            )
        got = success_probability(lpaa_cell, width=1, p_a=p_a, p_b=p_b, p_cin=p_c)
        assert got == pytest.approx(expected, abs=1e-15)

    def test_deterministic_inputs_give_zero_or_one(self, lpaa_cell):
        # With all probabilities in {0,1} the adder sees one fixed input
        # vector, so P(Succ) must be exactly 0 or 1.
        p = success_probability(
            lpaa_cell, width=5, p_a=[1, 0, 1, 1, 0], p_b=[0, 0, 1, 0, 1], p_cin=1
        )
        assert p in (0.0, 1.0)

    def test_survival_mass_is_non_increasing(self, lpaa_cell):
        result = analyze_chain(lpaa_cell, width=10, p_a=0.4, p_b=0.7,
                               p_cin=0.5, keep_trace=True)
        survivals = [record.survival for record in result.trace]
        for earlier, later in zip(survivals, survivals[1:]):
            assert later <= earlier + 1e-12

    def test_fraction_inputs_stay_exact(self):
        result = analyze_chain(
            "LPAA 1",
            width=4,
            p_a=[Fraction(9, 10), Fraction(1, 2), Fraction(2, 5), Fraction(4, 5)],
            p_b=[Fraction(4, 5), Fraction(7, 10), Fraction(3, 5), Fraction(9, 10)],
            p_cin=Fraction(1, 2),
        )
        assert isinstance(result.p_success, Fraction)
        assert result.p_success == Fraction(184619, 250000)  # == 0.738476
        assert result.p_error == Fraction(65381, 250000)

    def test_hybrid_chain_list_of_cells(self):
        mixed = ["LPAA 7", "LPAA 7", LPAA1, "LPAA 1"]
        result = analyze_chain(mixed, p_a=0.1, p_b=0.1, p_cin=0.1)
        assert result.width == 4
        assert result.cell_names == ("LPAA 7", "LPAA 7", "LPAA 1", "LPAA 1")
        assert not result.is_uniform()
        # Hybrid must differ from both uniform variants at this point.
        uniform7 = error_probability("LPAA 7", 4, 0.1, 0.1, 0.1)
        uniform1 = error_probability("LPAA 1", 4, 0.1, 0.1, 0.1)
        assert result.p_error != pytest.approx(uniform7)
        assert result.p_error != pytest.approx(uniform1)

    def test_result_metadata(self):
        result = analyze_chain("LPAA 2", width=3, p_a=[0.1, 0.2, 0.3], p_b=0.5)
        assert result.p_a == (0.1, 0.2, 0.3)
        assert result.p_b == (0.5, 0.5, 0.5)
        assert result.p_cin == 0.5
        assert result.is_uniform()
        assert result.p_error == pytest.approx(1 - result.p_success)


class TestValidation:
    def test_uniform_chain_requires_width(self):
        with pytest.raises(ChainLengthError, match="width is required"):
            analyze_chain("LPAA 1")

    def test_zero_width_rejected(self):
        with pytest.raises(ChainLengthError):
            analyze_chain("LPAA 1", width=0)

    def test_empty_cell_list_rejected(self):
        with pytest.raises(ChainLengthError):
            analyze_chain([])

    def test_width_mismatch_with_cell_list(self):
        with pytest.raises(ChainLengthError, match="does not match"):
            analyze_chain(["LPAA 1", "LPAA 2"], width=3)

    def test_probability_vector_length_checked(self):
        with pytest.raises(ProbabilityError):
            analyze_chain("LPAA 1", width=4, p_a=[0.5, 0.5])

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ProbabilityError):
            analyze_chain("LPAA 1", width=2, p_cin=1.5)


class TestBuildingBlocks:
    def test_build_ipm_sums_to_input_mass(self):
        ipm = build_ipm(0.3, 0.8, 0.6, 0.4)
        assert sum(ipm) == pytest.approx(1.0)
        # With success-conditioned carry mass < 1 the IPM total shrinks.
        ipm = build_ipm(0.3, 0.8, 0.5, 0.2)
        assert sum(ipm) == pytest.approx(0.7)

    def test_build_ipm_row_order(self):
        # Entry for (A,B,Cin)=(1,0,1) must sit at index 5 and use
        # p_a * (1-p_b) * P(C & Succ).
        ipm = build_ipm(0.9, 0.2, 0.7, 0.1)
        assert ipm[5] == pytest.approx(0.9 * 0.8 * 0.7)

    def test_mask_dot_skips_zero_entries(self):
        assert mask_dot([0.1, 0.2, 0.3], (1, 0, 1)) == pytest.approx(0.4)
        assert mask_dot([0.5] * 8, (0,) * 8) == 0

    def test_resolve_chain_uniform_and_hybrid(self):
        chain = resolve_chain("LPAA 3", 5)
        assert len(chain) == 5 and all(t.name == "LPAA 3" for t in chain)
        chain = resolve_chain([LPAA1, "accurate"], None)
        assert [t.name for t in chain] == ["LPAA 1", "AccuFA"]
