"""Tests for repro.core.masking -- exactness of the paper's recursion.

These tests pin the semantic claim in DESIGN.md: for all seven paper
LPAAs the recursion's P(Error) equals the true word-level error
probability (no error masking), verified both through the structural
reachability search and by exhaustive functional enumeration.
"""

import itertools

import pytest

from repro.core.adders import PAPER_LPAAS
from repro.core.masking import chain_is_exact, masking_analysis, masking_summary
from repro.core.recursive import error_probability
from repro.core.truth_table import ACCURATE, FullAdderTruthTable
from repro.simulation.functional import ripple_add


class TestPaperCellsAreExact:
    def test_structural_search_finds_no_masking(self, lpaa_cell):
        report = masking_analysis(lpaa_cell)
        assert report.recursion_is_always_exact
        assert not report.can_mask_at_some_width

    def test_chain_is_exact_for_all_cells_and_widths(self, lpaa_cell):
        for width in (1, 2, 4, 8):
            assert chain_is_exact(lpaa_cell, width)

    def test_exhaustive_cross_check(self, lpaa_cell):
        # Count functional word-level errors over all equiprobable
        # inputs and compare with the analytical P(Error).
        width = 4
        errors = 0
        total = 0
        for a, b in itertools.product(range(1 << width), repeat=2):
            for cin in (0, 1):
                total += 1
                if ripple_add(lpaa_cell, a, b, cin, width) != a + b + cin:
                    errors += 1
        analytical = error_probability(lpaa_cell, width, 0.5, 0.5, 0.5)
        assert errors / total == pytest.approx(float(analytical), abs=1e-12)

    def test_only_lpaa6_has_silent_divergence_cases(self):
        reports = masking_summary(list(PAPER_LPAAS))
        silent = {r.cell_name: len(r.silent_divergence_cases) for r in reports}
        assert silent == {
            "LPAA 1": 0, "LPAA 2": 0, "LPAA 3": 0, "LPAA 4": 0,
            "LPAA 5": 0, "LPAA 6": 2, "LPAA 7": 0,
        }


class TestAccurateAdder:
    def test_accurate_adder_is_trivially_exact(self):
        report = masking_analysis(ACCURATE)
        assert report.recursion_is_always_exact
        assert report.silent_divergence_cases == ()


class TestMaskingIsDetectable:
    def _masking_cell(self):
        """A synthetic cell engineered so divergence can be masked.

        Start from the accurate adder and corrupt two rows:

        * ``(0,1,1): (0,1) -> (0,0)`` -- keeps the sum correct but drops
          the carry, starting a *silent* divergence (approx 0, exact 1);
        * ``(1,0,0): (1,0) -> (0,1)`` -- under the diverged carry the
          approximate stage sees ``(1,0,0)`` and emits sum 0 while the
          exact chain sees ``(1,0,1)`` and also emits sum 0; the
          corrupted carry 1 re-converges the chains.

        Example masked input at width 3: A=0b010, B=0b001, Cin=1 adds to
        4 exactly, although stage 0 misbehaved.
        """
        rows = list(ACCURATE.rows)
        rows[3] = (0, 0)  # (0,1,1): silent carry drop
        rows[4] = (0, 1)  # (1,0,0): masks and re-converges
        return FullAdderTruthTable(rows, name="maskable")

    def test_synthetic_cell_reports_masking(self):
        cell = self._masking_cell()
        report = masking_analysis(cell)
        assert report.can_mask_at_some_width
        assert not report.recursion_is_always_exact

    def test_recursion_overestimates_error_for_masking_cell(self):
        # For the carry-blind cell the recursion's P(Error) must be a
        # strict upper bound on the true functional error rate.
        cell = self._masking_cell()
        width = 3
        errors = 0
        total = 0
        for a, b in itertools.product(range(1 << width), repeat=2):
            for cin in (0, 1):
                total += 1
                if ripple_add(cell, a, b, cin, width) != a + b + cin:
                    errors += 1
        functional = errors / total
        analytical = float(error_probability(cell, width, 0.5, 0.5, 0.5))
        assert analytical > functional
        assert not chain_is_exact(cell, width)

    def test_chain_is_exact_depends_on_position(self):
        cell = self._masking_cell()
        # Masking needs the divergence-starting row AND the absorbing
        # row on consecutive stages, so two maskable stages suffice...
        assert not chain_is_exact([cell, cell, ACCURATE])
        # ...but a lone maskable stage followed by accurate stages is
        # exact (an accurate sum always exposes a diverged carry), and
        # so is a maskable *final* stage (its diverged carry-out is
        # itself an output error).
        assert chain_is_exact([cell, ACCURATE, ACCURATE])
        assert chain_is_exact([ACCURATE, ACCURATE, cell])

    def test_masked_input_example(self):
        # The concrete witness from the _masking_cell docstring.
        cell = self._masking_cell()
        assert ripple_add(cell, 0b010, 0b001, 1, 3) == 0b010 + 0b001 + 1
