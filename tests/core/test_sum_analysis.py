"""Unit tests for repro.core.sum_analysis (marginal and joint tracking)."""

import itertools

import pytest

from repro.core.adders import LPAA6
from repro.core.sum_analysis import (
    bit_error_probabilities,
    carry_profile,
    joint_carry_profile,
    sum_bit_probabilities,
)
from repro.core.truth_table import ACCURATE


def _enumerate_reference(cell, width, p_a, p_b, p_cin):
    """Brute-force marginals by weighted enumeration of all inputs."""
    carry_one = [0.0] * (width + 1)
    sum_one = [0.0] * width
    bit_err = [0.0] * width
    cout_err = 0.0
    for bits in itertools.product((0, 1), repeat=2 * width + 1):
        a_bits, b_bits, cin = bits[:width], bits[width:2 * width], bits[-1]
        w = p_cin if cin else 1 - p_cin
        for i in range(width):
            w *= p_a[i] if a_bits[i] else 1 - p_a[i]
            w *= p_b[i] if b_bits[i] else 1 - p_b[i]
        if w == 0.0:
            continue
        c_approx, c_exact = cin, cin
        carry_one[0] += w * cin
        for i in range(width):
            s_ap, c_ap = cell.evaluate(a_bits[i], b_bits[i], c_approx)
            s_ex, c_ex = ACCURATE.evaluate(a_bits[i], b_bits[i], c_exact)
            sum_one[i] += w * s_ap
            if s_ap != s_ex:
                bit_err[i] += w
            c_approx, c_exact = c_ap, c_ex
            carry_one[i + 1] += w * c_approx
        if c_approx != c_exact:
            cout_err += w
    return carry_one, sum_one, bit_err, cout_err


@pytest.fixture(scope="module")
def reference():
    width = 4
    p_a = [0.2, 0.7, 0.5, 0.9]
    p_b = [0.4, 0.1, 0.8, 0.3]
    p_cin = 0.6
    return {
        "width": width, "p_a": p_a, "p_b": p_b, "p_cin": p_cin,
    }


class TestCarryProfile:
    def test_matches_enumeration(self, lpaa_cell, reference):
        ref, _, _, _ = _enumerate_reference(
            lpaa_cell, reference["width"], reference["p_a"],
            reference["p_b"], reference["p_cin"],
        )
        got = carry_profile(lpaa_cell, reference["width"], reference["p_a"],
                            reference["p_b"], reference["p_cin"])
        assert len(got) == reference["width"] + 1
        for g, r in zip(got, ref):
            assert g == pytest.approx(r, abs=1e-12)

    def test_first_entry_is_carry_in(self):
        profile = carry_profile("LPAA 3", 3, 0.5, 0.5, 0.123)
        assert profile[0] == pytest.approx(0.123)

    def test_accurate_adder_fixed_point_at_half(self):
        # For p = 0.5 the exact carry chain stays at P(c) = 0.5.
        profile = carry_profile(ACCURATE, 10, 0.5, 0.5, 0.5)
        assert all(p == pytest.approx(0.5) for p in profile)


class TestSumBits:
    def test_matches_enumeration(self, lpaa_cell, reference):
        _, ref, _, _ = _enumerate_reference(
            lpaa_cell, reference["width"], reference["p_a"],
            reference["p_b"], reference["p_cin"],
        )
        got = sum_bit_probabilities(
            lpaa_cell, reference["width"], reference["p_a"],
            reference["p_b"], reference["p_cin"],
        )
        for g, r in zip(got, ref):
            assert g == pytest.approx(r, abs=1e-12)

    def test_accurate_adder_balanced_inputs(self):
        got = sum_bit_probabilities(ACCURATE, 6, 0.5, 0.5, 0.5)
        assert all(p == pytest.approx(0.5) for p in got)


class TestJointProfile:
    def test_mass_is_conserved(self, lpaa_cell):
        states = joint_carry_profile(lpaa_cell, 8, 0.3, 0.6, 0.5)
        assert len(states) == 9
        for state in states:
            assert state.total() == pytest.approx(1.0, abs=1e-12)

    def test_initial_state_is_converged(self):
        states = joint_carry_profile("LPAA 1", 2, 0.5, 0.5, 0.25)
        assert states[0].p_diverged == 0.0
        assert states[0].p11 == pytest.approx(0.25)
        assert states[0].p00 == pytest.approx(0.75)

    def test_accurate_adder_never_diverges(self):
        states = joint_carry_profile(ACCURATE, 12, 0.37, 0.64, 0.5)
        assert all(s.p_diverged == pytest.approx(0.0) for s in states)

    def test_marginals_match_carry_profiles(self, lpaa_cell, reference):
        states = joint_carry_profile(
            lpaa_cell, reference["width"], reference["p_a"],
            reference["p_b"], reference["p_cin"],
        )
        approx_marginal = carry_profile(
            lpaa_cell, reference["width"], reference["p_a"],
            reference["p_b"], reference["p_cin"],
        )
        exact_marginal = carry_profile(
            ACCURATE, reference["width"], reference["p_a"],
            reference["p_b"], reference["p_cin"],
        )
        for state, pa_, pe_ in zip(states, approx_marginal, exact_marginal):
            assert state.p_approx_one == pytest.approx(float(pa_), abs=1e-12)
            assert state.p_exact_one == pytest.approx(float(pe_), abs=1e-12)


class TestBitErrors:
    def test_matches_enumeration(self, lpaa_cell, reference):
        _, _, ref_bits, ref_cout = _enumerate_reference(
            lpaa_cell, reference["width"], reference["p_a"],
            reference["p_b"], reference["p_cin"],
        )
        bits, cout = bit_error_probabilities(
            lpaa_cell, reference["width"], reference["p_a"],
            reference["p_b"], reference["p_cin"],
        )
        for g, r in zip(bits, ref_bits):
            assert g == pytest.approx(r, abs=1e-12)
        assert cout == pytest.approx(ref_cout, abs=1e-12)

    def test_lpaa6_lsb_errors_only_in_carry(self):
        # LPAA 6's error cases keep the sum correct, so the stage-0 sum
        # bit (which sees a correct carry-in) can never be wrong.
        bits, cout = bit_error_probabilities(LPAA6, 4, 0.5, 0.5, 0.5)
        assert bits[0] == pytest.approx(0.0)
        assert cout > 0.0

    def test_accurate_adder_zero_everywhere(self):
        bits, cout = bit_error_probabilities(ACCURATE, 5, 0.2, 0.9, 0.4)
        assert all(b == pytest.approx(0.0) for b in bits)
        assert cout == pytest.approx(0.0)
