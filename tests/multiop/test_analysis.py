"""Tests for carry-save statistical analysis."""

import itertools

import pytest

from repro.core.exceptions import AnalysisError
from repro.multiop.analysis import (
    csa_layer_success_probability,
    csa_tree_success_product,
    multi_operand_error_exact,
    multi_operand_error_probability_mc,
)
from repro.multiop.compressor import csa_compress


def _layer_success_enumeration(cell, p, width):
    """Brute-force P(one 3:2 row fully accurate) at uniform bit prob p."""
    ok_mass = 0.0
    for x, y, z in itertools.product(range(1 << width), repeat=3):
        s, c = csa_compress(cell, x, y, z, width)
        s_ref, c_ref = csa_compress("accurate", x, y, z, width)
        if (s, c) == (s_ref, c_ref):
            bits = sum(
                bin(v).count("1") for v in (x, y, z)
            )
            ok_mass += (p ** bits) * ((1 - p) ** (3 * width - bits))
    return ok_mass


class TestLayerSuccess:
    def test_matches_enumeration(self, lpaa_cell):
        for p in (0.2, 0.5, 0.8):
            got = csa_layer_success_probability(lpaa_cell, p, p, p, 3)
            ref = _layer_success_enumeration(lpaa_cell, p, 3)
            assert got == pytest.approx(ref, abs=1e-12)

    def test_accurate_cell_always_succeeds(self):
        assert csa_layer_success_probability(
            "accurate", 0.3, 0.9, 0.5, 8
        ) == pytest.approx(1.0)

    def test_per_column_probabilities(self):
        # Deterministic columns: only column 1 can err for LPAA 1 at
        # input pattern (0,1,0) (its error row).
        got = csa_layer_success_probability(
            "LPAA 1", [0, 0], [0, 1], [0, 0], 2
        )
        assert got == pytest.approx(0.0)  # column 1 hits error row 010

    def test_product_structure(self, lpaa_cell):
        single = csa_layer_success_probability(lpaa_cell, 0.4, 0.4, 0.4, 1)
        triple = csa_layer_success_probability(lpaa_cell, 0.4, 0.4, 0.4, 3)
        assert triple == pytest.approx(single ** 3)


class TestTreeProduct:
    def test_single_level_is_exact(self, lpaa_cell):
        p_rows = [[0.3] * 3, [0.6] * 3, [0.5] * 3]
        product = csa_tree_success_product(lpaa_cell, p_rows, 3)
        exact = csa_layer_success_probability(lpaa_cell, 0.3, 0.6, 0.5, 3)
        assert product == pytest.approx(exact, abs=1e-12)

    def test_two_operands_no_compression(self):
        assert csa_tree_success_product("LPAA 1", [[0.5] * 4, [0.5] * 4], 4) \
            == pytest.approx(1.0)

    def test_close_to_monte_carlo_for_deeper_tree(self):
        # Product estimate of all-cells-accurate vs MC word-level error:
        # 1 - product should upper-bound ... approximately track the MC
        # tree error with an accurate final adder.
        p_rows = [[0.3] * 4] * 5
        product = csa_tree_success_product("LPAA 6", p_rows, 4)
        mc_error = multi_operand_error_probability_mc(
            p_rows, 4, compress_cell="LPAA 6", samples=200_000, seed=1
        )
        assert abs((1.0 - product) - mc_error) < 0.08

    def test_validation(self):
        with pytest.raises(AnalysisError):
            csa_tree_success_product("LPAA 1", [], 4)


class TestOracles:
    def test_mc_matches_exact_enumeration(self):
        p_rows = [[0.3, 0.7], [0.5, 0.5], [0.9, 0.1]]
        exact = multi_operand_error_exact(
            p_rows, 2, compress_cell="LPAA 6", final_adder="LPAA 1"
        )
        mc = multi_operand_error_probability_mc(
            p_rows, 2, compress_cell="LPAA 6", final_adder="LPAA 1",
            samples=300_000, seed=5,
        )
        assert abs(exact - mc) < 5e-3

    def test_exact_accurate_configuration_is_zero(self):
        assert multi_operand_error_exact([[0.5] * 2] * 3, 2) == 0.0

    def test_exact_guard(self):
        with pytest.raises(AnalysisError, match="cases"):
            multi_operand_error_exact([[0.5] * 8] * 4, 8)

    def test_mc_seed_reproducible(self):
        p_rows = [[0.5] * 3] * 3
        a = multi_operand_error_probability_mc(
            p_rows, 3, compress_cell="LPAA 5", samples=10_000, seed=2
        )
        b = multi_operand_error_probability_mc(
            p_rows, 3, compress_cell="LPAA 5", samples=10_000, seed=2
        )
        assert a == b

    def test_mc_sample_validation(self):
        with pytest.raises(AnalysisError):
            multi_operand_error_probability_mc([[0.5]], 1, samples=0)
