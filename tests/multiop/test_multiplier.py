"""Tests for approximate array multipliers."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError, ChainLengthError
from repro.multiop.multiplier import (
    approx_multiply,
    exhaustive_multiplier_check,
    multiplier_error_metrics,
    multiplier_final_width,
    partial_products,
)


class TestPartialProducts:
    def test_sum_of_rows_is_product(self):
        for a in range(16):
            for b in range(16):
                assert sum(partial_products(a, b, 4)) == a * b

    def test_row_structure(self):
        rows = partial_products(0b101, 0b011, 3)
        assert rows == [0b101, 0b1010, 0]

    def test_range_validation(self):
        with pytest.raises(ChainLengthError):
            partial_products(8, 0, 3)


class TestApproxMultiply:
    def test_accurate_configuration_is_exact(self):
        errors, total = exhaustive_multiplier_check(4)
        assert errors == 0 and total == 256

    def test_approximate_compressors_err(self):
        errors, total = exhaustive_multiplier_check(
            4, compress_cell="LPAA 5"
        )
        assert 0 < errors < total

    def test_truncation_errs_only_in_low_bits(self):
        k = 2
        for a in range(8):
            for b in range(8):
                approx = approx_multiply(a, b, 3, truncate_bits=k)
                exact = a * b
                assert abs(approx - exact) < 3 * (1 << k)
                assert approx % (1 << k) == 0

    def test_truncation_validation(self):
        with pytest.raises(AnalysisError):
            approx_multiply(1, 1, 3, truncate_bits=7)

    def test_final_width_helper(self):
        assert multiplier_final_width(4) >= 8
        assert multiplier_final_width(4, truncate_bits=2) == \
            multiplier_final_width(4) - 2


class TestMetrics:
    def test_accurate_metrics_are_zero(self):
        er, med, wce = multiplier_error_metrics(4, samples=2_000, seed=0)
        assert er == 0.0 and med == 0.0 and wce == 0

    def test_mc_matches_exhaustive_rate(self):
        errors, total = exhaustive_multiplier_check(
            3, compress_cell="LPAA 6"
        )
        er, _, _ = multiplier_error_metrics(
            3, compress_cell="LPAA 6", samples=30_000, seed=1
        )
        assert er == pytest.approx(errors / total, abs=0.02)

    def test_deeper_truncation_grows_error_magnitude(self):
        meds = [
            multiplier_error_metrics(4, truncate_bits=k,
                                     samples=5_000, seed=2)[1]
            for k in (0, 2, 4)
        ]
        assert meds[0] == 0.0
        assert meds[1] < meds[2]

    def test_exhaustive_guard(self):
        with pytest.raises(AnalysisError):
            exhaustive_multiplier_check(8)

    def test_sample_validation(self):
        with pytest.raises(AnalysisError):
            multiplier_error_metrics(4, samples=0)
