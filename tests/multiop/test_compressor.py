"""Unit tests for carry-save compression structures."""

import itertools

import numpy as np
import pytest

from repro.core.exceptions import ChainLengthError
from repro.multiop.compressor import (
    csa_compress,
    csa_compress_array,
    multi_operand_add,
    multi_operand_add_array,
    wallace_reduce,
)


class TestCsaCompress:
    def test_accurate_invariant_sum_plus_carry(self):
        # The defining CSA property: s + c == x + y + z, all columns.
        for x, y, z in itertools.product(range(8), repeat=3):
            s, c = csa_compress("accurate", x, y, z, 3)
            assert s + c == x + y + z

    def test_carry_word_is_shifted(self):
        s, c = csa_compress("accurate", 0b111, 0b111, 0b000, 3)
        assert s == 0b000 and c == 0b1110  # carries at weights 1..3

    def test_approximate_cell_deviates(self):
        deviations = sum(
            1
            for x, y, z in itertools.product(range(4), repeat=3)
            if sum(csa_compress("LPAA 5", x, y, z, 2)) != x + y + z
        )
        assert deviations > 0

    def test_single_column_matches_cell(self, lpaa_cell):
        for idx in range(8):
            x, y, z = (idx >> 2) & 1, (idx >> 1) & 1, idx & 1
            s, c = csa_compress(lpaa_cell, x, y, z, 1)
            expected_s, expected_c = lpaa_cell.rows[idx]
            assert (s, c >> 1) == (expected_s, expected_c)

    def test_validation(self):
        with pytest.raises(ChainLengthError):
            csa_compress("accurate", 8, 0, 0, 3)
        with pytest.raises(ChainLengthError):
            csa_compress("accurate", 0, 0, 0, 0)

    def test_array_matches_scalar(self, rng):
        x = rng.integers(0, 16, 100)
        y = rng.integers(0, 16, 100)
        z = rng.integers(0, 16, 100)
        s_arr, c_arr = csa_compress_array("LPAA 6", x, y, z, 4)
        for j in range(100):
            s, c = csa_compress("LPAA 6", int(x[j]), int(y[j]), int(z[j]), 4)
            assert (s_arr[j], c_arr[j]) == (s, c)


class TestWallaceReduce:
    def test_accurate_reduction_preserves_total(self):
        operands = [13, 7, 9, 2, 15, 1, 8]
        words, trace = wallace_reduce("accurate", operands, 4)
        assert len(words) <= 2
        assert sum(words) == sum(operands)
        assert trace.levels >= 2
        assert trace.compressions >= 3

    def test_two_operands_need_no_reduction(self):
        words, trace = wallace_reduce("accurate", [5, 9], 4)
        assert words == [5, 9]
        assert trace.levels == 0 and trace.compressions == 0

    def test_final_width_grows_per_level(self):
        _, trace = wallace_reduce("accurate", [1] * 9, 4)
        assert trace.final_width == 4 + trace.levels

    def test_empty_operands_rejected(self):
        with pytest.raises(ChainLengthError):
            wallace_reduce("accurate", [], 4)


class TestMultiOperandAdd:
    def test_accurate_tree_is_exact(self, rng):
        for _ in range(50):
            operands = [int(v) for v in rng.integers(0, 256, 6)]
            assert multi_operand_add(operands, 8) == sum(operands)

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 6, 7, 9])
    def test_operand_count_edge_cases(self, count):
        operands = list(range(1, count + 1))
        assert multi_operand_add(operands, 4) == sum(operands)

    def test_approximate_compress_cell_errs_sometimes(self):
        errors = sum(
            1
            for a in range(8)
            for b in range(8)
            if multi_operand_add([a, b, 5], 3, compress_cell="LPAA 1")
            != a + b + 5
        )
        assert errors > 0

    def test_approximate_final_adder_errs_sometimes(self):
        errors = sum(
            1
            for a in range(8)
            for b in range(8)
            if multi_operand_add([a, b, 5], 3, final_adder="LPAA 2")
            != a + b + 5
        )
        assert errors > 0

    def test_array_matches_scalar(self, rng):
        operands = [rng.integers(0, 16, 40) for _ in range(5)]
        got = multi_operand_add_array(operands, 4, compress_cell="LPAA 6",
                                      final_adder="LPAA 1")
        for j in range(40):
            scalar = multi_operand_add(
                [int(op[j]) for op in operands], 4,
                compress_cell="LPAA 6", final_adder="LPAA 1",
            )
            assert got[j] == scalar
