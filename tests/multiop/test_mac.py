"""Tests for MAC / accumulator structures."""

import numpy as np
import pytest

from repro.core.exceptions import AnalysisError, ChainLengthError
from repro.multiop.mac import (
    Accumulator,
    accumulator_drift_profile,
    dot_product,
    mean_accumulator_drift,
)


class TestDotProduct:
    def test_accurate_configuration_is_exact(self, rng):
        for _ in range(20):
            a = [int(v) for v in rng.integers(0, 16, 8)]
            b = [int(v) for v in rng.integers(0, 16, 8)]
            assert dot_product(a, b, 4) == sum(
                x * y for x, y in zip(a, b)
            )

    def test_empty_vectors(self):
        assert dot_product([], [], 4) == 0

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            dot_product([1, 2], [1], 4)

    def test_operand_range(self):
        with pytest.raises(ChainLengthError):
            dot_product([16], [1], 4)

    def test_approximate_compressor_changes_results(self):
        a = [3, 7, 12, 5, 9, 14, 2, 8]
        b = [11, 4, 6, 13, 1, 10, 15, 7]
        exact = sum(x * y for x, y in zip(a, b))
        approx = dot_product(a, b, 4, compress_cell="LPAA 6")
        assert approx != exact
        # deterministic: same inputs, same approximate result
        assert approx == dot_product(a, b, 4, compress_cell="LPAA 6")

    def test_lsb_limited_final_adder_bounds_error(self):
        # Approximating only the low k bits of the final carry-propagate
        # adder bounds the dot-product error: divergence above bit k is
        # impossible when the upper cells are accurate, so
        # |approx - exact| < 2^(k+1).
        k = 3
        rng_vals = [
            ([3, 7, 12, 5], [11, 4, 6, 13]),
            ([15, 15, 15, 15], [15, 15, 15, 15]),
            ([1, 2, 3, 4], [8, 9, 10, 11]),
        ]
        for a, b in rng_vals:
            exact = sum(x * y for x, y in zip(a, b))
            # chain long enough for any reduction width; low k approx.
            chain = ["LPAA 2"] * k + ["accurate"] * 16
            approx = dot_product(a, b, 4, final_adder=chain[:10])
            assert abs(approx - exact) < (1 << (k + 1)), (a, b)


class TestAccumulator:
    def test_accurate_accumulator_tracks_exact(self):
        acc = Accumulator(8, "accurate")
        for v in (10, 20, 30, 250):
            acc.add(v)
        assert acc.value == acc.exact_value == (10 + 20 + 30 + 250) % 256
        assert acc.drift == 0
        assert acc.steps == 4

    def test_wraparound_semantics(self):
        acc = Accumulator(4, "accurate")
        acc.add(9)
        acc.add(9)
        assert acc.value == (18) % 16

    def test_reset(self):
        acc = Accumulator(4, "LPAA 1")
        acc.add(3)
        acc.reset()
        assert acc.value == 0 and acc.exact_value == 0 and acc.steps == 0

    def test_input_range_checked(self):
        acc = Accumulator(4)
        with pytest.raises(ChainLengthError):
            acc.add(16)

    def test_drift_is_signed_and_wrapped(self):
        acc = Accumulator(4, "accurate")
        acc._value = 15  # simulate an off-by-(-1) register under wrap
        acc._exact = 0
        assert acc.drift == -1

    def test_approximate_accumulator_drifts(self):
        drifts = accumulator_drift_profile(
            8, "LPAA 5", list(range(1, 64))
        )
        assert (drifts != 0).any()

    def test_drift_profile_length(self):
        drifts = accumulator_drift_profile(8, "accurate", [1, 2, 3])
        assert drifts.shape == (3,)
        assert (drifts == 0).all()


class TestMeanDrift:
    def test_accurate_mean_drift_is_zero(self):
        curve = mean_accumulator_drift(8, "accurate", steps=20, trials=4,
                                       seed=0)
        assert curve.shape == (20,)
        assert np.allclose(curve, 0.0)

    def test_lsb_only_approximation_bounds_drift(self):
        # Approximating only the low 2 bits bounds each step's error,
        # so mean drift stays well below the full-width case.
        lsb_chain = ["LPAA 5", "LPAA 5"] + ["accurate"] * 6
        lsb = mean_accumulator_drift(8, lsb_chain, steps=30, trials=16,
                                     seed=1)
        full = mean_accumulator_drift(8, "LPAA 5", steps=30, trials=16,
                                      seed=1)
        assert lsb.mean() < full.mean()

    def test_validation(self):
        with pytest.raises(AnalysisError):
            mean_accumulator_drift(8, "accurate", steps=0)
