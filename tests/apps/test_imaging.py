"""Unit tests for the imaging application substrate."""

import numpy as np
import pytest

from repro.apps.imaging import (
    approximate_blend,
    approximate_box_blur,
    psnr,
    synthetic_image,
)
from repro.core.exceptions import AnalysisError


class TestSyntheticImages:
    @pytest.mark.parametrize("kind", ["gradient", "checker", "noise", "disk"])
    def test_generated_shapes_and_range(self, kind):
        img = synthetic_image((32, 48), kind, seed=1)
        assert img.shape == (32, 48)
        assert img.dtype == np.uint8

    def test_noise_is_seeded(self):
        a = synthetic_image((16, 16), "noise", seed=7)
        b = synthetic_image((16, 16), "noise", seed=7)
        assert np.array_equal(a, b)

    def test_unknown_kind(self):
        with pytest.raises(AnalysisError, match="unknown image kind"):
            synthetic_image((8, 8), "plasma")

    def test_bad_shape(self):
        with pytest.raises(AnalysisError):
            synthetic_image((0, 8))


class TestBlend:
    def test_accurate_blend_is_exact_average(self):
        a = synthetic_image((16, 16), "gradient")
        b = synthetic_image((16, 16), "checker")
        out = approximate_blend(a, b, "accurate")
        expected = (a.astype(np.int64) + b.astype(np.int64)) // 2
        assert np.array_equal(out, expected)

    def test_approximate_blend_differs_but_is_close(self):
        a = synthetic_image((32, 32), "gradient")
        b = synthetic_image((32, 32), "disk")
        exact = approximate_blend(a, b, "accurate")
        approx = approximate_blend(a, b, "LPAA 6")
        assert not np.array_equal(exact, approx)
        # error-resilient: still recognisably the same image
        assert psnr(exact, approx) > 15.0

    def test_mismatched_shapes(self):
        with pytest.raises(AnalysisError, match="shapes differ"):
            approximate_blend(
                synthetic_image((8, 8)), synthetic_image((8, 9)), "accurate"
            )

    def test_fewer_approximate_bits_give_better_psnr(self):
        a = synthetic_image((32, 32), "noise", seed=3)
        b = synthetic_image((32, 32), "gradient")
        exact = approximate_blend(a, b, "accurate")
        qualities = [
            psnr(exact, approximate_blend(a, b, "LPAA 6", approx_bits=k))
            for k in (2, 4, 6, 8)
        ]
        assert qualities == sorted(qualities, reverse=True)

    def test_psnr_ordering_follows_analytical_rms(self):
        # Image quality tracks the analytical error *magnitude* (RMS of
        # the error PMF), not the error rate: the chain with clearly
        # larger analytical RMS must score a worse PSNR.
        from repro.apps.imaging import lsb_approximate_chain
        from repro.core.magnitude import error_moments

        a = synthetic_image((48, 48), "noise", seed=9)
        b = synthetic_image((48, 48), "noise", seed=10)
        exact = approximate_blend(a, b, "accurate")
        results = {}
        for cell in ("LPAA 6", "LPAA 5"):
            chain = lsb_approximate_chain(cell, 8, 4)
            rms = error_moments(chain, None, 0.5, 0.5, 0.0).rms
            results[cell] = (rms, psnr(exact, approximate_blend(a, b, cell)))
        (rms_6, q_6), (rms_5, q_5) = results["LPAA 6"], results["LPAA 5"]
        assert (rms_6 < rms_5) == (q_6 > q_5)


class TestBoxBlur:
    def test_accurate_blur_matches_numpy(self):
        img = synthetic_image((16, 16), "disk")
        got = approximate_box_blur(img, "accurate")
        padded = np.pad(img.astype(np.int64), 1, mode="edge")
        expected = sum(
            padded[dy:dy + 16, dx:dx + 16]
            for dy in range(3)
            for dx in range(3)
        ) // 9
        assert np.array_equal(got, expected.astype(np.uint8))

    def test_approximate_blur_quality(self):
        img = synthetic_image((24, 24), "gradient")
        exact = approximate_box_blur(img, "accurate")
        approx = approximate_box_blur(img, "LPAA 6")
        assert psnr(exact, approx) > 10.0

    def test_width_guard(self):
        with pytest.raises(AnalysisError, match="3x3 sum"):
            approximate_box_blur(synthetic_image((8, 8)), "accurate", width=8)


class TestPsnr:
    def test_identical_images_are_infinite(self):
        img = synthetic_image((8, 8))
        assert psnr(img, img) == float("inf")

    def test_known_value(self):
        ref = np.zeros((4, 4))
        test = np.full((4, 4), 255.0)
        assert psnr(ref, test) == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_noise(self):
        rng = np.random.default_rng(0)
        ref = synthetic_image((32, 32), "gradient").astype(np.float64)
        small = ref + rng.normal(0, 2, ref.shape)
        large = ref + rng.normal(0, 20, ref.shape)
        assert psnr(ref, small) > psnr(ref, large)

    def test_shape_mismatch(self):
        with pytest.raises(AnalysisError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))


class TestBlendPrediction:
    def test_prediction_matches_measurement(self):
        from repro.apps.imaging import blend_quality_experiment

        predicted, measured = blend_quality_experiment("LPAA 5",
                                                       approx_bits=4)
        assert abs(predicted - measured) < 2.0

    def test_prediction_tracks_approximation_depth(self):
        from repro.apps.imaging import predict_blend_psnr

        deeper = [predict_blend_psnr("LPAA 1", 8, bits)
                  for bits in (2, 4, 6)]
        assert deeper == sorted(deeper, reverse=True)  # PSNR falls

    def test_exact_chain_predicts_infinite_psnr(self):
        from repro.apps.imaging import predict_blend_psnr

        assert predict_blend_psnr("accurate", 8, 4) == float("inf")

    def test_predicted_mse_is_a_quarter_of_the_engine_mse(self):
        from repro import engine
        from repro.apps.imaging import (lsb_approximate_chain,
                                        predict_blend_mse)

        chain = lsb_approximate_chain("LPAA 2", 8, 3)
        expected = engine.run(chain, None, 0.5, 0.5, 0.0, kind="med").mse
        assert predict_blend_mse("LPAA 2", 8, 3) == pytest.approx(
            expected / 4.0)
