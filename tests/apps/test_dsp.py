"""Tests for the DSP (FIR filter) application substrate."""

import numpy as np
import pytest

from repro.apps.dsp import (
    fir_filter,
    fir_quality_experiment,
    lowpass_taps,
    quantize,
    snr_db,
    make_tone,
)
from repro.core.exceptions import AnalysisError


class TestQuantize:
    def test_range_mapping(self):
        q = quantize(np.array([-1.0, 0.0, 1.0]), 8)
        assert q[0] == 0 and q[2] == 255
        assert q[1] in (127, 128)

    def test_rejects_out_of_range(self):
        with pytest.raises(AnalysisError):
            quantize(np.array([1.5]), 8)

    def test_rejects_tiny_width(self):
        with pytest.raises(AnalysisError):
            quantize(np.zeros(4), 1)


class TestTaps:
    def test_peak_is_full_scale(self):
        taps = lowpass_taps(9, 0.1, 8)
        assert taps.max() == 255
        assert taps.min() >= 0

    def test_symmetry(self):
        taps = lowpass_taps(9, 0.1, 8)
        assert np.array_equal(taps, taps[::-1])

    def test_validation(self):
        with pytest.raises(AnalysisError):
            lowpass_taps(9, 0.6, 8)
        with pytest.raises(AnalysisError):
            lowpass_taps(0, 0.1, 8)


class TestFirFilter:
    def test_accurate_filter_matches_numpy_correlate(self):
        samples = quantize(make_tone(64, 0.07), 6)
        taps = lowpass_taps(5, 0.15, 6)
        got = fir_filter(samples, taps, 6)
        expected = np.correlate(samples, taps[::-1], mode="valid")
        # np.correlate(x, t_reversed) == sliding dot product with taps
        assert np.array_equal(got, expected)

    def test_output_length(self):
        samples = quantize(make_tone(50, 0.1), 6)
        taps = lowpass_taps(8, 0.2, 6)
        assert fir_filter(samples, taps, 6).size == 50 - 8 + 1

    def test_signal_shorter_than_filter(self):
        with pytest.raises(AnalysisError, match="shorter"):
            fir_filter(np.zeros(3, dtype=np.int64),
                       np.ones(5, dtype=np.int64), 6)

    def test_approximate_accumulation_differs(self):
        samples = quantize(make_tone(60, 0.08, noise_level=0.1, seed=2), 6)
        taps = lowpass_taps(6, 0.15, 6)
        exact = fir_filter(samples, taps, 6)
        approx = fir_filter(samples, taps, 6, compress_cell="LPAA 6")
        assert not np.array_equal(exact, approx)


class TestSnr:
    def test_identical_signals_infinite(self):
        x = np.array([1.0, 2.0, 3.0])
        assert snr_db(x, x) == float("inf")

    def test_known_value(self):
        ref = np.array([2.0, 2.0])
        noisy = np.array([3.0, 2.0])
        assert snr_db(ref, noisy) == pytest.approx(10 * np.log10(8.0 / 1.0))

    def test_zero_reference_rejected(self):
        with pytest.raises(AnalysisError):
            snr_db(np.zeros(3), np.ones(3))

    def test_shape_mismatch(self):
        with pytest.raises(AnalysisError):
            snr_db(np.zeros(3), np.zeros(4))


class TestQualityExperiment:
    def test_fewer_approx_bits_give_better_snr(self):
        points = {
            bits: fir_quality_experiment("LPAA 6", bits, input_bits=6,
                                         num_taps=5, signal_length=80)
            for bits in (2, 6, 10)
        }
        rms_values = [points[b][0] for b in (2, 6, 10)]
        snr_values = [points[b][1] for b in (2, 6, 10)]
        assert rms_values == sorted(rms_values)           # RMS grows
        assert snr_values == sorted(snr_values, reverse=True)  # SNR falls

    def test_zero_approx_bits_is_lossless(self):
        rms, snr = fir_quality_experiment("LPAA 2", 0, input_bits=6,
                                          num_taps=5, signal_length=60)
        assert rms == 0.0
        assert snr == float("inf")


class TestSnrPrediction:
    def test_prediction_experiment_is_in_the_measured_ballpark(self):
        from repro.apps.dsp import fir_prediction_experiment

        predicted, measured = fir_prediction_experiment(
            "LPAA 5", 4, input_bits=6, num_taps=5, signal_length=80)
        # structured accumulator inputs drift from the independence
        # model; the prediction must still land in the same regime.
        assert abs(predicted - measured) < 8.0

    def test_exact_chain_predicts_infinite_snr(self):
        from repro.apps.dsp import predict_snr_db

        ref = np.arange(1.0, 9.0)
        assert predict_snr_db(ref, ["accurate"] * 8) == float("inf")

    def test_empty_reference_rejected(self):
        from repro.apps.dsp import predict_snr_db

        with pytest.raises(AnalysisError, match="empty"):
            predict_snr_db(np.array([]), ["LPAA 1"] * 4)
