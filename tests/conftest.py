"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adders import PAPER_LPAAS
from repro.core.truth_table import ACCURATE


@pytest.fixture(params=range(1, 8), ids=[f"LPAA{i}" for i in range(1, 8)])
def lpaa_cell(request):
    """Parametrised fixture yielding each of the seven paper cells."""
    return PAPER_LPAAS[request.param - 1]


@pytest.fixture(params=range(8), ids=["AccuFA"] + [f"LPAA{i}" for i in range(1, 8)])
def any_cell(request):
    """Parametrised fixture yielding the accurate cell plus all LPAAs."""
    if request.param == 0:
        return ACCURATE
    return PAPER_LPAAS[request.param - 1]


@pytest.fixture
def rng():
    """A seeded NumPy generator for reproducible randomised tests."""
    return np.random.default_rng(0xDAC2017)
