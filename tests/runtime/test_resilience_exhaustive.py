"""Chunked-exhaustive resilience: budgets, block-cursor checkpoint/resume."""

import pytest

from repro.runtime import (
    STOP_MAX_CASES,
    ChaosShim,
    RunBudget,
    install_chaos,
)
from repro.simulation.exhaustive import (
    exhaustive_error_probability,
    exhaustive_report,
)

CELL = "LPAA 2"
WIDTH = 6  # 2^13 = 8192 cases; forces multiple blocks with a memory hint.


def run(**kwargs):
    return exhaustive_report(CELL, WIDTH, 0.4, 0.6, 0.5, **kwargs)


class TestBudgets:
    def test_complete_run_matches_plain_oracle(self):
        result = run()
        assert result.cases == result.total_cases == 1 << 13
        assert not result.truncated
        assert result.p_error == pytest.approx(
            exhaustive_error_probability(CELL, WIDTH, 0.4, 0.6, 0.5)
        )

    def test_case_cap_yields_partial_lower_bound(self):
        # The tiny memory hint forces small blocks so the cap can land
        # mid-enumeration.
        capped = run(budget=RunBudget(max_cases=2_000,
                                      memory_hint_mb=0.01))
        full = run()
        assert capped.truncated
        assert capped.stop_reason == STOP_MAX_CASES
        assert capped.cases < full.cases
        assert capped.total_cases == full.cases
        assert 0.0 < capped.p_error <= full.p_error
        assert capped.manifest.truncated is True
        assert capped.manifest.params["total_cases"] == 1 << 13

    def test_progress_guarantee_under_instant_deadline(self):
        # The clock blows past the deadline right after the first
        # block, yet that block's work is in the result: the partial
        # is never degenerate.
        with install_chaos(ChaosShim(advance_per_tick=100.0)):
            result = run(budget=RunBudget(deadline_s=1.0,
                                          memory_hint_mb=0.01))
        assert result.cases > 0
        assert result.cases < result.total_cases
        assert result.truncated
        assert result.stop_reason == "deadline"


class TestCheckpointResume:
    def test_resume_reproduces_exact_mass(self, tmp_path):
        ckpt = tmp_path / "ex.ckpt"
        baseline = run()
        with install_chaos(ChaosShim(interrupt_after_ticks=2)):
            with pytest.raises(KeyboardInterrupt):
                run(checkpoint_path=str(ckpt), checkpoint_every=1,
                    budget=RunBudget(memory_hint_mb=0.01))
        resumed = run(checkpoint_path=str(ckpt), resume=True,
                      budget=RunBudget(memory_hint_mb=0.01))
        assert resumed.cases == baseline.cases
        assert resumed.p_error == pytest.approx(baseline.p_error, abs=1e-12)
        assert not resumed.truncated

    def test_checkpoint_fingerprint_binds_probabilities(self, tmp_path):
        from repro.core.exceptions import CheckpointError

        ckpt = tmp_path / "ex.ckpt"
        run(checkpoint_path=str(ckpt))
        with pytest.raises(CheckpointError, match="different run"):
            exhaustive_report(CELL, WIDTH, 0.9, 0.1, 0.5,
                              checkpoint_path=str(ckpt), resume=True)
