"""Self-validation guard: analytical vs budgeted simulation."""

import pytest

from repro.core.exceptions import ValidationError
from repro.runtime import RunBudget, validate_against_simulation


class TestAgreement:
    def test_exact_chain_validates(self):
        report = validate_against_simulation("LPAA 1", 4, 0.3, 0.6, 0.5,
                                             samples=50_000, seed=3)
        assert report.consistent
        assert report.exact
        lo, hi = report.interval
        assert lo <= report.analytical <= hi

    def test_masking_chain_validates_one_sided(self):
        # This chain can mask internal errors (the CLI warns about it):
        # the recursion is an upper bound, so the analytical value may
        # sit above the interval without being wrong.
        chain = ["LPAA 6", "LPAA 1", "LPAA 7"]
        report = validate_against_simulation(chain, None, 0.5, 0.5, 0.5,
                                             samples=50_000, seed=3)
        assert report.consistent
        assert not report.exact
        assert report.analytical >= report.interval[0]

    def test_budget_bounds_the_guard(self):
        report = validate_against_simulation(
            "LPAA 1", 4, samples=500_000, seed=1,
            budget=RunBudget(max_samples=20_000),
        )
        assert report.truncated
        assert report.samples == 20_000
        assert report.consistent


class TestDisagreement:
    def test_wrong_analytical_raises_structured_error(self):
        with pytest.raises(ValidationError) as excinfo:
            validate_against_simulation("LPAA 1", 4, 0.3, 0.6, 0.5,
                                        samples=50_000, seed=3,
                                        analytical=0.123)
        err = excinfo.value
        assert err.analytical == 0.123
        assert err.interval[0] <= err.estimate <= err.interval[1]
        # The injected value really is outside the reported interval.
        assert not err.interval[0] <= 0.123 <= err.interval[1]

    def test_error_is_a_repro_error(self):
        from repro.core.exceptions import ReproError

        assert issubclass(ValidationError, ReproError)
