"""State machine and metric contract of :mod:`repro.runtime.breaker`."""

from __future__ import annotations

import threading

import pytest

from repro.obs import metrics as _metrics
from repro.runtime.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerOpenError,
    CircuitBreaker,
)


class _Clock:
    """Manually advanced virtual clock (no sleeps in these tests)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return _Clock()


def make_breaker(clock, threshold=3, reset=5.0, half_open_max=1):
    return CircuitBreaker(
        failure_threshold=threshold, reset_timeout_s=reset,
        half_open_max=half_open_max, clock=clock,
    )


class TestClosedState:
    def test_starts_closed_and_allows(self, clock):
        breaker = make_breaker(clock)
        assert breaker.state == STATE_CLOSED
        breaker.check()  # does not raise

    def test_success_resets_the_failure_streak(self, clock):
        breaker = make_breaker(clock, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_consecutive_failures_trip_it_open(self, clock):
        breaker = make_breaker(clock, threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.opened_total == 1


class TestOpenState:
    def test_open_refuses_with_positive_finite_retry_after(self, clock):
        breaker = make_breaker(clock, threshold=1, reset=5.0)
        breaker.record_failure()
        with pytest.raises(BreakerOpenError) as info:
            breaker.check()
        assert 0 < info.value.retry_after_s <= 5.0
        assert info.value.retry_after_s == pytest.approx(5.0)

    def test_retry_after_shrinks_as_the_cooldown_elapses(self, clock):
        breaker = make_breaker(clock, threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(4.0)
        allowed, retry_after = breaker.allow()
        assert not allowed
        assert retry_after == pytest.approx(1.0)

    def test_retry_after_never_hits_zero(self, clock):
        breaker = make_breaker(clock, threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0 - 1e-9)  # a hair before the probe window
        allowed, retry_after = breaker.allow()
        assert not allowed
        assert retry_after > 0


class TestHalfOpenState:
    def test_cooldown_elapsing_moves_to_half_open(self, clock):
        breaker = make_breaker(clock, threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == STATE_HALF_OPEN

    def test_probe_budget_bounds_half_open_calls(self, clock):
        breaker = make_breaker(clock, threshold=1, reset=5.0,
                               half_open_max=2)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()[0]
        assert breaker.allow()[0]
        allowed, retry_after = breaker.allow()  # third probe refused
        assert not allowed and retry_after > 0

    def test_probe_success_closes(self, clock):
        breaker = make_breaker(clock, threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()[0]
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        breaker.check()

    def test_probe_failure_reopens_for_a_full_cooldown(self, clock):
        breaker = make_breaker(clock, threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()[0]
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.opened_total == 2
        clock.advance(4.9)
        assert breaker.state == STATE_OPEN
        clock.advance(0.1)
        assert breaker.state == STATE_HALF_OPEN

    def test_closing_frees_the_probe_slots(self, clock):
        breaker = make_breaker(clock, threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()[0]
        breaker.record_success()
        # closed again: unlimited allowance, no probe bookkeeping
        for _ in range(5):
            assert breaker.allow()[0]


class TestDisabledBreaker:
    def test_threshold_zero_disables_everything(self, clock):
        breaker = make_breaker(clock, threshold=0)
        assert not breaker.enabled
        for _ in range(100):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.check()


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": -1},
        {"reset_timeout_s": 0},
        {"reset_timeout_s": -1.0},
        {"half_open_max": 0},
    ])
    def test_bad_knobs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestMetrics:
    def test_lifecycle_emits_counters_and_state_gauge(self, clock):
        registry = _metrics.MetricsRegistry()
        with _metrics.use_registry(registry):
            _metrics.enable()
            try:
                breaker = CircuitBreaker(
                    failure_threshold=1, reset_timeout_s=5.0,
                    metric_prefix="serve.breaker", clock=clock,
                )
                breaker.record_failure()           # trips open
                with pytest.raises(BreakerOpenError):
                    breaker.check()                # rejected
                clock.advance(5.0)
                breaker.check()                    # probe allowed
                breaker.record_success()           # closes
            finally:
                _metrics.disable()
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["serve.breaker.opened"] == 1
        assert counters["serve.breaker.rejected"] == 1
        assert counters["serve.breaker.probes"] == 1
        assert counters["serve.breaker.closed"] == 1
        assert counters["serve.breaker.failures"] == 1
        assert snapshot["gauges"]["serve.breaker.state"] == 0  # closed


class TestThreadSafety:
    def test_concurrent_outcomes_keep_state_consistent(self, clock):
        breaker = make_breaker(clock, threshold=50)
        threads = [
            threading.Thread(target=lambda: [
                (breaker.record_failure(), breaker.record_success())
                for _ in range(200)
            ])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # interleaved success/failure pairs never accumulate a streak
        assert breaker.state == STATE_CLOSED
