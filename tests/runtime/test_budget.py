"""RunBudget validation and BudgetMeter cooperative-cancellation logic."""

import pytest

from repro.core.exceptions import AnalysisError
from repro.runtime import (
    STOP_DEADLINE,
    STOP_MAX_CASES,
    STOP_MAX_CONFIGS,
    STOP_MAX_SAMPLES,
    BudgetMeter,
    ChaosShim,
    RunBudget,
    install_chaos,
    make_meter,
)


class TestRunBudget:
    def test_default_is_unlimited(self):
        assert RunBudget().unlimited

    def test_any_limit_is_not_unlimited(self):
        assert not RunBudget(deadline_s=1.0).unlimited
        assert not RunBudget(max_samples=10).unlimited
        # A bare memory hint never stops a run.
        assert RunBudget(memory_hint_mb=64).unlimited

    @pytest.mark.parametrize("kwargs", [
        {"deadline_s": 0.0},
        {"deadline_s": -1.0},
        {"memory_hint_mb": 0},
        {"max_samples": 0},
        {"max_cases": -5},
        {"max_configs": 2.5},
    ])
    def test_invalid_limits_rejected(self, kwargs):
        with pytest.raises(AnalysisError, match="budget"):
            RunBudget(**kwargs)

    def test_dict_round_trip(self):
        budget = RunBudget(deadline_s=3.5, max_samples=100,
                           memory_hint_mb=16)
        assert RunBudget.from_dict(budget.as_dict()) == budget


class TestBudgetMeter:
    def test_unlimited_never_stops(self):
        meter = BudgetMeter(None)
        meter.charge(samples=10**9, cases=10**9, configs=10**9)
        assert meter.stop_reason() is None

    def test_sample_cap(self):
        meter = BudgetMeter(RunBudget(max_samples=100))
        meter.charge(samples=99)
        assert meter.stop_reason() is None
        meter.charge(samples=1)
        assert meter.stop_reason() == STOP_MAX_SAMPLES

    def test_case_and_config_caps(self):
        meter = BudgetMeter(RunBudget(max_cases=10, max_configs=5))
        meter.charge(cases=10)
        assert meter.stop_reason() == STOP_MAX_CASES
        meter = BudgetMeter(RunBudget(max_configs=5))
        meter.charge(configs=7)
        assert meter.stop_reason() == STOP_MAX_CONFIGS

    def test_deadline_with_injected_clock(self):
        now = [0.0]
        meter = BudgetMeter(RunBudget(deadline_s=2.0), clock=lambda: now[0])
        assert meter.stop_reason() is None
        now[0] = 1.99
        assert meter.stop_reason() is None
        now[0] = 2.0
        assert meter.stop_reason() == STOP_DEADLINE

    def test_deadline_takes_priority_over_caps(self):
        now = [10.0]
        meter = BudgetMeter(RunBudget(deadline_s=1.0, max_samples=5),
                            clock=lambda: now[0])
        meter.charge(samples=5)
        now[0] = 20.0
        assert meter.stop_reason() == STOP_DEADLINE

    def test_remaining_clamps(self):
        meter = BudgetMeter(RunBudget(max_samples=100, max_cases=8))
        meter.charge(samples=90, cases=8)
        assert meter.remaining_samples(64) == 10
        assert meter.remaining_cases(64) == 0
        unlimited = BudgetMeter(None)
        assert unlimited.remaining_samples(64) == 64

    def test_make_meter_uses_chaos_clock(self):
        shim = ChaosShim()
        with install_chaos(shim):
            meter = make_meter(RunBudget(deadline_s=5.0))
            assert meter.stop_reason() is None
            shim.advance_clock(5.0)
            assert meter.stop_reason() == STOP_DEADLINE
