"""CLI resilience surface: new flags, simulate subcommand, exit 130."""

import pytest

from repro.cli import main
from repro.runtime import ChaosShim, install_chaos


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestSimulateCommand:
    def test_small_width_routes_exhaustive(self, capsys):
        code, out, _ = run_cli(
            capsys, "simulate", "--cell", "LPAA 1", "--width", "4",
        )
        assert code == 0
        assert "engine     : exhaustive" in out
        assert "0.546875" in out

    def test_budget_degrades_to_montecarlo(self, capsys, tmp_path):
        save = tmp_path / "sim.json"
        code, out, _ = run_cli(
            capsys, "simulate", "--cell", "LPAA 2", "--width", "14",
            "--max-cases", "1000", "--max-samples", "5000",
            "--seed", "3", "--save", str(save),
        )
        assert code == 0
        assert "engine     : montecarlo" in out
        assert "degraded   : from chunked-exhaustive" in out
        assert save.exists()

        from repro.io import load_result

        loaded = load_result(save)
        assert loaded.samples == 5_000
        assert loaded.manifest.degraded_from == "chunked-exhaustive"


class TestAnalyzeValidate:
    def test_validate_flag_reports_interval(self, capsys):
        code, out, _ = run_cli(
            capsys, "analyze", "--cell", "LPAA 1", "--width", "3",
            "--validate",
        )
        assert code == 0
        assert "validated  : simulation" in out


class TestKeyboardInterrupt:
    def test_interrupt_exits_130_and_mentions_checkpoint(self, capsys,
                                                         tmp_path):
        ckpt = tmp_path / "mc.ckpt"
        with install_chaos(ChaosShim(interrupt_after_ticks=1)):
            code = main([
                "compare", "--cell", "LPAA 1", "--width", "4",
                "--samples", "20000", "--checkpoint", str(ckpt),
            ])
        err = capsys.readouterr().err
        assert code == 130
        assert "interrupted" in err
        assert str(ckpt) in err
        assert ckpt.exists()  # the engine flushed before propagating

    def test_resume_after_interrupt_completes(self, capsys, tmp_path):
        ckpt = tmp_path / "mc.ckpt"
        with install_chaos(ChaosShim(interrupt_after_ticks=1)):
            assert main([
                "compare", "--cell", "LPAA 1", "--width", "4",
                "--samples", "20000", "--seed", "4",
                "--checkpoint", str(ckpt),
            ]) == 130
        capsys.readouterr()
        code, out, _ = run_cli(
            capsys, "compare", "--cell", "LPAA 1", "--width", "4",
            "--samples", "20000", "--seed", "4",
            "--checkpoint", str(ckpt), "--resume",
        )
        assert code == 0
        assert "monte-carlo (20000 samples)" in out

    def test_deadline_flag_marks_truncated_rows(self, capsys):
        with install_chaos(ChaosShim(advance_per_tick=100.0)):
            code, out, _ = run_cli(
                capsys, "compare", "--cell", "LPAA 1", "--width", "4",
                "--samples", "2000000", "--deadline", "1.0",
            )
        assert code == 0
        assert "[truncated: deadline]" in out
