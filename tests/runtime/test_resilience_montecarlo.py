"""Monte-Carlo resilience: budgets, checkpoint/resume, chaos interrupts."""

import pytest

from repro.runtime import (
    STOP_DEADLINE,
    STOP_MAX_SAMPLES,
    ChaosShim,
    RunBudget,
    install_chaos,
)
from repro.simulation.montecarlo import simulate_error_probability

CELL = "LPAA 1"
WIDTH = 4


def run(samples=50_000, batch_size=8_192, **kwargs):
    return simulate_error_probability(
        CELL, WIDTH, 0.3, 0.7, 0.5, samples=samples, seed=11,
        batch_size=batch_size, **kwargs,
    )


class TestBudgets:
    def test_unbudgeted_run_is_complete(self):
        result = run()
        assert result.samples == 50_000
        assert not result.truncated
        assert result.stop_reason is None
        assert result.requested_samples is None
        assert result.manifest.truncated is None

    def test_sample_cap_truncates_cleanly(self):
        result = run(budget=RunBudget(max_samples=20_000))
        assert result.truncated
        assert result.samples == 20_000
        assert result.errors <= result.samples
        assert 0.0 < result.p_error < 1.0
        assert result.stop_reason == STOP_MAX_SAMPLES
        assert result.requested_samples == 50_000
        assert result.manifest.truncated is True
        assert result.manifest.stop_reason == STOP_MAX_SAMPLES
        assert result.manifest.budget["max_samples"] == 20_000

    def test_deadline_truncates_at_batch_boundary(self):
        shim = ChaosShim()
        with install_chaos(shim):
            # The virtual clock expires after the meter is created, so
            # the first batch runs (progress guarantee) and the second
            # stop-check fires.
            shim.advance_clock(0.0)

            def eager_progress(done, total, label):
                shim.advance_clock(10.0)

            result = run(budget=RunBudget(deadline_s=5.0),
                         progress=eager_progress)
        assert result.truncated
        assert result.stop_reason == STOP_DEADLINE
        assert result.samples == 8_192  # exactly one batch

    def test_truncated_estimate_matches_prefix(self):
        # A budget-truncated run equals an honest run of the same size:
        # the partial result is a valid estimate, not a damaged one.
        capped = run(budget=RunBudget(max_samples=16_384))
        honest = run(samples=16_384)
        assert capped.samples == honest.samples == 16_384
        assert capped.errors == honest.errors
        assert capped.p_error == honest.p_error


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, tmp_path):
        ckpt = tmp_path / "mc.ckpt"
        baseline = run()

        shim = ChaosShim(interrupt_after_ticks=3)
        with install_chaos(shim):
            with pytest.raises(KeyboardInterrupt):
                run(checkpoint_path=str(ckpt), checkpoint_every=1)
        assert ckpt.exists()

        resumed = run(checkpoint_path=str(ckpt), resume=True)
        assert resumed.samples == baseline.samples
        assert resumed.errors == baseline.errors
        assert resumed.p_error == baseline.p_error
        assert not resumed.truncated

    def test_interrupt_flushes_unsaved_progress(self, tmp_path):
        # checkpoint_every=10 means nothing was flushed when the chaos
        # interrupt lands at tick 3 -- the KeyboardInterrupt handler
        # must still write the latest snapshot before propagating.
        ckpt = tmp_path / "mc.ckpt"
        with install_chaos(ChaosShim(interrupt_after_ticks=3)):
            with pytest.raises(KeyboardInterrupt):
                run(checkpoint_path=str(ckpt), checkpoint_every=10)
        assert ckpt.exists()
        resumed = run(checkpoint_path=str(ckpt), resume=True)
        baseline = run()
        assert resumed.errors == baseline.errors

    def test_resume_refuses_other_configuration(self, tmp_path):
        from repro.core.exceptions import CheckpointError

        ckpt = tmp_path / "mc.ckpt"
        run(samples=16_384, checkpoint_path=str(ckpt))
        with pytest.raises(CheckpointError, match="different run"):
            simulate_error_probability(
                CELL, WIDTH, 0.3, 0.7, 0.5, samples=16_384, seed=999,
                batch_size=8_192, checkpoint_path=str(ckpt), resume=True,
            )

    def test_resume_requires_path(self):
        from repro.core.exceptions import AnalysisError

        with pytest.raises(AnalysisError, match="resume"):
            run(resume=True)


class TestMemoryHint:
    def test_memory_hint_clamps_batch(self):
        # A 1 MB hint forces ~18k-sample batches; the run still
        # completes exactly.
        result = run(budget=RunBudget(memory_hint_mb=1.0))
        assert result.samples == 50_000
        assert not result.truncated
