"""Checkpoint round-trips, fingerprint guards, and best-effort writes."""

import json

import numpy as np
import pytest

from repro.core.exceptions import CheckpointError
from repro.runtime import (
    ChaosShim,
    Checkpoint,
    config_fingerprint,
    install_chaos,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.checkpoint import (
    rng_state_from_jsonable,
    rng_state_to_jsonable,
)


class TestFingerprint:
    def test_deterministic_and_order_independent(self):
        a = config_fingerprint(kind="mc", seed=1, cells=["LPAA 1"])
        b = config_fingerprint(cells=["LPAA 1"], kind="mc", seed=1)
        assert a == b

    def test_sensitive_to_every_field(self):
        base = config_fingerprint(kind="mc", seed=1)
        assert config_fingerprint(kind="mc", seed=2) != base
        assert config_fingerprint(kind="ex", seed=1) != base


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "run.ckpt"
        ckpt = Checkpoint(kind="montecarlo", fingerprint="f" * 64,
                          payload={"samples_done": 42, "errors": 7},
                          sequence=3)
        assert save_checkpoint(path, ckpt) is True
        loaded = load_checkpoint(path, expect_kind="montecarlo",
                                 expect_fingerprint="f" * 64)
        assert loaded.payload["samples_done"] == 42
        assert loaded.sequence == 3

    def test_kind_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, Checkpoint(kind="montecarlo",
                                         fingerprint="a"))
        with pytest.raises(CheckpointError, match="engine"):
            load_checkpoint(path, expect_kind="exhaustive")

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, Checkpoint(kind="montecarlo",
                                         fingerprint="a" * 64))
        with pytest.raises(CheckpointError, match="different run"):
            load_checkpoint(path, expect_kind="montecarlo",
                            expect_fingerprint="b" * 64)

    def test_missing_and_corrupt_files_fail_loudly(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.ckpt")
        bad = tmp_path / "bad.ckpt"
        bad.write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(bad)
        wrong = tmp_path / "wrong.ckpt"
        wrong.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CheckpointError, match="expected a"):
            load_checkpoint(wrong)


class TestRngState:
    def test_state_round_trip_draws_identical_stream(self):
        rng = np.random.default_rng(123)
        rng.random(1000)  # advance past the seed state
        state = rng_state_from_jsonable(
            json.loads(json.dumps(rng_state_to_jsonable(
                rng.bit_generator.state
            )))
        )
        fresh = np.random.default_rng(0)
        fresh.bit_generator.state = state
        assert np.array_equal(rng.random(100), fresh.random(100))


@pytest.mark.chaos
class TestBestEffortWrites:
    def test_persistent_failure_is_swallowed(self, tmp_path):
        path = tmp_path / "run.ckpt"
        shim = ChaosShim(fail_io_times=-1)
        with install_chaos(shim):
            ok = save_checkpoint(path, Checkpoint(kind="mc", fingerprint="x"))
        assert ok is False
        assert not path.exists()
        assert shim.io_failures_injected >= 1

    def test_strict_mode_propagates(self, tmp_path):
        path = tmp_path / "run.ckpt"
        with install_chaos(ChaosShim(fail_io_times=-1)):
            with pytest.raises(OSError):
                save_checkpoint(path, Checkpoint(kind="mc", fingerprint="x"),
                                best_effort=False)

    def test_transient_failure_retries_through(self, tmp_path):
        path = tmp_path / "run.ckpt"
        with install_chaos(ChaosShim(fail_io_times=2)):
            ok = save_checkpoint(path, Checkpoint(kind="mc", fingerprint="x"))
        assert ok is True
        assert load_checkpoint(path).kind == "mc"
