"""Fault-injected IO: atomic writes never corrupt, retries are bounded."""

import pytest

from repro.io import atomic_write_text
from repro.runtime import ChaosShim, install_chaos

pytestmark = pytest.mark.chaos


def leftovers(directory):
    return [p for p in directory.iterdir() if p.suffix == ".tmp"]


class TestAtomicWrite:
    def test_plain_write_round_trips(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"
        assert not leftovers(tmp_path)

    def test_injected_failure_leaves_destination_intact(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("previous good content")
        with install_chaos(ChaosShim(fail_io_times=-1)):
            with pytest.raises(OSError, match="after .* attempts"):
                atomic_write_text(path, "new content", retries=2,
                                  retry_wait_s=0.0)
        # All-or-nothing: the old content survives, no temp debris.
        assert path.read_text() == "previous good content"
        assert not leftovers(tmp_path)

    def test_transient_failures_within_retry_budget_succeed(self, tmp_path):
        path = tmp_path / "out.json"
        shim = ChaosShim(fail_io_times=2)
        with install_chaos(shim):
            atomic_write_text(path, "eventually", retries=3,
                              retry_wait_s=0.0)
        assert path.read_text() == "eventually"
        assert shim.io_failures_injected == 2
        assert not leftovers(tmp_path)

    def test_retry_budget_is_bounded(self, tmp_path):
        shim = ChaosShim(fail_io_times=-1)
        with install_chaos(shim):
            with pytest.raises(OSError):
                atomic_write_text(tmp_path / "out.json", "x", retries=3,
                                  retry_wait_s=0.0)
        assert shim.io_failures_injected == 4  # initial try + 3 retries


class TestEngineSurvivesCheckpointFailures:
    def test_montecarlo_completes_despite_dead_checkpoint_disk(self, tmp_path):
        from repro.simulation.montecarlo import simulate_error_probability

        baseline = simulate_error_probability(
            "LPAA 1", 4, samples=20_000, seed=9, batch_size=4_096,
        )
        with install_chaos(ChaosShim(fail_io_times=-1)):
            result = simulate_error_probability(
                "LPAA 1", 4, samples=20_000, seed=9, batch_size=4_096,
                checkpoint_path=str(tmp_path / "mc.ckpt"),
            )
        # The run loses resumability, never correctness.
        assert result.errors == baseline.errors
        assert not (tmp_path / "mc.ckpt").exists()
        assert not leftovers(tmp_path)

    def test_saved_results_survive_write_faults(self, tmp_path):
        from repro.io import load_result, save_result
        from repro.simulation.montecarlo import simulate_error_probability

        result = simulate_error_probability("LPAA 1", 4, samples=5_000,
                                            seed=1)
        path = tmp_path / "result.json"
        with install_chaos(ChaosShim(fail_io_times=2)):
            save_result(result, path)  # retries absorb the faults
        loaded = load_result(path)
        assert loaded.errors == result.errors
