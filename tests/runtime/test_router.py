"""Engine router: degradation ladder planning and provenance stamping."""

import pytest

from repro.runtime import (
    ENGINE_CHUNKED_EXHAUSTIVE,
    ENGINE_EXHAUSTIVE,
    ENGINE_MONTECARLO,
    RunBudget,
    plan_engine,
    resilient_error_probability,
)
from repro.simulation.exhaustive import MAX_EXHAUSTIVE_WIDTH


class TestPlanEngine:
    def test_small_width_uses_exhaustive(self):
        decision = plan_engine(4)
        assert decision.engine == ENGINE_EXHAUSTIVE
        assert decision.degraded_from is None
        assert decision.estimated_cases == 1 << 9

    def test_large_width_chunks(self):
        decision = plan_engine(12)
        assert decision.engine == ENGINE_CHUNKED_EXHAUSTIVE
        assert decision.degraded_from == ENGINE_EXHAUSTIVE

    def test_absurd_width_falls_to_montecarlo(self):
        decision = plan_engine(MAX_EXHAUSTIVE_WIDTH + 1)
        assert decision.engine == ENGINE_MONTECARLO
        assert decision.degraded_from == ENGINE_CHUNKED_EXHAUSTIVE

    def test_case_budget_forces_montecarlo(self):
        decision = plan_engine(8, RunBudget(max_cases=1_000))
        assert decision.engine == ENGINE_MONTECARLO
        assert decision.estimated_cases == 1 << 17

    def test_deadline_heuristic_forces_montecarlo(self):
        # 2^29 cases cannot fit a 0.001 s deadline at any plausible rate.
        decision = plan_engine(14, RunBudget(deadline_s=0.001))
        assert decision.engine == ENGINE_MONTECARLO
        assert "deadline" in decision.reason

    def test_mc_samples_respect_budget_cap(self):
        decision = plan_engine(20, RunBudget(max_samples=5_000))
        assert decision.samples == 5_000

    def test_invalid_width_rejected(self):
        from repro.core.exceptions import AnalysisError

        with pytest.raises(AnalysisError, match="width"):
            plan_engine(0)


class TestResilientErrorProbability:
    def test_exhaustive_path_is_exact(self):
        from repro.core.recursive import error_probability

        routed = resilient_error_probability("LPAA 1", 4)
        assert routed.decision.engine == ENGINE_EXHAUSTIVE
        assert not routed.truncated
        assert routed.p_error == pytest.approx(
            float(error_probability("LPAA 1", 4)), abs=1e-12
        )
        assert routed.result.manifest.degraded_from is None

    def test_degradation_is_stamped_into_provenance(self):
        routed = resilient_error_probability(
            "LPAA 2", 10, budget=RunBudget(max_cases=100,
                                           max_samples=20_000),
            seed=5,
        )
        assert routed.decision.engine == ENGINE_MONTECARLO
        assert routed.decision.degraded_from == ENGINE_CHUNKED_EXHAUSTIVE
        assert routed.result.manifest.degraded_from \
            == ENGINE_CHUNKED_EXHAUSTIVE
        assert routed.result.samples == 20_000

    def test_routed_checkpointing_works(self, tmp_path):
        ckpt = tmp_path / "routed.ckpt"
        routed = resilient_error_probability(
            "LPAA 3", 18, budget=RunBudget(max_samples=10_000),
            samples=10_000, seed=2, checkpoint_path=str(ckpt),
        )
        assert routed.decision.engine == ENGINE_MONTECARLO
        assert ckpt.exists()
        resumed = resilient_error_probability(
            "LPAA 3", 18, budget=RunBudget(max_samples=10_000),
            samples=10_000, seed=2, checkpoint_path=str(ckpt), resume=True,
        )
        assert resumed.result.errors == routed.result.errors
