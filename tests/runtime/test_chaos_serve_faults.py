"""Serve-facing chaos faults: engine/cache hooks, spec transport, kill."""

import json
import subprocess
import sys

import pytest

from repro.runtime import ChaosShim, install_chaos
from repro.runtime.chaos import (
    CHAOS_ENV_VAR,
    cache_read_check,
    engine_call_check,
    install_chaos_from_env,
)

pytestmark = pytest.mark.chaos


class TestEngineFaults:
    def test_hooks_are_noops_with_no_shim_installed(self):
        engine_call_check("idle")
        cache_read_check("/nowhere")

    def test_burst_fails_the_first_n_dispatches(self):
        shim = ChaosShim(fail_engine_times=2)
        with install_chaos(shim):
            for _ in range(2):
                with pytest.raises(RuntimeError, match="injected engine"):
                    engine_call_check("batch")
            engine_call_check("batch")  # burst exhausted
        assert shim.engine_faults_injected == 2
        assert shim.engine_calls_seen == 3

    def test_periodic_fails_every_nth_dispatch(self):
        shim = ChaosShim(engine_fail_every=3)
        with install_chaos(shim):
            outcomes = []
            for _ in range(9):
                try:
                    engine_call_check("batch")
                    outcomes.append("ok")
                except RuntimeError:
                    outcomes.append("fail")
        assert outcomes == ["ok", "ok", "fail"] * 3
        assert shim.engine_faults_injected == 3

    def test_delay_sleeps_before_dispatch(self):
        import time

        shim = ChaosShim(engine_delay_s=0.02)
        with install_chaos(shim):
            start = time.monotonic()
            engine_call_check("batch")
            assert time.monotonic() - start >= 0.02


class TestCacheFaults:
    def test_every_nth_read_raises_oserror(self):
        shim = ChaosShim(cache_read_fail_every=2)
        with install_chaos(shim):
            cache_read_check("a.json")
            with pytest.raises(OSError, match="injected cache read"):
                cache_read_check("b.json")
            cache_read_check("c.json")
        assert shim.cache_faults_injected == 1
        assert shim.cache_reads_seen == 3


class TestSpecTransport:
    def test_round_trip_keeps_only_non_defaults(self):
        shim = ChaosShim(engine_fail_every=5, engine_delay_s=0.1,
                         kill_after_batches=7)
        spec = shim.to_spec()
        assert spec == {"engine_fail_every": 5, "engine_delay_s": 0.1,
                        "kill_after_batches": 7}
        clone = ChaosShim.from_spec(spec)
        assert clone.engine_fail_every == 5
        assert clone.kill_after_batches == 7

    def test_default_shim_serialises_empty(self):
        assert ChaosShim().to_spec() == {}

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos spec"):
            ChaosShim.from_spec({"engine_fail_evry": 1})

    def test_env_install(self):
        from repro.runtime import chaos as chaos_mod

        previous = chaos_mod._active
        try:
            spec = json.dumps({"cache_read_fail_every": 1})
            shim = install_chaos_from_env({CHAOS_ENV_VAR: spec})
            assert shim is not None
            assert chaos_mod.get_chaos() is shim
            with pytest.raises(OSError):
                cache_read_check("x")
        finally:
            chaos_mod._active = previous

    def test_env_install_without_variable_is_inert(self):
        assert install_chaos_from_env({}) is None
        assert install_chaos_from_env({CHAOS_ENV_VAR: "  "}) is None


class TestKillAfterBatches:
    def test_sigkills_the_process_on_the_nth_dispatch(self):
        # SIGKILL is uncatchable, so prove it on a sacrificial child.
        code = (
            "import json, os\n"
            f"os.environ[{CHAOS_ENV_VAR!r}] = json.dumps("
            "{'kill_after_batches': 2})\n"
            "from repro.runtime.chaos import (engine_call_check,\n"
            "                                 install_chaos_from_env)\n"
            "install_chaos_from_env()\n"
            "engine_call_check('one')\n"
            "print('survived first dispatch', flush=True)\n"
            "engine_call_check('two')\n"
            "print('UNREACHABLE', flush=True)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == -9  # killed by SIGKILL
        assert "survived first dispatch" in proc.stdout
        assert "UNREACHABLE" not in proc.stdout
