"""Hybrid-search resilience: degradation, partial fronts, brute resume."""

import pytest

from repro.explore.hybrid_search import (
    ParetoFront,
    brute_force_hybrid,
    greedy_hybrid,
    hybrid_tradeoff_curve,
    optimal_hybrid,
)
from repro.runtime import STOP_DEADLINE, ChaosShim, RunBudget, install_chaos

CELLS = ["LPAA 1", "LPAA 2", "LPAA 7"]


class TestOptimalDegradation:
    def test_deadline_degrades_to_greedy(self):
        with install_chaos(ChaosShim(advance_per_tick=100.0)):
            result = optimal_hybrid(CELLS, 8, 0.3, 0.6, 0.5,
                                    budget=RunBudget(deadline_s=1.0))
        assert result.truncated
        assert result.stop_reason == STOP_DEADLINE
        assert not result.exact
        # The fallback is the greedy design: still a full-width,
        # analysable chain with a matching error probability.
        greedy = greedy_hybrid(CELLS, 8, 0.3, 0.6, 0.5)
        assert result.chain.spec() == greedy.chain.spec()
        assert result.p_error == pytest.approx(greedy.p_error)
        assert result.manifest.degraded_from == "optimal"
        assert result.manifest.truncated is True
        assert result.manifest.params["strategy"] == "greedy"

    def test_no_budget_stays_optimal(self):
        result = optimal_hybrid(CELLS, 8, 0.3, 0.6, 0.5)
        assert not result.truncated
        assert result.exact
        assert result.manifest.degraded_from is None


class TestBruteForceResume:
    def test_interrupted_sweep_resumes_to_same_optimum(self, tmp_path):
        ckpt = tmp_path / "brute.ckpt"
        baseline = brute_force_hybrid(CELLS, 4, 0.3, 0.6, 0.5)
        with install_chaos(ChaosShim(interrupt_after_ticks=10)):
            with pytest.raises(KeyboardInterrupt):
                brute_force_hybrid(CELLS, 4, 0.3, 0.6, 0.5,
                                   checkpoint_path=str(ckpt),
                                   checkpoint_every=4)
        resumed = brute_force_hybrid(CELLS, 4, 0.3, 0.6, 0.5,
                                     checkpoint_path=str(ckpt), resume=True)
        assert resumed.chain.spec() == baseline.chain.spec()
        assert resumed.p_error == baseline.p_error
        assert resumed.exact

    def test_config_cap_returns_best_so_far(self):
        result = brute_force_hybrid(CELLS, 4, 0.3, 0.6, 0.5,
                                    budget=RunBudget(max_configs=10))
        assert result.truncated
        assert not result.exact
        assert result.chain.width == 4
        assert result.manifest.params["configs_evaluated"] == 10

    def test_brute_agrees_with_optimal_when_complete(self):
        brute = brute_force_hybrid(CELLS, 4, 0.3, 0.6, 0.5)
        optimal = optimal_hybrid(CELLS, 4, 0.3, 0.6, 0.5)
        assert brute.p_error == pytest.approx(optimal.p_error, abs=1e-12)


class TestParetoFront:
    WEIGHTS = [0.0, 1e-4, 1e-3, 1e-2]

    def test_complete_sweep_behaves_like_a_list(self):
        front = hybrid_tradeoff_curve(CELLS, 4, self.WEIGHTS, 0.3, 0.6, 0.5)
        assert isinstance(front, ParetoFront)
        assert front  # truthy when non-empty
        assert len(front) >= 1
        assert front[0].chain.width == 4
        assert list(front) == list(front.results)
        assert not front.truncated
        assert front.manifest.params["weights_swept"] == sorted(self.WEIGHTS)

    def test_deadline_yields_valid_partial_front(self):
        # The clock expires on the first tick (between weights).
        with install_chaos(ChaosShim(advance_per_tick=100.0)):
            front = hybrid_tradeoff_curve(CELLS, 4, self.WEIGHTS,
                                          0.3, 0.6, 0.5,
                                          budget=RunBudget(deadline_s=1.0))
        assert front.truncated
        assert front.stop_reason == STOP_DEADLINE
        assert 1 <= len(front) < len(self.WEIGHTS)
        # Every design present is complete and analysable.
        for result in front:
            assert result.chain.width == 4
            assert 0.0 <= result.p_error <= 1.0
        assert front.manifest.truncated is True
        assert front.manifest.stop_reason == STOP_DEADLINE
        swept = front.manifest.params["weights_swept"]
        assert len(swept) < len(self.WEIGHTS)
