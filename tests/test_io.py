"""Tests for repro.io (cell libraries, result export)."""

import json

import pytest

from repro.core.adders import LPAA3, CellRegistry
from repro.core.exceptions import TruthTableError
from repro.core.truth_table import ACCURATE, FullAdderTruthTable
from repro.explore.design_space import sweep_design_space
from repro.io import (
    cells_from_json,
    cells_to_json,
    export_design_points,
    load_cell_library,
    save_cell_library,
)


class TestCellLibrary:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cells.json"
        save_cell_library([ACCURATE, LPAA3], path)
        registry = CellRegistry()
        cells = load_cell_library(path, target=registry)
        assert cells == [ACCURATE, LPAA3]
        assert registry.get("AccuFA") == ACCURATE
        assert registry.get("LPAA 3") == LPAA3

    def test_load_without_register(self, tmp_path):
        path = tmp_path / "cells.json"
        custom = FullAdderTruthTable(ACCURATE.rows, name="Custom X")
        save_cell_library([custom], path)
        registry = CellRegistry()
        load_cell_library(path, target=registry, register=False)
        assert "Custom X" not in registry

    def test_format_marker_required(self):
        with pytest.raises(TruthTableError, match="sealpaa-cells-v1"):
            cells_from_json(json.dumps({"cells": []}))

    def test_invalid_json(self):
        with pytest.raises(TruthTableError, match="invalid JSON"):
            cells_from_json("{nope")

    def test_empty_library_rejected(self):
        with pytest.raises(TruthTableError, match="no cells"):
            cells_from_json(
                json.dumps({"format": "sealpaa-cells-v1", "cells": []})
            )

    def test_malformed_cell_rejected(self):
        doc = json.dumps(
            {"format": "sealpaa-cells-v1",
             "cells": [{"name": "bad", "rows": [[0, 0]]}]}
        )
        with pytest.raises(TruthTableError):
            cells_from_json(doc)

    def test_json_text_is_stable(self):
        text = cells_to_json([ACCURATE])
        parsed = json.loads(text)
        assert parsed["format"] == "sealpaa-cells-v1"
        assert parsed["cells"][0]["name"] == "AccuFA"


class TestDesignPointExport:
    @pytest.fixture
    def points(self):
        return sweep_design_space(["LPAA 1"], [2, 4], [0.1, 0.9])

    def test_csv_export(self, tmp_path, points):
        path = tmp_path / "sweep.csv"
        export_design_points(points, path, fmt="csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "cell,width,p_input,p_error,power_nw,area_ge"
        assert len(lines) == 1 + len(points)

    def test_json_export_and_suffix_detection(self, tmp_path, points):
        path = tmp_path / "sweep.json"
        export_design_points(points, path, fmt="")
        parsed = json.loads(path.read_text())
        assert len(parsed) == len(points)
        assert parsed[0]["cell"] == "LPAA 1"

    def test_unknown_format(self, tmp_path, points):
        with pytest.raises(ValueError, match="unknown export format"):
            export_design_points(points, tmp_path / "x.xml", fmt="xml")


class TestResultDocuments:
    def test_montecarlo_round_trip(self, tmp_path):
        from repro.io import load_result, save_result
        from repro.simulation.montecarlo import simulate_error_probability

        result = simulate_error_probability("LPAA 1", 4, samples=2_000,
                                            seed=7)
        path = tmp_path / "mc.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.p_error == result.p_error
        assert loaded.errors == result.errors
        assert loaded.seed == 7
        assert loaded.manifest.fingerprint() == result.manifest.fingerprint()

    def test_exhaustive_round_trip(self, tmp_path):
        from repro.io import load_result, save_result
        from repro.simulation.exhaustive import exhaustive_report

        result = exhaustive_report("LPAA 2", 3, 0.3, 0.7, 0.5)
        path = tmp_path / "ex.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.p_error == result.p_error
        assert loaded.cases == result.cases == 1 << 7
        assert loaded.manifest.fingerprint() == result.manifest.fingerprint()

    def test_hybrid_round_trip(self, tmp_path):
        from repro.explore.hybrid_search import optimal_hybrid
        from repro.io import load_result, save_result

        result = optimal_hybrid(["LPAA 1", "LPAA 7"], 4, 0.4, 0.6, 0.5)
        path = tmp_path / "hy.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.chain.spec() == result.chain.spec()
        assert loaded.p_error == result.p_error
        assert loaded.objective == result.objective
        assert loaded.manifest.fingerprint() == result.manifest.fingerprint()

    def test_unknown_payload_rejected(self, tmp_path):
        from repro.io import result_from_dict, result_to_dict

        with pytest.raises(TypeError, match="cannot serialise"):
            result_to_dict(object())
        with pytest.raises(ValueError, match="expected a"):
            result_from_dict({"format": "something-else"})


class TestManifestSidecar:
    def test_export_writes_and_reads_sidecar(self, tmp_path):
        from repro.io import (
            load_manifest_sidecar,
            manifest_sidecar_path,
        )
        from repro.obs import build_manifest

        points = sweep_design_space(["LPAA 1"], [2], [0.5])
        path = tmp_path / "sweep.csv"
        manifest = build_manifest("design-space-export", cells=["LPAA 1"],
                                  widths=[2])
        export_design_points(points, path, fmt="csv", manifest=manifest)
        # the main artifact keeps its flat format...
        assert path.read_text().startswith("cell,width")
        # ...and the provenance rides alongside
        sidecar = manifest_sidecar_path(path)
        assert sidecar.name == "sweep.csv.manifest.json"
        assert sidecar.exists()
        loaded = load_manifest_sidecar(path)
        assert loaded.fingerprint() == manifest.fingerprint()

    def test_no_manifest_means_no_sidecar(self, tmp_path):
        from repro.io import manifest_sidecar_path

        points = sweep_design_space(["LPAA 1"], [2], [0.5])
        path = tmp_path / "sweep.csv"
        export_design_points(points, path, fmt="csv")
        assert not manifest_sidecar_path(path).exists()
