"""Instrumentation must never change a number.

Runs the analytical, simulation and search engines once with
observability fully off and once with metrics + tracing collecting, and
asserts bit-identical results.  This is the contract that lets the
instrumentation live inside the hot paths.
"""

import contextlib

import pytest

from repro.core.recursive import analyze_chain
from repro.explore.hybrid_search import optimal_hybrid
from repro.obs import MetricsRegistry, Tracer, metrics, use_registry, use_tracer
from repro.simulation.exhaustive import exhaustive_error_probability
from repro.simulation.montecarlo import simulate_error_probability


@contextlib.contextmanager
def everything_on():
    registry = MetricsRegistry()
    tracer = Tracer()
    metrics.enable()
    try:
        with use_registry(registry), use_tracer(tracer):
            yield registry, tracer
    finally:
        metrics.disable()


class TestBitIdenticalResults:
    def test_analytical_recursion(self):
        plain = analyze_chain("LPAA 3", 6, 0.3, 0.7, 0.5)
        with everything_on():
            instrumented = analyze_chain("LPAA 3", 6, 0.3, 0.7, 0.5)
        assert float(instrumented.p_error) == float(plain.p_error)
        assert float(instrumented.p_success) == float(plain.p_success)

    def test_monte_carlo_stream_is_unchanged(self):
        plain = simulate_error_probability("LPAA 1", 4, 0.3, 0.3, 0.3,
                                           samples=20_000, seed=11)
        with everything_on():
            instrumented = simulate_error_probability(
                "LPAA 1", 4, 0.3, 0.3, 0.3, samples=20_000, seed=11
            )
        assert instrumented.errors == plain.errors
        assert instrumented.p_error == plain.p_error

    def test_exhaustive_enumeration(self):
        plain = exhaustive_error_probability("LPAA 2", 5, 0.2, 0.8, 0.5)
        with everything_on():
            instrumented = exhaustive_error_probability(
                "LPAA 2", 5, 0.2, 0.8, 0.5
            )
        assert instrumented == plain

    def test_hybrid_search(self):
        cells = ["LPAA 1", "LPAA 5", "LPAA 7"]
        plain = optimal_hybrid(cells, 5, 0.4, 0.6, 0.5)
        with everything_on():
            instrumented = optimal_hybrid(cells, 5, 0.4, 0.6, 0.5)
        assert instrumented.chain.spec() == plain.chain.spec()
        assert instrumented.p_error == plain.p_error
        assert instrumented.objective == plain.objective

    def test_metrics_actually_collected_meanwhile(self):
        with everything_on() as (registry, tracer):
            analyze_chain("LPAA 1", 4, 0.5, 0.5, 0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["core.recursive.calls"] == 1
        assert snapshot["counters"]["core.recursive.stages"] == 4
        assert "core.recursive.analyze_chain" in snapshot["timers"]
        assert tracer.span_count() == 1

    def test_progress_callback_does_not_change_the_estimate(self):
        ticks = []
        plain = simulate_error_probability("LPAA 1", 4, samples=10_000,
                                           seed=3)
        observed = simulate_error_probability(
            "LPAA 1", 4, samples=10_000, seed=3,
            progress=lambda d, t, label: ticks.append(d),
        )
        assert observed.p_error == plain.p_error
        assert ticks and ticks[-1] == 10_000
