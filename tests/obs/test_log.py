"""Unit tests for repro.obs.log (structured events + Progress)."""

import io
import logging

from repro.obs.log import (
    Progress,
    configure_logging,
    format_event,
    get_logger,
    log_event,
)


class TestFormatEvent:
    def test_key_value_rendering(self):
        line = format_event("mc.done", samples=100, p=0.123456789)
        assert line == "mc.done samples=100 p=0.123457"

    def test_values_with_spaces_are_quoted(self):
        assert format_event("e", cell="LPAA 1") == 'e cell="LPAA 1"'


class TestLoggers:
    def test_loggers_live_under_repro(self):
        assert get_logger().name == "repro"
        assert get_logger("simulation.montecarlo").name == \
            "repro.simulation.montecarlo"

    def test_silent_by_default(self):
        # the package root has a NullHandler, so emitting at INFO with no
        # configuration must not raise or propagate anywhere noisy
        log_event(get_logger("test.silent"), "quiet", n=1)

    def test_configure_logging_levels_and_idempotence(self):
        stream = io.StringIO()
        configure_logging(1, stream=stream)
        configure_logging(1, stream=stream)  # no duplicate handlers
        try:
            log_event(get_logger("test.cfg"), "hello", n=2)
            assert stream.getvalue().count("hello n=2") == 1
            assert get_logger().level == logging.INFO
            configure_logging(2, stream=stream)
            assert get_logger().level == logging.DEBUG
        finally:
            configure_logging(0, stream=io.StringIO())


class TestProgress:
    def test_reports_every_decile(self):
        seen = []
        progress = Progress(
            100, "units", callback=lambda d, t, label: seen.append(d)
        )
        for _ in range(100):
            progress.update(1)
        progress.finish()
        assert seen == [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]

    def test_coarse_updates_do_not_double_report(self):
        seen = []
        progress = Progress(
            10, "units", callback=lambda d, t, label: seen.append(d)
        )
        progress.update(7)
        progress.update(3)
        progress.finish()
        assert seen == [7, 10]

    def test_finish_forces_final_report(self):
        seen = []
        progress = Progress(
            1000, "units", callback=lambda d, t, label: seen.append(d)
        )
        progress.update(50)  # below the first decile
        progress.finish()
        assert seen == [1000]

    def test_callback_receives_total_and_label(self):
        seen = []
        progress = Progress(
            4, "mc.samples", callback=lambda *a: seen.append(a)
        )
        progress.update(4)
        assert seen == [(4, 4, "mc.samples")]
