"""JSONL access log: record shape, correlation, size rotation."""

from __future__ import annotations

import json

import pytest

from repro.obs.accesslog import AccessLog
from repro.obs.correlate import use_request_id


class TestRecords:
    def test_emit_appends_parseable_jsonl(self, tmp_path):
        log = AccessLog(tmp_path / "access.jsonl")
        log.emit("serve.request", method="POST", status=200)
        log.emit("serve.request", method="GET", status=404)
        events = log.read_events()
        assert [e["event"] for e in events] == ["serve.request"] * 2
        assert events[0]["method"] == "POST"
        assert events[1]["status"] == 404
        assert all("ts" in e for e in events)

    def test_ambient_request_id_is_stamped(self, tmp_path):
        log = AccessLog(tmp_path / "access.jsonl")
        with use_request_id("req-ambient"):
            log.emit("serve.request")
        log.emit("serve.request", request_id="req-explicit")
        log.emit("background.tick")  # no ID in scope
        events = log.read_events()
        assert events[0]["request_id"] == "req-ambient"
        assert events[1]["request_id"] == "req-explicit"
        assert "request_id" not in events[2]

    def test_lines_are_compact_single_objects(self, tmp_path):
        log = AccessLog(tmp_path / "access.jsonl")
        log.emit("e", nested={"a": 1})
        raw = (tmp_path / "access.jsonl").read_text()
        assert raw.count("\n") == 1
        assert json.loads(raw)["nested"] == {"a": 1}

    def test_rejects_bad_limits(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            AccessLog(tmp_path / "a", max_bytes=0)
        with pytest.raises(ValueError, match="backups"):
            AccessLog(tmp_path / "a", backups=-1)


class TestRotation:
    def test_rotates_past_max_bytes_keeping_backups(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path, max_bytes=300, backups=2)
        for i in range(40):
            log.emit("serve.request", seq=i)
        assert path.exists()
        assert (tmp_path / "access.jsonl.1").exists()
        assert (tmp_path / "access.jsonl.2").exists()
        assert not (tmp_path / "access.jsonl.3").exists()
        # The active file stays under the cap and every surviving line
        # is intact JSON (rotation never tears a record).
        assert path.stat().st_size <= 300
        for name in ("access.jsonl", "access.jsonl.1", "access.jsonl.2"):
            for line in (tmp_path / name).read_text().splitlines():
                json.loads(line)

    def test_rotation_preserves_newest_records(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path, max_bytes=300, backups=1)
        for i in range(40):
            log.emit("serve.request", seq=i)
        newest = log.read_events()[-1]["seq"]
        assert newest == 39

    def test_zero_backups_truncates_instead_of_renaming(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path, max_bytes=200, backups=0)
        for i in range(30):
            log.emit("serve.request", seq=i)
        assert path.exists()
        assert not (tmp_path / "access.jsonl.1").exists()

    def test_fresh_instance_resumes_existing_file_size(self, tmp_path):
        path = tmp_path / "access.jsonl"
        first = AccessLog(path, max_bytes=250, backups=1)
        for i in range(10):
            first.emit("serve.request", seq=i)
        # A restarted server (new AccessLog over the same path) must
        # count the existing bytes toward the rotation threshold.
        second = AccessLog(path, max_bytes=250, backups=1)
        for i in range(10):
            second.emit("serve.request", seq=100 + i)
        assert (tmp_path / "access.jsonl.1").exists()
