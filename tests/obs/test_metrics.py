"""Unit tests for repro.obs.metrics."""

import json
import threading
import time

import pytest

from repro.obs import metrics


@pytest.fixture
def enabled_registry():
    """A fresh registry, active and enabled for the test body."""
    was_enabled = metrics.is_enabled()
    registry = metrics.MetricsRegistry()
    metrics.enable()
    with metrics.use_registry(registry):
        yield registry
    if not was_enabled:
        metrics.disable()


class TestCounterGaugeTimer:
    def test_counter_accumulates(self, enabled_registry):
        counter = enabled_registry.counter("c")
        counter.add(3)
        counter.add(4)
        assert counter.value == 7

    def test_counter_identity_by_name(self, enabled_registry):
        assert enabled_registry.counter("x") is enabled_registry.counter("x")

    def test_gauge_keeps_last_value(self, enabled_registry):
        gauge = enabled_registry.gauge("g")
        gauge.set(1.5)
        gauge.set(2.5)
        assert gauge.value == 2.5

    def test_timer_stats_fields(self, enabled_registry):
        timer = enabled_registry.timer("t")
        for value in (0.1, 0.2, 0.3, 0.4):
            timer.observe(value)
        stats = timer.stats()
        assert stats["count"] == 4
        assert stats["total_s"] == pytest.approx(1.0)
        assert stats["min_s"] == pytest.approx(0.1)
        assert stats["max_s"] == pytest.approx(0.4)
        assert stats["mean_s"] == pytest.approx(0.25)
        assert stats["min_s"] <= stats["p50_s"] <= stats["p95_s"] \
            <= stats["max_s"]

    def test_timed_context_records_wall_time(self, enabled_registry):
        with metrics.timed("sleepy"):
            time.sleep(0.01)
        stats = enabled_registry.timer("sleepy").stats()
        assert stats["count"] == 1
        assert stats["total_s"] >= 0.005


class TestEnableSwitch:
    def test_disabled_helpers_do_not_record(self):
        assert not metrics.is_enabled()
        registry = metrics.MetricsRegistry()
        with metrics.use_registry(registry):
            metrics.inc("nope")
            metrics.set_gauge("nope", 1.0)
            metrics.observe("nope", 1.0)
            with metrics.timed("nope"):
                pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["timers"] == {}

    def test_enable_disable_round_trip(self):
        assert not metrics.is_enabled()
        metrics.enable()
        try:
            assert metrics.is_enabled()
        finally:
            metrics.disable()
        assert not metrics.is_enabled()

    def test_disabled_timed_is_shared_noop(self):
        assert metrics.timed("a") is metrics.timed("b")


class TestRegistryIsolation:
    def test_use_registry_scopes_the_active_registry(self, enabled_registry):
        inner = metrics.MetricsRegistry()
        metrics.inc("outer")
        with metrics.use_registry(inner):
            assert metrics.get_registry() is inner
            metrics.inc("inner")
        assert metrics.get_registry() is enabled_registry
        assert enabled_registry.counter("outer").value == 1
        assert enabled_registry.counter("inner").value == 0
        assert inner.counter("inner").value == 1

    def test_threads_do_not_inherit_scoped_registry(self, enabled_registry):
        seen = []

        def worker():
            seen.append(metrics.get_registry())

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        # A fresh thread starts from a fresh context: it sees the global
        # default, not the registry scoped in the main thread.
        assert seen == [metrics.GLOBAL_REGISTRY]

    def test_concurrent_counter_adds_are_consistent(self, enabled_registry):
        counter = enabled_registry.counter("racy")

        def bump():
            for _ in range(1000):
                counter.add(1)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000


class TestSnapshot:
    def test_snapshot_shape_and_format(self, enabled_registry):
        metrics.inc("calls", 2)
        metrics.set_gauge("depth", 3.0)
        metrics.observe("loop", 0.5)
        snapshot = enabled_registry.snapshot()
        assert snapshot["format"] == metrics.METRICS_FORMAT
        assert snapshot["counters"] == {"calls": 2}
        assert snapshot["gauges"] == {"depth": 3.0}
        assert snapshot["timers"]["loop"]["count"] == 1

    def test_to_json_round_trip(self, enabled_registry):
        metrics.inc("calls")
        parsed = json.loads(enabled_registry.to_json())
        assert parsed == json.loads(
            json.dumps(enabled_registry.snapshot())
        )

    def test_snapshot_to_json_writes_file(self, enabled_registry, tmp_path):
        metrics.inc("calls", 5)
        path = tmp_path / "metrics.json"
        doc = metrics.snapshot_to_json(str(path), enabled_registry)
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        assert on_disk["counters"]["calls"] == 5

    def test_reset_clears_everything(self, enabled_registry):
        metrics.inc("calls")
        enabled_registry.reset()
        assert enabled_registry.snapshot()["counters"] == {}
