"""Request-correlation IDs: minting, scoping, thread isolation."""

from __future__ import annotations

import threading

from repro.obs.correlate import (
    current_request_id,
    new_request_id,
    use_request_id,
)


class TestMinting:
    def test_ids_are_unique_and_prefixed(self):
        ids = {new_request_id() for _ in range(1000)}
        assert len(ids) == 1000
        assert all(rid.startswith("req-") for rid in ids)

    def test_unique_under_concurrency(self):
        out: list = []
        lock = threading.Lock()

        def mint():
            local = [new_request_id() for _ in range(200)]
            with lock:
                out.extend(local)

        threads = [threading.Thread(target=mint) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(out)) == len(out)


class TestScoping:
    def test_no_ambient_id_by_default(self):
        assert current_request_id() is None

    def test_use_request_id_scopes_and_restores(self):
        with use_request_id("req-outer"):
            assert current_request_id() == "req-outer"
            with use_request_id("req-inner"):
                assert current_request_id() == "req-inner"
            assert current_request_id() == "req-outer"
        assert current_request_id() is None

    def test_none_clears_an_inherited_id(self):
        # Workers re-scope with the payload's ID; a payload without one
        # must not leak the parent's ambient ID into worker records.
        with use_request_id("req-parent"):
            with use_request_id(None):
                assert current_request_id() is None

    def test_fresh_threads_do_not_inherit_the_scope(self):
        seen: list = []

        def worker():
            seen.append(current_request_id())

        with use_request_id("req-main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]
