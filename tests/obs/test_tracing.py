"""Unit tests for repro.obs.tracing."""

import json

from repro.obs import tracing
from repro.obs.tracing import Tracer, trace_span, use_tracer


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("outer", width=4):
                with trace_span("inner.a"):
                    pass
                with trace_span("inner.b"):
                    with trace_span("leaf"):
                        pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        assert tracer.span_count() == 4

    def test_sibling_roots(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("first"):
                pass
            with trace_span("second"):
                pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_durations_are_recorded(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("timed"):
                pass
        span = tracer.roots[0]
        assert span.duration_s >= 0.0
        assert span.start_s >= 0.0

    def test_attrs_are_kept(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("s", width=8, samples=100):
                pass
        assert tracer.roots[0].attrs == {"width": 8, "samples": 100}


class TestNullPath:
    def test_no_tracer_returns_shared_null_context(self):
        assert tracing.get_tracer() is None
        assert trace_span("a") is trace_span("b")

    def test_null_span_is_harmless(self):
        with trace_span("ignored", anything=1):
            pass  # must not raise, must not record anywhere

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert tracing.get_tracer() is tracer
        assert tracing.get_tracer() is None


class TestExports:
    def _traced(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("root", width=2):
                with trace_span("child"):
                    pass
        return tracer

    def test_to_dict_format(self):
        doc = self._traced().to_dict()
        assert doc["format"] == tracing.TRACE_FORMAT
        (root,) = doc["spans"]
        assert root["name"] == "root"
        assert root["attrs"] == {"width": 2}
        assert [c["name"] for c in root["children"]] == ["child"]

    def test_json_round_trip(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.json"
        tracer.write_json(str(path))
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(tracer.to_dict())
        )

    def test_chrome_export_shape(self):
        doc = self._traced().to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["root", "child"]
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        # the child is contained in its parent's time range (both ends
        # come from the same tracer clock; slack covers float rounding)
        root, child = events
        assert root["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1e-3

    def test_chrome_round_trip(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "chrome.json"
        tracer.write_chrome(str(path))
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(tracer.to_chrome())
        )
