"""Bounded histograms and the rolling-window Timer memory contract."""

from __future__ import annotations

import math
import sys
import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    HISTOGRAM_FACTOR,
    TIMER_WINDOW,
    Histogram,
    Timer,
)


@pytest.fixture
def enabled_registry():
    was_enabled = metrics.is_enabled()
    registry = metrics.MetricsRegistry()
    metrics.enable()
    with metrics.use_registry(registry):
        yield registry
    if not was_enabled:
        metrics.disable()


class TestHistogramBuckets:
    def test_observations_land_in_ascending_buckets(self):
        hist = Histogram("h")
        hist.observe(2e-6)
        hist.observe(1.0)
        hist.observe(1e9)  # beyond the ladder -> overflow bucket
        counts = hist.bucket_counts()
        assert sum(counts) == 3
        assert counts[-1] == 1  # the +Inf overflow
        assert hist.stats()["count"] == 3

    def test_cumulative_buckets_are_monotonic_and_end_at_total(self):
        hist = Histogram("h")
        for value in (1e-5, 1e-3, 0.1, 0.1, 7.0):
            hist.observe(value)
        cumulative = hist.cumulative_buckets()
        values = [count for _, count in cumulative]
        assert values == sorted(values)
        assert cumulative[-1][0] == math.inf
        assert cumulative[-1][1] == 5

    def test_quantile_relative_error_contract(self):
        # The documented accuracy contract: with factor sqrt(2) buckets
        # the geometric-midpoint estimate is within a factor of 2**0.25
        # (~19%) of the true value for any in-range observation.
        hist = Histogram("h")
        true_value = 0.0123
        for _ in range(100):
            hist.observe(true_value)
        estimate = hist.quantile(0.5)
        ratio = estimate / true_value
        bound = HISTOGRAM_FACTOR ** 0.5
        assert 1 / bound <= ratio <= bound

    def test_quantile_clamps_to_observed_extremes(self):
        hist = Histogram("h")
        hist.observe(0.5)
        assert hist.quantile(0.0) == 0.5
        assert hist.quantile(1.0) == 0.5

    def test_bounded_memory_regardless_of_observations(self):
        hist = Histogram("h")
        before = sys.getsizeof(hist._counts)
        for i in range(10_000):
            hist.observe(1e-6 * (i + 1))
        assert sys.getsizeof(hist._counts) == before
        assert len(hist._counts) == len(DEFAULT_BUCKET_BOUNDS) + 1

    def test_snapshot_trims_empty_head_and_saturated_tail(self):
        hist = Histogram("h")
        for _ in range(4):
            hist.observe(0.01)
        buckets = hist.snapshot()["buckets"]
        # One rising edge plus the trailing +Inf, not 57 pairs.
        assert len(buckets) <= 3
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 4


class TestHistogramMerge:
    def test_merge_folds_bucket_counts_and_extremes(self):
        a, b = Histogram("h"), Histogram("h")
        a.observe(1e-4)
        b.observe(10.0)
        b.observe(20.0)
        a.merge_state(b.state_dict())
        stats = a.stats()
        assert stats["count"] == 3
        assert stats["min"] == pytest.approx(1e-4)
        assert stats["max"] == pytest.approx(20.0)
        assert sum(a.bucket_counts()) == 3

    def test_merge_rejects_mismatched_ladders(self):
        a = Histogram("h")
        with pytest.raises(ValueError, match="bucket"):
            a.merge_state({"counts": [1, 2], "count": 3, "sum": 1.0,
                           "min": 0.1, "max": 1.0})

    def test_concurrent_observe_then_merge_equals_serial_sum(self):
        # The S4 hammer in miniature: many threads observing their own
        # histogram, merged at the end, must equal one serial pass over
        # the same values -- bucket counts are exact, never sampled.
        values = [1e-5 * (i % 97 + 1) for i in range(4000)]
        serial = Histogram("h")
        for value in values:
            serial.observe(value)

        shards = [Histogram("h") for _ in range(8)]

        def hammer(shard, chunk):
            for value in chunk:
                shard.observe(value)

        threads = [
            threading.Thread(target=hammer, args=(shards[k], values[k::8]))
            for k in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        merged = Histogram("h")
        for shard in shards:
            merged.merge_state(shard.state_dict())
        assert merged.bucket_counts() == serial.bucket_counts()
        assert merged.stats()["count"] == len(values)
        assert merged.stats()["total"] == pytest.approx(
            serial.stats()["total"])


class TestTimerWindow:
    def test_window_is_bounded(self):
        timer = Timer("t")
        for i in range(TIMER_WINDOW * 2):
            timer.observe(0.001 * (i + 1))
        assert len(timer._window) == TIMER_WINDOW
        assert timer.stats()["count"] == TIMER_WINDOW * 2

    def test_window_quantiles_are_exact_over_recent_samples(self):
        timer = Timer("t")
        # Old samples beyond the window must not influence quantiles.
        for _ in range(TIMER_WINDOW):
            timer.observe(100.0)
        for i in range(TIMER_WINDOW):
            timer.observe(0.001 * (i + 1))
        stats = timer.stats()
        # Exact nearest-rank over the last TIMER_WINDOW observations.
        assert stats["p50_s"] == pytest.approx(0.001 * (TIMER_WINDOW // 2),
                                               rel=0.01)
        assert stats["p50_s"] < 100.0

    def test_merged_only_timer_falls_back_to_bucket_quantiles(self):
        source, target = Timer("t"), Timer("t")
        for _ in range(10):
            source.observe(0.25)
        target.merge_state(source.state_dict())
        stats = target.stats()
        assert stats["count"] == 10
        # No local window -> bucketed estimate, within the contract.
        assert stats["p50_s"] == pytest.approx(0.25,
                                               rel=HISTOGRAM_FACTOR ** 0.5 - 1)


class TestRegistryHistograms:
    def test_snapshot_carries_histograms_section(self, enabled_registry):
        metrics.observe_histogram("batch.occupancy", 3.0)
        snapshot = enabled_registry.snapshot()
        assert snapshot["histograms"]["batch.occupancy"]["count"] == 1

    def test_export_merge_round_trip(self, enabled_registry):
        metrics.inc("engine.requests", 4)
        metrics.observe("engine.run.seconds", 0.1)
        metrics.observe_histogram("occupancy", 2.0)
        state = enabled_registry.export_state()
        other = metrics.MetricsRegistry()
        other.merge_state(state)
        other.merge_state(state)
        snapshot = other.snapshot()
        assert snapshot["counters"]["engine.requests"] == 8
        assert snapshot["timers"]["engine.run.seconds"]["count"] == 2
        assert snapshot["histograms"]["occupancy"]["count"] == 2

    def test_export_respects_exclude_prefixes(self, enabled_registry):
        metrics.inc("engine.cache.hits", 3)
        metrics.inc("engine.requests", 1)
        state = enabled_registry.export_state(
            exclude_prefixes=("engine.cache.",))
        assert "engine.cache.hits" not in state.get("counters", {})
        assert state["counters"]["engine.requests"] == 1
