"""Rolling-ratio windows and SLO evaluation for /healthz."""

from __future__ import annotations

import pytest

from repro.obs import metrics
from repro.obs.slo import RollingRatio, SloPolicy, evaluate_slo


def _snapshot(latency_s=None, hits=0, misses=0, count=0):
    registry = metrics.MetricsRegistry()
    metrics.enable()
    try:
        with metrics.use_registry(registry):
            if hits:
                metrics.inc("engine.cache.hits", hits)
            if misses:
                metrics.inc("engine.cache.misses", misses)
            for _ in range(count):
                metrics.observe("serve.http.analyze.seconds", latency_s)
            return registry.snapshot()
    finally:
        metrics.disable()


class TestRollingRatio:
    def test_empty_window_has_no_rate(self):
        assert RollingRatio().rate() is None

    def test_rate_over_recorded_outcomes(self):
        ratio = RollingRatio()
        for outcome in (True, False, False, False):
            ratio.record(outcome)
        assert ratio.rate() == pytest.approx(0.25)

    def test_window_evicts_oldest_outcomes(self):
        ratio = RollingRatio(window=4)
        for _ in range(4):
            ratio.record(True)
        for _ in range(4):
            ratio.record(False)
        assert ratio.rate() == 0.0
        assert ratio.count == 4

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="window"):
            RollingRatio(window=0)


class TestSloPolicy:
    def test_defaults_are_generous_but_set(self):
        policy = SloPolicy()
        assert policy.max_p50_s == 1.0
        assert policy.max_p99_s == 5.0
        assert policy.max_shed_rate == 0.5
        assert policy.min_cache_hit_rate is None

    def test_validation(self):
        with pytest.raises(ValueError, match="max_p50_s"):
            SloPolicy(max_p50_s=0.0)
        with pytest.raises(ValueError, match="max_shed_rate"):
            SloPolicy(max_shed_rate=1.5)


class TestEvaluateSlo:
    def test_fresh_server_is_ok_not_failing(self):
        verdict = evaluate_slo(_snapshot(), SloPolicy())
        assert verdict["status"] == "ok"
        by_name = {c["name"]: c for c in verdict["checks"]}
        assert by_name["latency_p50"]["status"] == "no_data"
        assert by_name["cache_hit_rate"]["status"] == "disabled"

    def test_fast_service_passes(self):
        snapshot = _snapshot(latency_s=0.01, count=50, hits=9, misses=1)
        verdict = evaluate_slo(snapshot, SloPolicy(min_cache_hit_rate=0.5),
                               shed_rate=0.0)
        assert verdict["status"] == "ok"
        assert all(c["status"] == "pass" for c in verdict["checks"])

    def test_slow_p50_degrades(self):
        snapshot = _snapshot(latency_s=2.0, count=50)
        verdict = evaluate_slo(snapshot, SloPolicy())
        assert verdict["status"] == "degraded"
        by_name = {c["name"]: c for c in verdict["checks"]}
        assert by_name["latency_p50"]["status"] == "fail"
        assert by_name["latency_p50"]["observed"] == pytest.approx(2.0)

    def test_shed_rate_is_an_upper_bound(self):
        verdict = evaluate_slo(_snapshot(), SloPolicy(), shed_rate=0.9)
        by_name = {c["name"]: c for c in verdict["checks"]}
        assert by_name["shed_rate"]["status"] == "fail"
        assert verdict["status"] == "degraded"

    def test_cache_hit_rate_is_a_lower_bound(self):
        snapshot = _snapshot(hits=1, misses=9)
        verdict = evaluate_slo(
            snapshot, SloPolicy(min_cache_hit_rate=0.5))
        by_name = {c["name"]: c for c in verdict["checks"]}
        assert by_name["cache_hit_rate"]["status"] == "fail"

    def test_latency_uses_the_rolling_window_not_whole_run(self):
        # A long-ago slow spell outside the window must not fail the
        # check: the window covers the last TIMER_WINDOW observations.
        registry = metrics.MetricsRegistry()
        metrics.enable()
        try:
            with metrics.use_registry(registry):
                for _ in range(metrics.TIMER_WINDOW):
                    metrics.observe("serve.http.analyze.seconds", 30.0)
                for _ in range(metrics.TIMER_WINDOW):
                    metrics.observe("serve.http.analyze.seconds", 0.01)
                snapshot = registry.snapshot()
        finally:
            metrics.disable()
        verdict = evaluate_slo(snapshot, SloPolicy())
        by_name = {c["name"]: c for c in verdict["checks"]}
        assert by_name["latency_p50"]["status"] == "pass"
        assert by_name["latency_p99"]["status"] == "pass"
