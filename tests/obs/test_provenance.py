"""Unit tests for repro.obs.provenance."""

import re

from repro._version import __version__
from repro.obs.provenance import (
    MANIFEST_FORMAT,
    RunManifest,
    StopWatch,
    build_manifest,
    provenance_line,
)


class TestProvenanceLine:
    def test_mentions_package_version(self):
        line = provenance_line()
        assert line.startswith(f"sealpaa {__version__} ")
        assert re.search(r"python \d+\.\d+", line)
        assert "git " in line


class TestManifestRoundTrip:
    def _manifest(self):
        return build_manifest(
            "montecarlo",
            seed=42,
            samples=1000,
            cells=["LPAA 1"] * 4,
            wall_time_s=0.5,
            p_cin=0.5,
        )

    def test_as_dict_from_dict_round_trip(self):
        manifest = self._manifest()
        doc = manifest.as_dict()
        assert doc["format"] == MANIFEST_FORMAT
        rebuilt = RunManifest.from_dict(doc)
        assert rebuilt == manifest

    def test_fields_are_captured(self):
        manifest = self._manifest()
        assert manifest.kind == "montecarlo"
        assert manifest.package_version == __version__
        assert manifest.seed == 42
        assert manifest.samples == 1000
        assert manifest.cells == ("LPAA 1",) * 4
        assert manifest.params == {"p_cin": 0.5}
        assert "T" in manifest.created_utc  # ISO timestamp


class TestFingerprint:
    def test_deterministic_for_identical_configuration(self):
        a = build_manifest("mc", seed=1, samples=10, cells=["LPAA 1"], p=0.5)
        b = build_manifest("mc", seed=1, samples=10, cells=["LPAA 1"], p=0.5)
        # created_utc / wall time differ; the fingerprint must not.
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_identity_fields(self):
        base = build_manifest("mc", seed=1, samples=10, cells=["LPAA 1"])
        for other in (
            build_manifest("mc", seed=2, samples=10, cells=["LPAA 1"]),
            build_manifest("mc", seed=1, samples=20, cells=["LPAA 1"]),
            build_manifest("mc", seed=1, samples=10, cells=["LPAA 2"]),
            build_manifest("ex", seed=1, samples=10, cells=["LPAA 1"]),
            build_manifest("mc", seed=1, samples=10, cells=["LPAA 1"],
                           p=0.9),
        ):
            assert base.fingerprint() != other.fingerprint()

    def test_insensitive_to_environment_fields(self):
        manifest = build_manifest("mc", seed=1, wall_time_s=1.0)
        twin = RunManifest.from_dict(
            {**manifest.as_dict(), "created_utc": "other",
             "git_sha": "deadbee", "wall_time_s": 99.0}
        )
        assert manifest.fingerprint() == twin.fingerprint()

    def test_param_order_does_not_matter(self):
        a = build_manifest("mc", alpha=1, beta=2)
        b = build_manifest("mc", beta=2, alpha=1)
        assert a.fingerprint() == b.fingerprint()


class TestStopWatch:
    def test_elapsed_is_monotonic(self):
        watch = StopWatch()
        first = watch.elapsed()
        second = watch.elapsed()
        assert 0.0 <= first <= second
