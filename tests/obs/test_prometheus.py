"""Prometheus text exposition: rendering and the CI linter."""

from __future__ import annotations

import pytest

from repro.obs import metrics
from repro.obs.prometheus import (
    CONTENT_TYPE,
    assert_valid_exposition,
    lint_exposition,
    render_prometheus,
    sanitize_name,
)


@pytest.fixture
def snapshot():
    """A realistic snapshot with every metric kind populated."""
    registry = metrics.MetricsRegistry()
    metrics.enable()
    try:
        with metrics.use_registry(registry):
            metrics.inc("engine.cache.hits", 12)
            metrics.set_gauge("serve.queue_depth", 4.0)
            metrics.observe("serve.http.analyze.seconds", 0.012)
            metrics.observe("serve.http.analyze.seconds", 0.210)
            metrics.observe("engine.run", 0.004)
            metrics.observe_histogram("serve.batch_occupancy", 7.0)
            return registry.snapshot()
    finally:
        metrics.disable()


class TestSanitizeName:
    def test_dots_become_underscores_with_namespace(self):
        assert sanitize_name("engine.cache.hits") == \
            "sealpaa_engine_cache_hits"

    def test_output_always_matches_the_grammar(self):
        import re

        grammar = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
        for raw in ("9lives", "a-b c/d", "engine.run", "::"):
            assert grammar.match(sanitize_name(raw)), raw


class TestRender:
    def test_exposition_lints_clean(self, snapshot):
        assert_valid_exposition(render_prometheus(snapshot))

    def test_counter_becomes_total_with_type_line(self, snapshot):
        text = render_prometheus(snapshot)
        assert "# TYPE sealpaa_engine_cache_hits_total counter" in text
        assert "sealpaa_engine_cache_hits_total 12" in text

    def test_timer_becomes_seconds_histogram(self, snapshot):
        text = render_prometheus(snapshot)
        assert ("# TYPE sealpaa_serve_http_analyze_seconds histogram"
                in text)
        assert 'sealpaa_serve_http_analyze_seconds_bucket{le="+Inf"} 2' \
            in text
        assert "sealpaa_serve_http_analyze_seconds_count 2" in text
        # A timer not already named *.seconds gets the suffix appended
        # exactly once.
        assert "sealpaa_engine_run_seconds_count 1" in text
        assert "_seconds_seconds" not in text

    def test_plain_histogram_rendered_unitless(self, snapshot):
        text = render_prometheus(snapshot)
        assert "# TYPE sealpaa_serve_batch_occupancy histogram" in text
        assert "sealpaa_serve_batch_occupancy_sum 7" in text

    def test_bucket_series_is_cumulative_and_inf_terminated(self, snapshot):
        lines = [
            line for line in render_prometheus(snapshot).splitlines()
            if line.startswith("sealpaa_serve_http_analyze_seconds_bucket")
        ]
        values = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert values == sorted(values)
        assert 'le="+Inf"' in lines[-1]

    def test_ends_with_newline(self, snapshot):
        assert render_prometheus(snapshot).endswith("\n")
        assert render_prometheus({}) == "\n"

    def test_content_type_is_version_0_0_4(self):
        assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")


class TestLinter:
    def test_accepts_minimal_valid_exposition(self):
        text = ("# TYPE sealpaa_up gauge\n"
                "sealpaa_up 1\n")
        assert lint_exposition(text) == []

    def test_flags_sample_without_type(self):
        problems = lint_exposition("sealpaa_orphan 1\n")
        assert any("before any TYPE" in p for p in problems)

    def test_flags_missing_trailing_newline(self):
        problems = lint_exposition("# TYPE sealpaa_up gauge\nsealpaa_up 1")
        assert any("newline" in p for p in problems)

    def test_flags_non_cumulative_buckets(self):
        text = ("# TYPE sealpaa_h histogram\n"
                'sealpaa_h_bucket{le="0.1"} 5\n'
                'sealpaa_h_bucket{le="+Inf"} 3\n'
                "sealpaa_h_sum 1\n"
                "sealpaa_h_count 3\n")
        problems = lint_exposition(text)
        assert any("non-cumulative" in p for p in problems)

    def test_flags_missing_inf_bucket(self):
        text = ("# TYPE sealpaa_h histogram\n"
                'sealpaa_h_bucket{le="0.1"} 1\n'
                "sealpaa_h_sum 0.05\n"
                "sealpaa_h_count 1\n")
        problems = lint_exposition(text)
        assert any("+Inf" in p for p in problems)

    def test_flags_bad_sample_value(self):
        problems = lint_exposition(
            "# TYPE sealpaa_up gauge\nsealpaa_up banana\n")
        assert any("bad sample value" in p for p in problems)

    def test_assert_raises_with_every_problem_listed(self):
        with pytest.raises(ValueError, match="invalid Prometheus"):
            assert_valid_exposition("sealpaa_orphan 1")
