"""Per-client token buckets and the serve-config wire round-trip."""

from __future__ import annotations

import pytest

from repro.core.exceptions import AnalysisError
from repro.obs import metrics as _metrics
from repro.obs.slo import SloPolicy
from repro.serve.admission import (
    AdmissionController,
    TokenBucket,
    client_key,
)
from repro.serve.config import ServeConfig, config_from_doc, config_to_doc


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestClientKey:
    def test_api_key_wins_over_peer_ip(self):
        key = client_key({"x-api-key": "alice"}, ("10.0.0.7", 5555))
        assert key == "key:alice"

    def test_peer_ip_fallback(self):
        assert client_key({}, ("10.0.0.7", 5555)) == "ip:10.0.0.7"

    def test_blank_api_key_is_ignored(self):
        assert client_key({"x-api-key": "  "}, ("10.0.0.7", 1)) == "ip:10.0.0.7"

    def test_missing_peername_degrades_to_shared_bucket(self):
        assert client_key({}, None) == "ip:unknown"


class TestTokenBucket:
    def test_burst_then_refusal_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
        assert bucket.try_take(0.0) == (True, 0.0)
        assert bucket.try_take(0.0) == (True, 0.0)
        admitted, retry_after = bucket.try_take(0.0)
        assert not admitted
        assert retry_after == pytest.approx(0.5)  # one token at 2 rps
        admitted, _ = bucket.try_take(0.5)
        assert admitted

    def test_refill_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0, now=0.0)
        bucket.try_take(1000.0)
        assert bucket.tokens == pytest.approx(2.0)


class TestAdmissionController:
    def test_disabled_controller_admits_everything(self):
        controller = AdmissionController(rate_rps=None)
        assert not controller.enabled
        for _ in range(1000):
            assert controller.check("ip:1.2.3.4") is None

    def test_hot_client_throttles_only_itself(self):
        clock = _Clock()
        controller = AdmissionController(rate_rps=1.0, burst=2,
                                         clock=clock)
        assert controller.check("ip:hot") is None
        assert controller.check("ip:hot") is None
        retry_after = controller.check("ip:hot")
        assert retry_after is not None and retry_after > 0
        # An unrelated client is untouched by the hot one's deficit.
        assert controller.check("ip:cold") is None

    def test_retry_after_reflects_the_deficit(self):
        clock = _Clock()
        controller = AdmissionController(rate_rps=10.0, burst=1,
                                         clock=clock)
        assert controller.check("k") is None
        retry_after = controller.check("k")
        assert retry_after == pytest.approx(0.1)
        clock.advance(0.1)
        assert controller.check("k") is None

    def test_lru_bounds_tracked_clients(self):
        clock = _Clock()
        controller = AdmissionController(rate_rps=1.0, max_clients=2,
                                         clock=clock)
        for name in ("a", "b", "c"):
            controller.check(name)
        stats = controller.stats()
        assert stats["clients"] == 2
        # "a" was evicted; returning grants a fresh burst (fail-open).
        assert controller.check("a") is None

    def test_metrics_and_stats(self):
        clock = _Clock()
        registry = _metrics.MetricsRegistry()
        with _metrics.use_registry(registry):
            _metrics.enable()
            try:
                controller = AdmissionController(rate_rps=1.0, burst=1,
                                                 clock=clock)
                controller.check("k")
                controller.check("k")
            finally:
                _metrics.disable()
        counters = registry.snapshot()["counters"]
        assert counters["serve.admission.admitted"] == 1
        assert counters["serve.admission.rejected"] == 1
        assert controller.stats() == {
            "enabled": True, "admitted": 1, "rejected": 1, "clients": 1,
        }

    @pytest.mark.parametrize("kwargs", [
        {"rate_rps": 0}, {"rate_rps": -1},
        {"rate_rps": 1, "burst": 0},
        {"rate_rps": 1, "max_clients": 0},
    ])
    def test_bad_knobs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)


class TestConfigWireForm:
    def test_default_config_serialises_empty(self):
        assert config_to_doc(ServeConfig()) == {}

    def test_round_trip_preserves_every_field(self):
        config = ServeConfig(
            port=0, max_batch=8, batch_window_s=0.001,
            rate_limit_rps=50.0, rate_limit_burst=10.0,
            breaker_failures=3, breaker_reset_s=0.5,
            cache_dir="/tmp/cache-root",
            slo=SloPolicy(max_p99_s=2.0),
        )
        doc = config_to_doc(config)
        assert doc["rate_limit_rps"] == 50.0
        assert config_from_doc(doc) == config

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(AnalysisError, match="unknown serve config"):
            config_from_doc({"breaker_failure": 3})

    @pytest.mark.parametrize("kwargs", [
        {"breaker_failures": -1},
        {"breaker_reset_s": 0},
        {"breaker_half_open_max": 0},
        {"rate_limit_rps": 0},
        {"rate_limit_burst": 0.5},
    ])
    def test_bad_robustness_knobs_fail_at_startup(self, kwargs):
        with pytest.raises(AnalysisError):
            ServeConfig(**kwargs)
