"""Serving failure paths: the contracts that only matter when things break.

* one poisoned request in a micro-batch fails alone -- its batch-mates
  are re-run individually and still succeed;
* a malformed or oversized request on a keep-alive connection gets its
  error response *and the connection keeps working* for the next,
  well-formed request;
* every ``Retry-After`` the server emits is positive and finite;
* an open circuit breaker answers 503 with Retry-After instead of
  queueing doomed work, and closes again after the engine recovers;
* ``/metrics?format=state`` (the supervisor's scrape format) merges
  losslessly into a fresh registry.
"""

from __future__ import annotations

import http.client
import json
import math
import socket
import time

import pytest

from repro import engine
from repro.obs import metrics as _metrics
from repro.runtime.chaos import ChaosShim, install_chaos
from repro.serve import AnalysisServer, ServeConfig
from repro.serve.http import format_retry_after


@pytest.fixture(autouse=True)
def _clean_process_state():
    engine.disable_result_cache()
    _metrics.GLOBAL_REGISTRY.reset()
    yield
    engine.disable_result_cache()
    _metrics.GLOBAL_REGISTRY.reset()


def _start(config):
    server = AnalysisServer(config)
    server.start()
    return server


def _post(conn, path, doc):
    body = json.dumps(doc).encode() if not isinstance(doc, bytes) else doc
    conn.request("POST", path, body=body,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    raw = response.read()
    return response, (json.loads(raw.decode()) if raw else None)


class TestRetryAfterFormatting:
    @pytest.mark.parametrize("value", [
        0.0, -5.0, 1e-9, float("nan"), float("inf"), -float("inf"), 1e12,
    ])
    def test_always_positive_and_finite(self, value):
        rendered = float(format_retry_after(value))
        assert math.isfinite(rendered)
        assert 0 < rendered <= 3600

    def test_normal_values_pass_through(self):
        assert format_retry_after(1.5) == "1.500"
        assert format_retry_after(0.25) == "0.250"


class TestBatchMateIsolation:
    def test_transient_batch_failure_spares_the_batch_mates(self):
        """A batch-level engine fault is retried member-by-member: a
        fault that burns out after the first call must not fail all N
        coalesced requests."""
        server = _start(ServeConfig(port=0, batch_window_s=0.05,
                                    max_batch=8))
        try:
            shim = ChaosShim(fail_engine_times=1)
            with install_chaos(shim):
                conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                                  timeout=30)
                response, doc = _post(
                    conn, "/v1/analyze_batch",
                    {"requests": [
                        {"cell": "LPAA 1", "width": 4, "p_a": 0.1 * (i + 1)}
                        for i in range(3)
                    ]})
                assert response.status == 200
                assert all("p_error" in r and "error" not in r
                           for r in doc["results"])
                conn.close()
            # the batch attempt failed once, then members ran solo
            assert shim.engine_faults_injected == 1
            assert server.service.stats()["isolated"] >= 1
        finally:
            server.stop()


class TestKeepAliveRecovery:
    def test_malformed_json_does_not_poison_the_connection(self):
        server = _start(ServeConfig(port=0, batch_window_s=0.002))
        try:
            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=30)
            response, doc = _post(conn, "/v1/analyze", b"{not json")
            assert response.status == 400
            assert "JSON" in doc["error"]["message"]
            # same TCP connection, next request succeeds
            response, doc = _post(conn, "/v1/analyze",
                                  {"cell": "LPAA 1", "width": 4})
            assert response.status == 200
            assert "p_error" in doc
            conn.close()
        finally:
            server.stop()

    def test_oversized_body_is_drained_and_connection_survives(self):
        server = _start(ServeConfig(port=0, batch_window_s=0.002))
        try:
            from repro.serve.http import MAX_BODY_BYTES

            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=30)
            response, doc = _post(conn, "/v1/analyze",
                                  b" " * (MAX_BODY_BYTES + 1))
            assert response.status == 413
            # the declared body was read and discarded, so the same
            # connection still frames the next request correctly
            response, doc = _post(conn, "/v1/analyze",
                                  {"cell": "LPAA 1", "width": 4})
            assert response.status == 200
            conn.close()
        finally:
            server.stop()

    def test_absurd_content_length_closes_the_connection(self):
        """Past the drain cap the server refuses to read the body; it
        must say so with Connection: close instead of desyncing."""
        server = _start(ServeConfig(port=0, batch_window_s=0.002))
        try:
            sock = socket.create_connection(("127.0.0.1", server.port),
                                            timeout=30)
            sock.sendall(
                b"POST /v1/analyze HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                b"Content-Length: 999999999999\r\n\r\n")
            data = b""
            while b"\r\n\r\n" not in data:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                data += chunk
            head = data.decode("latin-1")
            assert " 413 " in head.splitlines()[0]
            assert "connection: close" in head.lower()
            sock.close()
        finally:
            server.stop()


class TestBreakerOverHttp:
    def test_open_breaker_answers_503_with_retry_after(self):
        server = _start(ServeConfig(port=0, batch_window_s=0.002,
                                    breaker_failures=2, breaker_reset_s=0.2))
        try:
            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=30)
            # every engine call fails: two 500s trip the breaker
            with install_chaos(ChaosShim(fail_engine_times=-1)):
                statuses = []
                for _ in range(4):
                    response, doc = _post(conn, "/v1/analyze",
                                          {"cell": "LPAA 1", "width": 4})
                    statuses.append(response.status)
                    if response.status == 503:
                        retry_after = response.getheader("Retry-After")
                        assert retry_after is not None
                        assert 0 < float(retry_after) <= 3600
                assert statuses[:2] == [500, 500]
                assert 503 in statuses[2:]
                assert server.service.breaker.state == "open"
            # engine healthy again: after the reset window a half-open
            # probe succeeds and service resumes
            time.sleep(0.25)
            response, doc = _post(conn, "/v1/analyze",
                                  {"cell": "LPAA 1", "width": 4})
            assert response.status == 200
            assert server.service.breaker.state == "closed"
            snapshot = _metrics.GLOBAL_REGISTRY.snapshot()
            assert snapshot["counters"]["serve.breaker.opened"] >= 1
            conn.close()
        finally:
            server.stop()


class TestAdmissionOverHttp:
    def test_rate_limited_client_gets_finite_retry_after(self):
        server = _start(ServeConfig(port=0, batch_window_s=0.002,
                                    rate_limit_rps=0.5, rate_limit_burst=1))
        try:
            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=30)
            response, _ = _post(conn, "/v1/analyze",
                                {"cell": "LPAA 1", "width": 4})
            assert response.status == 200
            response, doc = _post(conn, "/v1/analyze",
                                  {"cell": "LPAA 1", "width": 4})
            assert response.status == 429
            retry_after = float(response.getheader("Retry-After"))
            assert math.isfinite(retry_after) and retry_after > 0
            assert "rate limit" in doc["error"]["message"]
            conn.close()
        finally:
            server.stop()


class TestStateScrapeFormat:
    def test_state_merges_losslessly(self):
        server = _start(ServeConfig(port=0, batch_window_s=0.002))
        try:
            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=30)
            for _ in range(3):
                response, _ = _post(conn, "/v1/analyze",
                                    {"cell": "LPAA 1", "width": 4})
                assert response.status == 200
            conn.request("GET", "/metrics?format=state")
            response = conn.getresponse()
            doc = json.loads(response.read().decode())
            assert set(doc) == {"state", "service"}
            assert doc["service"]["served"] == 3

            merged = _metrics.MetricsRegistry()
            merged.merge_state(doc["state"])
            merged.merge_state(doc["state"])  # a second "worker"
            snapshot = merged.snapshot()
            assert (snapshot["counters"]["serve.http.analyze.requests"]
                    == 2 * 3)
            conn.close()
        finally:
            server.stop()
