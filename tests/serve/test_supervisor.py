"""Tests for :mod:`repro.serve.supervisor`.

Unit tests cover the pure pieces (backoff schedule, config validation,
stat merging, health document) in-process; the lifecycle contracts that
matter -- crash detection, restart within budget, signal fan-out, exit
codes -- are exercised against real ``sealpaa serve --workers N``
subprocesses, because process supervision faked with threads proves
nothing.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.core.exceptions import AnalysisError
from repro.serve.supervisor import (
    Supervisor,
    SupervisorConfig,
    backoff_delay,
    merge_service_stats,
    reuseport_available,
)

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")

_BANNER = re.compile(
    r"http://([\d.]+):(\d+)\s+\(status/metrics on http://[\d.]+:(\d+), "
    r"mode=(\w+)")


# -- pure pieces ------------------------------------------------------------


class TestSupervisorConfig:
    def test_defaults_valid(self):
        sup = SupervisorConfig()
        assert sup.workers == 2
        assert sup.restart_budget == 8

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"restart_budget": -1},
        {"backoff_base_s": 0},
        {"heartbeat_interval_s": 0},
        {"heartbeat_timeout_s": 1.0, "heartbeat_interval_s": 1.0},
        {"status_port": 70000},
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(AnalysisError):
            SupervisorConfig(**kwargs)


class TestBackoff:
    def test_doubles_then_caps(self):
        delays = [backoff_delay(k, 0.25, 5.0) for k in range(6)]
        assert delays == [0.25, 0.5, 1.0, 2.0, 4.0, 5.0]


class TestReuseportDetection:
    def test_env_override_forces_fallback(self, monkeypatch):
        monkeypatch.setenv("SEALPAA_NO_REUSEPORT", "1")
        assert reuseport_available() is False

    def test_default_matches_platform(self, monkeypatch):
        monkeypatch.delenv("SEALPAA_NO_REUSEPORT", raising=False)
        import socket

        assert reuseport_available() == hasattr(socket, "SO_REUSEPORT")


class TestMergeServiceStats:
    def test_counters_add_shed_rate_takes_worst(self):
        merged = merge_service_stats([
            {"served": 10, "batches": 5, "shed": 1,
             "recent_shed_rate": 0.05, "draining": False,
             "result_cache": {"memory": {"hits": 3}}},
            {"served": 30, "batches": 5, "shed": 0,
             "recent_shed_rate": 0.60, "draining": True,
             "result_cache": {"memory": {"hits": 4}}},
        ])
        assert merged["served"] == 40
        assert merged["shed"] == 1
        # the worst worker, not the average: one drowning worker must
        # not be hidden behind an idle one
        assert merged["recent_shed_rate"] == 0.60
        assert merged["mean_batch_size"] == 4.0  # 40 served / 10 batches
        assert merged["draining"] is True
        assert merged["result_cache"]["memory"]["hits"] == 7
        assert merged["workers_reporting"] == 2

    def test_empty(self):
        assert merge_service_stats([]) == {}


class TestHealthDoc:
    def test_spawned_but_unbound_worker_is_not_healthy(self):
        """The regression behind the readiness gate: a worker process
        that is running but has not yet bound its listener leaves the
        shared port refusing connections, so /healthz must report
        degraded until the ready event arrives."""
        sup = Supervisor(sup=SupervisorConfig(workers=1))
        proc = subprocess.Popen([sys.executable, "-c",
                                 "import time; time.sleep(30)"])
        try:
            slot = sup._slots[0]
            slot.proc = proc  # alive, but no ready event / admin port
            doc = sup.health_doc()
            assert doc["workers"]["alive"] == 1
            assert doc["workers"]["ready"] == 0
            assert doc["status"] == "degraded"
            slot.admin_port = 59999  # ready reported (scrape may fail)
            doc = sup.health_doc()
            assert doc["workers"]["ready"] == 1
            assert doc["status"] == "ok"
        finally:
            proc.kill()
            proc.wait()

    def test_no_workers_is_degraded_then_stopping_503(self):
        sup = Supervisor(sup=SupervisorConfig(workers=2))
        try:
            sup.bind()
            port = sup.start_status_server()
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=5) as resp:
                doc = json.loads(resp.read().decode())
            assert resp.status == 200
            assert doc["status"] == "degraded"  # 0 of 2 workers alive
            assert doc["workers"] == {
                "target": 2, "alive": 0, "ready": 0,
                "restarts_used": 0, "restart_budget": 8,
            }
            sup._state = "stopping"
            try:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=5)
            except urllib.error.HTTPError as exc:
                assert exc.code == 503
                assert json.loads(exc.read().decode())["status"] == "stopping"
            else:
                pytest.fail("stopping supervisor must answer 503")
        finally:
            sup._close()

    def test_metrics_has_supervisor_section_and_prometheus(self):
        sup = Supervisor(sup=SupervisorConfig(workers=1))
        try:
            sup.bind()
            port = sup.start_status_server()
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=5) as resp:
                doc = json.loads(resp.read().decode())
            info = doc["supervisor"]
            assert info["workers_target"] == 1
            assert info["workers_alive"] == 0
            assert info["workers_ready"] == 0
            assert info["restart_budget"] == 8
            req = urllib.request.Request(
                f"http://127.0.0.1:{port}/metrics?format=prometheus")
            with urllib.request.urlopen(req, timeout=5) as resp:
                assert "text/plain" in resp.headers["Content-Type"]
        finally:
            sup._close()


# -- subprocess lifecycle ---------------------------------------------------


def _boot(tmp_path, extra_args=(), extra_env=None, workers=2):
    env = dict(os.environ, **(extra_env or {}))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath("src"), env.get("PYTHONPATH")) if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--workers", str(workers), "--port", "0",
         "--batch-window-ms", "1", "--drain-grace", "1",
         *extra_args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, cwd=str(tmp_path))
    line = proc.stdout.readline()
    match = _BANNER.search(line)
    assert match, f"unexpected banner: {line!r}"
    return (proc, match.group(1), int(match.group(2)),
            int(match.group(3)), match.group(4))


def _healthz(host, port, timeout=5):
    try:
        with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def _wait_ready(host, status_port, n, deadline_s=30.0):
    """Wait for *n* workers with a bound listener (not merely spawned)."""
    deadline = time.monotonic() + deadline_s
    doc = {}
    while time.monotonic() < deadline:
        try:
            _, doc = _healthz(host, status_port)
        except OSError:
            doc = {}
        if (doc.get("workers") or {}).get("ready") == n:
            return doc
        time.sleep(0.2)
    pytest.fail(f"never reached {n} ready workers; last: {doc}")


def _terminate(proc):
    if proc.poll() is None:
        proc.kill()
        proc.wait()


def test_crash_recovery_and_graceful_sigterm(tmp_path):
    """The headline contract: SIGKILL a worker mid-service, the client
    keeps getting correct answers, the supervisor restores the fleet,
    and SIGTERM still drains to exit 0."""
    from repro.serve.client import AnalysisClient

    proc, host, port, status_port, mode = _boot(tmp_path)
    try:
        _wait_ready(host, status_port, 2)
        client = AnalysisClient(f"http://{host}:{port}",
                                total_deadline_s=30.0)
        doc = {"cell": "LPAA 1", "width": 8, "p_a": 0.3}
        baseline = client.analyze(doc)

        with urllib.request.urlopen(
                f"http://{host}:{status_port}/metrics", timeout=5) as resp:
            workers = json.loads(resp.read().decode())["supervisor"]["workers"]
        victim = next(w["pid"] for w in workers if w["ready"])
        os.kill(victim, signal.SIGKILL)

        # service continues through the crash, answers stay identical
        for _ in range(10):
            assert client.analyze(doc) == baseline

        health = _wait_ready(host, status_port, 2)
        assert health["workers"]["restarts_used"] >= 1
        assert health["workers"]["restarts_used"] <= 8

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        client.close()
    finally:
        _terminate(proc)


def test_fd_fallback_mode_and_sigint_exit_130(tmp_path):
    """Without SO_REUSEPORT the workers inherit one listening socket;
    Ctrl-C on the supervisor drains and honours the exit-130 contract."""
    from repro.serve.client import AnalysisClient

    proc, host, port, status_port, mode = _boot(
        tmp_path, extra_env={"SEALPAA_NO_REUSEPORT": "1"})
    try:
        assert mode == "fd"
        _wait_ready(host, status_port, 2)
        with AnalysisClient(f"http://{host}:{port}") as client:
            answer = client.analyze({"cell": "LPAA 1", "width": 4})
            assert "p_error" in answer
        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=30) == 130
    finally:
        _terminate(proc)


@pytest.mark.chaos
def test_restart_budget_give_up_exits_nonzero(tmp_path):
    """Workers that die on every batch burn the restart budget; the
    supervisor gives up with a clean nonzero exit instead of flapping
    forever."""
    from repro.serve.client import AnalysisClient

    proc, host, port, status_port, _ = _boot(
        tmp_path,
        extra_args=("--restart-budget", "1"),
        extra_env={"SEALPAA_CHAOS": json.dumps({"kill_after_batches": 1})},
    )
    try:
        _wait_ready(host, status_port, 2)
        client = AnalysisClient(f"http://{host}:{port}",
                                total_deadline_s=5.0, max_attempts=4)
        deadline = time.monotonic() + 60.0
        while proc.poll() is None and time.monotonic() < deadline:
            try:
                client.analyze({"cell": "LPAA 1", "width": 4},
                               total_deadline_s=3.0)
            except Exception:
                pass
            time.sleep(0.2)
        assert proc.wait(timeout=10) == 1
        client.close()
    finally:
        _terminate(proc)
