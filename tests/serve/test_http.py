"""HTTP front-end over real sockets: routes, errors, shedding, drain."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import engine
from repro.obs import metrics as _metrics
from repro.serve import AnalysisServer, ServeConfig


@pytest.fixture(autouse=True)
def _clean_process_state():
    # The server writes to the process-global metrics registry; start
    # each test from zero so counter assertions are exact.
    engine.disable_result_cache()
    _metrics.GLOBAL_REGISTRY.reset()
    yield
    engine.disable_result_cache()
    _metrics.GLOBAL_REGISTRY.reset()


@pytest.fixture
def server():
    """A fresh background-thread server on a free port per test."""
    instance = AnalysisServer(ServeConfig(port=0, batch_window_s=0.002))
    instance.start()
    yield instance
    instance.stop()


def _fetch(url, doc=None, timeout=10):
    """(status, parsed body, headers) for one GET/POST."""
    data = json.dumps(doc).encode() if doc is not None else None
    request = urllib.request.Request(url, data=data)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


class TestEndpoints:
    def test_healthz_reports_ok(self, server):
        status, doc, _ = _fetch(server.base_url + "/healthz")
        assert status == 200
        assert doc["status"] == "ok"

    def test_analyze_matches_the_engine(self, server):
        status, doc, _ = _fetch(
            server.base_url + "/v1/analyze",
            {"cell": "LPAA 1", "width": 8, "p_a": 0.3},
        )
        assert status == 200
        request = engine.AnalysisRequest.chain("LPAA 1", 8, p_a=0.3)
        assert doc["p_error"] == engine.run_batch([request])[0].p_error
        assert doc["cells"] == ["LPAA 1"] * 8
        assert doc["exact"] is True

    def test_analyze_batch_mixes_answers_and_item_errors(self, server):
        status, doc, _ = _fetch(
            server.base_url + "/v1/analyze_batch",
            {"requests": [
                {"cell": "LPAA 2", "width": 4},
                {"cell": "LPAA 2"},                 # missing width -> 400
                {"spec": "LPAA7:2, LPAA1:2"},
            ]},
        )
        assert status == 200
        results = doc["results"]
        assert results[0]["p_error"] > 0
        assert results[1]["error"]["code"] == 400
        assert results[2]["width"] == 4

    def test_metrics_exposes_serve_counters_and_stats(self, server):
        _fetch(server.base_url + "/v1/analyze",
               {"cell": "LPAA 3", "width": 4})
        status, doc, _ = _fetch(server.base_url + "/metrics")
        assert status == 200
        assert doc["format"] == "sealpaa-metrics-v1"
        assert doc["counters"]["serve.enqueued"] >= 1
        assert doc["counters"]["serve.http.analyze.requests"] == 1
        assert doc["service"]["served"] >= 1

    def test_result_cache_stats_surface_in_metrics(self, tmp_path):
        server = AnalysisServer(ServeConfig(
            port=0, batch_window_s=0.002, cache_dir=str(tmp_path)
        ))
        server.start()
        try:
            for _ in range(2):
                _fetch(server.base_url + "/v1/analyze",
                       {"cell": "LPAA 1", "width": 4})
            _, doc, _ = _fetch(server.base_url + "/metrics")
            cache = doc["service"]["result_cache"]
            assert cache["disk"]["writes"] == 1
            assert cache["memory"]["hits"] >= 1
        finally:
            server.stop()


class TestHttpErrors:
    def test_unknown_path_is_404(self, server):
        status, doc, _ = _fetch(server.base_url + "/nope")
        assert status == 404 and doc["error"]["code"] == 404

    def test_wrong_method_is_405(self, server):
        status, _, _ = _fetch(server.base_url + "/v1/analyze")  # GET
        assert status == 405

    def test_invalid_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.base_url + "/v1/analyze", data=b"{not json"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=10)
        assert exc_info.value.code == 400

    def test_malformed_analysis_doc_is_400(self, server):
        status, doc, _ = _fetch(server.base_url + "/v1/analyze",
                                {"cell": "LPAA 1", "width": 4, "junk": 1})
        assert status == 400
        assert "unknown" in doc["error"]["message"]

    def test_batch_without_requests_list_is_400(self, server):
        status, _, _ = _fetch(server.base_url + "/v1/analyze_batch",
                              {"cell": "LPAA 1", "width": 4})
        assert status == 400

    def test_oversized_batch_is_413(self):
        server = AnalysisServer(ServeConfig(port=0, queue_limit=4))
        server.start()
        try:
            status, _, _ = _fetch(
                server.base_url + "/v1/analyze_batch",
                {"requests": [{"cell": "LPAA 1", "width": 2}] * 5},
            )
            assert status == 413
        finally:
            server.stop()


class TestLoadShedding:
    def test_overload_sheds_with_429_and_retry_after(self, monkeypatch):
        real_run_batch = engine.run_batch

        def slow_run_batch(requests, *args, **kwargs):
            time.sleep(0.4)
            return real_run_batch(requests, *args, **kwargs)

        monkeypatch.setattr(engine, "run_batch", slow_run_batch)
        server = AnalysisServer(ServeConfig(
            port=0, max_batch=1, batch_window_s=0.0, queue_limit=1,
            retry_after_s=0.25,
        ))
        server.start()
        try:
            def post(i):
                return _fetch(server.base_url + "/v1/analyze",
                              {"cell": "LPAA 1", "width": 4, "p_a": i / 16})
            with ThreadPoolExecutor(8) as pool:
                outcomes = list(pool.map(post, range(1, 9)))
        finally:
            server.stop()
        statuses = [status for status, _, _ in outcomes]
        assert 200 in statuses, "the server must still answer someone"
        shed = [(status, headers) for status, _, headers in outcomes
                if status == 429]
        assert shed, "a 1-deep queue under 8 clients must shed"
        for _, headers in shed:
            assert headers.get("Retry-After") == "0.250"


class TestBatchingOverHttp:
    def test_concurrent_clients_share_engine_batches(self, monkeypatch):
        server = AnalysisServer(ServeConfig(
            port=0, max_batch=32, batch_window_s=0.05
        ))
        server.start()
        try:
            def post(i):
                return _fetch(server.base_url + "/v1/analyze",
                              {"cell": "LPAA 1", "width": 6, "p_a": i / 20})
            with ThreadPoolExecutor(10) as pool:
                outcomes = list(pool.map(post, range(1, 11)))
            assert all(status == 200 for status, _, _ in outcomes)
            _, doc, _ = _fetch(server.base_url + "/metrics")
            service = doc["service"]
        finally:
            server.stop()
        assert service["served"] == 10
        assert service["batches"] < 10


class TestLifecycle:
    def test_stop_is_idempotent(self):
        server = AnalysisServer(ServeConfig(port=0))
        server.start()
        server.stop()
        server.stop()  # second stop is a no-op

    def test_port_zero_resolves_to_a_real_port(self, server):
        assert server.port > 0
        assert str(server.port) in server.base_url

    def test_server_refuses_double_start(self, server):
        with pytest.raises(RuntimeError, match="already started"):
            server.start()

    def test_stopped_server_refuses_connections(self):
        server = AnalysisServer(ServeConfig(port=0))
        url = server.start()
        server.stop()
        with pytest.raises((urllib.error.URLError, ConnectionError)):
            urllib.request.urlopen(url + "/healthz", timeout=2)
