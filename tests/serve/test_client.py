"""Tests for :mod:`repro.serve.client` -- the retrying client.

A scripted stub HTTP server plays the service: each test enqueues the
exact (status, headers, body) sequence the server should emit, and the
client's sleeps/clock/rng are injected so retry schedules are asserted
deterministically without real waiting.
"""

import http.server
import json
import socket
import threading
from collections import deque

import pytest

from repro.serve.client import (
    MAX_SLEEP_S,
    AnalysisClient,
    ClientError,
    RetryBudgetError,
    ServerStatusError,
    parse_retry_after,
    request_fingerprint,
)


# -- scripted stub server ---------------------------------------------------


class _Script:
    def __init__(self):
        self.responses = deque()
        self.seen = []  # (method, path, headers-dict, body-doc)
        self.lock = threading.Lock()

    def push(self, status, body=None, headers=(), times=1):
        for _ in range(times):
            self.responses.append((status, dict(headers), body))


class _Handler(http.server.BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    script = None  # set per-fixture

    def log_message(self, *args):
        pass

    def _serve(self):
        script = self.script
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        with script.lock:
            script.seen.append((
                self.command, self.path, dict(self.headers),
                json.loads(raw.decode()) if raw else None,
            ))
            status, headers, body = (script.responses.popleft()
                                     if script.responses
                                     else (200, {}, {"ok": True}))
        payload = json.dumps(body).encode() if body is not None else b""
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    do_GET = do_POST = _serve


@pytest.fixture()
def stub():
    script = _Script()
    handler = type("Handler", (_Handler,), {"script": script})
    httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
    httpd.daemon_threads = True
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    script.url = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield script
    httpd.shutdown()
    httpd.server_close()


def _client(url, **kwargs):
    sleeps = []
    kwargs.setdefault("sleep", sleeps.append)
    client = AnalysisClient(url, **kwargs)
    client.sleeps = sleeps
    return client


# -- pure helpers -----------------------------------------------------------


class TestFingerprint:
    def test_stable(self):
        doc = {"cell": "LPAA 1", "width": 8}
        assert (request_fingerprint("POST", "/v1/analyze", doc)
                == request_fingerprint("POST", "/v1/analyze",
                                       {"width": 8, "cell": "LPAA 1"}))

    def test_differs_by_body_and_path(self):
        a = request_fingerprint("POST", "/v1/analyze", {"width": 8})
        b = request_fingerprint("POST", "/v1/analyze", {"width": 9})
        c = request_fingerprint("POST", "/v1/analyze_batch", {"width": 8})
        assert len({a, b, c}) == 3


class TestParseRetryAfter:
    @pytest.mark.parametrize("value,expected", [
        ("1.5", 1.5), ("0.001", 0.001), ("3600", 3600.0),
        (None, None), ("", None), ("soon", None),
        ("0", None), ("-2", None), ("inf", None), ("nan", None),
    ])
    def test_cases(self, value, expected):
        assert parse_retry_after(value) == expected


class TestConstruction:
    def test_rejects_bad_url(self):
        with pytest.raises(ValueError):
            AnalysisClient("ftp://nope")
        with pytest.raises(ValueError):
            AnalysisClient("localhost:8080")

    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            AnalysisClient("http://h:1", max_attempts=0)
        with pytest.raises(ValueError):
            AnalysisClient("http://h:1", total_deadline_s=0)


# -- retry engine against the stub ------------------------------------------


class TestRetries:
    def test_success_first_try(self, stub):
        stub.push(200, {"p_error": 0.25})
        with _client(stub.url) as client:
            answer = client.analyze({"cell": "LPAA 1", "width": 8})
        assert answer == {"p_error": 0.25}
        assert client.requests_sent == 1
        assert client.retries == 0

    def test_retries_503_then_succeeds(self, stub):
        stub.push(503, {"error": {"code": 503, "message": "open"}},
                  headers={"Retry-After": "0.010"})
        stub.push(200, {"p_error": 0.5})
        with _client(stub.url) as client:
            answer = client.analyze({"cell": "LPAA 1", "width": 4})
        assert answer == {"p_error": 0.5}
        assert client.retries == 1
        # every attempt of one logical request shares one X-Request-Id
        ids = {headers.get("X-Request-Id") for _, _, headers, _ in stub.seen}
        assert len(ids) == 1
        (request_id,) = ids
        assert request_id.startswith("cli-")

    def test_retry_after_is_a_sleep_floor(self, stub):
        stub.push(429, {"error": {"code": 429, "message": "limited"}},
                  headers={"Retry-After": "0.200"})
        stub.push(200, {"ok": True})
        with _client(stub.url) as client:
            client.analyze({"cell": "LPAA 1", "width": 4})
        assert len(client.sleeps) == 1
        assert client.sleeps[0] >= 0.200

    def test_sleep_capped_by_max_sleep(self, stub):
        stub.push(429, {}, headers={"Retry-After": "9999"})
        stub.push(200, {"ok": True})
        with _client(stub.url, total_deadline_s=10_000) as client:
            client.analyze({"cell": "LPAA 1", "width": 4})
        assert client.sleeps[0] <= MAX_SLEEP_S

    def test_non_retryable_status_raises_immediately(self, stub):
        stub.push(400, {"error": {"code": 400, "message": "bad width"}})
        with _client(stub.url) as client:
            with pytest.raises(ServerStatusError) as info:
                client.analyze({"cell": "LPAA 1"})
        assert info.value.status == 400
        assert "bad width" in str(info.value)
        assert client.requests_sent == 1

    def test_attempt_budget_exhausted(self, stub):
        stub.push(503, {"error": {"code": 503, "message": "down"}}, times=3)
        with _client(stub.url, max_attempts=3) as client:
            with pytest.raises(RetryBudgetError) as info:
                client.analyze({"cell": "LPAA 1", "width": 4})
        assert info.value.attempts == 3
        assert info.value.last_status == 503
        # no sleep after the final attempt
        assert len(client.sleeps) == 2

    def test_total_deadline_bounds_the_dance(self, stub):
        stub.push(503, {}, times=50)
        clock = [0.0]

        def fake_sleep(seconds):
            clock[0] += seconds

        with _client(stub.url, total_deadline_s=0.5, backoff_base_s=0.2,
                     backoff_max_s=10.0, max_attempts=50,
                     clock=lambda: clock[0], sleep=fake_sleep) as client:
            with pytest.raises(RetryBudgetError) as info:
                client.analyze({"cell": "LPAA 1", "width": 4})
        assert info.value.attempts < 50
        assert clock[0] <= 0.5 + 1e-9  # never slept past the deadline

    def test_network_failure_is_retryable(self):
        # a port with nothing listening: connection refused every time
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = _client(f"http://127.0.0.1:{port}", max_attempts=2,
                         total_deadline_s=2.0)
        with pytest.raises(RetryBudgetError) as info:
            client.analyze({"cell": "LPAA 1", "width": 4})
        assert info.value.attempts == 2
        assert info.value.last_status is None

    def test_backoff_grows_with_attempts(self, stub):
        stub.push(503, {}, times=4)
        stub.push(200, {"ok": True})
        caps = []

        class Rng:
            def uniform(self, low, high):
                caps.append(high)
                return high

        with _client(stub.url, max_attempts=8, backoff_base_s=0.1,
                     backoff_max_s=0.5, rng=Rng()) as client:
            client.analyze({"cell": "LPAA 1", "width": 4})
        assert caps == [0.1, 0.2, 0.4, 0.5]  # doubling, then capped


# -- endpoint wrappers ------------------------------------------------------


class TestEndpoints:
    def test_analyze_batch_unwraps_results(self, stub):
        stub.push(200, {"results": [{"p_error": 0.1}, {"p_error": 0.2}]})
        with _client(stub.url) as client:
            results = client.analyze_batch(
                [{"cell": "LPAA 1", "width": 2}] * 2)
        assert [r["p_error"] for r in results] == [0.1, 0.2]
        method, path, _, body = stub.seen[0]
        assert (method, path) == ("POST", "/v1/analyze_batch")
        assert len(body["requests"]) == 2

    def test_healthz_503_is_an_observation(self, stub):
        stub.push(503, {"status": "draining"})
        with _client(stub.url) as client:
            status, doc = client.healthz()
        assert status == 503
        assert doc["status"] == "draining"
        assert client.retries == 0

    def test_metrics_scrape(self, stub):
        stub.push(200, {"counters": {"serve.requests": 3}})
        with _client(stub.url) as client:
            doc = client.metrics()
        assert doc["counters"]["serve.requests"] == 3

    def test_api_key_header_sent(self, stub):
        stub.push(200, {"ok": True})
        with _client(stub.url, api_key="team-a") as client:
            client.analyze({"cell": "LPAA 1", "width": 2})
        _, _, headers, _ = stub.seen[0]
        assert headers.get("X-API-Key") == "team-a"

    def test_connection_reused_across_requests(self, stub):
        stub.push(200, {"ok": 1})
        stub.push(200, {"ok": 2})
        with _client(stub.url) as client:
            client.analyze({"cell": "LPAA 1", "width": 2})
            conn = client._conn
            client.analyze({"cell": "LPAA 1", "width": 3})
            assert client._conn is conn

    def test_close_is_idempotent(self, stub):
        client = _client(stub.url)
        client.close()
        client.close()
