"""Serving telemetry: correlation IDs, access log, Prometheus, SLO."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import engine
from repro.obs import metrics as _metrics
from repro.obs.prometheus import assert_valid_exposition
from repro.obs.slo import SloPolicy
from repro.serve import AnalysisServer, ServeConfig


@pytest.fixture(autouse=True)
def _clean_process_state():
    engine.disable_result_cache()
    _metrics.GLOBAL_REGISTRY.reset()
    yield
    engine.disable_result_cache()
    _metrics.GLOBAL_REGISTRY.reset()


def _fetch(url, doc=None, headers=None, timeout=10):
    data = json.dumps(doc).encode() if doc is not None else None
    request = urllib.request.Request(url, data=data,
                                     headers=dict(headers or {}))
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


@pytest.fixture
def logged_server(tmp_path):
    instance = AnalysisServer(ServeConfig(
        port=0, batch_window_s=0.002,
        access_log=str(tmp_path / "access.jsonl"),
    ))
    instance.start()
    yield instance, tmp_path / "access.jsonl"
    instance.stop()


class TestRequestCorrelation:
    def test_inbound_request_id_round_trips(self, logged_server):
        server, _ = logged_server
        _, _, headers = _fetch(
            server.base_url + "/v1/analyze",
            {"cell": "LPAA 1", "width": 4},
            headers={"X-Request-Id": "req-test-abc"},
        )
        assert headers["X-Request-Id"] == "req-test-abc"

    def test_server_mints_an_id_when_absent(self, logged_server):
        server, _ = logged_server
        _, _, headers = _fetch(server.base_url + "/healthz")
        assert headers["X-Request-Id"].startswith("req-")

    def test_error_responses_carry_the_id_too(self, logged_server):
        server, _ = logged_server
        status, _, headers = _fetch(
            server.base_url + "/nope",
            headers={"X-Request-Id": "req-404"})
        assert status == 404
        assert headers["X-Request-Id"] == "req-404"

    def test_access_log_correlates_requests(self, logged_server):
        server, log_path = logged_server
        _fetch(server.base_url + "/v1/analyze",
               {"cell": "LPAA 1", "width": 4},
               headers={"X-Request-Id": "req-logged"})
        _fetch(server.base_url + "/nope")
        events = [json.loads(line)
                  for line in log_path.read_text().splitlines()]
        by_id = {e.get("request_id"): e for e in events}
        record = by_id["req-logged"]
        assert record["event"] == "serve.request"
        assert record["method"] == "POST"
        assert record["path"] == "/v1/analyze"
        assert record["status"] == 200
        assert record["duration_ms"] >= 0
        assert any(e["status"] == 404 for e in events)


class TestPrometheusNegotiation:
    def test_default_metrics_stay_json(self, logged_server):
        server, _ = logged_server
        status, body, headers = _fetch(server.base_url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        assert json.loads(body)["format"] == "sealpaa-metrics-v1"

    def test_accept_text_plain_serves_prometheus(self, logged_server):
        server, _ = logged_server
        _fetch(server.base_url + "/v1/analyze",
               {"cell": "LPAA 1", "width": 4})
        status, body, headers = _fetch(
            server.base_url + "/metrics",
            headers={"Accept": "text/plain"})
        assert status == 200
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4")
        text = body.decode()
        assert_valid_exposition(text)
        assert "sealpaa_serve_http_analyze_seconds_bucket" in text
        assert "sealpaa_serve_enqueued_total" in text

    def test_query_parameter_forces_prometheus(self, logged_server):
        server, _ = logged_server
        status, body, headers = _fetch(
            server.base_url + "/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert_valid_exposition(body.decode())


class TestHealthzSlo:
    def test_healthz_embeds_the_slo_verdict(self, logged_server):
        server, _ = logged_server
        status, body, _ = _fetch(server.base_url + "/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        names = {c["name"] for c in doc["slo"]["checks"]}
        assert names >= {"latency_p50", "latency_p99", "shed_rate"}

    def test_blown_slo_reports_degraded_but_stays_200(self, tmp_path):
        # A threshold below any real request latency forces a failing
        # latency check; /healthz must say degraded while remaining an
        # HTTP 200 -- liveness probes should not restart a slow pod.
        server = AnalysisServer(ServeConfig(
            port=0, batch_window_s=0.002,
            slo=SloPolicy(max_p50_s=1e-9),
        ))
        server.start()
        try:
            _fetch(server.base_url + "/v1/analyze",
                   {"cell": "LPAA 1", "width": 4})
            status, body, _ = _fetch(server.base_url + "/healthz")
        finally:
            server.stop()
        doc = json.loads(body)
        assert status == 200
        assert doc["status"] == "degraded"
        by_name = {c["name"]: c for c in doc["slo"]["checks"]}
        assert by_name["latency_p50"]["status"] == "fail"

    def test_service_stats_expose_recent_shed_rate(self, logged_server):
        server, _ = logged_server
        _fetch(server.base_url + "/v1/analyze",
               {"cell": "LPAA 1", "width": 4})
        _, body, _ = _fetch(server.base_url + "/metrics")
        stats = json.loads(body)["service"]
        assert stats["recent_shed_rate"] == 0.0

    def test_batch_occupancy_histogram_is_recorded(self, logged_server):
        server, _ = logged_server
        _fetch(server.base_url + "/v1/analyze_batch",
               {"requests": [{"cell": "LPAA 1", "width": 4},
                             {"cell": "LPAA 2", "width": 4}]})
        _, body, _ = _fetch(server.base_url + "/metrics")
        hist = json.loads(body)["histograms"]["serve.batch_occupancy"]
        assert hist["count"] >= 1
        assert hist["max"] >= 1
