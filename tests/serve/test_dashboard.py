"""Dashboard rendering: pure-text frames, live polls, the CLI path."""

from __future__ import annotations

import pytest

from repro import engine
from repro.obs import metrics as _metrics
from repro.serve import AnalysisServer, ServeConfig
from repro.serve.dashboard import poll, render_lines, render_once


@pytest.fixture(autouse=True)
def _clean_process_state():
    engine.disable_result_cache()
    _metrics.GLOBAL_REGISTRY.reset()
    yield
    engine.disable_result_cache()
    _metrics.GLOBAL_REGISTRY.reset()


def _sample(ts=100.0, served=10, **service):
    doc = {"served": served, "batches": 4, "mean_batch_size": 2.5,
           "queue_depth": 0, "shed": 0, "recent_shed_rate": 0.0,
           "draining": False}
    doc.update(service)
    return {
        "ts": ts,
        "metrics": {
            "service": doc,
            "gauges": {},
            "timers": {"serve.http.analyze.seconds": {
                "count": served, "p50_s": 0.01, "p95_s": 0.02,
                "p99_s": 0.03}},
            "histograms": {},
        },
        "health": {"status": "ok", "slo": {"status": "ok", "checks": [
            {"name": "latency_p50", "status": "pass",
             "observed": 0.01, "threshold": 1.0},
            {"name": "cache_hit_rate", "status": "disabled"},
        ]}},
    }


class TestRenderLines:
    def test_unreachable_state_renders_without_crashing(self):
        lines = render_lines({"ts": 0.0, "error": "connection refused"},
                             base_url="http://127.0.0.1:1")
        text = "\n".join(lines)
        assert "UNREACHABLE" in text
        assert "connection refused" in text

    def test_full_sample_renders_headline_signals(self):
        text = "\n".join(render_lines(_sample()))
        assert "health: ok" in text
        assert "served: 10" in text
        assert "serve.http.analyze.seconds" in text
        assert "p99=" in text
        assert "latency_p50" in text
        assert "[PASS]" in text
        assert "(disabled)" in text

    def test_throughput_needs_two_samples(self):
        first = _sample(ts=100.0, served=10)
        second = _sample(ts=102.0, served=30)
        solo = "\n".join(render_lines(second))
        assert "-- req/s" in solo
        paired = "\n".join(render_lines(second, previous=first))
        assert "10.0 req/s" in paired  # (30-10)/2s

    def test_draining_flag_is_surfaced(self):
        text = "\n".join(render_lines(_sample(draining=True)))
        assert "DRAINING" in text

    def test_result_cache_tiers_render_hit_rates(self):
        sample = _sample(result_cache={
            "memory": {"hits": 8, "misses": 2},
            "disk": {"hits": 0, "misses": 0},
        })
        text = "\n".join(render_lines(sample))
        assert "memory" in text and "80.0%" in text

    def test_segment_cache_tiers_render_alongside_result_cache(self):
        sample = _sample(
            result_cache={"memory": {"hits": 8, "misses": 2}},
            segment_cache={
                "memory": {"hits": 30, "misses": 10},
                "disk": {"hits": 3, "misses": 1, "writes": 4},
            },
        )
        text = "\n".join(render_lines(sample))
        assert "result cache" in text
        assert "segment cache" in text
        assert "75.0%" in text  # segment memory: 30/(30+10)
        # The section is skipped entirely when the serve config never
        # mounted a segment cache.
        without = "\n".join(render_lines(_sample()))
        assert "segment cache" not in without


class TestLivePolling:
    def test_poll_and_render_once_against_a_live_server(self):
        server = AnalysisServer(ServeConfig(port=0, batch_window_s=0.002))
        url = server.start()
        try:
            sample = poll(url)
            assert "error" not in sample
            assert sample["metrics"]["format"] == "sealpaa-metrics-v1"
            assert sample["health"]["status"] == "ok"
            text = render_once(url)
        finally:
            server.stop()
        assert "health: ok" in text

    def test_poll_survives_a_dead_server(self):
        sample = poll("http://127.0.0.1:9")  # discard port: refused
        assert "error" in sample

    def test_cli_once_flag_prints_a_frame(self, capsys):
        from repro.cli import main

        server = AnalysisServer(ServeConfig(port=0, batch_window_s=0.002))
        url = server.start()
        try:
            assert main(["dashboard", url, "--once"]) == 0
        finally:
            server.stop()
        out = capsys.readouterr().out
        assert "sealpaa dashboard" in out
        assert "health: ok" in out
