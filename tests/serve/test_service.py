"""Batching core: parsing, coalescing, shedding, deadlines, drain."""

from __future__ import annotations

import asyncio

import pytest

from repro import engine
from repro.core.exceptions import AnalysisError
from repro.serve import (
    AnalysisService,
    ClosingError,
    DeadlineError,
    OverloadedError,
    RequestParseError,
    ServeConfig,
    parse_analysis_doc,
    parse_deadline,
    result_to_doc,
)


@pytest.fixture(autouse=True)
def _no_process_cache():
    engine.disable_result_cache()
    yield
    engine.disable_result_cache()


class TestServeConfig:
    def test_defaults_validate(self):
        config = ServeConfig()
        assert config.max_batch == 64 and config.queue_limit == 1024

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"queue_limit": 0},
        {"batch_window_s": -0.1},
        {"retry_after_s": -1.0},
        {"default_deadline_s": -2.0},
        {"port": 70000},
    ])
    def test_bad_knobs_fail_at_construction(self, kwargs):
        with pytest.raises(AnalysisError):
            ServeConfig(**kwargs)


class TestParseAnalysisDoc:
    def test_cell_plus_width(self):
        request = parse_analysis_doc({"cell": "LPAA 1", "width": 4,
                                      "p_a": 0.3})
        assert request.width == 4
        assert request.p_a == (0.3,) * 4

    def test_per_stage_cells_list(self):
        request = parse_analysis_doc(
            {"cells": ["LPAA 7", "LPAA 7", "LPAA 1"]}
        )
        assert request.cell_names == ("LPAA 7", "LPAA 7", "LPAA 1")

    def test_hybrid_spec_string(self):
        request = parse_analysis_doc({"spec": "LPAA7:2, LPAA1:2"})
        assert request.width == 4

    def test_named_zoo_adder(self):
        request = parse_analysis_doc({"adder": "aca1:8:4"})
        assert request.block is not None
        assert request.width == 8
        assert request.p_cin == 0.0

    def test_chain_represented_zoo_adder(self):
        request = parse_analysis_doc({"adder": "loa:8:4", "p_a": 0.3})
        assert request.block is None
        assert request.width == 8
        assert request.p_a == (0.3,) * 8

    def test_zoo_adder_with_kind(self):
        request = parse_analysis_doc({"adder": "gda:8:2:2", "kind": "med"})
        assert request.kind == "med"

    @pytest.mark.parametrize("doc,match", [
        ([1, 2], "JSON object"),
        ({}, "exactly one"),
        ({"cell": "LPAA 1", "cells": ["LPAA 1"], "width": 2}, "exactly one"),
        ({"cell": "LPAA 1"}, "width"),
        ({"cells": []}, "exactly one"),
        ({"cells": "LPAA 1"}, "non-empty list"),
        ({"spec": "NOPE:banana"}, "bad chain spec"),
        ({"cell": "LPAA 1", "width": 4, "sneaky": 1}, "unknown"),
        ({"adder": "nope:8"}, "unknown adder family"),
        ({"adder": "aca1:8:4", "cell": "LPAA 1", "width": 4},
         "exactly one"),
        ({"adder": "aca1:8:4", "p_cin": 0.5}, "carry-in 0"),
        ({"cell": "LPAA 1", "width": 4, "p_a": 1.5}, "."),
    ])
    def test_malformed_docs_raise_parse_errors(self, doc, match):
        with pytest.raises(RequestParseError, match=match):
            parse_analysis_doc(doc)

    def test_parse_happens_before_any_queueing(self):
        # A parse error must not require a running service.
        with pytest.raises(RequestParseError):
            parse_analysis_doc({"cell": "NO SUCH CELL", "width": 4})


class TestParseDeadline:
    def test_falls_back_to_configured_default(self):
        assert parse_deadline({}, 2.5) == 2.5
        assert parse_deadline({}, None) is None

    def test_client_deadline_wins(self):
        assert parse_deadline({"deadline_s": 0.25}, 9.0) == 0.25

    @pytest.mark.parametrize("value", ["soon", -1.0, 0.0, 1e9])
    def test_bad_deadlines_are_rejected(self, value):
        with pytest.raises(RequestParseError):
            parse_deadline({"deadline_s": value}, None)


class TestResultDoc:
    def test_matches_engine_answer(self):
        request = parse_analysis_doc({"cell": "LPAA 2", "width": 5})
        doc = result_to_doc(engine.run(request))
        assert doc["p_error"] == engine.run(request).p_error
        assert doc["width"] == 5
        assert doc["cells"] == ["LPAA 2"] * 5
        assert doc["exact"] is True


def _run(coro):
    return asyncio.run(coro)


def _doc(width=4, p_a=0.3):
    return parse_analysis_doc({"cell": "LPAA 1", "width": width, "p_a": p_a})


class TestAnalysisService:
    def test_submit_before_start_fails(self):
        async def scenario():
            service = AnalysisService(ServeConfig())
            with pytest.raises(AnalysisError):
                await service.submit(_doc())
        _run(scenario())

    def test_single_request_roundtrip(self):
        async def scenario():
            service = AnalysisService(ServeConfig(batch_window_s=0.001))
            await service.start()
            result = await service.submit(_doc())
            await service.drain()
            return result
        result = _run(scenario())
        # The service always dispatches through run_batch, so its answer
        # is bit-identical to the batch path (not necessarily to the
        # scalar path, whose engine choice may differ at the last ULP).
        assert result.p_error == engine.run_batch([_doc()])[0].p_error

    def test_concurrent_submissions_coalesce_into_fewer_batches(self):
        async def scenario():
            service = AnalysisService(
                ServeConfig(max_batch=32, batch_window_s=0.05)
            )
            await service.start()
            answers = await asyncio.gather(*[
                service.submit(_doc(p_a=i / 10)) for i in range(1, 9)
            ])
            stats = service.stats()
            await service.drain()
            return answers, stats
        answers, stats = _run(scenario())
        assert len(answers) == 8
        assert stats["served"] == 8
        assert stats["batches"] < 8, "requests must share engine batches"

    def test_batch_answers_match_serial_engine_runs(self):
        docs = [_doc(width=w, p_a=0.4) for w in (2, 3, 4, 5)]
        expected = [r.p_error for r in engine.run_batch(docs)]

        async def scenario():
            service = AnalysisService(
                ServeConfig(max_batch=16, batch_window_s=0.05)
            )
            await service.start()
            answers = await asyncio.gather(*[service.submit(d) for d in docs])
            await service.drain()
            return [a.p_error for a in answers]
        assert _run(scenario()) == expected

    def test_full_queue_sheds_with_overloaded_error(self):
        async def scenario():
            service = AnalysisService(
                ServeConfig(queue_limit=2, retry_after_s=0.125)
            )
            await service.start()
            service._dispatcher.cancel()  # freeze the queue deliberately
            futures = [
                asyncio.ensure_future(service.submit(_doc(p_a=i / 10)))
                for i in range(1, 3)
            ]
            await asyncio.sleep(0)  # let both enqueue
            with pytest.raises(OverloadedError) as exc_info:
                await service.submit(_doc(p_a=0.9))
            for future in futures:
                future.cancel()
            return exc_info.value, service.stats()
        error, stats = _run(scenario())
        assert error.retry_after_s == 0.125
        assert stats["shed"] == 1

    def test_queued_deadline_expiry_raises_deadline_error(self):
        async def scenario():
            service = AnalysisService(ServeConfig())
            await service.start()
            service._dispatcher.cancel()  # nothing will ever run
            with pytest.raises(DeadlineError):
                await service.submit(_doc(), deadline_s=0.05)
        _run(scenario())

    def test_drain_refuses_new_work_and_finishes_queued(self):
        async def scenario():
            service = AnalysisService(ServeConfig(batch_window_s=0.001))
            await service.start()
            answer = await service.submit(_doc())
            await service.drain()
            assert service.draining
            with pytest.raises(ClosingError):
                await service.submit(_doc())
            return answer, service.stats()
        answer, stats = _run(scenario())
        assert answer.exact
        assert stats["draining"] is True

    def test_drain_fails_leftover_queued_requests(self):
        async def scenario():
            service = AnalysisService(ServeConfig(drain_grace_s=0.05))
            await service.start()
            service._dispatcher.cancel()  # queue can never empty
            future = asyncio.ensure_future(service.submit(_doc()))
            await asyncio.sleep(0)
            await service.drain()
            with pytest.raises(ClosingError):
                await future
        _run(scenario())

    def test_engine_failure_fails_the_batch_not_the_service(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        async def scenario():
            service = AnalysisService(ServeConfig(batch_window_s=0.001))
            await service.start()
            monkeypatch.setattr(engine, "run_batch", boom)
            with pytest.raises(RuntimeError, match="engine exploded"):
                await service.submit(_doc())
            monkeypatch.undo()
            # The dispatcher survived: the next request still works.
            result = await service.submit(_doc())
            await service.drain()
            return result
        assert _run(scenario()).exact

    def test_stats_include_result_cache_when_mounted(self, tmp_path):
        async def scenario():
            service = AnalysisService(
                ServeConfig(batch_window_s=0.001, cache_dir=str(tmp_path))
            )
            await service.start()
            await service.submit(_doc())
            stats = service.stats()
            await service.drain()
            return stats
        stats = _run(scenario())
        assert stats["result_cache"]["disk"]["writes"] == 1
