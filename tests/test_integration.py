"""Integration tests: multi-subsystem flows a real user would run.

Each test exercises a complete pipeline across package boundaries, the
way the examples do, and checks the end-to-end invariants rather than
unit behaviour.
"""

import numpy as np
import pytest

from repro.apps.imaging import approximate_blend, psnr, synthetic_image
from repro.circuits.power import PowerModel
from repro.circuits.ripple import build_ripple_netlist, netlist_add_array
from repro.core.hybrid import HybridChain
from repro.core.magnitude import error_pmf
from repro.core.masking import chain_is_exact
from repro.core.metrics import metrics_from_pmf, metrics_from_samples
from repro.core.recursive import error_probability
from repro.explore.design_space import sweep_design_space
from repro.explore.hybrid_search import optimal_hybrid
from repro.explore.pareto import pareto_front
from repro.simulation.montecarlo import simulate_samples


class TestSweepToParetoToHybrid:
    def test_full_exploration_pipeline(self):
        cells = [f"LPAA {i}" for i in range(1, 8)]
        model = PowerModel()
        # 1. sweep with power attached
        points = sweep_design_space(cells, [8], [0.2], power_model=model)
        # 2. Pareto-filter error vs power
        front = pareto_front(points, ("error", "power"))
        assert 0 < len(front) <= len(points)
        # 3. every front member must appear undominated in the raw sweep
        for point in front:
            dominated = [
                other for other in points
                if other.p_error < point.p_error
                and other.power_nw < point.power_nw
            ]
            assert not dominated
        # 4. the optimal hybrid at the same operating point beats (or
        #    ties) the best uniform front member on error
        best_uniform = min(front, key=lambda p: p.p_error)
        hybrid = optimal_hybrid(cells, 8, 0.2, 0.2, p_cin=0.2)
        assert hybrid.p_error <= best_uniform.p_error + 1e-12


class TestStructuralStatisticalAgreement:
    def test_netlist_monte_carlo_matches_analytical(self):
        # gate-level netlist -> random stimulus -> word-level error rate
        # must agree with the recursion's P(E).
        width = 5
        cell = "LPAA 4"
        netlist = build_ripple_netlist(cell, width)
        rng = np.random.default_rng(42)
        samples = 100_000
        a = rng.integers(0, 1 << width, samples)
        b = rng.integers(0, 1 << width, samples)
        cin = rng.integers(0, 2, samples)
        got = netlist_add_array(netlist, a, b, cin, width)
        error_rate = float((got != a + b + cin).mean())
        analytical = float(error_probability(cell, width, 0.5, 0.5, 0.5))
        assert error_rate == pytest.approx(analytical, abs=5e-3)


class TestMetricsPipelines:
    def test_pmf_and_sampled_metrics_agree(self):
        chain = HybridChain.from_spec("LPAA6:3, accurate:3")
        assert chain_is_exact(list(chain.cells))
        pmf = error_pmf(list(chain.cells), None, 0.5, 0.5, 0.5)
        analytic = metrics_from_pmf(pmf, width=6)
        approx, exact = simulate_samples(
            list(chain.cells), None, 0.5, 0.5, 0.5,
            samples=300_000, seed=9,
        )
        sampled = metrics_from_samples(approx, exact, width=6)
        assert sampled.error_rate == pytest.approx(analytic.error_rate,
                                                   abs=3e-3)
        assert sampled.med == pytest.approx(analytic.med, rel=0.05)
        assert sampled.wce <= analytic.wce

    def test_error_rate_from_recursion_shows_up_in_images(self):
        # a cell with higher analytical error on the approximated LSBs
        # must not *improve* image quality, across several images.
        img_a = synthetic_image((24, 24), "noise", seed=1)
        img_b = synthetic_image((24, 24), "checker")
        exact = approximate_blend(img_a, img_b, "accurate", approx_bits=0)
        chain_small = ["LPAA 7"] * 3 + ["accurate"] * 5
        chain_large = ["LPAA 2"] * 3 + ["accurate"] * 5
        p_small = float(error_probability(chain_small, None, 0.5, 0.5, 0.0))
        p_large = float(error_probability(chain_large, None, 0.5, 0.5, 0.0))
        assert p_small < p_large
        q_small = psnr(exact, approximate_blend(img_a, img_b, "LPAA 7",
                                                approx_bits=3))
        q_large = psnr(exact, approximate_blend(img_a, img_b, "LPAA 2",
                                                approx_bits=3))
        # correlation, not a theorem: allow a small dB slack
        assert q_small > q_large - 3.0


class TestCustomCellEndToEnd:
    def test_user_cell_through_every_engine(self):
        from repro.circuits.cells import synthesize_cell
        from repro.core.truth_table import ACCURATE, FullAdderTruthTable
        from repro.simulation.exhaustive import exhaustive_error_probability

        rows = list(ACCURATE.rows)
        rows[0] = (1, 0)  # err only on (0,0,0)
        cell = FullAdderTruthTable(rows, name="flip000")

        # analytical
        analytical = float(error_probability(cell, 4, 0.3, 0.3, 0.3))
        # oracle
        oracle = exhaustive_error_probability(cell, 4, 0.3, 0.3, 0.3)
        assert analytical == pytest.approx(oracle, abs=1e-12)
        # synthesis
        impl = synthesize_cell(cell)
        assert impl.evaluate(0, 0, 0) == (1, 0)
        # masking: the corrupted row has a wrong sum, so no masking
        assert chain_is_exact(cell, 4)
        # magnitude: the only error adds +1 at some bit position
        pmf = error_pmf(cell, 4, 0.3, 0.3, 0.3)
        assert all(delta >= 0 for delta in pmf)
