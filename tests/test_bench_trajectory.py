"""The pinned perf trajectory: writer schema, comparison, CLI, linter CLI."""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "scripts" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def trajectory():
    return _load("bench_trajectory")


class TestWriter:
    def test_written_document_matches_the_schema(self, trajectory, tmp_path):
        path = tmp_path / "BENCH_test.json"
        doc = trajectory.write_trajectory(str(path), "unit", [
            trajectory.metric("rps", 100.0, unit="req/s"),
            trajectory.metric("latency_s", 0.2, unit="s",
                              higher_is_better=False),
        ])
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        assert on_disk["format"] == "sealpaa-bench-v1"
        assert on_disk["benchmark"] == "unit"
        assert [m["metric"] for m in on_disk["metrics"]] == \
            ["rps", "latency_s"]
        assert on_disk["metrics"][1]["higher_is_better"] is False
        run = on_disk["run"]
        assert run["python"] and run["platform"] and run["created_at"]
        assert trajectory.load_trajectory(str(path)) == on_disk

    def test_duplicate_metric_names_rejected(self, trajectory, tmp_path):
        with pytest.raises(ValueError, match="duplicate"):
            trajectory.write_trajectory(
                str(tmp_path / "x.json"), "unit",
                [trajectory.metric("a", 1), trajectory.metric("a", 2)])

    def test_load_rejects_foreign_documents(self, trajectory, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="sealpaa-bench-v1"):
            trajectory.load_trajectory(str(path))


def _doc(trajectory, **values):
    return {
        "format": "sealpaa-bench-v1", "benchmark": "unit",
        "metrics": [
            trajectory.metric(name, value,
                              higher_is_better=not name.endswith("_s"))
            for name, value in values.items()
        ],
    }


class TestCompare:
    def test_within_threshold_is_ok(self, trajectory):
        rows = trajectory.compare(_doc(trajectory, rps=100.0),
                                  _doc(trajectory, rps=90.0))
        assert rows[0]["status"] == "ok"
        assert trajectory.regressions(rows) == []

    def test_direction_aware_both_ways(self, trajectory):
        # Throughput down 40% = regression; latency down 40% = improved.
        rows = trajectory.compare(
            _doc(trajectory, rps=100.0, wall_s=1.0),
            _doc(trajectory, rps=60.0, wall_s=0.6))
        by_name = {r["metric"]: r for r in rows}
        assert by_name["rps"]["status"] == "regressed"
        assert by_name["wall_s"]["status"] == "improved"
        # And the mirror image: latency rising 40% regresses.
        rows = trajectory.compare(_doc(trajectory, wall_s=1.0),
                                  _doc(trajectory, wall_s=1.4))
        assert rows[0]["status"] == "regressed"

    def test_added_and_removed_metrics_never_fail(self, trajectory):
        rows = trajectory.compare(_doc(trajectory, old=1.0),
                                  _doc(trajectory, new=2.0))
        statuses = {r["metric"]: r["status"] for r in rows}
        assert statuses == {"old": "removed", "new": "added"}
        assert trajectory.regressions(rows) == []

    def test_custom_threshold(self, trajectory):
        rows = trajectory.compare(_doc(trajectory, rps=100.0),
                                  _doc(trajectory, rps=94.0),
                                  threshold=0.05)
        assert rows[0]["status"] == "regressed"


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable,
             str(REPO / "scripts" / "bench_trajectory.py"), *argv],
            capture_output=True, text=True, timeout=60)

    def test_compare_exits_zero_without_regressions(
            self, trajectory, tmp_path):
        base = tmp_path / "base.json"
        trajectory.write_trajectory(str(base), "unit",
                                    [trajectory.metric("rps", 100.0)])
        result = self._run("compare", str(base), str(base))
        assert result.returncode == 0, result.stderr
        assert "no regressions" in result.stdout

    def test_compare_exits_one_on_regression(self, trajectory, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        trajectory.write_trajectory(str(base), "unit",
                                    [trajectory.metric("rps", 100.0)])
        trajectory.write_trajectory(str(cur), "unit",
                                    [trajectory.metric("rps", 10.0)])
        result = self._run("compare", str(base), str(cur))
        assert result.returncode == 1
        assert "REGRESSED" in result.stdout

    def test_show_renders_the_committed_baselines(self):
        for baseline in ("BENCH_serve.json", "BENCH_parallel.json"):
            result = self._run("show", str(REPO / baseline))
            assert result.returncode == 0, result.stderr
            assert "is better" in result.stdout


class TestCommittedBaselines:
    def test_baselines_exist_and_validate(self, trajectory):
        serve = trajectory.load_trajectory(str(REPO / "BENCH_serve.json"))
        names = {m["metric"] for m in serve["metrics"]}
        assert names == {"serial_rps", "batched_rps", "batching_speedup"}
        parallel = trajectory.load_trajectory(
            str(REPO / "BENCH_parallel.json"))
        names = {m["metric"] for m in parallel["metrics"]}
        assert "sweep_configs_per_s" in names


class TestPrometheusLinterCli:
    def _run(self, *argv, stdin=None):
        return subprocess.run(
            [sys.executable,
             str(REPO / "scripts" / "check_prometheus.py"), *argv],
            capture_output=True, text=True, timeout=60, input=stdin)

    def test_clean_exposition_passes(self):
        result = self._run("-", stdin="# TYPE sealpaa_up gauge\n"
                                      "sealpaa_up 1\n")
        assert result.returncode == 0, result.stderr
        assert "exposition ok" in result.stdout

    def test_broken_exposition_fails_with_problems(self):
        result = self._run("-", stdin="sealpaa_orphan 1\n")
        assert result.returncode == 1
        assert "before any TYPE" in result.stderr

    def test_empty_input_fails(self):
        result = self._run("-", stdin="")
        assert result.returncode == 1
