"""Tests for the inclusion-exclusion baseline (must agree with recursion)."""

import pytest

from repro.baselines.inclusion_exclusion import (
    inclusion_exclusion_error_probability,
    single_stage_error_probabilities,
    stage_error_event_probability,
)
from repro.core.exceptions import AnalysisError
from repro.core.recursive import error_probability, resolve_chain
from repro.core.truth_table import ACCURATE


class TestAgreementWithRecursion:
    """IE and the recursion compute the same quantity; only cost differs."""

    @pytest.mark.parametrize("width", [1, 2, 4, 7])
    def test_uniform_chains(self, lpaa_cell, width):
        report = inclusion_exclusion_error_probability(
            lpaa_cell, width, 0.3, 0.6, 0.5
        )
        recursive = error_probability(lpaa_cell, width, 0.3, 0.6, 0.5)
        assert report.p_error == pytest.approx(float(recursive), abs=1e-9)

    def test_hybrid_chain(self):
        chain = ["LPAA 6", "LPAA 1", "LPAA 7", "LPAA 4"]
        report = inclusion_exclusion_error_probability(chain, p_a=0.2, p_b=0.8)
        recursive = error_probability(chain, None, 0.2, 0.8, 0.5)
        assert report.p_error == pytest.approx(float(recursive), abs=1e-9)

    def test_per_bit_probabilities(self):
        p_a = [0.1, 0.9, 0.5, 0.3, 0.7]
        p_b = [0.6, 0.2, 0.8, 0.4, 0.5]
        report = inclusion_exclusion_error_probability(
            "LPAA 3", 5, p_a, p_b, 0.25
        )
        recursive = error_probability("LPAA 3", 5, p_a, p_b, 0.25)
        assert report.p_error == pytest.approx(float(recursive), abs=1e-9)

    def test_accurate_adder_zero_error(self):
        report = inclusion_exclusion_error_probability(ACCURATE, 6)
        assert report.p_error == pytest.approx(0.0, abs=1e-12)


class TestTermAccounting:
    def test_terms_evaluated_is_2_pow_n_minus_1(self):
        report = inclusion_exclusion_error_probability("LPAA 1", 6)
        assert report.terms_evaluated == 2 ** 6 - 1
        assert report.width == 6

    def test_width_guard(self):
        with pytest.raises(AnalysisError, match="2\\^21"):
            inclusion_exclusion_error_probability("LPAA 1", 21)

    def test_p_success_complements(self):
        report = inclusion_exclusion_error_probability("LPAA 5", 3)
        assert report.p_success == pytest.approx(1 - report.p_error)


class TestEventProbabilities:
    def test_single_event_equals_marginal(self, lpaa_cell):
        cells = resolve_chain(lpaa_cell, 4)
        marginals = single_stage_error_probabilities(lpaa_cell, 4, 0.4, 0.4, 0.4)
        for i in range(4):
            joint = stage_error_event_probability(
                cells, frozenset({i}), [0.4] * 4, [0.4] * 4, 0.4
            )
            assert joint == pytest.approx(marginals[i])

    def test_empty_subset_is_total_mass(self, lpaa_cell):
        cells = resolve_chain(lpaa_cell, 3)
        p = stage_error_event_probability(cells, frozenset(), [0.5] * 3,
                                          [0.5] * 3, 0.5)
        assert p == pytest.approx(1.0)

    def test_joint_probability_is_smaller_than_marginals(self, lpaa_cell):
        cells = resolve_chain(lpaa_cell, 4)
        p_joint = stage_error_event_probability(
            cells, frozenset({0, 3}), [0.5] * 4, [0.5] * 4, 0.5
        )
        p0 = stage_error_event_probability(cells, frozenset({0}), [0.5] * 4,
                                           [0.5] * 4, 0.5)
        p3 = stage_error_event_probability(cells, frozenset({3}), [0.5] * 4,
                                           [0.5] * 4, 0.5)
        assert p_joint <= min(p0, p3) + 1e-12

    def test_plain_sum_of_marginals_overcounts(self):
        # Challenge 2 of paper §3: naively adding the per-stage error
        # probabilities duplicates mass and overshoots the true P(E).
        width = 8
        marginals = single_stage_error_probabilities("LPAA 1", width,
                                                     0.5, 0.5, 0.5)
        naive = sum(marginals)
        true = float(error_probability("LPAA 1", width, 0.5, 0.5, 0.5))
        assert naive > true
