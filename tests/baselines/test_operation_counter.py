"""Tests for Table 3 / Table 8 resource accounting."""

import pytest

from repro.baselines.operation_counter import (
    TABLE8_EQUAL_PROBABILITIES,
    TABLE8_VARYING_PROBABILITIES,
    count_recursion_operations,
    inclusion_exclusion_additions,
    inclusion_exclusion_memory_units,
    inclusion_exclusion_multiplications,
    inclusion_exclusion_terms,
    table3_row,
    table8_memory_units,
)
from repro.core.exceptions import AnalysisError

from ..paper_data import (
    TABLE3_EXACT_ROWS,
    TABLE8_EQUAL,
    TABLE8_VARYING,
    table8_varying_memory,
)


class TestTable3Golden:
    @pytest.mark.parametrize("stages", sorted(TABLE3_EXACT_ROWS))
    def test_exactly_printed_rows(self, stages):
        terms, mults, adds, memory = TABLE3_EXACT_ROWS[stages]
        assert inclusion_exclusion_terms(stages) == terms
        assert inclusion_exclusion_multiplications(stages) == mults
        assert inclusion_exclusion_additions(stages) == adds
        assert inclusion_exclusion_memory_units(stages) == memory

    def test_k16_row_modulo_paper_typo(self):
        # The paper prints 65535 terms / 65534 additions / 131071 memory
        # for k=16 but "52427" multiplications -- a dropped digit; the
        # closed form k*2^(k-1) - k (which fits every other printed row)
        # gives 524272.
        assert inclusion_exclusion_terms(16) == 65535
        assert inclusion_exclusion_additions(16) == 65534
        assert inclusion_exclusion_memory_units(16) == 131071
        assert inclusion_exclusion_multiplications(16) == 524272

    def test_scientific_rows_match_closed_forms(self):
        # k = 20..32 rows, against the magnitudes the formulas give
        # (the paper's own printed magnitudes for terms/additions at
        # k >= 20 are off by x1000; see DESIGN.md).
        assert inclusion_exclusion_multiplications(20) == 10_485_740  # 10.5e6
        assert inclusion_exclusion_memory_units(20) == 2_097_151      # 2.10e6
        assert inclusion_exclusion_multiplications(24) == 201_326_568  # 201e6
        assert inclusion_exclusion_memory_units(32) == 8_589_934_591   # 8.5e9
        assert inclusion_exclusion_multiplications(32) == pytest.approx(
            68.7e9, rel=0.01
        )

    def test_row_helper_bundles_all_four(self):
        row = table3_row(8)
        assert row == {
            "terms": 255,
            "multiplications": 1016,
            "additions": 254,
            "memory_units": 511,
        }

    def test_rejects_zero_stages(self):
        with pytest.raises(AnalysisError):
            inclusion_exclusion_terms(0)


class TestTable8Golden:
    def test_published_constants(self):
        assert TABLE8_EQUAL_PROBABILITIES == TABLE8_EQUAL
        assert TABLE8_VARYING_PROBABILITIES["multipliers"] == TABLE8_VARYING["multipliers"]
        assert TABLE8_VARYING_PROBABILITIES["adders"] == TABLE8_VARYING["adders"]

    def test_memory_units(self):
        assert table8_memory_units(8, per_bit_probabilities=False) == 3
        assert table8_memory_units(8, per_bit_probabilities=True) == table8_varying_memory(8)
        assert table8_memory_units(32, per_bit_probabilities=True) == 33


class TestInstrumentedCounter:
    def test_linear_scaling(self):
        small = count_recursion_operations("LPAA 1", 8)
        large = count_recursion_operations("LPAA 1", 64)
        # Strictly linear: 8x the stages => 8x the work (within the
        # constant first/last-stage difference).
        assert large.total == pytest.approx(8 * small.total, rel=0.05)

    def test_exponentially_cheaper_than_ie(self):
        for stages in (8, 16, 20):
            ours = count_recursion_operations("LPAA 1", stages)
            assert ours.multiplications < inclusion_exclusion_multiplications(stages)
            assert ours.additions < inclusion_exclusion_additions(stages)

    def test_share_operand_products_saves_multiplies(self):
        varying = count_recursion_operations("LPAA 1", 16)
        equal = count_recursion_operations("LPAA 1", 16,
                                           share_operand_products=True)
        assert equal.multiplications == varying.multiplications - 4 * 15

    def test_per_stage_view(self):
        count = count_recursion_operations("LPAA 2", 10)
        per_stage = count.per_stage()
        assert per_stage.width == 1
        assert per_stage.multiplications == count.multiplications // 10

    def test_mask_sparsity_affects_count(self):
        # LPAA 2 has fewer success rows than the accurate adder, so its
        # dot products touch fewer entries.
        from repro.core.truth_table import ACCURATE

        approx = count_recursion_operations("LPAA 2", 12)
        accurate = count_recursion_operations(ACCURATE, 12)
        assert approx.multiplications < accurate.multiplications
