"""Every ``>>>`` snippet in the markdown docs must run and match.

CI also runs ``pytest --doctest-glob='*.md' docs README.md`` directly;
this module keeps the same guarantee inside the default test run, so a
doc edit cannot silently break a printed value.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

PAGES = sorted(
    page
    for page in [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    if ">>>" in page.read_text()
)


def test_the_doctested_pages_are_the_expected_ones():
    names = {page.name for page in PAGES}
    assert {"README.md", "api_tour.md", "parallelism.md",
            "serving.md", "caching.md", "error_metrics.md",
            "adder_zoo.md"} <= names


@pytest.mark.parametrize("page", PAGES, ids=lambda page: page.name)
def test_markdown_examples_execute(page):
    failures, tests = doctest.testfile(
        str(page),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert tests > 0, f"{page.name} advertises >>> but doctest found none"
    assert failures == 0
