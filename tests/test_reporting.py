"""Unit tests for repro.reporting."""

import json

import pytest

from repro.reporting import (
    ascii_table,
    comparison_table,
    format_value,
    records_to_csv,
    records_to_json,
)


class TestFormatValue:
    def test_floats_trim_trailing_zeros(self):
        assert format_value(0.50000) == "0.5"
        assert format_value(0.738476, digits=6) == "0.738476"
        assert format_value(0.0) == "0"

    def test_huge_floats_use_scientific(self):
        assert "e" in format_value(4.0e13) or "E" in format_value(4.0e13)

    def test_none_and_nan_are_dashes(self):
        assert format_value(None) == "-"
        assert format_value(float("nan")) == "-"

    def test_ints_and_strings_pass_through(self):
        assert format_value(42) == "42"
        assert format_value("LPAA 1") == "LPAA 1"


class TestAsciiTable:
    def test_alignment_and_rule(self):
        text = ascii_table(["Cell", "P(E)"], [["LPAA 1", 0.3078]])
        lines = text.splitlines()
        assert lines[0].startswith("Cell")
        assert set(lines[1]) == {"-"}
        assert "0.3078" in lines[2]

    def test_title_prepended(self):
        text = ascii_table(["x"], [[1]], title="Table 7")
        assert text.splitlines()[0] == "Table 7"

    def test_empty_rows_still_render_header(self):
        text = ascii_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestRecordExport:
    RECORDS = [
        {"cell": "LPAA 1", "p_error": 0.3078},
        {"cell": "LPAA 7", "p_error": 0.0198},
    ]

    def test_csv_round_trip(self):
        text = records_to_csv(self.RECORDS)
        lines = text.strip().splitlines()
        assert lines[0] == "cell,p_error"
        assert lines[1].startswith("LPAA 1,")
        assert len(lines) == 3

    def test_csv_empty(self):
        assert records_to_csv([]) == ""

    def test_json_round_trip(self):
        parsed = json.loads(records_to_json(self.RECORDS))
        assert parsed == self.RECORDS


class TestWriteText:
    def test_round_trip(self, tmp_path):
        from repro.reporting import write_text

        path = tmp_path / "report.txt"
        write_text(str(path), "hello\nworld\n")
        assert path.read_text() == "hello\nworld\n"


class TestComparisonTable:
    def test_diff_column(self):
        text = comparison_table(["N=2"], [0.3078], [0.30746])
        assert "0.00034" in text
        assert "Analyt." in text and "Sim." in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            comparison_table(["a"], [0.1], [0.1, 0.2])
