"""End-to-end tests for the sealpaa CLI."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestAnalyze:
    def test_table4_point(self, capsys):
        code, out = run_cli(
            capsys, "analyze", "--cell", "LPAA 1", "--width", "4",
            "--pa", "0.9,0.5,0.4,0.8", "--pb", "0.8,0.7,0.6,0.9",
        )
        assert code == 0
        assert "0.738476" in out

    def test_trace_flag_prints_table(self, capsys):
        code, out = run_cli(
            capsys, "analyze", "--cell", "LPAA 1", "--width", "4", "--trace",
        )
        assert code == 0
        assert "Stage (i)" in out and "NR" in out

    def test_hybrid_spec(self, capsys):
        code, out = run_cli(
            capsys, "analyze", "--spec", "LPAA7:2, LPAA1:2",
            "--pa", "0.1", "--pb", "0.1",
        )
        assert code == 0
        assert "LPAA 7 x2 | LPAA 1 x2" in out

    def test_masking_chain_warns(self, capsys):
        code, out = run_cli(
            capsys, "analyze", "--spec", "LPAA6:1, LPAA1:1, LPAA7:1",
        )
        assert code == 0
        assert "upper bound" in out

    def test_missing_chain_spec_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "--cell", "LPAA 1"])  # no width

    def test_bad_probability_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--cell", "LPAA 1", "--width", "2",
                  "--pa", "1.5"])


class TestSweep:
    def test_default_sweep(self, capsys):
        code, out = run_cli(capsys, "sweep", "--cells", "LPAA 1", "LPAA 7",
                            "--max-width", "4")
        assert code == 0
        assert "N=4" in out and "LPAA 7" in out


class TestCompare:
    def test_small_chain_all_methods(self, capsys):
        code, out = run_cli(
            capsys, "compare", "--cell", "LPAA 6", "--width", "3",
            "--pa", "0.1", "--pb", "0.1", "--pcin", "0.1",
            "--samples", "20000", "--seed", "1",
        )
        assert code == 0
        assert "analytical" in out
        assert "exhaustive" in out
        assert "monte-carlo" in out


class TestGear:
    def test_gear_report(self, capsys):
        code, out = run_cli(capsys, "gear", "--n", "8", "--r", "2", "--p", "2")
        assert code == 0
        assert "linear DP" in out
        assert "0.187500" in out  # exact value for GeAr(8,2,2) at p=0.5


class TestHybrid:
    def test_hybrid_search(self, capsys):
        code, out = run_cli(
            capsys, "hybrid", "--width", "4", "--pa", "0.1", "--pb", "0.1",
            "--show-greedy",
        )
        assert code == 0
        assert "optimal chain" in out and "LPAA 7" in out
        assert "greedy chain" in out


class TestPowerAndCells:
    def test_power_table(self, capsys):
        code, out = run_cli(capsys, "power", "--cell", "LPAA 1",
                            "--width", "4")
        assert code == 0
        assert "771" in out  # published Table 2 power shows up
        assert "chain power" in out

    def test_cells_listing(self, capsys):
        code, out = run_cli(capsys, "cells")
        assert code == 0
        assert "AccuFA" in out
        for i in range(1, 8):
            assert f"LPAA {i}" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestErrorHandling:
    def test_library_errors_exit_cleanly(self, capsys):
        # invalid GeAr config: a ReproError becomes exit code 2 with a
        # message on stderr, not a traceback.
        code = main(["gear", "--n", "8", "--r", "3", "--p", "1"])
        captured = capsys.readouterr()
        assert code == 2
        assert "multiple of R" in captured.err

    def test_unknown_cell_exits_cleanly(self, capsys):
        code = main(["analyze", "--cell", "no-such-cell", "--width", "4"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown adder cell" in captured.err


class TestTable:
    @pytest.mark.parametrize("table_id,needle", [
        ("3", "1016"),          # k=8 multiplications
        ("4", "0.738476"),      # worked-example P(Succ)
        ("5", "[0,0,0,1,0,1,1,1]"),  # LPAA 1 M matrix
        ("7", "0.16953"),       # LPAA 6, N=8
    ])
    def test_supported_tables(self, capsys, table_id, needle):
        code, out = run_cli(capsys, "table", table_id)
        assert code == 0
        assert needle in out

    def test_unsupported_table(self):
        with pytest.raises(SystemExit, match="not supported"):
            main(["table", "9"])


class TestNewSubcommands:
    def test_symbolic(self, capsys):
        code, out = run_cli(capsys, "symbolic", "--cell", "LPAA 5",
                            "--width", "1")
        assert code == 0
        assert "2*p - 2*p^2" in out

    def test_symbolic_per_bit(self, capsys):
        code, out = run_cli(capsys, "symbolic", "--cell", "LPAA 1",
                            "--width", "2", "--mode", "per-bit")
        assert code == 0
        assert "a0" in out and "b1" in out

    def test_timing_chain(self, capsys):
        code, out = run_cli(capsys, "timing", "--cell", "LPAA 1",
                            "--width", "8")
        assert code == 0
        assert "critical path" in out

    def test_timing_llaa(self, capsys):
        code, out = run_cli(capsys, "timing", "--llaa", "--width", "8")
        assert code == 0
        assert "ACA-I" in out and "RCA(8)" in out

    def test_faults(self, capsys):
        code, out = run_cli(capsys, "faults", "--cell", "accurate",
                            "--width", "4", "--top", "5")
        assert code == 0
        assert "/SA" in out

    def test_ant(self, capsys):
        code, out = run_cli(capsys, "ant", "--cell", "LPAA 2",
                            "--width", "8", "--samples", "5000")
        assert code == 0
        assert "hard WCE bound" in out
        assert "replica usage" in out


class TestZoo:
    def test_analyze_named_adder(self, capsys):
        code, out = run_cli(capsys, "analyze", "--adder", "aca1:8:4")
        assert code == 0
        assert "zoo-dp" in out
        assert "0.125000" in out

    def test_analyze_chain_represented_adder(self, capsys):
        code, out = run_cli(capsys, "analyze", "--adder", "loa:8:4")
        assert code == 0
        assert "0.683594" in out

    def test_analyze_adder_rejects_trace(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--adder", "aca1:8:4", "--trace"])

    def test_distribution_named_adder(self, capsys):
        code, out = run_cli(capsys, "distribution", "--adder", "gda:8:2:2",
                            "--kind", "med")
        assert code == 0
        assert "MED" in out and "1.5" in out

    def test_zoo_families_table(self, capsys):
        code, out = run_cli(capsys, "zoo", "--families")
        assert code == 0
        for family in ("loa", "aca1", "gda", "axppa-ks"):
            assert family in out

    def test_zoo_describe_one_config(self, capsys):
        code, out = run_cli(capsys, "zoo", "--adder", "eta:8:2")
        assert code == 0
        assert "eta:<N>:<X>" in out
        assert "P(Error)   : 0.187500" in out

    def test_zoo_width_sweep_with_pareto(self, capsys):
        code, out = run_cli(capsys, "zoo", "--width", "6", "--pareto")
        assert code == 0
        assert "rca:6" not in out or "Pareto" in out
        assert "Delay" in out and "Engine" in out

    def test_zoo_bad_config_is_actionable(self, capsys):
        code = main(["zoo", "--adder", "martian:8"])
        assert code != 0
        assert "unknown adder family" in capsys.readouterr().err


class TestExport:
    def test_csv_export(self, capsys, tmp_path):
        out_file = tmp_path / "points.csv"
        code, out = run_cli(
            capsys, "export", "--cells", "LPAA 1", "--widths", "2", "4",
            "--probabilities", "0.5", "-o", str(out_file),
        )
        assert code == 0
        assert "2 design points" in out
        assert out_file.read_text().startswith("cell,width")


class TestCellsFile:
    def test_analyze_custom_cell_from_library(self, capsys, tmp_path):
        import json

        from repro.core.truth_table import ACCURATE

        rows = [list(r) for r in ACCURATE.rows]
        rows[3] = [0, 0]  # corrupt one row
        path = tmp_path / "cells.json"
        path.write_text(json.dumps({
            "format": "sealpaa-cells-v1",
            "cells": [{"name": "CliCell", "rows": rows}],
        }))
        code, out = run_cli(
            capsys, "analyze", "--cells-file", str(path),
            "--cell", "CliCell", "--width", "3",
        )
        assert code == 0
        assert "CliCell x3" in out


class TestObservability:
    def test_metrics_out_writes_snapshot(self, capsys, tmp_path):
        import json

        metrics_file = tmp_path / "metrics.json"
        code, _ = run_cli(
            capsys, "analyze", "--cell", "LPAA 1", "--width", "4",
            "--metrics-out", str(metrics_file),
        )
        assert code == 0
        snapshot = json.loads(metrics_file.read_text())
        assert snapshot["format"] == "sealpaa-metrics-v1"
        assert snapshot["counters"]["core.recursive.calls"] == 1
        assert snapshot["counters"]["core.recursive.stages"] == 4
        assert "core.recursive.analyze_chain" in snapshot["timers"]

    def test_trace_path_writes_chrome_trace(self, capsys, tmp_path):
        import json

        trace_file = tmp_path / "trace.json"
        code, out = run_cli(
            capsys, "analyze", "--cell", "LPAA 1", "--width", "4",
            "--trace", str(trace_file),
        )
        assert code == 0
        # a PATH argument means "write the span trace", not the legacy
        # per-stage table
        assert "Stage (i)" not in out
        doc = json.loads(trace_file.read_text())
        events = doc["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert any(e["name"] == "core.recursive.analyze_chain"
                   for e in events)

    def test_verbose_prints_provenance_header(self, capsys):
        code = main(["analyze", "--cell", "LPAA 1", "--width", "4", "-v"])
        captured = capsys.readouterr()
        assert code == 0
        assert "# sealpaa" in captured.err
        assert "P(Error)" in captured.out

    def test_metrics_cover_simulation_commands(self, capsys, tmp_path):
        import json

        metrics_file = tmp_path / "metrics.json"
        code, _ = run_cli(
            capsys, "compare", "--cell", "LPAA 1", "--width", "3",
            "--samples", "2000", "--metrics-out", str(metrics_file),
        )
        assert code == 0
        counters = json.loads(metrics_file.read_text())["counters"]
        assert counters["simulation.montecarlo.samples"] == 2000
        assert counters["simulation.exhaustive.cases"] == 1 << 7

    def test_version_includes_provenance(self, capsys):
        with pytest.raises(SystemExit):
            main(["--version"])
        out = capsys.readouterr().out
        assert out.startswith("sealpaa ")
        assert "python" in out


class TestObsSubcommand:
    def _analyze_with(self, capsys, tmp_path):
        metrics_file = tmp_path / "m.json"
        trace_file = tmp_path / "t.json"
        run_cli(
            capsys, "analyze", "--cell", "LPAA 1", "--width", "4",
            "--metrics-out", str(metrics_file), "--trace", str(trace_file),
        )
        return metrics_file, trace_file

    def test_pretty_prints_metrics_snapshot(self, capsys, tmp_path):
        metrics_file, _ = self._analyze_with(capsys, tmp_path)
        code, out = run_cli(capsys, "obs", str(metrics_file))
        assert code == 0
        assert "core.recursive.calls" in out
        assert "Timer" in out and "p95 s" in out

    def test_pretty_prints_chrome_trace(self, capsys, tmp_path):
        _, trace_file = self._analyze_with(capsys, tmp_path)
        code, out = run_cli(capsys, "obs", str(trace_file))
        assert code == 0
        assert "core.recursive.analyze_chain" in out
        assert "trace events" in out

    def test_pretty_prints_result_document(self, capsys, tmp_path):
        from repro.io import save_result
        from repro.simulation.montecarlo import simulate_error_probability

        result = simulate_error_probability("LPAA 1", 4, samples=1_000,
                                            seed=1)
        path = tmp_path / "result.json"
        save_result(result, path)
        code, out = run_cli(capsys, "obs", str(path))
        assert code == 0
        assert "montecarlo" in out
        assert "run manifest" in out

    def test_rejects_unknown_documents(self, capsys, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(SystemExit):
            main(["obs", str(path)])
