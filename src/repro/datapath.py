"""Accelerator datapaths built from approximate adders (paper §1.1:
"the analysis complexity will further aggravate when these adders form
an accelerator data path").

A :class:`Datapath` is a small DAG of operations -- external inputs,
additions (each with its own approximate adder configuration, uniform or
hybrid), exact multiplications and constant shifts -- evaluated
bit-true through the library's functional simulators.  On top of it:

* :func:`datapath_error_metrics` -- Monte-Carlo quality of the whole
  graph against its all-exact twin;
* :func:`node_sensitivity` -- per-adder contribution: error rate with
  only that node approximate (which adders matter most);
* :func:`datapath_cost` -- aggregate model power/area of the adder
  nodes via the calibrated :class:`repro.circuits.power.PowerModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .core.exceptions import AnalysisError, ChainLengthError
from .core.metrics import QualityMetrics, metrics_from_samples
from .core.recursive import CellSpec, resolve_chain
from .simulation.functional import ripple_add_array


@dataclass(frozen=True)
class _Node:
    name: str
    kind: str                      # "input" | "add" | "mul" | "shl"
    operands: Tuple[str, ...]
    width: int                     # width of this node's OUTPUT
    cell: Optional[Tuple] = None   # resolved chain for "add" nodes
    amount: int = 0                # shift amount for "shl"


class Datapath:
    """A DAG of arithmetic operations with per-adder approximation."""

    def __init__(self, name: str = "datapath"):
        self.name = name
        self._nodes: Dict[str, _Node] = {}
        self._order: List[str] = []
        self._outputs: List[str] = []

    # -- construction ----------------------------------------------------------------

    def _register(self, node: _Node) -> str:
        if node.name in self._nodes:
            raise AnalysisError(f"node {node.name!r} already defined")
        for operand in node.operands:
            if operand not in self._nodes:
                raise AnalysisError(
                    f"node {node.name!r} references unknown node "
                    f"{operand!r} (define operands first)"
                )
        self._nodes[node.name] = node
        self._order.append(node.name)
        return node.name

    def add_input(self, name: str, width: int) -> str:
        """Declare an external operand of *width* bits."""
        if width < 1:
            raise ChainLengthError(f"width must be >= 1, got {width}", width)
        return self._register(_Node(name, "input", (), width))

    def add_add(
        self,
        name: str,
        a: str,
        b: str,
        cell: Union[CellSpec, Sequence[CellSpec]] = "accurate",
    ) -> str:
        """An adder node; output width = max(operand widths) + 1.

        *cell* configures the ripple chain (uniform spec or per-stage
        list), exactly as everywhere else in the library.
        """
        width = max(self._width_of(a), self._width_of(b)) + 1
        chain = tuple(resolve_chain(cell, width - 1))
        return self._register(
            _Node(name, "add", (a, b), width, cell=chain)
        )

    def add_mul(self, name: str, a: str, b: str) -> str:
        """An exact multiplier node; output width = sum of widths."""
        width = self._width_of(a) + self._width_of(b)
        return self._register(_Node(name, "mul", (a, b), width))

    def add_shl(self, name: str, a: str, amount: int) -> str:
        """An exact left shift (constant scaling) node."""
        if amount < 0:
            raise AnalysisError(f"shift amount must be >= 0, got {amount}")
        width = self._width_of(a) + amount
        return self._register(_Node(name, "shl", (a,), width, amount=amount))

    def mark_output(self, name: str) -> None:
        """Declare *name* a graph output."""
        if name not in self._nodes:
            raise AnalysisError(f"unknown node {name!r}")
        if name in self._outputs:
            raise AnalysisError(f"output {name!r} declared twice")
        self._outputs.append(name)

    # -- introspection ------------------------------------------------------------------

    def _width_of(self, name: str) -> int:
        try:
            return self._nodes[name].width
        except KeyError:
            raise AnalysisError(f"unknown node {name!r}") from None

    @property
    def inputs(self) -> List[str]:
        """Input node names in declaration order."""
        return [n for n in self._order if self._nodes[n].kind == "input"]

    @property
    def outputs(self) -> List[str]:
        """Declared graph outputs."""
        return list(self._outputs)

    def adder_nodes(self) -> List[str]:
        """Names of all adder nodes in topological order."""
        return [n for n in self._order if self._nodes[n].kind == "add"]

    def with_exact_adders(self, except_node: Optional[str] = None) -> "Datapath":
        """A copy where every adder (except one, optionally) is exact."""
        clone = Datapath(name=f"{self.name}_exact")
        for name in self._order:
            node = self._nodes[name]
            if node.kind == "input":
                clone.add_input(name, node.width)
            elif node.kind == "add":
                cell = list(node.cell) if name == except_node else "accurate"
                clone.add_add(name, node.operands[0], node.operands[1],
                              cell=cell)
            elif node.kind == "mul":
                clone.add_mul(name, node.operands[0], node.operands[1])
            else:
                clone.add_shl(name, node.operands[0], node.amount)
        for out in self._outputs:
            clone.mark_output(out)
        return clone

    # -- evaluation ------------------------------------------------------------------------

    def evaluate_array(
        self, stimulus: Mapping[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Bit-true vectorised evaluation of all declared outputs."""
        if not self._outputs:
            raise AnalysisError("datapath has no outputs")
        values: Dict[str, np.ndarray] = {}
        for name in self._order:
            node = self._nodes[name]
            if node.kind == "input":
                if name not in stimulus:
                    raise AnalysisError(f"missing stimulus for input {name!r}")
                arr = np.asarray(stimulus[name], dtype=np.int64)
                if (arr < 0).any() or (arr >= 1 << node.width).any():
                    raise AnalysisError(
                        f"stimulus for {name!r} must fit in {node.width} bits"
                    )
                values[name] = arr
            elif node.kind == "add":
                a = values[node.operands[0]]
                b = values[node.operands[1]]
                add_width = node.width - 1
                values[name] = ripple_add_array(
                    list(node.cell), a, b, 0, add_width
                )
            elif node.kind == "mul":
                values[name] = (
                    values[node.operands[0]] * values[node.operands[1]]
                )
            else:  # shl
                values[name] = values[node.operands[0]] << node.amount
        return {out: values[out] for out in self._outputs}

    def evaluate(self, stimulus: Mapping[str, int]) -> Dict[str, int]:
        """Scalar convenience wrapper around :meth:`evaluate_array`."""
        arrays = self.evaluate_array(
            {k: np.asarray([v]) for k, v in stimulus.items()}
        )
        return {k: int(v[0]) for k, v in arrays.items()}


def _random_stimulus(
    dp: Datapath, samples: int, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    return {
        name: rng.integers(0, 1 << dp._width_of(name), samples)
        for name in dp.inputs
    }


def datapath_error_metrics(
    dp: Datapath,
    output: Optional[str] = None,
    samples: int = 50_000,
    seed: Optional[int] = None,
) -> QualityMetrics:
    """Monte-Carlo quality of the graph against its all-exact twin."""
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    out = output or (dp.outputs[0] if dp.outputs else None)
    if out is None:
        raise AnalysisError("datapath has no outputs")
    rng = np.random.default_rng(seed)
    stimulus = _random_stimulus(dp, samples, rng)
    approx = dp.evaluate_array(stimulus)[out]
    exact = dp.with_exact_adders().evaluate_array(stimulus)[out]
    width = dp._width_of(out)
    return metrics_from_samples(approx, exact, max(width - 1, 1))


def node_sensitivity(
    dp: Datapath,
    output: Optional[str] = None,
    samples: int = 20_000,
    seed: Optional[int] = None,
) -> Dict[str, float]:
    """Error rate with only one adder approximate at a time.

    Identifies which adder placements dominate the graph's error -- the
    hybrid-design question at datapath scale.
    """
    out = output or (dp.outputs[0] if dp.outputs else None)
    if out is None:
        raise AnalysisError("datapath has no outputs")
    rng = np.random.default_rng(seed)
    stimulus = _random_stimulus(dp, samples, rng)
    exact = dp.with_exact_adders().evaluate_array(stimulus)[out]
    result: Dict[str, float] = {}
    for node in dp.adder_nodes():
        lone = dp.with_exact_adders(except_node=node)
        approx = lone.evaluate_array(stimulus)[out]
        result[node] = float((approx != exact).mean())
    return result


def datapath_cost(dp: Datapath, power_model=None) -> Dict[str, float]:
    """Aggregate model power (nW) and area (GE) of the adder nodes."""
    from .circuits.power import PowerModel

    model = power_model or PowerModel()
    power = 0.0
    area = 0.0
    for name in dp.adder_nodes():
        chain = list(dp._nodes[name].cell)
        power += model.chain_power_nw(chain)
        area += model.chain_area_ge(chain)
    return {"power_nw": power, "area_ge": area}
