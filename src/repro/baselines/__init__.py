"""The analysis baselines the paper compares against.

* :mod:`repro.baselines.inclusion_exclusion` -- the traditional
  IE-based analytical method (paper §3, ref [12]);
* :mod:`repro.baselines.operation_counter` -- Table 3 / Table 8 cost
  accounting plus an instrumented counter for this implementation.
"""

from .inclusion_exclusion import (
    MAX_IE_WIDTH,
    InclusionExclusionReport,
    inclusion_exclusion_error_probability,
    single_stage_error_probabilities,
    stage_error_event_probability,
)
from .operation_counter import (
    TABLE8_EQUAL_PROBABILITIES,
    TABLE8_VARYING_PROBABILITIES,
    OperationCount,
    count_recursion_operations,
    inclusion_exclusion_additions,
    inclusion_exclusion_memory_units,
    inclusion_exclusion_multiplications,
    inclusion_exclusion_terms,
    table3_row,
    table8_memory_units,
)

__all__ = [
    "inclusion_exclusion_error_probability",
    "single_stage_error_probabilities",
    "stage_error_event_probability",
    "InclusionExclusionReport",
    "MAX_IE_WIDTH",
    "inclusion_exclusion_terms",
    "inclusion_exclusion_multiplications",
    "inclusion_exclusion_additions",
    "inclusion_exclusion_memory_units",
    "table3_row",
    "TABLE8_EQUAL_PROBABILITIES",
    "TABLE8_VARYING_PROBABILITIES",
    "table8_memory_units",
    "OperationCount",
    "count_recursion_operations",
]
