"""Inclusion-exclusion analytical baseline (paper §3, the method argued
against).

Prior analytical work (Mazahir et al., IEEE TC 2016 -- paper ref [12])
expresses the word-level error probability of a multi-stage approximate
adder through the principle of inclusion-exclusion over per-stage error
events ``E_i`` ("stage *i* deviates from the accurate adder on its own
inputs"):

``P(Error) = P(U E_i) = sum over non-empty S of (-1)^(|S|+1) P(AND_{i in S} E_i)``

The joint probabilities are themselves chain computations (the events
couple through the carry), so the whole thing costs ``Theta(N * 2^N)``
-- which is the paper's Table 3 point.  We implement it faithfully:

* :func:`stage_error_event_probability` -- ``P(AND_{i in S} E_i)`` by a
  carry-distribution DP with forced erroneous transitions on ``S``;
* :func:`inclusion_exclusion_error_probability` -- the full expansion,
  guarded by a width limit;
* :class:`InclusionExclusionReport` -- result plus term accounting, so
  benches can show the term blow-up next to the numerically identical
  recursive result.

Agreement with :func:`repro.core.recursive.error_probability` is exact
(both compute ``1 - P(no stage errs)``), which the tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, List, Optional, Sequence, Union

from .._compat import warn_deprecated
from ..core.exceptions import AnalysisError
from ..core.recursive import CellSpec, resolve_chain
from ..core.truth_table import ACCURATE, FullAdderTruthTable
from ..core.types import (
    Probability,
    validate_probability,
    validate_probability_vector,
)
from ..obs import metrics as _metrics
from ..obs.tracing import trace_span

#: 2^20 subsets is already ~1M chain DPs; refuse anything wider.
MAX_IE_WIDTH = 20


def _stage_transitions(
    table: FullAdderTruthTable,
    p_a: float,
    p_b: float,
    erroneous: bool,
) -> List[List[float]]:
    """Carry transition matrix ``T[c_in][c_out]`` restricted to rows that
    are erroneous (or to all rows when *erroneous* is False)."""
    t = [[0.0, 0.0], [0.0, 0.0]]
    for a in (0, 1):
        wa = p_a if a else 1.0 - p_a
        for b in (0, 1):
            wb = p_b if b else 1.0 - p_b
            for c in (0, 1):
                outputs = table.evaluate(a, b, c)
                is_err = outputs != ACCURATE.evaluate(a, b, c)
                if erroneous and not is_err:
                    continue
                t[c][outputs[1]] += wa * wb
    return t


def stage_error_event_probability(
    cells: Sequence[FullAdderTruthTable],
    subset: FrozenSet[int],
    p_a: Sequence[float],
    p_b: Sequence[float],
    p_cin: float,
) -> float:
    """``P(AND_{i in subset} E_i)``: every stage in *subset* errs.

    Stages outside the subset are unconstrained (their err/no-err
    branches are both kept), so the DP marginalises over them while the
    carry distribution follows the *approximate* chain.
    """
    dist = [1.0 - p_cin, p_cin]
    for i, table in enumerate(cells):
        if i in subset:
            t = _stage_transitions(table, p_a[i], p_b[i], erroneous=True)
        else:
            t = _stage_transitions(table, p_a[i], p_b[i], erroneous=False)
        dist = [
            dist[0] * t[0][0] + dist[1] * t[1][0],
            dist[0] * t[0][1] + dist[1] * t[1][1],
        ]
    return dist[0] + dist[1]


@dataclass(frozen=True)
class InclusionExclusionReport:
    """Result of the IE expansion with its cost accounting."""

    p_error: float
    width: int
    terms_evaluated: int

    @property
    def p_success(self) -> float:
        """``1 - p_error``."""
        return 1.0 - self.p_error


def inclusion_exclusion_error_probability(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    max_width: int = MAX_IE_WIDTH,
) -> InclusionExclusionReport:
    """Word-level error probability via the full IE expansion.

    .. deprecated::
        Call ``repro.engine.run(cell, width, ..., engine="inclusion-exclusion")``
        instead; the report stays available as ``result.raw``.
    """
    warn_deprecated(
        "baselines.inclusion_exclusion.inclusion_exclusion_error_probability",
        'repro.engine.run(..., engine="inclusion-exclusion")',
    )
    return _inclusion_exclusion_impl(cell, width, p_a, p_b, p_cin, max_width)


def _inclusion_exclusion_impl(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    max_width: int = MAX_IE_WIDTH,
) -> InclusionExclusionReport:
    """The full IE expansion -- numerically identical to the recursive
    method but exponentially more expensive: all ``2^N - 1`` terms."""
    cells = resolve_chain(cell, width)
    n = len(cells)
    if n > max_width:
        raise AnalysisError(
            f"inclusion-exclusion over {n} stages needs 2^{n} - 1 terms; "
            f"refusing beyond {max_width} (use the recursive engine)"
        )
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    pc = float(validate_probability(p_cin, "p_cin"))

    p_union = 0.0
    terms = 0
    indices = range(n)
    with _metrics.timed("baselines.ie.expansion"), \
            trace_span("baselines.ie.expansion", width=n):
        for size in range(1, n + 1):
            sign = 1.0 if size % 2 == 1 else -1.0
            for subset in combinations(indices, size):
                terms += 1
                p_union += sign * stage_error_event_probability(
                    cells, frozenset(subset), pa, pb, pc
                )
    # Live Table 3 cost accounting: the term blow-up the recursive
    # engine avoids, visible in any --metrics-out snapshot.
    if _metrics.is_enabled():
        _metrics.get_registry().counter("baselines.ie.terms").add(terms)
    # Clamp tiny negative drift from catastrophic cancellation -- the
    # very pathology the paper's method avoids.
    p_error = min(max(p_union, 0.0), 1.0)
    return InclusionExclusionReport(p_error=p_error, width=n,
                                    terms_evaluated=terms)


def single_stage_error_probabilities(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> List[float]:
    """Marginal per-stage error probabilities ``P(E_i)``.

    Their plain sum over-counts the word-level error (challenge 2 in
    paper §3); exposed so benches can demonstrate exactly that.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    pc = float(validate_probability(p_cin, "p_cin"))
    return [
        stage_error_event_probability(cells, frozenset({i}), pa, pb, pc)
        for i in range(n)
    ]
