"""Resource accounting: paper Table 3 (IE cost) and Table 8 (proposed).

Two kinds of numbers live here and are kept deliberately separate:

1. **Closed-form cost models** for the traditional inclusion-exclusion
   analysis (Table 3).  Fitting the paper's exactly-printed rows
   (k = 4, 8, 12 and the scientific-notation rows) gives:

   * terms           ``2^k - 1``            (all non-empty stage subsets)
   * multiplications ``k * 2^(k-1) - k``    (size-i subsets need i-1
     extra multiplies on top of a shared prefix; the closed form matches
     every printed row)
   * additions       ``2^k - 2``            (summing the terms)
   * memory units    ``2^(k+1) - 1``

   The paper's Table 3 contains typos for some rows (k >= 20 terms /
   additions are printed with 10^9 instead of 10^6, and the k = 16
   multiplications entry dropped a digit: 524272 -> "52427"); the bench
   prints the corrected values and flags the deltas.

2. **Published Table 8 constants** for the proposed method's per-stage
   hardware resources, carried verbatim, plus an *instrumented* count of
   what this library's own recursion actually performs, so the
   linear-in-N claim is demonstrated on the real implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from ..core.exceptions import AnalysisError
from ..core.matrices import derive_matrices
from ..core.recursive import CellSpec, resolve_chain


def _check_stages(stages: int) -> None:
    if stages < 1:
        raise AnalysisError(f"stage count must be >= 1, got {stages}")


def inclusion_exclusion_terms(stages: int) -> int:
    """Number of IE expansion terms: ``2^k - 1`` non-empty subsets."""
    _check_stages(stages)
    return (1 << stages) - 1


def inclusion_exclusion_multiplications(stages: int) -> int:
    """Multiplications across all IE terms: ``k * 2^(k-1) - k``."""
    _check_stages(stages)
    return stages * (1 << (stages - 1)) - stages


def inclusion_exclusion_additions(stages: int) -> int:
    """Additions to combine the IE terms: ``2^k - 2``."""
    _check_stages(stages)
    return (1 << stages) - 2


def inclusion_exclusion_memory_units(stages: int) -> int:
    """Memory elements for the joint-probability history: ``2^(k+1) - 1``."""
    _check_stages(stages)
    return (1 << (stages + 1)) - 1


def table3_row(stages: int) -> Dict[str, int]:
    """The four Table 3 quantities for one stage count."""
    return {
        "terms": inclusion_exclusion_terms(stages),
        "multiplications": inclusion_exclusion_multiplications(stages),
        "additions": inclusion_exclusion_additions(stages),
        "memory_units": inclusion_exclusion_memory_units(stages),
    }


#: Table 8, verbatim: per-iteration hardware resources of the authors'
#: implementation.  Memory for the varying case is ``width + 1``.
TABLE8_EQUAL_PROBABILITIES: Dict[str, int] = {
    "multipliers": 32,
    "adders": 21,
    "memory_units": 3,
}
TABLE8_VARYING_PROBABILITIES: Dict[str, int] = {
    "multipliers": 48,
    "adders": 21,
}


def table8_memory_units(width: int, per_bit_probabilities: bool) -> int:
    """Table 8's memory row: 3 units (equal) or ``width + 1`` (varying)."""
    _check_stages(width)
    return width + 1 if per_bit_probabilities else 3


@dataclass(frozen=True)
class OperationCount:
    """Instrumented arithmetic-operation tally of one analysis run."""

    multiplications: int
    additions: int
    width: int

    @property
    def total(self) -> int:
        """All counted floating-point operations."""
        return self.multiplications + self.additions

    def per_stage(self) -> "OperationCount":
        """Average per-stage cost (exact when the per-stage work is
        width-independent, which it is for this recursion)."""
        return OperationCount(
            multiplications=self.multiplications // self.width,
            additions=self.additions // self.width,
            width=1,
        )


def count_recursion_operations(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    share_operand_products: bool = False,
) -> OperationCount:
    """Count the multiplies/adds this library's recursion performs.

    Walks Algorithm 1 symbolically (no numerics) and tallies:

    * IPM construction: 4 operand pair-products (1 multiply each, or 0
      when *share_operand_products* models the equal-probability case
      where they are hoisted out of the loop) + 8 pair-times-carry
      multiplies;
    * mask dot products (M, K at inner stages; L at the last): one
      multiply per *non-zero* mask entry and one fewer additions.

    The result is exactly linear in the width -- the Table 8 contrast to
    Table 3's exponential blow-up.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    mults = 0
    adds = 0
    shared_products_ready = False
    for i, table in enumerate(cells):
        if share_operand_products:
            if not shared_products_ready:
                mults += 4
                shared_products_ready = True
        else:
            mults += 4  # qa*qb, qa*pb, pa*qb, pa*pb
        mults += 8  # pair-product x carry-term for each IPM entry
        mkl = derive_matrices(table)
        masks = (mkl.l,) if i == n - 1 else (mkl.m, mkl.k)
        for mask in masks:
            nonzero = sum(mask)
            mults += nonzero
            adds += max(nonzero - 1, 0)
    adds += 1  # final P(Error) = 1 - P(Succ)
    return OperationCount(multiplications=mults, additions=adds, width=n)
