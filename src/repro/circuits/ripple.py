"""Structural N-bit ripple adders composed from synthesised cells.

Instantiates one (possibly different) synthesised full-adder cell per
bit and stitches the carry chain, producing a flat :class:`Netlist`
whose behaviour is cross-validated against the behavioural simulator in
the tests.  This is the multi-bit "Figure 3" structure of the paper as
an actual circuit, and the substrate for the chain-level power/area
estimates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.exceptions import NetlistError
from ..core.recursive import CellSpec, resolve_chain
from .cells import SynthesizedCell, synthesize_cell
from .netlist import Netlist


def build_ripple_netlist(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    name: str = "ripple",
) -> Netlist:
    """Flatten a ripple chain of synthesised cells into one netlist.

    Primary inputs: ``a0..a{N-1}``, ``b0..b{N-1}``, ``cin``.
    Primary outputs: ``s0..s{N-1}``, ``cout``.
    """
    tables = resolve_chain(cell, width)
    n = len(tables)
    synthesized: Dict[str, SynthesizedCell] = {}
    for table in tables:
        if table.name not in synthesized:
            synthesized[table.name] = synthesize_cell(table)

    inputs = [f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)] + ["cin"]
    top = Netlist(name=name, inputs=inputs)

    carry_net = "cin"
    for i, table in enumerate(tables):
        cell_impl = synthesized[table.name]
        mapping = {"a": f"a{i}", "b": f"b{i}", "cin": carry_net}
        # Instantiate: copy gates with stage-local renaming.
        local: Dict[str, str] = dict(mapping)
        for gate in cell_impl.netlist.topological_order():
            out_net = f"u{i}_{gate.output}"
            if gate.output == "sum":
                out_net = f"s{i}"
            elif gate.output == "cout":
                out_net = f"c{i + 1}"
            top.add_gate(
                gate.kind,
                tuple(local[p] for p in gate.inputs),
                out_net,
            )
            local[gate.output] = out_net
        carry_net = f"c{i + 1}"
    for i in range(n):
        top.mark_output(f"s{i}")
    top.add_gate("BUF", (carry_net,), "cout")
    top.mark_output("cout")
    return top


def netlist_add(netlist: Netlist, a: int, b: int, cin: int, width: int) -> int:
    """Drive a ripple netlist with integer operands; return the result."""
    if a >= 1 << width or b >= 1 << width or a < 0 or b < 0:
        raise NetlistError(f"operands must fit in {width} bits")
    stimulus = {"cin": cin}
    for i in range(width):
        stimulus[f"a{i}"] = (a >> i) & 1
        stimulus[f"b{i}"] = (b >> i) & 1
    out = netlist.evaluate_outputs(stimulus)
    result = sum(out[f"s{i}"] << i for i in range(width))
    return result | (out["cout"] << width)


def netlist_add_array(
    netlist: Netlist,
    a: np.ndarray,
    b: np.ndarray,
    cin: Union[int, np.ndarray],
    width: int,
) -> np.ndarray:
    """Vectorised :func:`netlist_add` over operand arrays."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    stimulus: Dict[str, np.ndarray] = {
        "cin": np.broadcast_to(np.asarray(cin, dtype=np.int64), a.shape)
    }
    for i in range(width):
        stimulus[f"a{i}"] = (a >> i) & 1
        stimulus[f"b{i}"] = (b >> i) & 1
    values = netlist.evaluate_array(stimulus)
    result = np.zeros_like(a)
    for i in range(width):
        result |= values[f"s{i}"].astype(np.int64) << i
    return result | (values["cout"].astype(np.int64) << width)


def stage_gate_counts(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
) -> List[int]:
    """Gate count contributed by each stage of the ripple chain."""
    tables = resolve_chain(cell, width)
    cache: Dict[str, int] = {}
    counts = []
    for table in tables:
        if table.name not in cache:
            cache[table.name] = synthesize_cell(table).gate_count()
        counts.append(cache[table.name])
    return counts
