"""Structural carry-save reduction trees (the CSA topology, in gates).

Complements :mod:`repro.multiop` (behavioural) with an actual netlist:
one synthesised full-adder cell per compressor column, Wallace levels
matching :func:`repro.multiop.compressor.wallace_reduce` exactly, and a
final ripple adder.  Bit positions that a shifted word does not populate
are tied off with ``ZERO`` constant drivers (0 GE, 0 delay).

With a netlist in hand, the whole circuits toolbox applies: gate
histograms, activity-based power, static timing, stuck-at faults -- so
CSA-vs-RCA comparisons can be made structurally, not just statistically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.exceptions import ChainLengthError
from ..core.recursive import CellSpec, resolve_cell, resolve_chain
from .cells import SynthesizedCell, synthesize_cell
from .netlist import Netlist


class _TreeBuilder:
    """Shared state while flattening one reduction tree."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.instance = 0
        self._zero: Optional[str] = None

    def zero(self) -> str:
        if self._zero is None:
            self._zero = self.netlist.add_gate("ZERO", (), "const0")
        return self._zero

    def instantiate(
        self,
        cell: SynthesizedCell,
        a: str,
        b: str,
        cin: str,
        tag: str,
    ) -> Tuple[str, str]:
        """Copy one synthesised cell; returns its (sum, cout) nets."""
        prefix = f"{tag}{self.instance}"
        self.instance += 1
        local: Dict[str, str] = {"a": a, "b": b, "cin": cin}
        for gate in cell.netlist.topological_order():
            out_net = f"{prefix}_{gate.output}"
            self.netlist.add_gate(
                gate.kind, tuple(local[p] for p in gate.inputs), out_net
            )
            local[gate.output] = out_net
        return local["sum"], local["cout"]


def build_csa_tree_netlist(
    operand_count: int,
    width: int,
    compress_cell: CellSpec = "accurate",
    final_adder: Union[CellSpec, Sequence[CellSpec], None] = None,
    name: str = "csa_tree",
) -> Netlist:
    """Flatten a full multi-operand adder: CSA levels + final ripple.

    Primary inputs: ``op{k}_{i}`` for operand ``k`` bit ``i``.
    Primary outputs: ``out0 .. out{W}`` where ``W`` is the final adder
    width (``out{W}`` is its carry-out).

    Grouping and level order replicate
    :func:`repro.multiop.compressor.wallace_reduce`, so the netlist is
    bit-identical to the behavioural model (tested exhaustively).
    """
    if operand_count < 2:
        raise ChainLengthError("need at least two operands", operand_count)
    if width < 1:
        raise ChainLengthError(f"width must be >= 1, got {width}", width)
    compress_impl = synthesize_cell(resolve_cell(compress_cell))

    inputs = [
        f"op{k}_{i}" for k in range(operand_count) for i in range(width)
    ]
    netlist = Netlist(name=name, inputs=inputs)
    builder = _TreeBuilder(netlist)

    # Each word is {bit position: net}; missing positions read as 0.
    words: List[Dict[int, str]] = [
        {i: f"op{k}_{i}" for i in range(width)} for k in range(operand_count)
    ]
    current_width = width
    while len(words) > 2:
        next_words: List[Dict[int, str]] = []
        for j in range(0, len(words) - 2, 3):
            x, y, z = words[j], words[j + 1], words[j + 2]
            sum_word: Dict[int, str] = {}
            carry_word: Dict[int, str] = {}
            for pos in range(current_width):
                nets = [
                    w.get(pos, None) for w in (x, y, z)
                ]
                nets = [n if n is not None else builder.zero() for n in nets]
                s_net, c_net = builder.instantiate(
                    compress_impl, nets[0], nets[1], nets[2], "u"
                )
                sum_word[pos] = s_net
                carry_word[pos + 1] = c_net
            next_words.extend([sum_word, carry_word])
        if len(words) % 3:
            next_words.extend(words[len(words) - len(words) % 3:])
        words = next_words
        current_width += 1

    # Final carry-propagate addition over [0, current_width).
    final_cells = resolve_chain(
        final_adder if final_adder is not None else "accurate", current_width
    )
    final_impls = {
        table.name: synthesize_cell(table) for table in set(final_cells)
    }
    if len(words) == 1:
        words.append({})
    w0, w1 = words
    carry_net = builder.zero()
    for pos in range(current_width):
        a_net = w0.get(pos) or builder.zero()
        b_net = w1.get(pos) or builder.zero()
        impl = final_impls[final_cells[pos].name]
        s_net, carry_net = builder.instantiate(
            impl, a_net, b_net, carry_net, "f"
        )
        netlist.add_gate("BUF", (s_net,), f"out{pos}")
        netlist.mark_output(f"out{pos}")
    netlist.add_gate("BUF", (carry_net,), f"out{current_width}")
    netlist.mark_output(f"out{current_width}")
    return netlist


def csa_netlist_add(
    netlist: Netlist,
    operands: Sequence[int],
    width: int,
) -> int:
    """Drive a CSA-tree netlist with integer operands."""
    stimulus: Dict[str, int] = {}
    for k, value in enumerate(operands):
        if value < 0 or value >= 1 << width:
            raise ChainLengthError(
                f"operand {value} must fit in {width} bits"
            )
        for i in range(width):
            stimulus[f"op{k}_{i}"] = (value >> i) & 1
    missing = set(netlist.inputs) - set(stimulus)
    if missing:
        raise ChainLengthError(
            f"netlist expects {len(netlist.inputs) // width} operands, "
            f"got {len(operands)}"
        )
    out = netlist.evaluate_outputs(stimulus)
    result = 0
    for net, value in out.items():
        result |= value << int(net[3:])
    return result


def csa_vs_rca_report(
    operand_count: int,
    width: int,
    compress_cell: CellSpec = "accurate",
) -> Dict[str, Dict[str, float]]:
    """Structural comparison: CSA tree vs a cascade of ripple adders.

    Both sum *operand_count* words of *width* bits.  The RCA cascade
    adds operands one at a time with growing width (the low-area serial
    architecture); the CSA tree is the parallel one.  Returns gate
    count, depth and critical-path delay for each.
    """
    from .ripple import build_ripple_netlist
    from .timing import critical_path

    tree = build_csa_tree_netlist(operand_count, width, compress_cell)

    # serial cascade: (count - 1) ripple adders of growing width; model
    # its cost as the sum of parts and its delay as their sum (worst
    # case: each addition waits for the previous).
    total_gates = 0
    total_delay = 0.0
    depth = 0
    acc_width = width
    for _ in range(operand_count - 1):
        stage = build_ripple_netlist(compress_cell, acc_width)
        total_gates += stage.num_gates()
        total_delay += critical_path(stage).delay
        depth += stage.depth()
        acc_width += 1
    return {
        "csa_tree": {
            "gates": float(tree.num_gates()),
            "depth": float(tree.depth()),
            "delay": critical_path(tree).delay,
        },
        "rca_cascade": {
            "gates": float(total_gates),
            "depth": float(depth),
            "delay": total_delay,
        },
    }
