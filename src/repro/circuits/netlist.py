"""Gate-level netlist IR with topological evaluation.

A minimal but real structural representation: named nets, primitive
gates (NOT/AND/OR/NAND/NOR/XOR/XNOR/BUF), validation (missing drivers,
multiple drivers, combinational cycles) and bit-true evaluation for both
scalar and NumPy-array stimuli.  Used to materialise the LPAA cells
(:mod:`repro.circuits.cells`) and multi-bit ripple adders
(:mod:`repro.circuits.ripple`), and consumed by the switching-activity
and power models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..core.exceptions import NetlistError


def _fold(ufunc: Callable, xs: Tuple) -> np.ndarray:
    """Reduce with pairwise ufunc application so mixed scalar/array
    operands broadcast (``ufunc.reduce`` would require a homogeneous
    stack and chokes when a ZERO/ONE scalar meets array stimuli)."""
    out = xs[0]
    for x in xs[1:]:
        out = ufunc(out, x)
    return out


#: Gate kind -> (min inputs, max inputs, vectorised evaluator).
#: ZERO/ONE are zero-input constant drivers (tie-off cells); they
#: evaluate to NumPy scalars, which broadcast against any stimulus shape.
_GATE_DEFS: Dict[str, Tuple[int, int, Callable[..., np.ndarray]]] = {
    "ZERO": (0, 0, lambda: np.int64(0)),
    "ONE": (0, 0, lambda: np.int64(1)),
    "BUF": (1, 1, lambda a: a),
    "NOT": (1, 1, lambda a: 1 - a),
    "AND": (2, 8, lambda *xs: _fold(np.bitwise_and, xs)),
    "OR": (2, 8, lambda *xs: _fold(np.bitwise_or, xs)),
    "NAND": (2, 8, lambda *xs: 1 - _fold(np.bitwise_and, xs)),
    "NOR": (2, 8, lambda *xs: 1 - _fold(np.bitwise_or, xs)),
    "XOR": (2, 8, lambda *xs: _fold(np.bitwise_xor, xs)),
    "XNOR": (2, 8, lambda *xs: 1 - _fold(np.bitwise_xor, xs)),
}

GATE_KINDS = tuple(sorted(_GATE_DEFS))


@dataclass(frozen=True)
class Gate:
    """One primitive gate instance."""

    kind: str
    inputs: Tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        if self.kind not in _GATE_DEFS:
            raise NetlistError(
                f"unknown gate kind {self.kind!r}; known: {GATE_KINDS}"
            )
        lo, hi, _ = _GATE_DEFS[self.kind]
        if not lo <= len(self.inputs) <= hi:
            raise NetlistError(
                f"{self.kind} takes {lo}..{hi} inputs, got {len(self.inputs)}"
            )
        if self.output in self.inputs:
            raise NetlistError(
                f"gate output {self.output!r} feeds back into its own inputs"
            )


class Netlist:
    """A combinational netlist: primary inputs, gates, primary outputs."""

    def __init__(self, name: str, inputs: Sequence[str]):
        if len(set(inputs)) != len(inputs):
            raise NetlistError(f"duplicate primary inputs in {list(inputs)}")
        self.name = str(name)
        self._inputs: Tuple[str, ...] = tuple(inputs)
        self._outputs: List[str] = []
        self._gates: List[Gate] = []
        self._drivers: Dict[str, Gate] = {}
        self._order: List[Gate] | None = None  # cached topological order

    # -- construction -------------------------------------------------------------

    def add_gate(self, kind: str, inputs: Sequence[str], output: str) -> str:
        """Add a gate; returns the output net name for chaining."""
        gate = Gate(kind=kind, inputs=tuple(inputs), output=output)
        if output in self._drivers or output in self._inputs:
            raise NetlistError(f"net {output!r} already driven")
        self._gates.append(gate)
        self._drivers[output] = gate
        self._order = None
        return output

    def mark_output(self, net: str) -> None:
        """Declare *net* a primary output (must exist by evaluation time)."""
        if net in self._outputs:
            raise NetlistError(f"output {net!r} declared twice")
        self._outputs.append(net)

    # -- introspection ------------------------------------------------------------

    @property
    def inputs(self) -> Tuple[str, ...]:
        """Primary input nets, in declaration order."""
        return self._inputs

    @property
    def outputs(self) -> Tuple[str, ...]:
        """Primary output nets, in declaration order."""
        return tuple(self._outputs)

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """All gate instances."""
        return tuple(self._gates)

    def nets(self) -> List[str]:
        """Every net name: inputs first, then gate outputs in topo order."""
        return list(self._inputs) + [g.output for g in self.topological_order()]

    def gate_histogram(self) -> Dict[str, int]:
        """``{kind: count}`` over all gates."""
        histogram: Dict[str, int] = {}
        for gate in self._gates:
            histogram[gate.kind] = histogram.get(gate.kind, 0) + 1
        return histogram

    def num_gates(self) -> int:
        """Total primitive gate count."""
        return len(self._gates)

    def depth(self) -> int:
        """Logic depth: longest input-to-output gate chain."""
        level: Dict[str, int] = {net: 0 for net in self._inputs}
        deepest = 0
        for gate in self.topological_order():
            if gate.inputs:
                lvl = 1 + max(level[i] for i in gate.inputs)
            else:
                lvl = 0  # constant tie-offs sit at the input rank
            level[gate.output] = lvl
            deepest = max(deepest, lvl)
        return deepest

    # -- validation / ordering ------------------------------------------------------

    def topological_order(self) -> List[Gate]:
        """Gates in dependency order; raises on cycles or missing drivers."""
        if self._order is not None:
            return self._order
        ready = set(self._inputs)
        remaining = list(self._gates)
        order: List[Gate] = []
        while remaining:
            progress = []
            stuck = []
            for gate in remaining:
                if all(i in ready for i in gate.inputs):
                    progress.append(gate)
                else:
                    stuck.append(gate)
            if not progress:
                undriven = sorted(
                    {
                        i
                        for g in stuck
                        for i in g.inputs
                        if i not in ready and i not in self._drivers
                    }
                )
                if undriven:
                    raise NetlistError(
                        f"{self.name}: nets {undriven} have no driver"
                    )
                raise NetlistError(
                    f"{self.name}: combinational cycle among "
                    f"{sorted(g.output for g in stuck)}"
                )
            for gate in progress:
                order.append(gate)
                ready.add(gate.output)
            remaining = stuck
        for net in self._outputs:
            if net not in ready:
                raise NetlistError(f"{self.name}: output {net!r} undriven")
        self._order = order
        return order

    # -- evaluation -----------------------------------------------------------------

    def evaluate(
        self,
        stimulus: Mapping[str, int],
        overrides: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, int]:
        """Evaluate all nets for one scalar input assignment.

        Returns ``{net: 0/1}`` for every net in the design.  *overrides*
        pins nets to constants (stuck-at fault injection).
        """
        values = self.evaluate_array(
            {k: np.asarray(v) for k, v in stimulus.items()},
            overrides=overrides,
        )
        return {net: int(arr) for net, arr in values.items()}

    def evaluate_array(
        self,
        stimulus: Mapping[str, np.ndarray],
        overrides: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, np.ndarray]:
        """Vectorised evaluation: each input maps to a 0/1 array.

        *overrides* maps net names to constant 0/1 values that replace
        whatever the net would carry -- the hook
        :mod:`repro.circuits.faults` uses for stuck-at injection.
        """
        overrides = dict(overrides or {})
        for net, value in overrides.items():
            if value not in (0, 1):
                raise NetlistError(f"override for {net!r} must be 0/1")
        values: Dict[str, np.ndarray] = {}
        for net in self._inputs:
            if net not in stimulus:
                raise NetlistError(f"missing stimulus for input {net!r}")
            arr = np.asarray(stimulus[net])
            if ((arr != 0) & (arr != 1)).any():
                raise NetlistError(f"stimulus for {net!r} must be 0/1")
            if net in overrides:
                arr = np.broadcast_to(
                    np.asarray(overrides[net], dtype=arr.dtype), arr.shape
                )
            values[net] = arr
        for gate in self.topological_order():
            _, _, fn = _GATE_DEFS[gate.kind]
            out = fn(*(values[i] for i in gate.inputs))
            if gate.output in overrides:
                out = np.broadcast_to(
                    np.asarray(overrides[gate.output], dtype=out.dtype),
                    out.shape,
                )
            values[gate.output] = out
        return values

    def evaluate_outputs(self, stimulus: Mapping[str, int]) -> Dict[str, int]:
        """Like :meth:`evaluate` but restricted to the primary outputs."""
        values = self.evaluate(stimulus)
        return {net: values[net] for net in self._outputs}

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, inputs={len(self._inputs)}, "
            f"gates={len(self._gates)}, outputs={len(self._outputs)})"
        )


def fresh_namer(prefix: str) -> Callable[[], str]:
    """A monotonic net-name generator (``prefix0``, ``prefix1``, ...)."""
    counter = iter(range(10 ** 9))

    def next_name() -> str:
        return f"{prefix}{next(counter)}"

    return next_name
