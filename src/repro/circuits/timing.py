"""Static timing analysis on gate-level netlists.

The low-*latency* half of the paper's taxonomy (GeAr, §2.2) trades error
for delay, so a delay model is needed to compare it with the low-power
cells on equal footing.  This module provides:

* per-gate-kind delay weights (unit-delay by default, overridable);
* :func:`arrival_times` / :func:`critical_path` -- longest-path STA over
  a :class:`repro.circuits.netlist.Netlist`, with the actual path nets;
* :func:`ripple_delay` -- delay of an N-bit chain of synthesised cells
  (delay grows linearly with N: the problem GeAr attacks);
* :func:`gear_delay_model` -- GeAr's delay: one L-bit sub-adder chain
  instead of N bits, ``L <= N`` (the paper's latency claim), using the
  same cell timing numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.exceptions import AnalysisError
from ..core.recursive import CellSpec
from ..gear.config import GeArConfig
from .cells import synthesize_cell
from .netlist import Netlist
from .ripple import build_ripple_netlist

#: Default gate delays in arbitrary units (inverter = 1).
DEFAULT_GATE_DELAYS: Dict[str, float] = {
    "ZERO": 0.0,   # constant tie-offs
    "ONE": 0.0,
    "BUF": 0.0,    # alias/wiring in this flow
    "NOT": 1.0,
    "NAND": 1.0,
    "NOR": 1.0,
    "AND": 1.5,    # NAND + inverter
    "OR": 1.5,
    "XOR": 2.5,
    "XNOR": 2.5,
}


def _delay_of(kind: str, delays: Mapping[str, float]) -> float:
    try:
        return float(delays[kind])
    except KeyError:
        raise AnalysisError(f"no delay defined for gate kind {kind!r}") from None


def arrival_times(
    netlist: Netlist,
    gate_delays: Optional[Mapping[str, float]] = None,
    input_arrivals: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Longest-path arrival time of every net.

    Primary inputs arrive at 0 unless *input_arrivals* overrides them.
    """
    delays = gate_delays or DEFAULT_GATE_DELAYS
    arrivals: Dict[str, float] = {
        net: float((input_arrivals or {}).get(net, 0.0))
        for net in netlist.inputs
    }
    for gate in netlist.topological_order():
        base = max((arrivals[i] for i in gate.inputs), default=0.0)
        arrivals[gate.output] = base + _delay_of(gate.kind, delays)
    return arrivals


@dataclass(frozen=True)
class CriticalPath:
    """Result of a longest-path query."""

    delay: float
    endpoint: str
    nets: Tuple[str, ...]   # input -> ... -> endpoint


def critical_path(
    netlist: Netlist,
    gate_delays: Optional[Mapping[str, float]] = None,
) -> CriticalPath:
    """The slowest input-to-output path and its delay."""
    delays = gate_delays or DEFAULT_GATE_DELAYS
    arrivals = arrival_times(netlist, delays)
    outputs = netlist.outputs
    if not outputs:
        raise AnalysisError(f"{netlist.name}: no primary outputs")
    endpoint = max(outputs, key=lambda net: arrivals[net])

    # Trace back: at each gate pick the latest-arriving input.
    drivers = {gate.output: gate for gate in netlist.gates}
    path: List[str] = [endpoint]
    current = endpoint
    while current in drivers:
        gate = drivers[current]
        if not gate.inputs:
            break  # constant driver: the path starts here
        current = max(gate.inputs, key=lambda net: arrivals[net])
        path.append(current)
    path.reverse()
    return CriticalPath(
        delay=arrivals[endpoint], endpoint=endpoint, nets=tuple(path)
    )


def cell_delay(
    cell: CellSpec,
    gate_delays: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Worst input-to-output delays of one synthesised cell.

    Returns ``{"sum": ..., "cout": ..., "cin_to_cout": ...}`` --
    ``cin_to_cout`` is the increment each extra ripple stage adds to the
    carry chain.
    """
    delays = gate_delays or DEFAULT_GATE_DELAYS
    impl = synthesize_cell(cell)
    arrivals = arrival_times(impl.netlist, delays)
    only_cin = arrival_times(
        impl.netlist, delays,
        input_arrivals={"a": float("-inf"), "b": float("-inf"), "cin": 0.0},
    )
    cin_to_cout = only_cin["cout"]
    if cin_to_cout == float("-inf"):
        cin_to_cout = 0.0  # carry does not depend on cin (e.g. LPAA 5)
    return {
        "sum": arrivals["sum"],
        "cout": arrivals["cout"],
        "cin_to_cout": cin_to_cout,
    }


def ripple_delay(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    gate_delays: Optional[Mapping[str, float]] = None,
) -> float:
    """Critical-path delay of an N-bit structural ripple chain."""
    netlist = build_ripple_netlist(cell, width)
    return critical_path(netlist, gate_delays).delay


def gear_delay_model(
    config: GeArConfig,
    cell: CellSpec = "accurate",
    gate_delays: Optional[Mapping[str, float]] = None,
) -> float:
    """GeAr delay: all sub-adders run in parallel, so the critical path
    is a single L-bit ripple chain of the given cell (paper §2.2: "GeAr
    limits the carry propagation delay to L-bit sub-adders instead of
    N-bits")."""
    return ripple_delay(cell, config.l, gate_delays)


def latency_error_tradeoff(
    n: int,
    cell: CellSpec = "accurate",
    gate_delays: Optional[Mapping[str, float]] = None,
) -> List[Dict[str, float]]:
    """Delay vs error for every valid GeAr(N, R, P) plus the exact RCA.

    The rows the LLAA literature plots: each configuration's critical
    path (sub-adder length L) against its exact error probability.
    """
    from .. import engine as _engine

    rows: List[Dict[str, float]] = []
    for config in GeArConfig.valid_configs(n):
        request = _engine.AnalysisRequest.for_gear(config)
        rows.append(
            {
                "r": config.r,
                "p": config.p,
                "l": config.l,
                "subadders": config.num_subadders,
                "delay": gear_delay_model(config, cell, gate_delays),
                "p_error": _engine.run(request).p_error,
            }
        )
    rows.sort(key=lambda row: (row["delay"], row["p_error"]))
    return rows
