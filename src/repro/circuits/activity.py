"""Signal probability and switching activity on gate-level netlists.

Dynamic power of CMOS logic is proportional to the switching activity of
its nets; under the standard temporal-independence model a net with
one-probability ``p`` toggles with activity ``alpha = 2 p (1 - p)``.
Two estimators for the one-probabilities:

* :func:`propagate_probabilities` -- fast structural propagation
  assuming spatially independent gate inputs (the classic first-order
  model; exact on fanout-free trees, approximate under reconvergence);
* :func:`exact_probabilities` -- exact by weighted enumeration over the
  primary inputs (exponential; guarded), used to quantify the
  independence error in tests and benches.

Both take per-input one-probabilities, so the adder-chain power model
can feed each stage its true carry distribution from
:func:`repro.core.sum_analysis.carry_profile`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from ..core.exceptions import AnalysisError, NetlistError
from .netlist import Netlist

#: Enumerating more than this many primary inputs is refused.
MAX_EXACT_INPUTS = 20


def _gate_probability(kind: str, probs: Sequence[float]) -> float:
    """P(output = 1) of one gate under input independence."""
    if kind == "ZERO":
        return 0.0
    if kind == "ONE":
        return 1.0
    if kind == "BUF":
        return probs[0]
    if kind == "NOT":
        return 1.0 - probs[0]
    if kind in ("AND", "NAND"):
        p = 1.0
        for q in probs:
            p *= q
        return 1.0 - p if kind == "NAND" else p
    if kind in ("OR", "NOR"):
        p = 1.0
        for q in probs:
            p *= 1.0 - q
        return p if kind == "NOR" else 1.0 - p
    if kind in ("XOR", "XNOR"):
        p = probs[0]
        for q in probs[1:]:
            p = p * (1.0 - q) + q * (1.0 - p)
        return 1.0 - p if kind == "XNOR" else p
    raise NetlistError(f"unknown gate kind {kind!r}")


def propagate_probabilities(
    netlist: Netlist,
    input_probabilities: Mapping[str, float],
) -> Dict[str, float]:
    """One-probability of every net via independent-signal propagation."""
    probs: Dict[str, float] = {}
    for net in netlist.inputs:
        if net not in input_probabilities:
            raise AnalysisError(f"missing probability for input {net!r}")
        p = float(input_probabilities[net])
        if not 0.0 <= p <= 1.0:
            raise AnalysisError(f"probability for {net!r} out of range: {p}")
        probs[net] = p
    for gate in netlist.topological_order():
        probs[gate.output] = _gate_probability(
            gate.kind, [probs[i] for i in gate.inputs]
        )
    return probs


def exact_probabilities(
    netlist: Netlist,
    input_probabilities: Mapping[str, float],
) -> Dict[str, float]:
    """Exact net one-probabilities by weighted input enumeration."""
    inputs = netlist.inputs
    if len(inputs) > MAX_EXACT_INPUTS:
        raise AnalysisError(
            f"exact enumeration over {len(inputs)} inputs refused "
            f"(> {MAX_EXACT_INPUTS})"
        )
    n = len(inputs)
    assignments = np.arange(1 << n)
    stimulus = {
        net: (assignments >> i) & 1 for i, net in enumerate(inputs)
    }
    values = netlist.evaluate_array(stimulus)
    weights = np.ones(1 << n)
    for i, net in enumerate(inputs):
        p = float(input_probabilities[net])
        bit = (assignments >> i) & 1
        weights *= np.where(bit == 1, p, 1.0 - p)
    return {
        net: float((values[net] * weights).sum()) for net in values
    }


def switching_activity(probabilities: Mapping[str, float]) -> Dict[str, float]:
    """Per-net toggle activity ``alpha = 2 p (1 - p)``."""
    return {net: 2.0 * p * (1.0 - p) for net, p in probabilities.items()}


def total_activity(
    netlist: Netlist,
    input_probabilities: Mapping[str, float],
    exact: bool = False,
) -> float:
    """Sum of switching activity over all *gate output* nets.

    Primary inputs are excluded: their toggling is charged to the
    upstream producer, matching how cell-level power is usually quoted.
    """
    estimator = exact_probabilities if exact else propagate_probabilities
    probs = estimator(netlist, input_probabilities)
    alphas = switching_activity(probs)
    input_set = set(netlist.inputs)
    return sum(a for net, a in alphas.items() if net not in input_set)


def measured_activity(
    netlist: Netlist,
    stimulus: Mapping[str, np.ndarray],
) -> Dict[str, float]:
    """Empirical toggle rates from a concrete stimulus sequence.

    Each input array is a time series of 0/1 values; the toggle rate of
    a net is the fraction of adjacent cycles in which it changes.
    """
    values = netlist.evaluate_array(
        {k: np.asarray(v) for k, v in stimulus.items()}
    )
    rates: Dict[str, float] = {}
    for net, series in values.items():
        if series.ndim != 1 or series.size < 2:
            raise AnalysisError(
                "measured_activity needs 1-D stimulus series of length >= 2"
            )
        rates[net] = float((series[1:] != series[:-1]).mean())
    return rates
