"""Gate-level substrate: synthesis, netlists, activity and power models.

Stands in for the transistor-level cell designs of the paper's sources
([7], [1]): every LPAA cell is re-synthesised from its Table 1 truth
table (Quine-McCluskey), verified, composed into multi-bit ripple
netlists, and costed with an activity-based power model calibrated to
the published Table 2 numbers.
"""

from .activity import (
    MAX_EXACT_INPUTS,
    exact_probabilities,
    measured_activity,
    propagate_probabilities,
    switching_activity,
    total_activity,
)
from .cells import (
    INPUT_NETS,
    OUTPUT_NETS,
    SynthesizedCell,
    synthesis_report,
    synthesize_cell,
)
from .netlist import GATE_KINDS, Gate, Netlist, fresh_namer
from .power import CellCost, PowerModel, gate_area_ge, published_characteristics
from .qm import (
    Implicant,
    cover_cost,
    evaluate_cover,
    minimize,
    minimum_cover,
    prime_implicants,
)
from .ripple import (
    build_ripple_netlist,
    netlist_add,
    netlist_add_array,
    stage_gate_counts,
)
from .csa import build_csa_tree_netlist, csa_netlist_add, csa_vs_rca_report
from .vos import (
    VoltageModel,
    evaluate_with_timing,
    failing_outputs,
    vos_error_rate,
    vos_quality_energy_sweep,
)
from .faults import (
    FaultImpact,
    StuckAtFault,
    enumerate_faults,
    exhaustive_test_set,
    fault_coverage,
    fault_detectability,
    faulted_truth_table,
)
from .timing import (
    DEFAULT_GATE_DELAYS,
    CriticalPath,
    arrival_times,
    cell_delay,
    critical_path,
    gear_delay_model,
    latency_error_tradeoff,
    ripple_delay,
)

__all__ = [
    "Implicant",
    "prime_implicants",
    "minimum_cover",
    "minimize",
    "evaluate_cover",
    "cover_cost",
    "Gate",
    "Netlist",
    "GATE_KINDS",
    "fresh_namer",
    "SynthesizedCell",
    "synthesize_cell",
    "synthesis_report",
    "INPUT_NETS",
    "OUTPUT_NETS",
    "build_ripple_netlist",
    "netlist_add",
    "netlist_add_array",
    "stage_gate_counts",
    "propagate_probabilities",
    "exact_probabilities",
    "switching_activity",
    "total_activity",
    "measured_activity",
    "MAX_EXACT_INPUTS",
    "PowerModel",
    "CellCost",
    "gate_area_ge",
    "published_characteristics",
    "DEFAULT_GATE_DELAYS",
    "CriticalPath",
    "arrival_times",
    "critical_path",
    "cell_delay",
    "ripple_delay",
    "gear_delay_model",
    "latency_error_tradeoff",
    "StuckAtFault",
    "FaultImpact",
    "enumerate_faults",
    "faulted_truth_table",
    "fault_detectability",
    "fault_coverage",
    "exhaustive_test_set",
    "build_csa_tree_netlist",
    "csa_netlist_add",
    "csa_vs_rca_report",
    "VoltageModel",
    "failing_outputs",
    "evaluate_with_timing",
    "vos_error_rate",
    "vos_quality_energy_sweep",
]
