"""Exact two-level logic minimisation (Quine-McCluskey + Petrick).

The paper's LPAA cells are defined at transistor level in their source
works; this reproduction re-synthesises each cell from its truth table.
A small, exact Quine-McCluskey implementation is entirely adequate at
full-adder scale (3 inputs) and doubles as a reusable EDA utility for
user-defined cells:

* :func:`prime_implicants` -- iterative combination of implicants;
* :func:`minimum_cover` -- exact minimum cover via Petrick's method;
* :func:`minimize` -- the end-to-end SOP minimiser.

An :class:`Implicant` is a cube over ``n`` variables encoded as
``(value, mask)`` -- bit *i* of *mask* set means variable *i* is a
don't-care in the cube.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, List, Sequence, Set, Tuple

from ..core.exceptions import SynthesisError


@dataclass(frozen=True, order=True)
class Implicant:
    """A product term (cube): ``value`` on the non-masked positions.

    Variable *i* (bit *i*) appears complemented when ``value`` bit is 0,
    uncomplemented when 1, and not at all when masked.
    """

    value: int
    mask: int

    def covers(self, minterm: int) -> bool:
        """``True`` when *minterm* lies inside this cube."""
        return (minterm & ~self.mask) == (self.value & ~self.mask)

    def literals(self, n_vars: int) -> List[Tuple[int, bool]]:
        """The cube's literals as ``(variable index, complemented)``."""
        return [
            (i, not (self.value >> i) & 1)
            for i in range(n_vars)
            if not (self.mask >> i) & 1
        ]

    def num_literals(self, n_vars: int) -> int:
        """Number of literals (cost measure for minimisation)."""
        return n_vars - bin(self.mask & ((1 << n_vars) - 1)).count("1")

    def expand(self, n_vars: int) -> List[int]:
        """All minterms covered by the cube."""
        free = [i for i in range(n_vars) if (self.mask >> i) & 1]
        minterms = []
        for choice in range(1 << len(free)):
            m = self.value & ~self.mask
            for j, var in enumerate(free):
                if (choice >> j) & 1:
                    m |= 1 << var
            minterms.append(m)
        return sorted(minterms)

    def to_string(self, names: Sequence[str]) -> str:
        """Readable product term, e.g. ``"a & ~b"``; ``"1"`` if empty."""
        parts = [
            ("~" if complemented else "") + names[i]
            for i, complemented in self.literals(len(names))
        ]
        return " & ".join(parts) if parts else "1"


def _try_combine(a: Implicant, b: Implicant) -> Implicant | None:
    """Combine two cubes differing in exactly one cared bit, else None."""
    if a.mask != b.mask:
        return None
    diff = (a.value ^ b.value) & ~a.mask
    if diff == 0 or diff & (diff - 1):
        return None  # identical, or differ in more than one bit
    return Implicant(value=a.value & ~diff, mask=a.mask | diff)


def prime_implicants(minterms: Sequence[int], n_vars: int) -> List[Implicant]:
    """All prime implicants of the function given by its *minterms*."""
    limit = 1 << n_vars
    unique = sorted(set(minterms))
    if any(m < 0 or m >= limit for m in unique):
        raise SynthesisError(
            f"minterms must lie in [0, {limit}) for {n_vars} variables"
        )
    current: Set[Implicant] = {Implicant(value=m, mask=0) for m in unique}
    primes: Set[Implicant] = set()
    while current:
        combined_sources: Set[Implicant] = set()
        produced: Set[Implicant] = set()
        items = sorted(current)
        for a, b in combinations(items, 2):
            merged = _try_combine(a, b)
            if merged is not None:
                produced.add(merged)
                combined_sources.add(a)
                combined_sources.add(b)
        primes.update(current - combined_sources)
        current = produced
    return sorted(primes)


def _petrick_cover(
    primes: Sequence[Implicant],
    minterms: Sequence[int],
    n_vars: int,
) -> List[Implicant]:
    """Exact minimum cover by Petrick's method (product-of-sums expansion).

    The sums are kept as frozensets of prime indices; multiplying two
    sums unions the index sets, with absorption pruning to keep the
    product small.  At full-adder scale this is instantaneous.
    """
    sums: List[FrozenSet[int]] = []
    for m in minterms:
        covering = frozenset(
            i for i, p in enumerate(primes) if p.covers(m)
        )
        if not covering:
            raise SynthesisError(f"minterm {m} not covered by any prime")
        sums.append(covering)

    products: Set[FrozenSet[int]] = {frozenset()}
    for clause in sums:
        expanded: Set[FrozenSet[int]] = set()
        for product in products:
            for idx in clause:
                expanded.add(product | {idx})
        # absorption: drop supersets of other products
        pruned: Set[FrozenSet[int]] = set()
        for candidate in sorted(expanded, key=len):
            if not any(kept < candidate for kept in pruned):
                pruned.add(candidate)
        products = pruned

    def cost(selection: FrozenSet[int]) -> Tuple[int, int]:
        return (
            len(selection),
            sum(primes[i].num_literals(n_vars) for i in selection),
        )

    best = min(products, key=cost)
    return [primes[i] for i in sorted(best)]


def minimum_cover(
    primes: Sequence[Implicant],
    minterms: Sequence[int],
    n_vars: int,
) -> List[Implicant]:
    """Exact minimum subset of *primes* covering all *minterms*."""
    return _petrick_cover(primes, sorted(set(minterms)), n_vars)


def minimize(minterms: Sequence[int], n_vars: int) -> List[Implicant]:
    """Minimum sum-of-products cover of the given *minterms*.

    Returns an empty list for the constant-0 function; a single
    fully-masked implicant for constant-1.

    >>> [i.to_string("ab") for i in minimize([1, 3], 2)]
    ['a']
    """
    unique = sorted(set(minterms))
    if not unique:
        return []
    if len(unique) == 1 << n_vars:
        return [Implicant(value=0, mask=(1 << n_vars) - 1)]
    primes = prime_implicants(unique, n_vars)
    return _petrick_cover(primes, unique, n_vars)


def evaluate_cover(cover: Sequence[Implicant], assignment: int) -> int:
    """Evaluate a SOP cover on a packed input *assignment* (bit i = var i)."""
    return int(any(term.covers(assignment) for term in cover))


def cover_cost(cover: Sequence[Implicant], n_vars: int) -> Tuple[int, int]:
    """``(product terms, total literals)`` of a cover -- the classic
    two-level cost pair."""
    return len(cover), sum(term.num_literals(n_vars) for term in cover)
