"""Gate-level synthesis of full-adder cells from their truth tables.

Each LPAA cell is re-synthesised as a two-level AND-OR netlist (shared
input inverters, one AND per product term, an OR per output) from the
minimum SOP covers produced by :mod:`repro.circuits.qm`.  The synthesis
is verified row-by-row against the source truth table, so the structural
view provably implements paper Table 1.

The input variable order matches the library convention: variable 0 is
``cin``, variable 1 is ``b``, variable 2 is ``a`` -- i.e. a truth-table
row index *is* the packed input assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.exceptions import SynthesisError
from ..core.recursive import CellSpec, resolve_cell
from ..core.truth_table import FullAdderTruthTable
from .netlist import Netlist
from .qm import Implicant, cover_cost, minimize

#: Input net names ordered so that bit i of a row index is INPUT_NETS[i].
INPUT_NETS: Tuple[str, str, str] = ("cin", "b", "a")
OUTPUT_NETS: Tuple[str, str] = ("sum", "cout")


@dataclass(frozen=True)
class SynthesizedCell:
    """A gate-level full-adder cell with its source truth table."""

    table: FullAdderTruthTable
    netlist: Netlist
    sum_cover: Tuple[Implicant, ...]
    cout_cover: Tuple[Implicant, ...]

    def evaluate(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        """Structural evaluation: ``(sum, cout)``."""
        out = self.netlist.evaluate_outputs({"a": a, "b": b, "cin": cin})
        return out["sum"], out["cout"]

    def gate_count(self) -> int:
        """Total primitive gates in the cell."""
        return self.netlist.num_gates()

    def literal_cost(self) -> int:
        """Two-level literal count across both outputs (area proxy)."""
        _, lits_s = cover_cost(self.sum_cover, 3)
        _, lits_c = cover_cost(self.cout_cover, 3)
        return lits_s + lits_c

    def depth(self) -> int:
        """Logic depth of the synthesised netlist."""
        return self.netlist.depth()


def _emit_cover(
    netlist: Netlist,
    cover: Sequence[Implicant],
    output: str,
    inverter_of,
    prefix: str,
) -> None:
    """Materialise one SOP cover as AND gates feeding an OR (or simpler).

    *inverter_of* is a callable creating/reusing an input inverter net on
    demand, so cells that need no complemented literal stay
    inverter-free (LPAA 5 degenerates to pure wiring this way).
    """
    if not cover:
        # Constant 0: no paper cell needs it, but handle it soundly with
        # x & ~x on the first input.
        first = INPUT_NETS[0]
        netlist.add_gate("AND", (first, inverter_of(first)), output)
        return
    term_nets: List[str] = []
    for t, term in enumerate(cover):
        literals = term.literals(3)
        if not literals:
            # Constant 1: x | ~x.
            first = INPUT_NETS[0]
            netlist.add_gate("OR", (first, inverter_of(first)), output)
            return
        nets = [
            inverter_of(INPUT_NETS[var]) if complemented else INPUT_NETS[var]
            for var, complemented in literals
        ]
        if len(nets) == 1:
            term_nets.append(nets[0])
        else:
            term_nets.append(
                netlist.add_gate("AND", nets, f"{prefix}_t{t}")
            )
    if len(term_nets) == 1:
        netlist.add_gate("BUF", (term_nets[0],), output)
    else:
        netlist.add_gate("OR", term_nets, output)


def synthesize_cell(cell: CellSpec) -> SynthesizedCell:
    """Synthesise and verify a gate-level implementation of *cell*.

    >>> synthesize_cell("LPAA 5").evaluate(1, 1, 0)
    (1, 1)
    """
    table = resolve_cell(cell)
    sum_cover = tuple(minimize(table.sum_minterms(), 3))
    cout_cover = tuple(minimize(table.cout_minterms(), 3))

    netlist = Netlist(name=table.name, inputs=list(INPUT_NETS))
    inverters: Dict[str, str] = {}

    def inverter_of(net: str) -> str:
        if net not in inverters:
            inverters[net] = netlist.add_gate("NOT", (net,), f"n_{net}")
        return inverters[net]

    _emit_cover(netlist, sum_cover, "sum", inverter_of, "s")
    _emit_cover(netlist, cout_cover, "cout", inverter_of, "c")
    netlist.mark_output("sum")
    netlist.mark_output("cout")

    synthesized = SynthesizedCell(
        table=table,
        netlist=netlist,
        sum_cover=sum_cover,
        cout_cover=cout_cover,
    )
    _verify(synthesized)
    return synthesized


def _verify(cell: SynthesizedCell) -> None:
    """Prove the netlist implements the truth table on all eight rows."""
    for idx in range(8):
        a, b, cin = (idx >> 2) & 1, (idx >> 1) & 1, idx & 1
        got = cell.evaluate(a, b, cin)
        expected = cell.table.rows[idx]
        if got != expected:
            raise SynthesisError(
                f"{cell.table.name}: netlist disagrees with truth table at "
                f"(a={a}, b={b}, cin={cin}): got {got}, expected {expected}"
            )


def synthesis_report(cells: Sequence[CellSpec]) -> List[Dict[str, object]]:
    """Synthesise several cells and summarise their structural costs."""
    rows = []
    for spec in cells:
        cell = synthesize_cell(spec)
        terms_s, lits_s = cover_cost(cell.sum_cover, 3)
        terms_c, lits_c = cover_cost(cell.cout_cover, 3)
        rows.append(
            {
                "name": cell.table.name,
                "gates": cell.gate_count(),
                "depth": cell.depth(),
                "sum_terms": terms_s,
                "cout_terms": terms_c,
                "literals": lits_s + lits_c,
            }
        )
    return rows
