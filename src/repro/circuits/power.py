"""Power and area models for LPAA cells and multi-bit chains (Table 2).

Two layers, kept clearly apart:

* **Published data** (paper Table 2, from Gupta et al. [7]): carried
  verbatim via :data:`repro.core.adders.CELL_CHARACTERISTICS`.  These
  are transistor-level numbers we cannot re-derive without the original
  netlists and process kit.

* **Structural model**: from this repo's own gate-level synthesis --
  area as gate-equivalents of the synthesised netlist, dynamic power
  proportional to activity-weighted gate capacitance.  The model's
  single free scale factor is calibrated against the published Table 2
  powers (least squares over the cells that have one), so model numbers
  live in the same unit system and extrapolate to the cells and hybrid
  chains the paper does not tabulate.

The gate-equivalent weights are the textbook static-CMOS ones (NAND2 =
1 GE baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from ..core.adders import CELL_CHARACTERISTICS
from ..core.exceptions import AnalysisError
from ..core.recursive import CellSpec, resolve_chain
from ..core.sum_analysis import carry_profile
from ..core.types import Probability, validate_probability_vector
from .activity import propagate_probabilities, switching_activity
from .cells import SynthesizedCell, synthesize_cell
from .netlist import Gate

#: Area in gate equivalents: (base for 2 inputs, increment per extra input).
_GATE_AREA_GE: Dict[str, tuple] = {
    # Constant tie-offs are wiring to the rails: 0 GE.
    "ZERO": (0.0, 0.0),
    "ONE": (0.0, 0.0),
    # BUFs in this flow are pure aliases (wiring), not drivers: 0 GE.
    # That is exactly why LPAA 5 -- sum = b, cout = a -- costs 0 GE /
    # 0 nW here, matching its published Table 2 row.
    "BUF": (0.0, 0.0),
    "NOT": (0.5, 0.0),
    "NAND": (1.0, 0.5),
    "NOR": (1.0, 0.5),
    "AND": (1.5, 0.5),
    "OR": (1.5, 0.5),
    "XOR": (2.5, 1.0),
    "XNOR": (2.5, 1.0),
}


def gate_area_ge(gate: Gate) -> float:
    """Area of one gate instance in gate equivalents."""
    base, per_extra = _GATE_AREA_GE[gate.kind]
    extra = max(len(gate.inputs) - 2, 0) if gate.kind not in ("BUF", "NOT") else 0
    return base + per_extra * extra


@dataclass(frozen=True)
class CellCost:
    """Structural cost estimate of one cell at one input distribution."""

    name: str
    area_ge: float
    activity: float          # activity-weighted capacitance (model units)
    power_nw: float          # after calibration
    published_power_nw: Optional[float]
    published_area_ge: Optional[float]


class PowerModel:
    """Calibrated structural power/area model for full-adder cells.

    Parameters
    ----------
    calibration_point:
        Input one-probability at which the model is fitted to the
        published Table 2 powers (default 0.5: uniformly random data,
        the standard characterisation workload).
    """

    def __init__(self, calibration_point: float = 0.5):
        if not 0.0 < calibration_point < 1.0:
            raise AnalysisError(
                f"calibration_point must be in (0, 1), got {calibration_point}"
            )
        self._p0 = calibration_point
        self._cache: Dict[str, SynthesizedCell] = {}
        self._scale = self._calibrate()

    # -- structural primitives ------------------------------------------------------

    def _cell(self, spec: CellSpec) -> SynthesizedCell:
        from ..core.recursive import resolve_cell

        table = resolve_cell(spec)
        if table.name not in self._cache:
            self._cache[table.name] = synthesize_cell(table)
        return self._cache[table.name]

    def area_ge(self, spec: CellSpec) -> float:
        """Model area of one cell: sum of gate-equivalents."""
        cell = self._cell(spec)
        return sum(gate_area_ge(g) for g in cell.netlist.gates)

    def activity_cost(
        self,
        spec: CellSpec,
        p_a: float = 0.5,
        p_b: float = 0.5,
        p_cin: float = 0.5,
    ) -> float:
        """Activity-weighted capacitance: ``sum alpha(net) * area(gate)``.

        Uses each gate's area as its capacitance proxy and the
        independent-propagation probability estimator.
        """
        cell = self._cell(spec)
        probs = propagate_probabilities(
            cell.netlist, {"a": p_a, "b": p_b, "cin": p_cin}
        )
        alphas = switching_activity(probs)
        return sum(
            alphas[g.output] * gate_area_ge(g) for g in cell.netlist.gates
        )

    # -- calibration ------------------------------------------------------------------

    def _calibrate(self) -> float:
        """Least-squares scale mapping activity cost -> published nW.

        Fitted over the Table 2 cells with a non-zero published power
        (LPAA 5's published 0 nW is a degenerate wiring-only figure and
        would bias the fit).
        """
        num = 0.0
        den = 0.0
        for name, char in CELL_CHARACTERISTICS.items():
            if not char.power_nw:
                continue
            cost = self.activity_cost(name, self._p0, self._p0, self._p0)
            num += cost * char.power_nw
            den += cost * cost
        if den == 0.0:
            raise AnalysisError("no published powers available to calibrate")
        return num / den

    @property
    def scale_nw(self) -> float:
        """Calibrated nW per unit of activity-weighted capacitance."""
        return self._scale

    # -- public estimates ----------------------------------------------------------------

    def power_nw(
        self,
        spec: CellSpec,
        p_a: float = 0.5,
        p_b: float = 0.5,
        p_cin: float = 0.5,
    ) -> float:
        """Model dynamic power of one cell at the given input stats."""
        return self._scale * self.activity_cost(spec, p_a, p_b, p_cin)

    def cell_cost(self, spec: CellSpec, p: float = 0.5) -> CellCost:
        """Full cost record for one cell (model + published columns)."""
        from ..core.recursive import resolve_cell

        table = resolve_cell(spec)
        char = CELL_CHARACTERISTICS.get(table.name)
        activity = self.activity_cost(table, p, p, p)
        return CellCost(
            name=table.name,
            area_ge=self.area_ge(table),
            activity=activity,
            power_nw=self._scale * activity,
            published_power_nw=char.power_nw if char else None,
            published_area_ge=char.area_ge if char else None,
        )

    # -- chain-level estimates ---------------------------------------------------------

    def chain_area_ge(
        self,
        cell: Union[CellSpec, Sequence[CellSpec]],
        width: Optional[int] = None,
    ) -> float:
        """Total model area of a (possibly hybrid) ripple chain."""
        return sum(self.area_ge(t) for t in resolve_chain(cell, width))

    def chain_power_nw(
        self,
        cell: Union[CellSpec, Sequence[CellSpec]],
        width: Optional[int] = None,
        p_a: Union[Probability, Sequence[Probability]] = 0.5,
        p_b: Union[Probability, Sequence[Probability]] = 0.5,
        p_cin: Probability = 0.5,
    ) -> float:
        """Total model power of a ripple chain.

        Each stage's carry-in distribution is taken from the exact
        unconditioned carry profile of the approximate chain
        (:func:`repro.core.sum_analysis.carry_profile`), so later stages
        see realistic, not uniform, carry statistics.
        """
        tables = resolve_chain(cell, width)
        n = len(tables)
        pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
        pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
        carries = carry_profile(tables, None, pa, pb, p_cin)
        return sum(
            self.power_nw(table, pa[i], pb[i], float(carries[i]))
            for i, table in enumerate(tables)
        )


def published_characteristics(name: str):
    """Published Table 2 record for *name* (None when not tabulated)."""
    return CELL_CHARACTERISTICS.get(name)
