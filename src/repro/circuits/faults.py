"""Stuck-at fault injection and statistical fault analysis.

Connects the classic EDA test view (stuck-at-0/1 faults on nets) to the
paper's statistical machinery: a fault inside a full-adder cell turns it
into a *different* approximate cell, whose multi-bit error probability
the recursive engine computes directly.  That gives a purely analytical
"statistical detectability" of each fault -- how much it shifts the
chain's error probability at a given input distribution -- alongside the
traditional test-vector fault coverage.

* :func:`enumerate_faults` -- every stuck-at-0/1 on inputs and gate
  outputs;
* :func:`faulted_truth_table` -- the cell's behaviour with one fault
  injected (via evaluation overrides, no netlist surgery);
* :func:`fault_detectability` -- per-fault |ΔP(Error)| of an N-bit
  chain under the paper's analysis;
* :func:`fault_coverage` -- fraction of faults detected by a test set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.exceptions import AnalysisError
from ..core.recursive import CellSpec
from ..core.truth_table import FullAdderTruthTable
from ..core.types import Probability
from .cells import synthesize_cell
from .netlist import Netlist


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """A single stuck-at fault: *net* permanently reads *value*."""

    net: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise AnalysisError(f"stuck-at value must be 0/1, got {self.value}")

    def describe(self) -> str:
        """Canonical name, e.g. ``"n_cin/SA1"``."""
        return f"{self.net}/SA{self.value}"


def enumerate_faults(netlist: Netlist) -> List[StuckAtFault]:
    """All stuck-at-0/1 faults on primary inputs and gate outputs."""
    nets = list(netlist.inputs) + [g.output for g in netlist.gates]
    return [StuckAtFault(net, v) for net in nets for v in (0, 1)]


def faulted_truth_table(
    cell: CellSpec,
    fault: StuckAtFault,
    name: Optional[str] = None,
) -> FullAdderTruthTable:
    """The single-bit behaviour of *cell* with *fault* injected.

    Evaluates the synthesised netlist under the stuck net for all eight
    input rows and returns the resulting (possibly weirder) approximate
    cell.
    """
    impl = synthesize_cell(cell)
    known = set(impl.netlist.nets())
    if fault.net not in known:
        raise AnalysisError(
            f"net {fault.net!r} does not exist in {impl.table.name} "
            f"(known: {sorted(known)})"
        )
    rows = []
    for idx in range(8):
        a, b, cin = (idx >> 2) & 1, (idx >> 1) & 1, idx & 1
        out = impl.netlist.evaluate(
            {"a": a, "b": b, "cin": cin}, overrides={fault.net: fault.value}
        )
        rows.append((out["sum"], out["cout"]))
    return FullAdderTruthTable(
        rows, name=name or f"{impl.table.name}+{fault.describe()}"
    )


@dataclass(frozen=True)
class FaultImpact:
    """Statistical impact of one fault on an N-bit chain."""

    fault: StuckAtFault
    p_error_healthy: float
    p_error_faulty: float

    @property
    def delta(self) -> float:
        """Shift in word-level error probability caused by the fault."""
        return self.p_error_faulty - self.p_error_healthy

    @property
    def statistically_silent(self) -> bool:
        """The fault does not move P(Error) at this input distribution
        (it may still be functionally present -- e.g. masked rows)."""
        return abs(self.delta) < 1e-12


def fault_detectability(
    cell: CellSpec,
    width: int,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    faults: Optional[Sequence[StuckAtFault]] = None,
) -> List[FaultImpact]:
    """Analytical P(Error) shift of every fault in an N-bit chain.

    For each stuck-at fault the faulted truth table is fed to the
    paper's recursion (fault present in **all** stages -- the
    manufacturing-defect-in-the-cell-library scenario), and the impact is
    compared against the healthy chain.
    """
    from .. import engine as _engine

    impl = synthesize_cell(cell)
    healthy = float(
        _engine.run(impl.table, width, p_a, p_b, p_cin).p_error
    )
    impacts = []
    for fault in faults if faults is not None else enumerate_faults(impl.netlist):
        faulty_table = faulted_truth_table(impl.table, fault)
        faulty = float(
            _engine.run(faulty_table, width, p_a, p_b, p_cin).p_error
        )
        impacts.append(
            FaultImpact(
                fault=fault,
                p_error_healthy=healthy,
                p_error_faulty=faulty,
            )
        )
    impacts.sort(key=lambda fi: -abs(fi.delta))
    return impacts


def fault_coverage(
    netlist: Netlist,
    test_vectors: Sequence[Dict[str, int]],
    faults: Optional[Sequence[StuckAtFault]] = None,
) -> Tuple[float, List[StuckAtFault]]:
    """Classic stuck-at coverage of a test set.

    A fault is *detected* when at least one vector makes any primary
    output differ from the fault-free response.  Returns the coverage
    ratio and the list of undetected faults.
    """
    if not test_vectors:
        raise AnalysisError("need at least one test vector")
    all_faults = list(faults) if faults is not None else enumerate_faults(netlist)
    golden = [netlist.evaluate_outputs(v) for v in test_vectors]
    undetected: List[StuckAtFault] = []
    for fault in all_faults:
        detected = False
        for vector, reference in zip(test_vectors, golden):
            got = netlist.evaluate(vector, overrides={fault.net: fault.value})
            if any(got[net] != reference[net] for net in netlist.outputs):
                detected = True
                break
        if not detected:
            undetected.append(fault)
    covered = len(all_faults) - len(undetected)
    return covered / len(all_faults), undetected


def exhaustive_test_set(netlist: Netlist) -> List[Dict[str, int]]:
    """All input assignments of a small netlist (for coverage upper
    bounds; refuses beyond 16 inputs)."""
    inputs = netlist.inputs
    if len(inputs) > 16:
        raise AnalysisError(
            f"exhaustive test set over {len(inputs)} inputs refused"
        )
    vectors = []
    for assignment in range(1 << len(inputs)):
        vectors.append(
            {net: (assignment >> i) & 1 for i, net in enumerate(inputs)}
        )
    return vectors
