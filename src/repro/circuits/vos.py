"""Voltage over-scaling (VOS) error modelling.

Paper §2.1 lists "non uniform Voltage Over Scaling" among the
error-tolerant design styles around approximate adders.  VOS lowers the
supply below the point where the critical path meets the clock; paths
that no longer fit produce *timing errors*.  This module provides a
first-order, gate-level model of that mechanism:

* **voltage -> delay/power scaling** via the alpha-power law
  (``delay ~ V / (V - Vth)^alpha``, ``dynamic power ~ V^2``), with the
  standard-ish constants documented on :class:`VoltageModel`;
* **failure model**: an output whose (scaled) STA arrival time exceeds
  the clock period latches its *previous-cycle* value -- the classic
  stale-data abstraction of timing errors;
* :func:`vos_error_rate` -- Monte-Carlo word-level error rate of a
  netlist at a given supply, driven by back-to-back random vectors;
* :func:`vos_quality_energy_sweep` -- the VOS signature curve: error
  rate vs energy across supply levels (errors stay at zero until the
  critical path crosses the clock, then climb while power falls).

The model is topological (per-output worst-case arrival), so it is
pessimistic about *which* cycles fail but exact about *which outputs
can* fail -- adequate for the architecture-level trade-off the paper
gestures at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.exceptions import AnalysisError
from .netlist import Netlist
from .timing import arrival_times


@dataclass(frozen=True)
class VoltageModel:
    """Alpha-power-law supply scaling.

    Attributes
    ----------
    v_nominal:
        Supply at which the gate delays of
        :mod:`repro.circuits.timing` are calibrated (scale = 1).
    v_threshold:
        Device threshold; delays diverge as V approaches it.
    alpha:
        Velocity-saturation exponent (1.3 is typical for short-channel
        CMOS; 2.0 recovers the classic long-channel law).
    """

    v_nominal: float = 1.0
    v_threshold: float = 0.3
    alpha: float = 1.3

    def delay_scale(self, v: float) -> float:
        """Gate-delay multiplier at supply *v* (1.0 at nominal)."""
        if v <= self.v_threshold:
            raise AnalysisError(
                f"supply {v} is at/below threshold {self.v_threshold}"
            )
        nominal = self.v_nominal / (
            (self.v_nominal - self.v_threshold) ** self.alpha
        )
        scaled = v / ((v - self.v_threshold) ** self.alpha)
        return scaled / nominal

    def power_scale(self, v: float) -> float:
        """Dynamic-power multiplier at constant frequency: ``(V/Vnom)^2``."""
        if v <= 0:
            raise AnalysisError(f"supply must be positive, got {v}")
        return (v / self.v_nominal) ** 2


def failing_outputs(
    netlist: Netlist,
    clock_period: float,
    delay_scale: float = 1.0,
) -> List[str]:
    """Primary outputs whose scaled arrival time exceeds the clock."""
    if clock_period <= 0:
        raise AnalysisError(f"clock period must be > 0, got {clock_period}")
    if delay_scale <= 0:
        raise AnalysisError(f"delay scale must be > 0, got {delay_scale}")
    arrivals = arrival_times(netlist)
    return [
        net for net in netlist.outputs
        if arrivals[net] * delay_scale > clock_period + 1e-12
    ]


def evaluate_with_timing(
    netlist: Netlist,
    previous: Dict[str, np.ndarray],
    current: Dict[str, np.ndarray],
    clock_period: float,
    delay_scale: float = 1.0,
) -> Dict[str, np.ndarray]:
    """Outputs under the stale-data timing-error model.

    Failing outputs return their value for the *previous* stimulus;
    passing outputs return the current-cycle value.
    """
    stale = set(failing_outputs(netlist, clock_period, delay_scale))
    now = netlist.evaluate_array(current)
    if not stale:
        return {net: now[net] for net in netlist.outputs}
    before = netlist.evaluate_array(previous)
    return {
        net: (before[net] if net in stale else now[net])
        for net in netlist.outputs
    }


def vos_error_rate(
    netlist: Netlist,
    word_outputs: Sequence[str],
    clock_period: float,
    delay_scale: float,
    samples: int = 20_000,
    seed: Optional[int] = None,
) -> float:
    """Monte-Carlo probability that the output word is wrong under VOS.

    Drives the netlist with back-to-back uniform random vectors; the
    reference is the full-period (non-scaled) evaluation of the current
    vector.
    """
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    stim_prev = {
        net: rng.integers(0, 2, samples) for net in netlist.inputs
    }
    stim_curr = {
        net: rng.integers(0, 2, samples) for net in netlist.inputs
    }
    got = evaluate_with_timing(
        netlist, stim_prev, stim_curr, clock_period, delay_scale
    )
    reference = netlist.evaluate_array(stim_curr)
    wrong = np.zeros(samples, dtype=bool)
    for net in word_outputs:
        wrong |= np.asarray(got[net]) != np.asarray(reference[net])
    return float(wrong.mean())


def vos_quality_energy_sweep(
    netlist: Netlist,
    word_outputs: Sequence[str],
    supplies: Sequence[float],
    model: Optional[VoltageModel] = None,
    clock_period: Optional[float] = None,
    samples: int = 20_000,
    seed: Optional[int] = None,
) -> List[Dict[str, float]]:
    """The VOS signature: per-supply error rate and power.

    The clock defaults to the nominal-voltage critical path, so the
    first row (V = Vnom) is error-free by construction and quality
    degrades as the supply drops.
    """
    model = model or VoltageModel()
    arrivals = arrival_times(netlist)
    nominal_critical = max(arrivals[net] for net in netlist.outputs)
    period = clock_period if clock_period is not None else nominal_critical
    rows = []
    for v in supplies:
        scale = model.delay_scale(v)
        rows.append(
            {
                "supply": float(v),
                "delay_scale": scale,
                "power_scale": model.power_scale(v),
                "failing_outputs": float(
                    len(failing_outputs(netlist, period, scale))
                ),
                "error_rate": vos_error_rate(
                    netlist, word_outputs, period, scale,
                    samples=samples, seed=seed,
                ),
            }
        )
    return rows
