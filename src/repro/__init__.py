"""sealpaa-py: statistical error analysis for low-power approximate adders.

A from-scratch Python reproduction of *"Statistical Error Analysis for
Low Power Approximate Adders"* (Ayub, Hasan, Shafique -- DAC 2017),
including the recursive matrix-based analysis method, the seven LPAA
cells it evaluates, the simulation and inclusion-exclusion baselines it
compares against, GeAr low-latency adder analysis, a gate-level
power/area substrate, and design-space exploration for hybrid adders.

Quick taste::

    >>> import repro
    >>> result = repro.analyze_chain("LPAA 6", width=8, p_a=0.1, p_b=0.1,
    ...                              p_cin=0.1)
    >>> round(result.p_error, 5)
    0.16953

See ``examples/quickstart.py`` and the README for more.
"""

from ._version import __version__
from .core import *  # noqa: F401,F403 -- curated re-export, see core.__all__
from .core import __all__ as _core_all
from . import engine  # noqa: F401 -- the unified analysis entry point

__all__ = ["__version__", *_core_all]
