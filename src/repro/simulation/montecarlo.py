"""Monte-Carlo simulation of approximate adders (paper Table 6, row 2).

For non-equiprobable inputs the paper could not enumerate exhaustively
and instead averaged 1 million random cases ("can be increased for
better precision match").  This module reproduces that estimator with a
vectorised, seeded sampler:

* :func:`simulate_error_probability` -- the Table 7 "Sim." column;
* :func:`simulate_samples` -- raw (approx, exact) sample arrays for
  quality-metric estimation;
* :class:`MonteCarloResult` -- point estimate plus confidence intervals
  (normal approximation by default, Wilson score on request), making
  the "matches to the 3rd decimal place" claim quantitative.

The default of one million samples matches the paper.  Long runs are
observable: batches emit :class:`repro.obs.Progress` callbacks, timers
land in the metrics registry, and every result carries a
:class:`repro.obs.RunManifest` recording seed/samples/cells/version.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..core.exceptions import AnalysisError
from ..core.recursive import CellSpec, resolve_chain
from ..core.types import Probability, validate_probability, validate_probability_vector
from ..obs import metrics as _metrics
from ..obs.log import Progress, ProgressCallback, get_logger, log_event
from ..obs.provenance import RunManifest, StopWatch, build_manifest
from ..obs.tracing import trace_span
from .functional import ripple_add_array

#: Sample count used throughout the paper's inequiprobable validation.
PAPER_SAMPLE_COUNT = 1_000_000

_logger = get_logger("simulation.montecarlo")


def _sample_operands(
    rng: np.random.Generator,
    probs: Sequence[float],
    samples: int,
) -> np.ndarray:
    """Draw operand values with independent per-bit one-probabilities.

    One ``(samples, nbits)`` uniform draw compared against the per-bit
    probabilities, then packed into integers with a bit-weight matmul --
    no Python-level per-bit loop.
    """
    p = np.asarray(probs, dtype=np.float64)
    bits = rng.random((samples, p.size)) < p
    weights = np.left_shift(np.int64(1), np.arange(p.size, dtype=np.int64))
    return bits @ weights


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of a Monte-Carlo error-probability estimation."""

    p_error: float
    samples: int
    errors: int
    seed: Optional[int]
    manifest: Optional[RunManifest] = None

    def half_width(self, z: float = 1.96, method: str = "normal") -> float:
        """Confidence half-width at quantile *z* (default 1.96 == 95%).

        ``method="normal"`` is the classic Wald interval; it degenerates
        to 0 when ``p_error`` is exactly 0 or 1, overstating precision
        at the extremes.  ``method="wilson"`` returns half the Wilson
        score interval, which stays positive there.
        """
        if method == "wilson":
            lo, hi = self.wilson_interval(z)
            return (hi - lo) / 2.0
        if method != "normal":
            raise ValueError(
                f"unknown interval method {method!r} (normal or wilson)"
            )
        p = self.p_error
        return z * (p * (1.0 - p) / self.samples) ** 0.5

    def wilson_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score confidence interval ``(lo, hi)`` at quantile *z*.

        Unlike the normal approximation, the interval keeps positive
        width at ``p_error`` 0 or 1 (e.g. ~(0, 3.8e-6) after a clean
        million-sample run), so "no errors observed" is not mistaken
        for "errors impossible".
        """
        n = self.samples
        p = self.p_error
        z2 = z * z
        denom = 1.0 + z2 / n
        center = (p + z2 / (2.0 * n)) / denom
        half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
        return (max(0.0, center - half), min(1.0, center + half))

    @property
    def p_success(self) -> float:
        """Complement estimate ``1 - p_error``."""
        return 1.0 - self.p_error


def simulate_samples(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    samples: int = PAPER_SAMPLE_COUNT,
    seed: Optional[int] = None,
    batch_size: int = 1 << 20,
    progress: Optional[ProgressCallback] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw random additions and return ``(approx, exact)`` result arrays.

    Sampling is batched so arbitrarily large *samples* keep bounded
    memory; *progress* (``callback(done, total, label)``) and the INFO
    log report batch completion at decile boundaries.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    pc = float(validate_probability(p_cin, "p_cin"))

    rng = np.random.default_rng(seed)
    approx_parts = []
    exact_parts = []
    remaining = samples
    reporter = Progress(samples, "montecarlo.samples", callback=progress,
                        logger=_logger)
    with _metrics.timed("simulation.montecarlo.simulate_samples"), \
            trace_span("simulation.montecarlo.simulate_samples",
                       width=n, samples=samples):
        while remaining > 0:
            chunk = min(remaining, batch_size)
            with _metrics.timed("simulation.montecarlo.batch"):
                a = _sample_operands(rng, pa, chunk)
                b = _sample_operands(rng, pb, chunk)
                cin = (rng.random(chunk) < pc).astype(np.int64)
                approx_parts.append(ripple_add_array(cells, a, b, cin))
                exact_parts.append(a + b + cin)
            remaining -= chunk
            reporter.update(chunk)
    reporter.finish()
    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "simulation.montecarlo.samples"
        ).add(samples)
    return np.concatenate(approx_parts), np.concatenate(exact_parts)


def simulate_error_probability(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    samples: int = PAPER_SAMPLE_COUNT,
    seed: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> MonteCarloResult:
    """Estimate ``P(Error)`` from *samples* random additions.

    With the paper's one million samples the estimate agrees with the
    analytical value to about the 3rd decimal place (Table 6), since the
    standard error is ``sqrt(p(1-p)/1e6) <= 5e-4``.
    """
    watch = StopWatch()
    cells = resolve_chain(cell, width)
    n = len(cells)
    approx, exact = simulate_samples(
        cells, None, p_a, p_b, p_cin, samples=samples, seed=seed,
        progress=progress,
    )
    errors = int((approx != exact).sum())
    manifest = build_manifest(
        "montecarlo",
        seed=seed,
        samples=samples,
        cells=[t.name for t in cells],
        wall_time_s=watch.elapsed(),
        p_a=[float(p) for p in validate_probability_vector(p_a, n, "p_a")],
        p_b=[float(p) for p in validate_probability_vector(p_b, n, "p_b")],
        p_cin=float(validate_probability(p_cin, "p_cin")),
    )
    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "simulation.montecarlo.errors"
        ).add(errors)
    log_event(_logger, "montecarlo.done", samples=samples, errors=errors,
              p_error=errors / samples, wall_s=manifest.wall_time_s)
    return MonteCarloResult(
        p_error=errors / samples, samples=samples, errors=errors, seed=seed,
        manifest=manifest,
    )
