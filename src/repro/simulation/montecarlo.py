"""Monte-Carlo simulation of approximate adders (paper Table 6, row 2).

For non-equiprobable inputs the paper could not enumerate exhaustively
and instead averaged 1 million random cases ("can be increased for
better precision match").  This module reproduces that estimator with a
vectorised, seeded sampler:

* :func:`simulate_error_probability` -- the Table 7 "Sim." column;
* :func:`simulate_samples` -- raw (approx, exact) sample arrays for
  quality-metric estimation;
* :class:`MonteCarloResult` -- point estimate plus confidence intervals
  (normal approximation by default, Wilson score on request), making
  the "matches to the 3rd decimal place" claim quantitative.

The default of one million samples matches the paper.  Long runs are
observable: batches emit :class:`repro.obs.Progress` callbacks, timers
land in the metrics registry, and every result carries a
:class:`repro.obs.RunManifest` recording seed/samples/cells/version.

Long runs are also *resilient*: :func:`simulate_error_probability`
accepts a :class:`repro.runtime.RunBudget` (stop cleanly at a deadline
or sample cap, returning a partial result flagged ``truncated=True``)
and a checkpoint path (periodic crash-safe snapshots of the error
counts plus the RNG bit-generator state, so ``resume=True`` finishes
bit-identical to an uninterrupted run).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..core.exceptions import AnalysisError
from ..core.probability import float_probability_vector
from ..core.recursive import CellSpec, resolve_chain
from ..core.types import Probability, validate_probability
from ..obs import metrics as _metrics
from ..obs.log import Progress, ProgressCallback, get_logger, log_event
from ..obs.provenance import RunManifest, StopWatch, build_manifest
from ..obs.tracing import trace_span
from ..runtime import chaos as _chaos
from ..runtime.budget import STOP_MAX_SAMPLES, RunBudget, make_meter
from ..runtime.checkpoint import (
    Checkpoint,
    config_fingerprint,
    load_checkpoint,
    rng_state_from_jsonable,
    rng_state_to_jsonable,
    save_checkpoint,
)
from .functional import ripple_add_array

#: Sample count used throughout the paper's inequiprobable validation.
PAPER_SAMPLE_COUNT = 1_000_000

#: Rough per-sample peak footprint of one batch (operand/result int64
#: arrays plus the per-bit boolean draw), used with a budget's
#: ``memory_hint_mb`` to clamp the batch size.
_BYTES_PER_SAMPLE_BASE = 6 * 8

_logger = get_logger("simulation.montecarlo")


def _effective_batch_size(
    batch_size: int, width: int, budget: Optional[RunBudget]
) -> int:
    """Clamp *batch_size* to a budget's memory hint (if any)."""
    if budget is None or budget.memory_hint_mb is None:
        return batch_size
    per_sample = _BYTES_PER_SAMPLE_BASE + 2 * width
    cap = int(budget.memory_hint_mb * 1_000_000 / per_sample)
    return max(1, min(batch_size, cap))


def _sample_operands(
    rng: np.random.Generator,
    probs: Sequence[float],
    samples: int,
) -> np.ndarray:
    """Draw operand values with independent per-bit one-probabilities.

    One ``(samples, nbits)`` uniform draw compared against the per-bit
    probabilities, then packed into integers with a bit-weight matmul --
    no Python-level per-bit loop.
    """
    p = np.asarray(probs, dtype=np.float64)
    bits = rng.random((samples, p.size)) < p
    weights = np.left_shift(np.int64(1), np.arange(p.size, dtype=np.int64))
    return bits @ weights


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of a Monte-Carlo error-probability estimation.

    ``truncated=True`` marks a run stopped early by its
    :class:`~repro.runtime.RunBudget` -- ``samples`` then reflects the
    samples actually drawn (the estimate is valid, just lower
    precision), ``requested_samples`` the original target and
    ``stop_reason`` why the run stopped.
    """

    p_error: float
    samples: int
    errors: int
    seed: Optional[int]
    manifest: Optional[RunManifest] = None
    truncated: bool = False
    stop_reason: Optional[str] = None
    requested_samples: Optional[int] = None

    def half_width(self, z: float = 1.96, method: str = "normal") -> float:
        """Confidence half-width at quantile *z* (default 1.96 == 95%).

        ``method="normal"`` is the classic Wald interval; it degenerates
        to 0 when ``p_error`` is exactly 0 or 1, overstating precision
        at the extremes.  ``method="wilson"`` returns half the Wilson
        score interval, which stays positive there.
        """
        if method == "wilson":
            lo, hi = self.wilson_interval(z)
            return (hi - lo) / 2.0
        if method != "normal":
            raise ValueError(
                f"unknown interval method {method!r} (normal or wilson)"
            )
        p = self.p_error
        return z * (p * (1.0 - p) / self.samples) ** 0.5

    def wilson_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score confidence interval ``(lo, hi)`` at quantile *z*.

        Unlike the normal approximation, the interval keeps positive
        width at ``p_error`` 0 or 1 (e.g. ~(0, 3.8e-6) after a clean
        million-sample run), so "no errors observed" is not mistaken
        for "errors impossible".
        """
        n = self.samples
        p = self.p_error
        z2 = z * z
        denom = 1.0 + z2 / n
        center = (p + z2 / (2.0 * n)) / denom
        half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
        return (max(0.0, center - half), min(1.0, center + half))

    @property
    def p_success(self) -> float:
        """Complement estimate ``1 - p_error``."""
        return 1.0 - self.p_error


def simulate_samples(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    samples: int = PAPER_SAMPLE_COUNT,
    seed: Optional[int] = None,
    batch_size: int = 1 << 20,
    progress: Optional[ProgressCallback] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw random additions and return ``(approx, exact)`` result arrays.

    Sampling is batched so arbitrarily large *samples* keep bounded
    memory; *progress* (``callback(done, total, label)``) and the INFO
    log report batch completion at decile boundaries.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    pa = float_probability_vector(p_a, n, "p_a")
    pb = float_probability_vector(p_b, n, "p_b")
    pc = float(validate_probability(p_cin, "p_cin"))

    rng = np.random.default_rng(seed)
    approx_parts = []
    exact_parts = []
    remaining = samples
    reporter = Progress(samples, "montecarlo.samples", callback=progress,
                        logger=_logger)
    with _metrics.timed("simulation.montecarlo.simulate_samples"), \
            trace_span("simulation.montecarlo.simulate_samples",
                       width=n, samples=samples):
        while remaining > 0:
            chunk = min(remaining, batch_size)
            with _metrics.timed("simulation.montecarlo.batch"):
                a = _sample_operands(rng, pa, chunk)
                b = _sample_operands(rng, pb, chunk)
                cin = (rng.random(chunk) < pc).astype(np.int64)
                approx_parts.append(ripple_add_array(cells, a, b, cin))
                exact_parts.append(a + b + cin)
            remaining -= chunk
            reporter.update(chunk)
    reporter.finish()
    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "simulation.montecarlo.samples"
        ).add(samples)
    return np.concatenate(approx_parts), np.concatenate(exact_parts)


def simulate_error_probability(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    samples: int = PAPER_SAMPLE_COUNT,
    seed: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    batch_size: int = 1 << 20,
    budget: Optional[RunBudget] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 1,
    resume: bool = False,
) -> MonteCarloResult:
    """Estimate ``P(Error)`` from *samples* random additions.

    With the paper's one million samples the estimate agrees with the
    analytical value to about the 3rd decimal place (Table 6), since the
    standard error is ``sqrt(p(1-p)/1e6) <= 5e-4``.

    Unlike :func:`simulate_samples` this never materialises the full
    sample arrays: errors are counted per batch, so memory stays bounded
    by *batch_size* regardless of *samples*.

    Resilience knobs:

    * *budget* -- a :class:`repro.runtime.RunBudget`; the run stops
      cleanly at the deadline / sample cap (checked at batch
      boundaries, after at least one batch) and returns a partial
      result flagged ``truncated=True`` with the stop reason in the
      manifest;
    * *checkpoint_path* -- write a crash-safe checkpoint (error counts
      + RNG state) every *checkpoint_every* completed batches, and once
      more when the run ends or is interrupted;
    * *resume* -- restore counts and RNG state from *checkpoint_path*
      and continue; the final result is bit-identical to an
      uninterrupted run with the same configuration (the checkpoint's
      configuration fingerprint is verified, mismatches raise
      :class:`~repro.core.exceptions.CheckpointError`).
    """
    watch = StopWatch()
    cells = resolve_chain(cell, width)
    n = len(cells)
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    if checkpoint_every < 1:
        raise AnalysisError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    if resume and checkpoint_path is None:
        raise AnalysisError("resume=True requires checkpoint_path")
    pa = float_probability_vector(p_a, n, "p_a")
    pb = float_probability_vector(p_b, n, "p_b")
    pc = float(validate_probability(p_cin, "p_cin"))

    eff_batch = _effective_batch_size(batch_size, n, budget)
    fingerprint = config_fingerprint(
        kind="montecarlo", cells=[t.name for t in cells], seed=seed,
        samples=samples, p_a=pa, p_b=pb, p_cin=pc, batch_size=eff_batch,
    )
    rng = np.random.default_rng(seed)
    done = 0
    errors = 0
    sequence = 0
    if resume:
        saved = load_checkpoint(checkpoint_path, expect_kind="montecarlo",
                                expect_fingerprint=fingerprint)
        done = int(saved.payload["samples_done"])  # type: ignore[arg-type]
        errors = int(saved.payload["errors"])  # type: ignore[arg-type]
        sequence = saved.sequence
        rng.bit_generator.state = rng_state_from_jsonable(
            saved.payload["rng_state"]  # type: ignore[arg-type]
        )
        log_event(_logger, "montecarlo.resumed", samples_done=done,
                  errors=errors, path=checkpoint_path)

    meter = make_meter(budget)
    stop_reason: Optional[str] = None
    progressed = False
    reporter = Progress(samples, "montecarlo.samples", callback=progress,
                        logger=_logger)
    if done:
        reporter.update(done)
    latest_payload: Optional[dict] = None
    batches_since_save = 0

    def snapshot() -> dict:
        return {
            "samples_done": done,
            "errors": errors,
            "rng_state": rng_state_to_jsonable(rng.bit_generator.state),
        }

    def flush(payload: dict) -> None:
        nonlocal sequence, batches_since_save
        sequence += 1
        save_checkpoint(
            checkpoint_path,
            Checkpoint(kind="montecarlo", fingerprint=fingerprint,
                       payload=payload, sequence=sequence),
        )
        batches_since_save = 0

    try:
        with _metrics.timed("simulation.montecarlo.simulate"), \
                trace_span("simulation.montecarlo.simulate",
                           width=n, samples=samples):
            while done < samples:
                if progressed:
                    stop_reason = meter.stop_reason()
                    if stop_reason is not None:
                        break
                chunk = meter.remaining_samples(min(eff_batch, samples - done))
                if chunk == 0:
                    stop_reason = meter.stop_reason() or STOP_MAX_SAMPLES
                    break
                with _metrics.timed("simulation.montecarlo.batch"):
                    a = _sample_operands(rng, pa, chunk)
                    b = _sample_operands(rng, pb, chunk)
                    cin = (rng.random(chunk) < pc).astype(np.int64)
                    approx = ripple_add_array(cells, a, b, cin)
                    errors += int((approx != (a + b + cin)).sum())
                done += chunk
                progressed = True
                meter.charge(samples=chunk)
                reporter.update(chunk)
                latest_payload = snapshot()
                batches_since_save += 1
                if (checkpoint_path is not None
                        and batches_since_save >= checkpoint_every):
                    flush(latest_payload)
                _chaos.tick("montecarlo.batch")
    except KeyboardInterrupt:
        # Flush the last completed batch so the run is resumable, then
        # let the interrupt propagate (the CLI converts it to exit 130).
        if checkpoint_path is not None and latest_payload is not None:
            flush(latest_payload)
        raise
    reporter.finish()
    if checkpoint_path is not None and batches_since_save > 0 \
            and latest_payload is not None:
        flush(latest_payload)

    truncated = done < samples
    manifest = build_manifest(
        "montecarlo",
        seed=seed,
        samples=done,
        cells=[t.name for t in cells],
        wall_time_s=watch.elapsed(),
        budget=budget.as_dict() if budget is not None else None,
        truncated=True if truncated else None,
        stop_reason=stop_reason,
        p_a=pa, p_b=pb, p_cin=pc,
        **({"samples_requested": samples} if truncated else {}),
    )
    if _metrics.is_enabled():
        registry = _metrics.get_registry()
        registry.counter("simulation.montecarlo.samples").add(done)
        registry.counter("simulation.montecarlo.errors").add(errors)
    p_error = errors / done if done else 0.0
    log_event(_logger, "montecarlo.done", samples=done, errors=errors,
              p_error=p_error, truncated=truncated,
              wall_s=manifest.wall_time_s)
    return MonteCarloResult(
        p_error=p_error, samples=done, errors=errors, seed=seed,
        manifest=manifest, truncated=truncated, stop_reason=stop_reason,
        requested_samples=samples if truncated else None,
    )
