"""Monte-Carlo simulation of approximate adders (paper Table 6, row 2).

For non-equiprobable inputs the paper could not enumerate exhaustively
and instead averaged 1 million random cases ("can be increased for
better precision match").  This module reproduces that estimator with a
vectorised, seeded sampler:

* :func:`simulate_error_probability` -- the Table 7 "Sim." column;
* :func:`simulate_samples` -- raw (approx, exact) sample arrays for
  quality-metric estimation;
* :class:`MonteCarloResult` -- point estimate plus a normal-approximation
  confidence half-width, making the "matches to the 3rd decimal place"
  claim quantitative.

The default of one million samples matches the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..core.exceptions import AnalysisError
from ..core.recursive import CellSpec, resolve_chain
from ..core.types import Probability, validate_probability, validate_probability_vector
from .functional import ripple_add_array

#: Sample count used throughout the paper's inequiprobable validation.
PAPER_SAMPLE_COUNT = 1_000_000


def _sample_operands(
    rng: np.random.Generator,
    probs: Sequence[float],
    samples: int,
) -> np.ndarray:
    """Draw operand values with independent per-bit one-probabilities."""
    values = np.zeros(samples, dtype=np.int64)
    for i, p in enumerate(probs):
        bits = rng.random(samples) < p
        values |= bits.astype(np.int64) << i
    return values


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of a Monte-Carlo error-probability estimation."""

    p_error: float
    samples: int
    errors: int
    seed: Optional[int]

    def half_width(self, z: float = 1.96) -> float:
        """Normal-approximation confidence half-width at quantile *z*
        (default 1.96 == 95%)."""
        p = self.p_error
        return z * (p * (1.0 - p) / self.samples) ** 0.5

    @property
    def p_success(self) -> float:
        """Complement estimate ``1 - p_error``."""
        return 1.0 - self.p_error


def simulate_samples(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    samples: int = PAPER_SAMPLE_COUNT,
    seed: Optional[int] = None,
    batch_size: int = 1 << 20,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw random additions and return ``(approx, exact)`` result arrays.

    Sampling is batched so arbitrarily large *samples* keep bounded
    memory.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    pc = float(validate_probability(p_cin, "p_cin"))

    rng = np.random.default_rng(seed)
    approx_parts = []
    exact_parts = []
    remaining = samples
    while remaining > 0:
        chunk = min(remaining, batch_size)
        a = _sample_operands(rng, pa, chunk)
        b = _sample_operands(rng, pb, chunk)
        cin = (rng.random(chunk) < pc).astype(np.int64)
        approx_parts.append(ripple_add_array(cells, a, b, cin))
        exact_parts.append(a + b + cin)
        remaining -= chunk
    return np.concatenate(approx_parts), np.concatenate(exact_parts)


def simulate_error_probability(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    samples: int = PAPER_SAMPLE_COUNT,
    seed: Optional[int] = None,
) -> MonteCarloResult:
    """Estimate ``P(Error)`` from *samples* random additions.

    With the paper's one million samples the estimate agrees with the
    analytical value to about the 3rd decimal place (Table 6), since the
    standard error is ``sqrt(p(1-p)/1e6) <= 5e-4``.
    """
    approx, exact = simulate_samples(
        cell, width, p_a, p_b, p_cin, samples=samples, seed=seed
    )
    errors = int((approx != exact).sum())
    return MonteCarloResult(
        p_error=errors / samples, samples=samples, errors=errors, seed=seed
    )
