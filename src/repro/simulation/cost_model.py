"""Cost models and timing harness for simulation vs analysis (paper Fig. 1).

Figure 1 of the paper shows exhaustive-simulation time and computation
count exploding exponentially with adder width while the proposed
analysis stays negligible (<1 ms, §5).  This module provides:

* closed-form *operation* counts for exhaustive simulation
  (:func:`exhaustive_case_count`, :func:`exhaustive_operation_count`),
  usable far beyond the widths anyone can actually simulate;
* a measurement harness (:func:`measure_exhaustive_time`,
  :func:`measure_analytical_time`) that times the real implementations
  on this machine, demonstrating the same exponential-vs-flat shape as
  the paper's Intel i7 plot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.exceptions import AnalysisError
from ..core.recursive import CellSpec, analyze_chain
from .exhaustive import MAX_EXHAUSTIVE_WIDTH, exhaustive_error_count


def exhaustive_case_count(width: int) -> int:
    """Number of input cases exhaustive simulation must visit.

    ``2^(2N) * 2 = 2^(2N+1)``: every pair of N-bit operands times both
    carry-in values (the paper's "2^2N . 2 cases ... for N-bit
    un-symmetrical adders").
    """
    if width < 1:
        raise AnalysisError(f"width must be >= 1, got {width}")
    return 1 << (2 * width + 1)


def exhaustive_operation_count(width: int) -> int:
    """Arithmetic operations for exhaustive error counting.

    Per case: ``width`` single-bit full-adder evaluations for the
    approximate result, one exact N-bit addition and one comparison
    (the "additions, comparisons etc." of Fig. 1), so
    ``cases * (width + 2)``.
    """
    return exhaustive_case_count(width) * (width + 2)


def analytical_operation_count(width: int, per_bit_probabilities: bool = True) -> int:
    """Operations for the proposed method (linear in width).

    Per stage: building the 8-entry IPM plus two mask dot products.
    See :mod:`repro.baselines.operation_counter` for the paper's exact
    Table 8 accounting; this convenience count is simply
    ``width * (48 if per_bit_probabilities else 32)`` multiplications.
    """
    per_stage = 48 if per_bit_probabilities else 32
    return width * per_stage


@dataclass(frozen=True)
class TimingPoint:
    """One measured (width, seconds) sample of a scaling curve."""

    width: int
    seconds: float
    cases: Optional[int] = None


def _time_callable(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_exhaustive_time(
    cell: CellSpec,
    widths: Sequence[int],
    repeats: int = 1,
) -> List[TimingPoint]:
    """Wall-clock exhaustive simulation across *widths* (Fig. 1 x-axis)."""
    points = []
    for width in widths:
        if width > MAX_EXHAUSTIVE_WIDTH:
            raise AnalysisError(
                f"refusing to exhaustively simulate width {width} "
                f"(> {MAX_EXHAUSTIVE_WIDTH})"
            )
        seconds = _time_callable(
            lambda w=width: exhaustive_error_count(cell, w), repeats
        )
        points.append(
            TimingPoint(width=width, seconds=seconds,
                        cases=exhaustive_case_count(width))
        )
    return points


def measure_analytical_time(
    cell: CellSpec,
    widths: Sequence[int],
    repeats: int = 3,
) -> List[TimingPoint]:
    """Wall-clock of the proposed recursion across *widths*.

    The paper reports "approximately less than 1 ms for any length";
    the Fig. 1 bench asserts the same holds here.
    """
    points = []
    for width in widths:
        seconds = _time_callable(
            lambda w=width: analyze_chain(cell, width=w, p_a=0.3, p_b=0.7,
                                          p_cin=0.5),
            repeats,
        )
        points.append(TimingPoint(width=width, seconds=seconds))
    return points
