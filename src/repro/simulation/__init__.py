"""Functional, exhaustive and Monte-Carlo simulation of approximate adders.

These are the baselines the paper's analytical method is validated
against (Tables 6 and 7) plus the cost models behind Fig. 1.
"""

from .cost_model import (
    TimingPoint,
    analytical_operation_count,
    exhaustive_case_count,
    exhaustive_operation_count,
    measure_analytical_time,
    measure_exhaustive_time,
)
from .exhaustive import (
    MAX_EXHAUSTIVE_WIDTH,
    ExhaustiveResult,
    exhaustive_error_count,
    exhaustive_error_pmf,
    exhaustive_error_probability,
    exhaustive_report,
)
from .functional import exact_add, ripple_add, ripple_add_array
from .montecarlo import (
    PAPER_SAMPLE_COUNT,
    MonteCarloResult,
    simulate_error_probability,
    simulate_samples,
)

__all__ = [
    "ripple_add",
    "ripple_add_array",
    "exact_add",
    "exhaustive_error_probability",
    "exhaustive_error_count",
    "exhaustive_error_pmf",
    "exhaustive_report",
    "ExhaustiveResult",
    "MAX_EXHAUSTIVE_WIDTH",
    "simulate_error_probability",
    "simulate_samples",
    "MonteCarloResult",
    "PAPER_SAMPLE_COUNT",
    "exhaustive_case_count",
    "exhaustive_operation_count",
    "analytical_operation_count",
    "measure_exhaustive_time",
    "measure_analytical_time",
    "TimingPoint",
]
