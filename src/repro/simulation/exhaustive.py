"""Exhaustive simulation of approximate adders (the paper's baseline).

The paper validates its analytical numbers against exhaustive
simulation: all ``2^(2N+1)`` combinations of two N-bit operands and the
carry-in (paper Table 6's "Finite" row uses this for equiprobable
inputs).  This module implements that baseline with two refinements:

* :func:`exhaustive_error_probability` enumerates *weighted* cases, so
  it is exact for **any** per-bit input probabilities, not only the
  equiprobable case -- this is the strongest available oracle for the
  analytical engine and is what the paper's 100%-match claim is checked
  against;
* :func:`exhaustive_error_count` reproduces the paper's plain
  equiprobable count (errors / total cases);
* :func:`exhaustive_error_pmf` additionally bins the numeric error,
  cross-validating :mod:`repro.core.magnitude`;
* :func:`exhaustive_report` wraps the weighted oracle in an
  :class:`ExhaustiveResult` carrying a provenance manifest.

Cost is exponential in N (that is the paper's Fig. 1 point); the
functions refuse absurd widths instead of hanging.  Enumeration runs in
fixed-size blocks, so memory stays bounded and long runs report
progress instead of going dark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.exceptions import AnalysisError
from ..core.probability import float_probability_vector
from ..core.recursive import CellSpec, resolve_chain
from ..core.types import Probability, validate_probability
from ..obs import metrics as _metrics
from ..obs.log import Progress, ProgressCallback, get_logger, log_event
from ..obs.provenance import RunManifest, StopWatch, build_manifest
from ..obs.tracing import trace_span
from ..runtime import chaos as _chaos
from ..runtime.budget import STOP_MAX_CASES, RunBudget, make_meter
from ..runtime.checkpoint import (
    Checkpoint,
    config_fingerprint,
    load_checkpoint,
    save_checkpoint,
)
from .functional import ripple_add_array

#: Widths above this would enumerate > 2^33 cases; refuse rather than hang.
MAX_EXHAUSTIVE_WIDTH = 16

#: Target cases per enumeration block (bounds peak memory per chunk).
BLOCK_CASES = 1 << 21

_logger = get_logger("simulation.exhaustive")


def _operand_grid(width: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All ``2^(2*width+1)`` (a, b, cin) combinations as flat arrays."""
    values = np.arange(1 << width, dtype=np.int64)
    a, b, cin = np.meshgrid(values, values, np.array([0, 1], dtype=np.int64),
                            indexing="ij")
    return a.ravel(), b.ravel(), cin.ravel()


def _block_step(width: int, budget: Optional[RunBudget] = None) -> int:
    """``a``-axis stride per block, clamped to a budget's memory hint."""
    per_a = 1 << (width + 1)
    step = max(1, BLOCK_CASES // per_a)
    if budget is not None and budget.memory_hint_mb is not None:
        # ~5 int64 arrays (a, b, cin, approx, exact) alive per case.
        max_cases = max(per_a, int(budget.memory_hint_mb * 1_000_000 / 40))
        step = max(1, min(step, max_cases // per_a))
    return step


def _iter_operand_blocks(
    width: int,
    start_a: int = 0,
    step: Optional[int] = None,
) -> Iterator[Tuple[int, np.ndarray, np.ndarray, np.ndarray]]:
    """The :func:`_operand_grid` enumeration, in bounded-size blocks.

    Blocks split along the *a* axis (each *a* value contributes
    ``2^(width+1)`` cases), preserving the full-grid case order.  Yields
    ``(a_start, a, b, cin)``; *a_start* is the block's cursor, which the
    checkpointing enumerators persist so a resumed run continues from
    the first unvisited block.
    """
    values = np.arange(1 << width, dtype=np.int64)
    if step is None:
        step = _block_step(width)
    for start in range(start_a, values.size, step):
        a, b, cin = np.meshgrid(
            values[start:start + step], values,
            np.array([0, 1], dtype=np.int64), indexing="ij",
        )
        yield start, a.ravel(), b.ravel(), cin.ravel()


def _bit_weights(values: np.ndarray, probs: Sequence[float], width: int) -> np.ndarray:
    """Probability weight of each operand value under per-bit one-probs."""
    weights = np.ones(values.shape, dtype=np.float64)
    for i in range(width):
        bit = (values >> i) & 1
        p = float(probs[i])
        weights *= np.where(bit == 1, p, 1.0 - p)
    return weights


def _check_width(width: int) -> None:
    if width > MAX_EXHAUSTIVE_WIDTH:
        raise AnalysisError(
            f"exhaustive enumeration of a {width}-bit adder would visit "
            f"2^{2 * width + 1} cases; use the analytical engine or the "
            "Monte-Carlo simulator instead"
        )


def _count_cases(width: int) -> int:
    return 1 << (2 * width + 1)


@dataclass(frozen=True)
class ExhaustiveResult:
    """Weighted exhaustive-enumeration outcome with provenance.

    ``cases`` counts the input combinations actually visited.  For a
    complete run it equals ``total_cases`` (= ``2^(2*width+1)``); a run
    stopped early by its budget has ``truncated=True`` and ``p_error``
    is then a *lower bound* (the error mass of the visited prefix).
    """

    p_error: float
    width: int
    cases: int
    manifest: Optional[RunManifest] = None
    truncated: bool = False
    stop_reason: Optional[str] = None
    total_cases: Optional[int] = None

    @property
    def p_success(self) -> float:
        """``1 - p_error``."""
        return 1.0 - self.p_error


def exhaustive_error_probability(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    progress: Optional[ProgressCallback] = None,
) -> float:
    """Exact ``P(output != a + b + cin)`` by weighted enumeration.

    Visits every input combination once and accumulates the probability
    mass of the erroneous ones.  Exact for arbitrary per-bit input
    probabilities; exponential in *width*.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    _check_width(n)
    pa = float_probability_vector(p_a, n, "p_a")
    pb = float_probability_vector(p_b, n, "p_b")
    pc = float(validate_probability(p_cin, "p_cin"))

    total_cases = _count_cases(n)
    reporter = Progress(total_cases, "exhaustive.cases", callback=progress,
                        logger=_logger)
    mass = 0.0
    with _metrics.timed("simulation.exhaustive.enumerate"), \
            trace_span("simulation.exhaustive.enumerate",
                       width=n, cases=total_cases):
        for _, a, b, cin in _iter_operand_blocks(n):
            approx = ripple_add_array(cells, a, b, cin)
            wrong = approx != (a + b + cin)
            weights = (
                _bit_weights(a, pa, n)
                * _bit_weights(b, pb, n)
                * np.where(cin == 1, pc, 1.0 - pc)
            )
            mass += float(weights[wrong].sum())
            reporter.update(a.size)
    reporter.finish()
    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "simulation.exhaustive.cases"
        ).add(total_cases)
    return mass


def exhaustive_report(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    progress: Optional[ProgressCallback] = None,
    budget: Optional[RunBudget] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 1,
    resume: bool = False,
) -> ExhaustiveResult:
    """:func:`exhaustive_error_probability` plus a provenance manifest.

    This is the *resilient* enumeration entry point: it accepts a
    :class:`repro.runtime.RunBudget` (deadline / ``max_cases``, checked
    at block boundaries after at least one block) and a checkpoint path
    (block cursor + accumulated error mass, written atomically every
    *checkpoint_every* blocks).  ``resume=True`` continues from the
    first unvisited block and yields exactly the same mass as an
    uninterrupted run -- blocks partition the grid, and every case is
    visited exactly once.
    """
    watch = StopWatch()
    cells = resolve_chain(cell, width)
    n = len(cells)
    _check_width(n)
    if checkpoint_every < 1:
        raise AnalysisError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    if resume and checkpoint_path is None:
        raise AnalysisError("resume=True requires checkpoint_path")
    pa = float_probability_vector(p_a, n, "p_a")
    pb = float_probability_vector(p_b, n, "p_b")
    pc = float(validate_probability(p_cin, "p_cin"))

    step = _block_step(n, budget)
    total_cases = _count_cases(n)
    fingerprint = config_fingerprint(
        kind="exhaustive", cells=[t.name for t in cells],
        p_a=pa, p_b=pb, p_cin=pc, step=step,
    )
    start_a = 0
    mass = 0.0
    cases_done = 0
    sequence = 0
    if resume:
        saved = load_checkpoint(checkpoint_path, expect_kind="exhaustive",
                                expect_fingerprint=fingerprint)
        start_a = int(saved.payload["next_a_start"])  # type: ignore[arg-type]
        mass = float(saved.payload["mass"])  # type: ignore[arg-type]
        cases_done = int(saved.payload["cases_done"])  # type: ignore[arg-type]
        sequence = saved.sequence
        log_event(_logger, "exhaustive.resumed", next_a_start=start_a,
                  cases_done=cases_done, path=checkpoint_path)

    meter = make_meter(budget)
    stop_reason: Optional[str] = None
    progressed = False
    reporter = Progress(total_cases, "exhaustive.cases", callback=progress,
                        logger=_logger)
    if cases_done:
        reporter.update(cases_done)
    latest_payload: Optional[dict] = None
    blocks_since_save = 0

    def flush(payload: dict) -> None:
        nonlocal sequence, blocks_since_save
        sequence += 1
        save_checkpoint(
            checkpoint_path,
            Checkpoint(kind="exhaustive", fingerprint=fingerprint,
                       payload=payload, sequence=sequence),
        )
        blocks_since_save = 0

    try:
        with _metrics.timed("simulation.exhaustive.enumerate"), \
                trace_span("simulation.exhaustive.report",
                           width=n, cases=total_cases):
            for a_start, a, b, cin in _iter_operand_blocks(n, start_a, step):
                if progressed:
                    stop_reason = meter.stop_reason()
                    if stop_reason is not None:
                        break
                approx = ripple_add_array(cells, a, b, cin)
                wrong = approx != (a + b + cin)
                weights = (
                    _bit_weights(a, pa, n)
                    * _bit_weights(b, pb, n)
                    * np.where(cin == 1, pc, 1.0 - pc)
                )
                mass += float(weights[wrong].sum())
                cases_done += a.size
                progressed = True
                meter.charge(cases=a.size)
                reporter.update(a.size)
                latest_payload = {
                    "next_a_start": a_start + step,
                    "mass": mass,
                    "cases_done": cases_done,
                }
                blocks_since_save += 1
                if (checkpoint_path is not None
                        and blocks_since_save >= checkpoint_every):
                    flush(latest_payload)
                _chaos.tick("exhaustive.block")
    except KeyboardInterrupt:
        if checkpoint_path is not None and latest_payload is not None:
            flush(latest_payload)
        raise
    reporter.finish()
    if checkpoint_path is not None and blocks_since_save > 0 \
            and latest_payload is not None:
        flush(latest_payload)

    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "simulation.exhaustive.cases"
        ).add(cases_done)
    truncated = cases_done < total_cases
    if truncated and stop_reason is None:
        stop_reason = STOP_MAX_CASES
    manifest = build_manifest(
        "exhaustive",
        samples=cases_done,
        cells=[t.name for t in cells],
        wall_time_s=watch.elapsed(),
        budget=budget.as_dict() if budget is not None else None,
        truncated=True if truncated else None,
        stop_reason=stop_reason if truncated else None,
        p_a=pa, p_b=pb, p_cin=pc,
        **({"total_cases": total_cases} if truncated else {}),
    )
    return ExhaustiveResult(
        p_error=mass, width=n, cases=cases_done, manifest=manifest,
        truncated=truncated, stop_reason=stop_reason if truncated else None,
        total_cases=total_cases,
    )


def exhaustive_error_count(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> Tuple[int, int]:
    """Count erroneous cases over all equiprobable inputs.

    Returns ``(errors, total)`` with ``total = 2^(2*width+1)`` -- the
    paper's Table 6 "No. of Simulation Cases" for the finite scenario.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    _check_width(n)
    total_cases = _count_cases(n)
    reporter = Progress(total_cases, "exhaustive.cases", callback=progress,
                        logger=_logger)
    errors = 0
    with _metrics.timed("simulation.exhaustive.enumerate"), \
            trace_span("simulation.exhaustive.count",
                       width=n, cases=total_cases):
        for _, a, b, cin in _iter_operand_blocks(n):
            approx = ripple_add_array(cells, a, b, cin)
            errors += int((approx != (a + b + cin)).sum())
            reporter.update(a.size)
    reporter.finish()
    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "simulation.exhaustive.cases"
        ).add(total_cases)
    return errors, total_cases


def exhaustive_error_pmf(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    progress: Optional[ProgressCallback] = None,
) -> Dict[int, float]:
    """Exact PMF of ``approx - exact`` by weighted enumeration.

    Cross-validates :func:`repro.core.magnitude.error_pmf` (which
    computes the same distribution in polynomial time).
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    _check_width(n)
    pa = float_probability_vector(p_a, n, "p_a")
    pb = float_probability_vector(p_b, n, "p_b")
    pc = float(validate_probability(p_cin, "p_cin"))

    total_cases = _count_cases(n)
    reporter = Progress(total_cases, "exhaustive.cases", callback=progress,
                        logger=_logger)
    pmf: Dict[int, float] = {}
    with _metrics.timed("simulation.exhaustive.enumerate"), \
            trace_span("simulation.exhaustive.pmf",
                       width=n, cases=total_cases):
        for _, a, b, cin in _iter_operand_blocks(n):
            delta = ripple_add_array(cells, a, b, cin) - (a + b + cin)
            weights = (
                _bit_weights(a, pa, n)
                * _bit_weights(b, pb, n)
                * np.where(cin == 1, pc, 1.0 - pc)
            )
            for d in np.unique(delta):
                mass = float(weights[delta == d].sum())
                if mass > 0.0:
                    pmf[int(d)] = pmf.get(int(d), 0.0) + mass
            reporter.update(a.size)
    reporter.finish()
    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "simulation.exhaustive.cases"
        ).add(total_cases)
    return {d: m for d, m in sorted(pmf.items()) if m > 0.0}


@dataclass(frozen=True)
class ExhaustiveQuality:
    """Everything one weighted enumeration pass can report at once.

    ``pmf`` is the exact error-delta law (as
    :func:`exhaustive_error_pmf`), ``mred`` the exact mean relative
    error distance ``E[|D| / max(exact, 1)]`` and ``bias`` the exact
    signed mean error ``E[D]`` -- the two quantities the marginal PMF
    alone cannot (MRED) or should not (re-derive) provide.
    """

    pmf: Dict[int, float]
    mred: float
    bias: float
    width: int
    cases: int


def exhaustive_quality(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    progress: Optional[ProgressCallback] = None,
) -> ExhaustiveQuality:
    """Exact error-delta PMF *plus* MRED and bias in one enumeration.

    The strongest oracle for the engine's distribution kinds: one pass
    over all ``2^(2N+1)`` cases accumulates the error law and, case by
    case, the relative error against the exact sum -- which the
    marginal PMF cannot recover (MRED conditions on the exact value).
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    _check_width(n)
    pa = float_probability_vector(p_a, n, "p_a")
    pb = float_probability_vector(p_b, n, "p_b")
    pc = float(validate_probability(p_cin, "p_cin"))

    total_cases = _count_cases(n)
    reporter = Progress(total_cases, "exhaustive.cases", callback=progress,
                        logger=_logger)
    pmf: Dict[int, float] = {}
    mred = 0.0
    bias = 0.0
    with _metrics.timed("simulation.exhaustive.enumerate"), \
            trace_span("simulation.exhaustive.quality",
                       width=n, cases=total_cases):
        for _, a, b, cin in _iter_operand_blocks(n):
            exact = a + b + cin
            delta = ripple_add_array(cells, a, b, cin) - exact
            weights = (
                _bit_weights(a, pa, n)
                * _bit_weights(b, pb, n)
                * np.where(cin == 1, pc, 1.0 - pc)
            )
            for d in np.unique(delta):
                mass = float(weights[delta == d].sum())
                if mass > 0.0:
                    pmf[int(d)] = pmf.get(int(d), 0.0) + mass
            abs_delta = np.abs(delta).astype(np.float64)
            mred += float((weights * abs_delta
                           / np.maximum(exact, 1)).sum())
            bias += float((weights * delta).sum())
            reporter.update(a.size)
    reporter.finish()
    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "simulation.exhaustive.cases"
        ).add(total_cases)
    return ExhaustiveQuality(
        pmf={d: m for d, m in sorted(pmf.items()) if m > 0.0},
        mred=mred, bias=bias, width=n, cases=total_cases,
    )
