"""Exhaustive simulation of approximate adders (the paper's baseline).

The paper validates its analytical numbers against exhaustive
simulation: all ``2^(2N+1)`` combinations of two N-bit operands and the
carry-in (paper Table 6's "Finite" row uses this for equiprobable
inputs).  This module implements that baseline with two refinements:

* :func:`exhaustive_error_probability` enumerates *weighted* cases, so
  it is exact for **any** per-bit input probabilities, not only the
  equiprobable case -- this is the strongest available oracle for the
  analytical engine and is what the paper's 100%-match claim is checked
  against;
* :func:`exhaustive_error_count` reproduces the paper's plain
  equiprobable count (errors / total cases);
* :func:`exhaustive_error_pmf` additionally bins the numeric error,
  cross-validating :mod:`repro.core.magnitude`;
* :func:`exhaustive_report` wraps the weighted oracle in an
  :class:`ExhaustiveResult` carrying a provenance manifest.

Cost is exponential in N (that is the paper's Fig. 1 point); the
functions refuse absurd widths instead of hanging.  Enumeration runs in
fixed-size blocks, so memory stays bounded and long runs report
progress instead of going dark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.exceptions import AnalysisError
from ..core.recursive import CellSpec, resolve_chain
from ..core.types import Probability, validate_probability, validate_probability_vector
from ..obs import metrics as _metrics
from ..obs.log import Progress, ProgressCallback, get_logger
from ..obs.provenance import RunManifest, StopWatch, build_manifest
from ..obs.tracing import trace_span
from .functional import ripple_add_array

#: Widths above this would enumerate > 2^33 cases; refuse rather than hang.
MAX_EXHAUSTIVE_WIDTH = 16

#: Target cases per enumeration block (bounds peak memory per chunk).
BLOCK_CASES = 1 << 21

_logger = get_logger("simulation.exhaustive")


def _operand_grid(width: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All ``2^(2*width+1)`` (a, b, cin) combinations as flat arrays."""
    values = np.arange(1 << width, dtype=np.int64)
    a, b, cin = np.meshgrid(values, values, np.array([0, 1], dtype=np.int64),
                            indexing="ij")
    return a.ravel(), b.ravel(), cin.ravel()


def _iter_operand_blocks(
    width: int,
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """The :func:`_operand_grid` enumeration, in bounded-size blocks.

    Blocks split along the *a* axis (each *a* value contributes
    ``2^(width+1)`` cases), preserving the full-grid case order.
    """
    values = np.arange(1 << width, dtype=np.int64)
    per_a = 1 << (width + 1)
    step = max(1, BLOCK_CASES // per_a)
    for start in range(0, values.size, step):
        a, b, cin = np.meshgrid(
            values[start:start + step], values,
            np.array([0, 1], dtype=np.int64), indexing="ij",
        )
        yield a.ravel(), b.ravel(), cin.ravel()


def _bit_weights(values: np.ndarray, probs: Sequence[float], width: int) -> np.ndarray:
    """Probability weight of each operand value under per-bit one-probs."""
    weights = np.ones(values.shape, dtype=np.float64)
    for i in range(width):
        bit = (values >> i) & 1
        p = float(probs[i])
        weights *= np.where(bit == 1, p, 1.0 - p)
    return weights


def _check_width(width: int) -> None:
    if width > MAX_EXHAUSTIVE_WIDTH:
        raise AnalysisError(
            f"exhaustive enumeration of a {width}-bit adder would visit "
            f"2^{2 * width + 1} cases; use the analytical engine or the "
            "Monte-Carlo simulator instead"
        )


def _count_cases(width: int) -> int:
    return 1 << (2 * width + 1)


@dataclass(frozen=True)
class ExhaustiveResult:
    """Weighted exhaustive-enumeration outcome with provenance."""

    p_error: float
    width: int
    cases: int
    manifest: Optional[RunManifest] = None

    @property
    def p_success(self) -> float:
        """``1 - p_error``."""
        return 1.0 - self.p_error


def exhaustive_error_probability(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    progress: Optional[ProgressCallback] = None,
) -> float:
    """Exact ``P(output != a + b + cin)`` by weighted enumeration.

    Visits every input combination once and accumulates the probability
    mass of the erroneous ones.  Exact for arbitrary per-bit input
    probabilities; exponential in *width*.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    _check_width(n)
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    pc = float(validate_probability(p_cin, "p_cin"))

    total_cases = _count_cases(n)
    reporter = Progress(total_cases, "exhaustive.cases", callback=progress,
                        logger=_logger)
    mass = 0.0
    with _metrics.timed("simulation.exhaustive.enumerate"), \
            trace_span("simulation.exhaustive.enumerate",
                       width=n, cases=total_cases):
        for a, b, cin in _iter_operand_blocks(n):
            approx = ripple_add_array(cells, a, b, cin)
            wrong = approx != (a + b + cin)
            weights = (
                _bit_weights(a, pa, n)
                * _bit_weights(b, pb, n)
                * np.where(cin == 1, pc, 1.0 - pc)
            )
            mass += float(weights[wrong].sum())
            reporter.update(a.size)
    reporter.finish()
    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "simulation.exhaustive.cases"
        ).add(total_cases)
    return mass


def exhaustive_report(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    progress: Optional[ProgressCallback] = None,
) -> ExhaustiveResult:
    """:func:`exhaustive_error_probability` plus a provenance manifest."""
    watch = StopWatch()
    cells = resolve_chain(cell, width)
    n = len(cells)
    p_error = exhaustive_error_probability(cells, None, p_a, p_b, p_cin,
                                           progress=progress)
    manifest = build_manifest(
        "exhaustive",
        samples=_count_cases(n),
        cells=[t.name for t in cells],
        wall_time_s=watch.elapsed(),
        p_a=[float(p) for p in validate_probability_vector(p_a, n, "p_a")],
        p_b=[float(p) for p in validate_probability_vector(p_b, n, "p_b")],
        p_cin=float(validate_probability(p_cin, "p_cin")),
    )
    return ExhaustiveResult(p_error=p_error, width=n, cases=_count_cases(n),
                            manifest=manifest)


def exhaustive_error_count(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> Tuple[int, int]:
    """Count erroneous cases over all equiprobable inputs.

    Returns ``(errors, total)`` with ``total = 2^(2*width+1)`` -- the
    paper's Table 6 "No. of Simulation Cases" for the finite scenario.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    _check_width(n)
    total_cases = _count_cases(n)
    reporter = Progress(total_cases, "exhaustive.cases", callback=progress,
                        logger=_logger)
    errors = 0
    with _metrics.timed("simulation.exhaustive.enumerate"), \
            trace_span("simulation.exhaustive.count",
                       width=n, cases=total_cases):
        for a, b, cin in _iter_operand_blocks(n):
            approx = ripple_add_array(cells, a, b, cin)
            errors += int((approx != (a + b + cin)).sum())
            reporter.update(a.size)
    reporter.finish()
    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "simulation.exhaustive.cases"
        ).add(total_cases)
    return errors, total_cases


def exhaustive_error_pmf(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    progress: Optional[ProgressCallback] = None,
) -> Dict[int, float]:
    """Exact PMF of ``approx - exact`` by weighted enumeration.

    Cross-validates :func:`repro.core.magnitude.error_pmf` (which
    computes the same distribution in polynomial time).
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    _check_width(n)
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    pc = float(validate_probability(p_cin, "p_cin"))

    total_cases = _count_cases(n)
    reporter = Progress(total_cases, "exhaustive.cases", callback=progress,
                        logger=_logger)
    pmf: Dict[int, float] = {}
    with _metrics.timed("simulation.exhaustive.enumerate"), \
            trace_span("simulation.exhaustive.pmf",
                       width=n, cases=total_cases):
        for a, b, cin in _iter_operand_blocks(n):
            delta = ripple_add_array(cells, a, b, cin) - (a + b + cin)
            weights = (
                _bit_weights(a, pa, n)
                * _bit_weights(b, pb, n)
                * np.where(cin == 1, pc, 1.0 - pc)
            )
            for d in np.unique(delta):
                mass = float(weights[delta == d].sum())
                if mass > 0.0:
                    pmf[int(d)] = pmf.get(int(d), 0.0) + mass
            reporter.update(a.size)
    reporter.finish()
    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "simulation.exhaustive.cases"
        ).add(total_cases)
    return {d: m for d, m in sorted(pmf.items()) if m > 0.0}
