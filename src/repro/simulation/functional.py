"""Functional (bit-true) simulation of multi-bit approximate adders.

This is the behavioural substrate every simulation-based experiment in
the paper rests on: ripple an N-bit addition through single-bit cell
truth tables and return the (N+1)-bit result.  Two implementations:

* :func:`ripple_add` -- scalar integers, the readable reference;
* :func:`ripple_add_array` -- NumPy arrays of operands evaluated
  simultaneously via per-cell lookup tables (used by the Monte-Carlo
  engine where millions of additions are needed).

Both support hybrid chains (per-stage cell lists).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.exceptions import ChainLengthError, TruthTableError
from ..core.recursive import CellSpec, resolve_chain
from ..core.truth_table import FullAdderTruthTable
from ..core.types import row_index, validate_bit


def ripple_add(
    cell: Union[CellSpec, Sequence[CellSpec]],
    a: int,
    b: int,
    cin: int = 0,
    width: Optional[int] = None,
) -> int:
    """Add *a* and *b* through a ripple chain of approximate cells.

    Parameters
    ----------
    cell:
        Cell name / truth table, or a per-stage list for hybrid chains.
    a, b:
        Unsigned operands; must fit in *width* bits.
    cin:
        Carry-in bit of stage 0.
    width:
        Adder width N (required for a uniform chain spec).

    Returns
    -------
    int
        The (N+1)-bit result: N sum bits plus the final carry at bit N.
        Equals ``a + b + cin`` when every stage behaves accurately.

    >>> from repro.core.adders import LPAA5
    >>> ripple_add(LPAA5, 3, 1, 0, 2)   # 3+1 through 2-bit LPAA 5: errs
    5
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    if a < 0 or b < 0:
        raise ChainLengthError(f"operands must be non-negative, got {a}, {b}")
    if a >= 1 << n or b >= 1 << n:
        raise ChainLengthError(
            f"operands must fit in {n} bits, got a={a}, b={b}"
        )
    carry = validate_bit(cin, "cin")
    result = 0
    for i, table in enumerate(cells):
        s, carry = table.evaluate((a >> i) & 1, (b >> i) & 1, carry)
        result |= s << i
    return result | (carry << n)


def exact_add(a: int, b: int, cin: int = 0) -> int:
    """The reference result ``a + b + cin`` (kept for symmetric call sites)."""
    return a + b + validate_bit(cin, "cin")


def _lookup_tables(
    cells: Sequence[FullAdderTruthTable],
) -> List[np.ndarray]:
    """Per-stage ``(8, 2)`` uint8 lookup arrays indexed by the row index."""
    tables = []
    for table in cells:
        lut = np.asarray(table.rows, dtype=np.uint8)
        if lut.shape != (8, 2):
            raise TruthTableError(f"malformed truth table {table!r}")
        tables.append(lut)
    return tables


def ripple_add_array(
    cell: Union[CellSpec, Sequence[CellSpec]],
    a: np.ndarray,
    b: np.ndarray,
    cin: Union[int, np.ndarray] = 0,
    width: Optional[int] = None,
) -> np.ndarray:
    """Vectorised :func:`ripple_add` over arrays of operands.

    *a*, *b* (and optionally *cin*) are equal-shaped unsigned integer
    arrays; the return value holds the (N+1)-bit approximate results.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape:
        raise ChainLengthError(
            f"operand arrays must share a shape, got {a.shape} vs {b.shape}"
        )
    if (a < 0).any() or (b < 0).any():
        raise ChainLengthError("operands must be non-negative")
    if (a >= 1 << n).any() or (b >= 1 << n).any():
        raise ChainLengthError(f"operands must fit in {n} bits")
    carry = np.broadcast_to(np.asarray(cin, dtype=np.int64), a.shape).copy()
    if ((carry < 0) | (carry > 1)).any():
        raise TruthTableError("cin entries must be 0 or 1")

    result = np.zeros_like(a)
    for i, lut in enumerate(_lookup_tables(cells)):
        a_bit = (a >> i) & 1
        b_bit = (b >> i) & 1
        idx = (a_bit << 2) | (b_bit << 1) | carry
        result |= lut[idx, 0].astype(np.int64) << i
        carry = lut[idx, 1].astype(np.int64)
    return result | (carry << n)


# Static check: the scalar row addressing and the vectorised one must be
# the same function; keep them visibly adjacent.
assert row_index(1, 0, 1) == (1 << 2) | (0 << 1) | 1
