"""Process-local metrics: counters, gauges, histograms and timers.

The registry is deliberately tiny and dependency-free.  Everything is
built around three rules:

* **near-zero overhead when disabled** -- instrumented call sites guard
  on :func:`is_enabled` (one module-global read) and skip all metric
  work, so the hot analytical loops pay a single boolean check;
* **contextvar scoping** -- the *active* registry lives in a
  `contextvars.ContextVar`, so concurrent runs (threads, asyncio tasks,
  nested CLI invocations in tests) can each collect into their own
  registry via :func:`use_registry` without seeing each other's numbers.
  The default is one shared process-global registry;
* **bounded memory, mergeable state** -- no metric retains unbounded
  per-sample state.  Distributions live in :class:`Histogram` (fixed
  exponential buckets) plus, for :class:`Timer`, a deterministic
  rolling window of the most recent samples.  Bucket counts and the
  exact count/total/min/max scalars add, so worker-process deltas fold
  back into the parent registry (:meth:`MetricsRegistry.merge_state`)
  the same way the stage-matrix cache merges hit/miss deltas.

Quantile-accuracy contract
--------------------------

Two estimators coexist, with different guarantees:

* *Rolling-window quantiles* (``Timer.stats()``): exact nearest-rank
  quantiles over the **last** :data:`TIMER_WINDOW` ``observe()`` calls
  in this process.  Deterministic -- the window is the most recent N
  samples, never a random reservoir -- so repeated runs of the same
  workload report identical quantiles.
* *Bucketed quantiles* (``Histogram.quantile()`` and everything that
  crosses a process boundary): the sample count per exponential bucket
  is exact; a quantile is reported as the geometric midpoint of its
  bucket, so the relative error of any reported quantile is bounded by
  ``sqrt(HISTOGRAM_FACTOR)`` (about +/-19% with the default
  ``sqrt(2)`` spacing).  Counts merge exactly; only the position
  *within* a bucket is approximate.

Snapshot documents are plain JSON (``sealpaa-metrics-v1``) so they can
be written by ``--metrics-out``, re-read by ``sealpaa obs``, scraped
from ``sealpaa serve``'s ``/metrics``, and rendered to Prometheus text
exposition by :mod:`repro.obs.prometheus`.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

METRICS_FORMAT = "sealpaa-metrics-v1"

#: Rolling-window capacity per timer: the most recent N samples, kept
#: for exact short-horizon quantiles (p50/p95/p99 of *recent* traffic).
#: Deterministic by construction -- last-N, not a random reservoir --
#: and a hard memory cap: 2048 floats (16 KiB) per timer, however long
#: the process lives.
TIMER_WINDOW = 2048

#: Smallest bucket upper bound of the default exponential ladder, in
#: the metric's native unit (seconds for timers): 1 microsecond.
HISTOGRAM_MIN = 1e-6

#: Ratio between consecutive bucket bounds.  ``sqrt(2)`` bounds the
#: relative error of any bucketed quantile by ``2**0.25`` (~19%).
HISTOGRAM_FACTOR = 2.0 ** 0.5

#: Number of finite buckets: 56 half-octaves span 1 us .. ~268 s; an
#: implicit overflow bucket (``+Inf``) catches everything beyond.
HISTOGRAM_BUCKETS = 56

#: The default bucket upper bounds (``le`` values, ascending).
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    HISTOGRAM_MIN * HISTOGRAM_FACTOR ** i for i in range(HISTOGRAM_BUCKETS)
)


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-write-wins scalar (e.g. a frontier size)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket exponential histogram with exact, mergeable counts.

    Buckets follow the Prometheus classic-histogram convention: bucket
    ``i`` counts observations ``<= bounds[i]``; one implicit overflow
    bucket catches values above the last bound.  Per-bucket counts and
    the count/sum/min/max scalars are exact and *add*, so two
    histograms over the same bounds merge losslessly
    (:meth:`merge_state`) -- the property the parallel executor relies
    on to fold worker deltas into the parent registry.

    Memory is a fixed ``len(bounds) + 1`` integers per histogram no
    matter how many observations arrive.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS):
        if not bounds or list(bounds) != sorted(float(b) for b in bounds):
            raise ValueError("bucket bounds must be non-empty and ascending")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # + overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (thread-safe)."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is overflow."""
        with self._lock:
            return list(self._counts)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs.

        The final pair is ``(inf, total_count)`` -- the ``+Inf`` bucket.
        """
        with self._lock:
            counts = list(self._counts)
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + counts[-1]))
        return pairs

    def _quantile_locked(self, counts: List[int], q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = q * (self._count - 1)
        running = 0
        for index, count in enumerate(counts):
            running += count
            if running > rank:
                break
        else:
            index = len(counts) - 1
        if index >= len(self.bounds):  # overflow bucket
            estimate = self._max
        else:
            hi = self.bounds[index]
            lo = (self.bounds[index - 1] if index
                  else hi / HISTOGRAM_FACTOR)
            # geometric midpoint: relative error <= sqrt(factor)
            estimate = (lo * hi) ** 0.5
        return min(max(estimate, self._min), self._max)

    def quantile(self, q: float) -> float:
        """Bucketed quantile estimate (see the module accuracy contract)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
        return self._quantile_locked(counts, q)

    def stats(self) -> Dict[str, float]:
        """Aggregate view: count/total plus bucketed p50/p95/p99."""
        with self._lock:
            count = self._count
            total = self._sum
            lo = self._min
            hi = self._max
            counts = list(self._counts)
        if count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": count,
            "total": total,
            "min": lo,
            "mean": total / count,
            "p50": self._quantile_locked(counts, 0.50),
            "p95": self._quantile_locked(counts, 0.95),
            "p99": self._quantile_locked(counts, 0.99),
            "max": hi,
        }

    # -- mergeable state ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serialisable delta state (counts + exact scalars)."""
        with self._lock:
            return {
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }

    def merge_state(self, state: Mapping[str, object]) -> None:
        """Fold another histogram's :meth:`state_dict` into this one.

        Bucket counts add exactly; the two histograms must share bucket
        bounds (always true for states produced by the same code).
        """
        counts = list(state.get("counts") or [])
        if len(counts) != len(self._counts):
            raise ValueError(
                f"bucket mismatch: got {len(counts)} buckets, "
                f"have {len(self._counts)}"
            )
        count = int(state.get("count") or 0)
        if count == 0:
            return
        other_min = state.get("min")
        other_max = state.get("max")
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += int(c)
            self._count += count
            self._sum += float(state.get("sum") or 0.0)
            if other_min is not None and float(other_min) < self._min:
                self._min = float(other_min)
            if other_max is not None and float(other_max) > self._max:
                self._max = float(other_max)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready document: stats plus non-empty cumulative buckets."""
        doc: Dict[str, object] = self.stats()
        buckets = [
            [bound if bound != float("inf") else "+Inf", cumulative]
            for bound, cumulative in self.cumulative_buckets()
        ]
        total = buckets[-1][1]  # the +Inf cumulative count
        if total == 0:
            doc["buckets"] = []
            return doc
        # Trim the empty head and the saturated tail: keep the span of
        # buckets that actually discriminate, plus the final +Inf total
        # (cumulative counts stay self-describing either way).
        first = next(i for i, (_, c) in enumerate(buckets) if c)
        last = next(i for i, (_, c) in enumerate(buckets) if c == total)
        doc["buckets"] = buckets[first:last + 1] + (
            [buckets[-1]] if last < len(buckets) - 1 else [])
        return doc


class Timer:
    """Duration metric: exact scalars, bucketed whole-run distribution,
    and a deterministic rolling window for exact recent quantiles.

    ``stats()`` quantiles are nearest-rank over the **last**
    :data:`TIMER_WINDOW` samples -- an exact description of recent
    behaviour (the window the serving layer's SLO evaluation reads).
    The embedded :class:`Histogram` carries the whole-run distribution
    in bounded memory and is what merges across process boundaries.
    """

    __slots__ = ("name", "_hist", "_window", "_window_pos", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._hist = Histogram(name)
        self._window: List[float] = []
        self._window_pos = 0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one duration in seconds."""
        seconds = float(seconds)
        self._hist.observe(seconds)
        with self._lock:
            if len(self._window) < TIMER_WINDOW:
                self._window.append(seconds)
            else:
                self._window[self._window_pos] = seconds
                self._window_pos = (self._window_pos + 1) % TIMER_WINDOW

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager recording the elapsed wall time."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def count(self) -> int:
        return self._hist.count

    @property
    def total(self) -> float:
        return self._hist.sum

    @property
    def histogram(self) -> Histogram:
        """The bounded whole-run distribution behind this timer."""
        return self._hist

    @staticmethod
    def _quantile(ordered: List[float], q: float) -> float:
        """Nearest-rank quantile of a pre-sorted sample list."""
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def stats(self) -> Dict[str, float]:
        """Count/total/min/mean/max (exact, whole run) + p50/p95/p99
        (exact nearest-rank over the rolling window)."""
        hist_stats = self._hist.stats()
        with self._lock:
            ordered = sorted(self._window)
        count = int(hist_stats["count"])
        if count == 0:
            return {"count": 0, "total_s": 0.0, "min_s": 0.0, "mean_s": 0.0,
                    "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0, "max_s": 0.0}
        if ordered:
            p50 = self._quantile(ordered, 0.50)
            p95 = self._quantile(ordered, 0.95)
            p99 = self._quantile(ordered, 0.99)
        else:
            # merged-only timer: no local window; fall back to buckets
            p50, p95, p99 = (hist_stats["p50"], hist_stats["p95"],
                             hist_stats["p99"])
        return {
            "count": count,
            "total_s": hist_stats["total"],
            "min_s": hist_stats["min"],
            "mean_s": hist_stats["mean"],
            "p50_s": p50,
            "p95_s": p95,
            "p99_s": p99,
            "max_s": hist_stats["max"],
        }

    def snapshot(self) -> Dict[str, object]:
        """``stats()`` plus the cumulative bucket pairs, JSON-ready."""
        doc: Dict[str, object] = dict(self.stats())
        hist_doc = self._hist.snapshot()
        doc["buckets"] = hist_doc["buckets"]
        return doc

    # -- mergeable state ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serialisable whole-run state (bucket counts + scalars).

        The rolling window deliberately stays process-local: windows
        from concurrent processes interleave non-deterministically, and
        merged quantiles come from the exact bucket counts instead.
        """
        return self._hist.state_dict()

    def merge_state(self, state: Mapping[str, object]) -> None:
        """Fold a worker timer's :meth:`state_dict` into this one."""
        self._hist.merge_state(state)


class MetricsRegistry:
    """A named collection of counters, gauges, histograms and timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS,
                  ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def timer(self, name: str) -> Timer:
        with self._lock:
            metric = self._timers.get(name)
            if metric is None:
                metric = self._timers[name] = Timer(name)
        return metric

    def reset(self) -> None:
        """Drop every metric (used between runs / tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._timers.clear()

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready ``sealpaa-metrics-v1`` document of all metrics."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            timers = dict(self._timers)
        return {
            "format": METRICS_FORMAT,
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {k: h.snapshot()
                           for k, h in sorted(histograms.items())},
            "timers": {k: t.snapshot() for k, t in sorted(timers.items())},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    # -- cross-process delta merging ---------------------------------------

    def export_state(
        self, exclude_prefixes: Sequence[str] = ()
    ) -> Dict[str, object]:
        """Serialisable delta document for :meth:`merge_state`.

        Counters export their values, timers and histograms their
        bucketed states.  Gauges are last-write-wins and meaningless to
        add, so they are excluded.  *exclude_prefixes* drops metric
        families merged through a different channel (the parallel
        executor excludes ``engine.cache.*``, which travels with the
        stage-matrix cache deltas instead).
        """
        def keep(name: str) -> bool:
            return not any(name.startswith(p) for p in exclude_prefixes)

        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            timers = dict(self._timers)
        return {
            "counters": {k: c.value for k, c in counters.items()
                         if keep(k) and c.value},
            "histograms": {k: h.state_dict() for k, h in histograms.items()
                           if keep(k) and h.count},
            "timers": {k: t.state_dict() for k, t in timers.items()
                       if keep(k) and t.count},
        }

    def merge_state(self, state: Optional[Mapping[str, object]]) -> None:
        """Fold a worker registry's :meth:`export_state` into this one.

        Bucket counts and counter values add exactly, so merging N
        worker deltas in any order equals having observed every sample
        in one registry -- the property the parallel-merge regression
        tests pin.
        """
        if not state:
            return
        for name, value in (state.get("counters") or {}).items():
            self.counter(str(name)).add(int(value))
        for name, hist_state in (state.get("histograms") or {}).items():
            self.histogram(str(name)).merge_state(hist_state)
        for name, timer_state in (state.get("timers") or {}).items():
            self.timer(str(name)).merge_state(timer_state)


#: The process-global default registry.
GLOBAL_REGISTRY = MetricsRegistry()

_registry_var: ContextVar[MetricsRegistry] = ContextVar(
    "sealpaa_metrics_registry", default=GLOBAL_REGISTRY
)

#: Collection switch; kept as a plain module global so the disabled-path
#: cost at instrumented call sites is one function call + one bool read.
_enabled = False


def is_enabled() -> bool:
    """``True`` when metric collection is switched on."""
    return _enabled


def enable() -> None:
    """Switch metric collection on (process-wide)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Switch metric collection off (instrumentation becomes free)."""
    global _enabled
    _enabled = False


def get_registry() -> MetricsRegistry:
    """The registry active in the current context."""
    return _registry_var.get()


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope *registry* as the active one for the enclosed block.

    Context-local: other threads / contexts keep their own registry.
    """
    token = _registry_var.set(registry)
    try:
        yield registry
    finally:
        _registry_var.reset(token)


# -- cheap module-level helpers used by instrumented code ----------------------

def inc(name: str, n: int = 1) -> None:
    """Add *n* to counter *name* (no-op while disabled)."""
    if _enabled:
        get_registry().counter(name).add(n)


def set_gauge(name: str, value: float) -> None:
    """Set gauge *name* (no-op while disabled)."""
    if _enabled:
        get_registry().gauge(name).set(value)


def observe(name: str, seconds: float) -> None:
    """Record a duration on timer *name* (no-op while disabled)."""
    if _enabled:
        get_registry().timer(name).observe(seconds)


def observe_histogram(name: str, value: float) -> None:
    """Record *value* on histogram *name* (no-op while disabled)."""
    if _enabled:
        get_registry().histogram(name).observe(value)


class _NullTimerContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMER = _NullTimerContext()


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer):
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.observe(time.perf_counter() - self._start)


def timed(name: str):
    """``with timed("stage"):`` -- records wall time when enabled,
    otherwise returns a shared no-op context."""
    if not _enabled:
        return _NULL_TIMER
    return _TimerContext(get_registry().timer(name))


def snapshot_to_json(path: str, registry: Optional[MetricsRegistry] = None,
                     ) -> Mapping[str, object]:
    """Write the active (or given) registry snapshot to *path*."""
    reg = registry if registry is not None else get_registry()
    doc = reg.snapshot()
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    return doc
