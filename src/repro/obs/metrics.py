"""Process-local metrics: counters, gauges and timers.

The registry is deliberately tiny and dependency-free.  Everything is
built around two rules:

* **near-zero overhead when disabled** -- instrumented call sites guard
  on :func:`is_enabled` (one module-global read) and skip all metric
  work, so the hot analytical loops pay a single boolean check;
* **contextvar scoping** -- the *active* registry lives in a
  `contextvars.ContextVar`, so concurrent runs (threads, asyncio tasks,
  nested CLI invocations in tests) can each collect into their own
  registry via :func:`use_registry` without seeing each other's numbers.
  The default is one shared process-global registry.

Snapshot documents are plain JSON (``sealpaa-metrics-v1``) so they can
be written by ``--metrics-out`` and re-read by ``sealpaa obs``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Mapping, Optional

METRICS_FORMAT = "sealpaa-metrics-v1"

#: Ring-buffer capacity per timer: enough for every realistic run here
#: (Monte-Carlo batches, per-stage spans); beyond it the oldest samples
#: are overwritten so percentiles describe a recent window.
TIMER_RESERVOIR = 8192


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-write-wins scalar (e.g. a frontier size)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Timer:
    """Duration histogram with exact count/total/min/max and
    reservoir-based percentiles."""

    __slots__ = ("name", "_count", "_total", "_min", "_max", "_samples",
                 "_lock")

    def __init__(self, name: str):
        self.name = name
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = 0.0
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one duration in seconds."""
        with self._lock:
            if len(self._samples) < TIMER_RESERVOIR:
                self._samples.append(seconds)
            else:
                self._samples[self._count % TIMER_RESERVOIR] = seconds
            self._count += 1
            self._total += seconds
            if seconds < self._min:
                self._min = seconds
            if seconds > self._max:
                self._max = seconds

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager recording the elapsed wall time."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @staticmethod
    def _quantile(ordered: List[float], q: float) -> float:
        """Nearest-rank quantile of a pre-sorted sample list."""
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def stats(self) -> Dict[str, float]:
        """Aggregate view: count, total and min/mean/p50/p95/max seconds."""
        with self._lock:
            count = self._count
            total = self._total
            lo = self._min
            hi = self._max
            ordered = sorted(self._samples)
        if count == 0:
            return {"count": 0, "total_s": 0.0, "min_s": 0.0, "mean_s": 0.0,
                    "p50_s": 0.0, "p95_s": 0.0, "max_s": 0.0}
        return {
            "count": count,
            "total_s": total,
            "min_s": lo,
            "mean_s": total / count,
            "p50_s": self._quantile(ordered, 0.50),
            "p95_s": self._quantile(ordered, 0.95),
            "max_s": hi,
        }


class MetricsRegistry:
    """A named collection of counters, gauges and timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
        return metric

    def timer(self, name: str) -> Timer:
        with self._lock:
            metric = self._timers.get(name)
            if metric is None:
                metric = self._timers[name] = Timer(name)
        return metric

    def reset(self) -> None:
        """Drop every metric (used between runs / tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready ``sealpaa-metrics-v1`` document of all metrics."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            timers = dict(self._timers)
        return {
            "format": METRICS_FORMAT,
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "timers": {k: t.stats() for k, t in sorted(timers.items())},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)


#: The process-global default registry.
GLOBAL_REGISTRY = MetricsRegistry()

_registry_var: ContextVar[MetricsRegistry] = ContextVar(
    "sealpaa_metrics_registry", default=GLOBAL_REGISTRY
)

#: Collection switch; kept as a plain module global so the disabled-path
#: cost at instrumented call sites is one function call + one bool read.
_enabled = False


def is_enabled() -> bool:
    """``True`` when metric collection is switched on."""
    return _enabled


def enable() -> None:
    """Switch metric collection on (process-wide)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Switch metric collection off (instrumentation becomes free)."""
    global _enabled
    _enabled = False


def get_registry() -> MetricsRegistry:
    """The registry active in the current context."""
    return _registry_var.get()


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope *registry* as the active one for the enclosed block.

    Context-local: other threads / contexts keep their own registry.
    """
    token = _registry_var.set(registry)
    try:
        yield registry
    finally:
        _registry_var.reset(token)


# -- cheap module-level helpers used by instrumented code ----------------------

def inc(name: str, n: int = 1) -> None:
    """Add *n* to counter *name* (no-op while disabled)."""
    if _enabled:
        get_registry().counter(name).add(n)


def set_gauge(name: str, value: float) -> None:
    """Set gauge *name* (no-op while disabled)."""
    if _enabled:
        get_registry().gauge(name).set(value)


def observe(name: str, seconds: float) -> None:
    """Record a duration on timer *name* (no-op while disabled)."""
    if _enabled:
        get_registry().timer(name).observe(seconds)


class _NullTimerContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMER = _NullTimerContext()


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer):
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.observe(time.perf_counter() - self._start)


def timed(name: str):
    """``with timed("stage"):`` -- records wall time when enabled,
    otherwise returns a shared no-op context."""
    if not _enabled:
        return _NULL_TIMER
    return _TimerContext(get_registry().timer(name))


def snapshot_to_json(path: str, registry: Optional[MetricsRegistry] = None,
                     ) -> Mapping[str, object]:
    """Write the active (or given) registry snapshot to *path*."""
    reg = registry if registry is not None else get_registry()
    doc = reg.snapshot()
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    return doc
