"""Structured logging and progress reporting for long-running loops.

Loggers live under the ``repro`` hierarchy and default to silent (a
`NullHandler` on the root package logger), so the library never spams
stderr unless the application -- usually the CLI via
:func:`configure_logging` -- opts in.

:func:`log_event` renders ``event key=value ...`` lines: greppable,
diffable, and trivially machine-parseable without a JSON logger
dependency.

:class:`Progress` turns a silent million-sample loop into periodic
heartbeats.  It is deliberately deterministic -- it reports when the
completed fraction crosses 10% boundaries (not on wall-clock timers), so
test assertions about callback cadence are stable.
"""

from __future__ import annotations

import logging
import sys
from typing import Callable, Optional

#: Root of the package logger hierarchy.
ROOT_LOGGER_NAME = "repro"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

#: ``callback(done, total, label)`` signature for progress consumers.
ProgressCallback = Callable[[int, int, str], None]


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def format_event(event: str, **fields: object) -> str:
    """Render ``event key=value ...`` with stable field order."""
    parts = [event]
    for key, value in fields.items():
        if isinstance(value, float):
            rendered = f"{value:.6g}"
        else:
            rendered = str(value)
        if " " in rendered:
            rendered = f'"{rendered}"'
        parts.append(f"{key}={rendered}")
    return " ".join(parts)


def log_event(logger: logging.Logger, event: str,
              level: int = logging.INFO, **fields: object) -> None:
    """Emit a structured ``event key=value ...`` record."""
    if logger.isEnabledFor(level):
        logger.log(level, format_event(event, **fields))


def configure_logging(verbosity: int = 0, stream=None) -> None:
    """Wire the ``repro`` logger to *stream* at a verbosity level.

    ``0`` -> WARNING, ``1`` -> INFO, ``>=2`` -> DEBUG.  Replaces any
    handler installed by a previous call (idempotent for the CLI).
    """
    level = (logging.WARNING, logging.INFO, logging.DEBUG)[min(verbosity, 2)]
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname).1s %(name)s: %(message)s")
    )
    root.addHandler(handler)
    root.setLevel(level)


class Progress:
    """Deterministic decile progress reporter for counted loops.

    Calls *callback* (and logs at INFO) every time the completed
    fraction crosses a 10% boundary, plus once at completion.  Safe to
    construct unconditionally: with no callback and logging disabled it
    reduces to two integer comparisons per :meth:`update`.
    """

    __slots__ = ("total", "label", "callback", "_logger", "_done",
                 "_next_decile")

    def __init__(
        self,
        total: int,
        label: str,
        callback: Optional[ProgressCallback] = None,
        logger: Optional[logging.Logger] = None,
    ):
        self.total = max(int(total), 1)
        self.label = label
        self.callback = callback
        self._logger = logger or get_logger("progress")
        self._done = 0
        self._next_decile = 1

    @property
    def done(self) -> int:
        return self._done

    def update(self, n: int = 1) -> None:
        """Advance by *n* completed units."""
        self._done += n
        decile = (10 * self._done) // self.total
        if decile >= self._next_decile:
            self._next_decile = decile + 1
            self._report()

    def _report(self) -> None:
        if self.callback is not None:
            self.callback(self._done, self.total, self.label)
        log_event(
            self._logger, "progress", label=self.label,
            done=self._done, total=self.total,
            pct=round(100.0 * self._done / self.total, 1),
        )

    def finish(self) -> None:
        """Force a final report if the loop ended between deciles."""
        if self._done < self.total:
            self._done = self.total
        if self._next_decile <= 10:
            self._next_decile = 11
            self._report()
