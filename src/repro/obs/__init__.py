"""Observability: metrics, tracing, provenance and structured logging.

The analysis and simulation engines are instrumented with this package:

* :mod:`repro.obs.metrics` -- counters/gauges/histograms/timers behind a
  single enable switch (disabled by default; hot paths pay one bool
  check); bounded memory, mergeable across worker processes;
* :mod:`repro.obs.prometheus` -- renders a metrics snapshot in the
  Prometheus text exposition format (``text/plain; version=0.0.4``);
* :mod:`repro.obs.correlate` -- `contextvars`-based request-correlation
  IDs threaded from the serving layer through engine spans;
* :mod:`repro.obs.accesslog` -- structured JSONL event log with
  size-based rotation on the atomic-write primitives in `repro.io`;
* :mod:`repro.obs.slo` -- rolling-window SLO evaluation over the live
  registry (latency quantiles, shed rate, cache hit rate);
* :mod:`repro.obs.tracing` -- `contextvars`-based span trees exportable
  as JSON or Chrome ``trace_event`` files;
* :mod:`repro.obs.provenance` -- run manifests (seed, cells, version,
  git SHA, wall time) attached to expensive results;
* :mod:`repro.obs.log` -- structured logging and deterministic progress
  callbacks for long loops.

Typical library use::

    from repro import obs

    obs.enable()
    with obs.use_registry(obs.MetricsRegistry()) as reg, \\
         obs.use_tracer(obs.Tracer()) as tracer:
        ...  # run analyses
        print(reg.to_json())
        tracer.write_chrome("trace.json")

The CLI exposes the same machinery through ``--verbose``,
``--metrics-out`` and ``--trace`` on every subcommand.
"""

from .log import (
    Progress,
    ProgressCallback,
    configure_logging,
    format_event,
    get_logger,
    log_event,
)
from .accesslog import AccessLog
from .correlate import (
    current_request_id,
    new_request_id,
    use_request_id,
)
from .metrics import (
    DEFAULT_BUCKET_BOUNDS,
    METRICS_FORMAT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    disable,
    enable,
    get_registry,
    inc,
    is_enabled,
    observe,
    observe_histogram,
    set_gauge,
    snapshot_to_json,
    timed,
    use_registry,
)
from .prometheus import render_prometheus
from .slo import SloPolicy, evaluate_slo
from .provenance import (
    MANIFEST_FORMAT,
    RunManifest,
    StopWatch,
    build_manifest,
    git_revision,
    provenance_line,
)
from .tracing import (
    TRACE_FORMAT,
    Span,
    Tracer,
    get_tracer,
    graft_spans,
    install_tracer,
    trace_span,
    use_tracer,
)

__all__ = [
    # metrics
    "DEFAULT_BUCKET_BOUNDS", "METRICS_FORMAT", "Counter", "Gauge",
    "Histogram", "MetricsRegistry", "Timer", "disable", "enable",
    "get_registry", "inc", "is_enabled", "observe", "observe_histogram",
    "set_gauge", "snapshot_to_json", "timed", "use_registry",
    # exposition / correlation / access log / SLO
    "render_prometheus", "current_request_id", "new_request_id",
    "use_request_id", "AccessLog", "SloPolicy", "evaluate_slo",
    # tracing
    "TRACE_FORMAT", "Span", "Tracer", "get_tracer", "graft_spans",
    "install_tracer", "trace_span", "use_tracer",
    # provenance
    "MANIFEST_FORMAT", "RunManifest", "StopWatch", "build_manifest",
    "git_revision", "provenance_line",
    # logging / progress
    "Progress", "ProgressCallback", "configure_logging", "format_event",
    "get_logger", "log_event",
]
