"""Observability: metrics, tracing, provenance and structured logging.

The analysis and simulation engines are instrumented with this package:

* :mod:`repro.obs.metrics` -- counters/gauges/timers behind a single
  enable switch (disabled by default; hot paths pay one bool check);
* :mod:`repro.obs.tracing` -- `contextvars`-based span trees exportable
  as JSON or Chrome ``trace_event`` files;
* :mod:`repro.obs.provenance` -- run manifests (seed, cells, version,
  git SHA, wall time) attached to expensive results;
* :mod:`repro.obs.log` -- structured logging and deterministic progress
  callbacks for long loops.

Typical library use::

    from repro import obs

    obs.enable()
    with obs.use_registry(obs.MetricsRegistry()) as reg, \\
         obs.use_tracer(obs.Tracer()) as tracer:
        ...  # run analyses
        print(reg.to_json())
        tracer.write_chrome("trace.json")

The CLI exposes the same machinery through ``--verbose``,
``--metrics-out`` and ``--trace`` on every subcommand.
"""

from .log import (
    Progress,
    ProgressCallback,
    configure_logging,
    format_event,
    get_logger,
    log_event,
)
from .metrics import (
    METRICS_FORMAT,
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    disable,
    enable,
    get_registry,
    inc,
    is_enabled,
    observe,
    set_gauge,
    snapshot_to_json,
    timed,
    use_registry,
)
from .provenance import (
    MANIFEST_FORMAT,
    RunManifest,
    StopWatch,
    build_manifest,
    git_revision,
    provenance_line,
)
from .tracing import (
    TRACE_FORMAT,
    Span,
    Tracer,
    get_tracer,
    graft_spans,
    install_tracer,
    trace_span,
    use_tracer,
)

__all__ = [
    # metrics
    "METRICS_FORMAT", "Counter", "Gauge", "MetricsRegistry", "Timer",
    "disable", "enable", "get_registry", "inc", "is_enabled", "observe",
    "set_gauge", "snapshot_to_json", "timed", "use_registry",
    # tracing
    "TRACE_FORMAT", "Span", "Tracer", "get_tracer", "graft_spans",
    "install_tracer", "trace_span", "use_tracer",
    # provenance
    "MANIFEST_FORMAT", "RunManifest", "StopWatch", "build_manifest",
    "git_revision", "provenance_line",
    # logging / progress
    "Progress", "ProgressCallback", "configure_logging", "format_event",
    "get_logger", "log_event",
]
