"""Prometheus text exposition for ``sealpaa-metrics-v1`` snapshots.

Renders the JSON snapshot produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` in the classic
Prometheus text format (``text/plain; version=0.0.4``), so a standard
Prometheus scraper can point at ``sealpaa serve``'s ``/metrics``
endpoint with ``Accept: text/plain`` and ingest:

* counters  -> ``<name>_total`` with ``# TYPE ... counter``;
* gauges    -> ``<name>`` with ``# TYPE ... gauge``;
* timers    -> ``<name>_seconds`` classic histograms (cumulative
  ``_bucket{le="..."}`` series, ``_sum``, ``_count``), rendered from the
  timer's bounded backing histogram;
* histograms -> ``<name>`` classic histograms (unit-less).

Metric names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): dots, dashes and spaces become
underscores, so ``engine.cache.hits`` is exposed as
``sealpaa_engine_cache_hits_total``.  Every exposed name carries the
``sealpaa_`` prefix to namespace the scrape.

The renderer works from the *snapshot document*, not live metric
objects, so it serves equally for the in-process registry and for
snapshots read back from ``--metrics-out`` files.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Sequence

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_PREFIX = "sealpaa_"
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")


def sanitize_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus name grammar.

    >>> sanitize_name("engine.cache.hits")
    'sealpaa_engine_cache_hits'
    >>> sanitize_name("serve.http./healthz")
    'sealpaa_serve_http__healthz'
    """
    cleaned = _INVALID_CHARS.sub("_", name)
    if _INVALID_FIRST.match(cleaned):
        cleaned = "_" + cleaned
    return _NAME_PREFIX + cleaned


def _format_value(value: float) -> str:
    """Prometheus sample-value spelling (integers stay integral)."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _le_label(bound: object) -> str:
    if bound == "+Inf" or (isinstance(bound, float) and math.isinf(bound)):
        return "+Inf"
    return _format_value(float(bound))


def _render_histogram_family(
    name: str,
    doc: Mapping[str, object],
    lines: List[str],
    help_text: str,
) -> None:
    """Append one classic-histogram family (TYPE/HELP + series)."""
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} histogram")
    buckets = doc.get("buckets") or []
    count = int(doc.get("count") or 0)
    total = float(doc.get("total") or 0.0)
    saw_inf = False
    for bound, cumulative in buckets:
        label = _le_label(bound)
        saw_inf = saw_inf or label == "+Inf"
        lines.append(
            f'{name}_bucket{{le="{label}"}} {_format_value(cumulative)}'
        )
    if not saw_inf:
        lines.append(f'{name}_bucket{{le="+Inf"}} {_format_value(count)}')
    lines.append(f"{name}_sum {_format_value(total)}")
    lines.append(f"{name}_count {_format_value(count)}")


def _timer_histogram_doc(stats: Mapping[str, object]) -> Dict[str, object]:
    """Adapt a timer stats/snapshot doc to the histogram-doc shape."""
    return {
        "count": stats.get("count", 0),
        "total": stats.get("total_s", stats.get("total", 0.0)),
        "buckets": stats.get("buckets") or [],
    }


def render_prometheus(snapshot: Mapping[str, object]) -> str:
    """Render a ``sealpaa-metrics-v1`` snapshot as exposition text.

    The returned string ends with a newline, as the format requires.

    >>> doc = {"counters": {"engine.requests": 3},
    ...        "gauges": {}, "histograms": {}, "timers": {}}
    >>> print(render_prometheus(doc), end="")
    # HELP sealpaa_engine_requests_total cumulative count of engine.requests
    # TYPE sealpaa_engine_requests_total counter
    sealpaa_engine_requests_total 3
    """
    lines: List[str] = []
    counters: Mapping[str, object] = snapshot.get("counters") or {}
    for raw_name in sorted(counters):
        name = sanitize_name(raw_name) + "_total"
        lines.append(
            f"# HELP {name} cumulative count of {raw_name}"
        )
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(float(counters[raw_name]))}")

    gauges: Mapping[str, object] = snapshot.get("gauges") or {}
    for raw_name in sorted(gauges):
        name = sanitize_name(raw_name)
        lines.append(f"# HELP {name} last value of {raw_name}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(float(gauges[raw_name]))}")

    histograms: Mapping[str, object] = snapshot.get("histograms") or {}
    for raw_name in sorted(histograms):
        _render_histogram_family(
            sanitize_name(raw_name), histograms[raw_name], lines,
            f"distribution of {raw_name}",
        )

    timers: Mapping[str, object] = snapshot.get("timers") or {}
    for raw_name in sorted(timers):
        name = sanitize_name(raw_name)
        if not name.endswith("_seconds"):  # avoid foo_seconds_seconds
            name += "_seconds"
        _render_histogram_family(
            name, _timer_histogram_doc(timers[raw_name]), lines,
            f"duration of {raw_name} in seconds",
        )
    return "\n".join(lines) + "\n" if lines else "\n"


def lint_exposition(text: str) -> List[str]:
    """Validate exposition text; return a list of problems (empty = ok).

    A deliberately small linter covering the invariants the CI smoke
    job cares about: name grammar, TYPE-before-samples, cumulative and
    ``+Inf``-terminated histogram buckets, ``_sum``/``_count`` presence,
    and parseable sample values.
    """
    problems: List[str] = []
    name_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
    sample_re = re.compile(
        r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)(\s+\d+)?$"
    )
    typed: Dict[str, str] = {}
    bucket_state: Dict[str, List[float]] = {}
    bucket_last: Dict[str, float] = {}

    def family_of(name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
        return name

    if text and not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not name_re.match(parts[2]):
                problems.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    problems.append(
                        f"line {lineno}: unknown TYPE in: {line!r}")
                else:
                    typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = sample_re.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        family = family_of(name)
        declared = typed.get(name) or typed.get(family)
        if declared is None:
            problems.append(
                f"line {lineno}: sample {name!r} before any TYPE line")
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf")
                          .replace("-Inf", "-inf"))
        except ValueError:
            problems.append(
                f"line {lineno}: bad sample value {value_text!r}")
            continue
        if name.endswith("_bucket") and declared == "histogram":
            labels = match.group("labels") or ""
            le_match = re.search(r'le="([^"]+)"', labels)
            if not le_match:
                problems.append(
                    f"line {lineno}: histogram bucket without le label")
                continue
            le_text = le_match.group(1)
            le = float("inf") if le_text == "+Inf" else float(le_text)
            prev = bucket_last.get(family)
            if prev is not None and value < prev:
                problems.append(
                    f"line {lineno}: non-cumulative bucket in {family}")
            bucket_last[family] = value
            bucket_state.setdefault(family, []).append(le)
    for family, les in bucket_state.items():
        if not any(math.isinf(le) for le in les):
            problems.append(f"histogram {family} missing +Inf bucket")
        if les != sorted(les):
            problems.append(f"histogram {family} buckets not ascending")
    return problems


def assert_valid_exposition(text: str) -> None:
    """Raise ``ValueError`` listing every lint problem, if any."""
    problems = lint_exposition(text)
    if problems:
        raise ValueError(
            "invalid Prometheus exposition:\n  " + "\n  ".join(problems)
        )
