"""Run provenance: which code, seed and configuration produced a number.

Every expensive result (Monte-Carlo estimates, exhaustive enumerations,
hybrid-search outcomes, design-space exports) can carry a
:class:`RunManifest` recording the package version, the git commit the
code was run from, the seed/sample budget and the cell chain.  A saved
Table-7 figure is then traceable to the exact run that produced it.

Two kinds of fields:

* **identity fields** (kind, cells, seed, samples, params, package
  version) -- deterministic given the same run configuration; hashed
  into :meth:`RunManifest.fingerprint`;
* **environment fields** (timestamp, git SHA, python version, wall
  time) -- recorded for forensics, excluded from the fingerprint.

The runtime resilience layer adds **budget/outcome fields**: the
:class:`repro.runtime.RunBudget` the run was launched under (identity --
a budgeted run is a different experiment), and ``truncated`` /
``stop_reason`` / ``degraded_from`` recording whether the run stopped
early at its budget or was routed to a cheaper engine (outcome --
excluded from the fingerprint, like wall time).
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from functools import lru_cache
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple

from .._version import __version__

MANIFEST_FORMAT = "sealpaa-manifest-v1"


@lru_cache(maxsize=1)
def git_revision() -> Optional[str]:
    """Short git SHA of the checkout containing this package, if any."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def provenance_line() -> str:
    """One-line ``sealpaa <version> (git <sha>, python <ver>)`` banner."""
    sha = git_revision()
    git_part = f"git {sha}" if sha else "git unknown"
    return f"sealpaa {__version__} ({git_part}, python {platform.python_version()})"


@dataclass(frozen=True)
class RunManifest:
    """Provenance record attached to analysis/simulation results."""

    kind: str
    package_version: str = __version__
    git_sha: Optional[str] = None
    python_version: str = ""
    created_utc: str = ""
    seed: Optional[int] = None
    samples: Optional[int] = None
    cells: Optional[Tuple[str, ...]] = None
    params: Mapping[str, object] = field(default_factory=dict)
    wall_time_s: Optional[float] = None
    budget: Optional[Mapping[str, object]] = None
    truncated: Optional[bool] = None
    stop_reason: Optional[str] = None
    degraded_from: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready ``sealpaa-manifest-v1`` dict."""
        doc: Dict[str, object] = {
            "format": MANIFEST_FORMAT,
            "kind": self.kind,
            "package_version": self.package_version,
            "git_sha": self.git_sha,
            "python_version": self.python_version,
            "created_utc": self.created_utc,
            "seed": self.seed,
            "samples": self.samples,
            "cells": list(self.cells) if self.cells is not None else None,
            "params": dict(self.params),
            "wall_time_s": self.wall_time_s,
        }
        # Runtime fields stay out of pre-runtime documents unless set,
        # keeping old manifests byte-stable under round-trips.
        if self.budget is not None:
            doc["budget"] = dict(self.budget)
        if self.truncated is not None:
            doc["truncated"] = self.truncated
        if self.stop_reason is not None:
            doc["stop_reason"] = self.stop_reason
        if self.degraded_from is not None:
            doc["degraded_from"] = self.degraded_from
        return doc

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunManifest":
        """Rebuild a manifest from :meth:`as_dict` output."""
        if data.get("format") not in (None, MANIFEST_FORMAT):
            raise ValueError(
                f"expected a {MANIFEST_FORMAT!r} document, got "
                f"{data.get('format')!r}"
            )
        cells = data.get("cells")
        return cls(
            kind=str(data.get("kind", "")),
            package_version=str(data.get("package_version", "")),
            git_sha=data.get("git_sha"),  # type: ignore[arg-type]
            python_version=str(data.get("python_version", "")),
            created_utc=str(data.get("created_utc", "")),
            seed=data.get("seed"),  # type: ignore[arg-type]
            samples=data.get("samples"),  # type: ignore[arg-type]
            cells=tuple(cells) if cells is not None else None,
            params=dict(data.get("params", {})),  # type: ignore[arg-type]
            wall_time_s=data.get("wall_time_s"),  # type: ignore[arg-type]
            budget=data.get("budget"),  # type: ignore[arg-type]
            truncated=data.get("truncated"),  # type: ignore[arg-type]
            stop_reason=data.get("stop_reason"),  # type: ignore[arg-type]
            degraded_from=data.get("degraded_from"),  # type: ignore[arg-type]
        )

    def fingerprint(self) -> str:
        """SHA-256 over the identity fields (canonical JSON).

        Two runs with the same configuration/seed share a fingerprint
        regardless of when or on which commit they executed.  The budget
        is identity (it bounds what ran); truncation/degradation are
        outcome and excluded, like wall time.
        """
        identity = {
            "kind": self.kind,
            "package_version": self.package_version,
            "seed": self.seed,
            "samples": self.samples,
            "cells": list(self.cells) if self.cells is not None else None,
            "params": {k: self.params[k] for k in sorted(self.params)},
        }
        if self.budget is not None:
            identity["budget"] = {
                k: self.budget[k] for k in sorted(self.budget)
            }
        canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


def build_manifest(
    kind: str,
    seed: Optional[int] = None,
    samples: Optional[int] = None,
    cells: Optional[Sequence[str]] = None,
    wall_time_s: Optional[float] = None,
    budget: Optional[Mapping[str, object]] = None,
    truncated: Optional[bool] = None,
    stop_reason: Optional[str] = None,
    degraded_from: Optional[str] = None,
    **params: object,
) -> RunManifest:
    """Capture a :class:`RunManifest` for the current environment."""
    return RunManifest(
        kind=kind,
        package_version=__version__,
        git_sha=git_revision(),
        python_version=platform.python_version(),
        created_utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        seed=seed,
        samples=samples,
        cells=tuple(str(c) for c in cells) if cells is not None else None,
        params=params,
        wall_time_s=wall_time_s,
        budget=dict(budget) if budget is not None else None,
        truncated=truncated,
        stop_reason=stop_reason,
        degraded_from=degraded_from,
    )


class StopWatch:
    """Tiny elapsed-wall-time helper for manifest ``wall_time_s``."""

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._start
