"""Structured JSONL access/event log with size-based rotation.

One JSON object per line, so the log is greppable (``grep req-...``)
and machine-parseable without a log-shipping dependency.  Every record
carries:

* ``ts``    -- unix timestamp (seconds, float);
* ``event`` -- dotted event name (``serve.request``, ``serve.shed``...);
* ``request_id`` -- the correlation ID active when the event was
  emitted (filled from :mod:`repro.obs.correlate` unless given);
* any extra keyword fields the caller attaches.

Rotation is size-based: when the active file would exceed
``max_bytes``, it is renamed to ``<path>.1`` (shifting ``.1`` to
``.2``... up to ``backups``) with the same atomic ``os.replace`` +
bounded-retry policy as :func:`repro.io.atomic_write_text`, so a reader
never observes a half-rotated file and a crash mid-rotation loses at
most the rename, never written bytes.  Writes themselves are plain
appends -- each line is written and flushed in one call, which on POSIX
appends of this size is atomic enough that concurrent writers do not
interleave partial lines.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from .correlate import current_request_id

#: Default rotation threshold: 8 MiB per file keeps a misbehaving load
#: test from filling a disk while retaining hours of normal traffic.
DEFAULT_MAX_BYTES = 8 * 1024 * 1024

#: Rotated generations kept (``<path>.1`` .. ``<path>.N``).
DEFAULT_BACKUPS = 3


class AccessLog:
    """Append-only JSONL event log with size-based rotation.

    Thread-safe; the serving layer emits from the asyncio event loop
    and (for shed events) from socket threads concurrently.
    """

    def __init__(
        self,
        path: Union[str, Path],
        max_bytes: int = DEFAULT_MAX_BYTES,
        backups: int = DEFAULT_BACKUPS,
    ):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self._lock = threading.Lock()
        self._size: Optional[int] = None  # lazy: stat on first write

    def emit(self, event: str, **fields: object) -> Dict[str, object]:
        """Append one event record; returns the record written."""
        record: Dict[str, object] = {
            "ts": round(time.time(), 6),
            "event": event,
        }
        request_id = fields.pop("request_id", None) or current_request_id()
        if request_id is not None:
            record["request_id"] = request_id
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"),
                          default=str) + "\n"
        encoded = line.encode("utf-8")
        with self._lock:
            if self._size is None:
                try:
                    self._size = self.path.stat().st_size
                except OSError:
                    self._size = 0
            if self._size and self._size + len(encoded) > self.max_bytes:
                self._rotate_locked()
            with open(self.path, "ab") as handle:
                handle.write(encoded)
            self._size += len(encoded)
        return record

    def _rotate_locked(self) -> None:
        """Shift ``path -> .1 -> .2 ...``; oldest generation drops off.

        Uses the same atomic-rename + bounded-retry policy as
        :func:`repro.io.atomic_write_text` (shared constants), so the
        rotation either happens completely for each generation or
        leaves the previous file in place.
        """
        from ..io import ATOMIC_WRITE_RETRIES, ATOMIC_WRITE_RETRY_WAIT_S

        if self.backups == 0:
            self._replace_with_retry(
                self.path, None,
                ATOMIC_WRITE_RETRIES, ATOMIC_WRITE_RETRY_WAIT_S)
            self._size = 0
            return
        for generation in range(self.backups - 1, 0, -1):
            src = self._generation_path(generation)
            if src.exists():
                self._replace_with_retry(
                    src, self._generation_path(generation + 1),
                    ATOMIC_WRITE_RETRIES, ATOMIC_WRITE_RETRY_WAIT_S)
        if self.path.exists():
            self._replace_with_retry(
                self.path, self._generation_path(1),
                ATOMIC_WRITE_RETRIES, ATOMIC_WRITE_RETRY_WAIT_S)
        self._size = 0

    def _generation_path(self, generation: int) -> Path:
        return self.path.with_name(f"{self.path.name}.{generation}")

    @staticmethod
    def _replace_with_retry(
        src: Path, dst: Optional[Path], retries: int, wait_s: float
    ) -> None:
        last: Optional[OSError] = None
        for attempt in range(retries + 1):
            try:
                if dst is None:
                    os.unlink(src)
                else:
                    os.replace(src, dst)
                return
            except FileNotFoundError:
                return
            except OSError as exc:
                last = exc
                if attempt < retries:
                    time.sleep(wait_s)
        raise OSError(
            f"could not rotate {src} after {retries + 1} attempts: {last}"
        ) from last

    def read_events(self) -> List[Dict[str, object]]:
        """Parse the active file back into records (tests / tooling)."""
        try:
            text = self.path.read_text()
        except OSError:
            return []
        events: List[Dict[str, object]] = []
        for line in text.splitlines():
            if line.strip():
                events.append(json.loads(line))
        return events
