"""Rolling-window SLO evaluation over the live metrics registry.

The serving layer answers "is the service healthy *right now*?" by
evaluating a small set of objectives against recent behaviour:

* **latency** -- p50/p99 of the request timer's rolling window (the
  last :data:`repro.obs.metrics.TIMER_WINDOW` requests, exact
  nearest-rank quantiles -- see the accuracy contract in
  :mod:`repro.obs.metrics`);
* **shed rate** -- fraction of recent admissions the bounded queue
  rejected, from the service's :class:`RollingRatio` window;
* **cache hit rate** -- hits / (hits + misses) of the engine result
  cache, when one is mounted.

Each objective with observed data produces a pass/fail check; the
overall verdict is ``ok`` when every evaluated check passes and
``degraded`` otherwise.  Objectives without data (fresh server, no
cache mounted, threshold disabled with ``None``) are reported as
``no_data``/``disabled`` and never degrade the verdict -- a service
that has served nothing is healthy, not failing its latency SLO.

``/healthz`` embeds the verdict document; ``sealpaa obs`` renders it.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional

#: Admissions remembered by :class:`RollingRatio` by default -- enough
#: to smooth bursts, small enough to reflect the last few seconds under
#: load.
DEFAULT_RATIO_WINDOW = 512


class RollingRatio:
    """Bounded window of boolean outcomes with an O(1) rate query.

    Deterministic: exactly the last *window* outcomes, kept in a deque;
    ``rate()`` is the fraction of ``True`` among them.  Used by the
    service for the rolling shed rate (``True`` = shed).
    """

    def __init__(self, window: int = DEFAULT_RATIO_WINDOW):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._window: Deque[bool] = deque(maxlen=int(window))
        self._true = 0
        self._lock = threading.Lock()

    def record(self, outcome: bool) -> None:
        with self._lock:
            if len(self._window) == self._window.maxlen:
                if self._window[0]:
                    self._true -= 1
            self._window.append(bool(outcome))
            if outcome:
                self._true += 1

    @property
    def count(self) -> int:
        return len(self._window)

    def rate(self) -> Optional[float]:
        """Fraction of ``True`` outcomes, or ``None`` with no data."""
        with self._lock:
            if not self._window:
                return None
            return self._true / len(self._window)


@dataclass(frozen=True)
class SloPolicy:
    """Thresholds for the serving SLOs.  ``None`` disables a check.

    The defaults are deliberately generous -- they catch a service that
    is clearly unwell (multi-second p99, heavy shedding) without
    flapping on modest hardware; operators tighten them per deployment
    via the ``sealpaa serve --slo-*`` flags.
    """

    max_p50_s: Optional[float] = 1.0
    max_p99_s: Optional[float] = 5.0
    max_shed_rate: Optional[float] = 0.5
    min_cache_hit_rate: Optional[float] = None
    #: Timer whose rolling window provides the latency quantiles.
    latency_timer: str = "serve.http.analyze.seconds"

    def __post_init__(self) -> None:
        for name in ("max_p50_s", "max_p99_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name in ("max_shed_rate", "min_cache_hit_rate"):
            value = getattr(self, name)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


def _check(name: str, observed: Optional[float], threshold: Optional[float],
           upper_bound: bool) -> Dict[str, object]:
    if threshold is None:
        return {"name": name, "status": "disabled"}
    if observed is None:
        return {"name": name, "status": "no_data", "threshold": threshold}
    ok = observed <= threshold if upper_bound else observed >= threshold
    return {
        "name": name,
        "status": "pass" if ok else "fail",
        "observed": round(float(observed), 6),
        "threshold": threshold,
    }


def evaluate_slo(
    snapshot: Mapping[str, object],
    policy: Optional[SloPolicy] = None,
    shed_rate: Optional[float] = None,
) -> Dict[str, object]:
    """Evaluate *policy* against a registry *snapshot*.

    *shed_rate* is the service's rolling shed rate (``None`` with no
    recent admissions).  Returns a JSON-ready verdict document::

        {"status": "ok" | "degraded", "checks": [...]}
    """
    policy = policy or SloPolicy()
    timers: Mapping[str, Mapping[str, object]] = snapshot.get("timers") or {}
    latency = timers.get(policy.latency_timer) or {}
    has_latency = int(latency.get("count") or 0) > 0
    p50 = float(latency["p50_s"]) if has_latency else None
    p99 = float(latency["p99_s"]) if has_latency else None

    counters: Mapping[str, object] = snapshot.get("counters") or {}
    hits = int(counters.get("engine.cache.hits") or 0)
    misses = int(counters.get("engine.cache.misses") or 0)
    hit_rate = hits / (hits + misses) if hits + misses else None

    checks: List[Dict[str, object]] = [
        _check("latency_p50", p50, policy.max_p50_s, upper_bound=True),
        _check("latency_p99", p99, policy.max_p99_s, upper_bound=True),
        _check("shed_rate", shed_rate, policy.max_shed_rate,
               upper_bound=True),
        _check("cache_hit_rate", hit_rate, policy.min_cache_hit_rate,
               upper_bound=False),
    ]
    degraded = any(c["status"] == "fail" for c in checks)
    return {"status": "degraded" if degraded else "ok", "checks": checks}
