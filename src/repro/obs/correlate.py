"""Request-correlation IDs threaded through the serving and engine layers.

The serving layer mints one ID per HTTP request (honouring an inbound
``X-Request-Id`` header when present), echoes it in the response, and
scopes it with :func:`use_request_id` around the handler.  Downstream
code -- batch dispatch, `engine.run_batch` spans, parallel-worker trace
lanes, the access log -- reads :func:`current_request_id` instead of
passing an argument through every signature.

The ID lives in a `contextvars.ContextVar`, so concurrent asyncio
connections each see their own.  One caveat the service layer handles
explicitly: contextvars do **not** propagate into
``loop.run_in_executor`` threads or forked pool workers, so the
executor callable re-enters :func:`use_request_id` itself and the
parallel executor ships the ID inside the chunk payload.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

_request_id_var: ContextVar[Optional[str]] = ContextVar(
    "sealpaa_request_id", default=None
)

_counter_lock = threading.Lock()
_counter = 0


def new_request_id() -> str:
    """Mint a compact, unique, sortable request ID.

    Format: ``req-<epoch-ms hex>-<pid hex>-<seq hex>`` -- unique across
    processes (pid), time (ms clock) and bursts (per-process counter),
    without needing a UUID dependency or 36-character IDs in logs.
    """
    global _counter
    with _counter_lock:
        _counter += 1
        seq = _counter
    return f"req-{int(time.time() * 1000):x}-{os.getpid():x}-{seq:x}"


def current_request_id() -> Optional[str]:
    """The request ID scoped to the current context, or ``None``."""
    return _request_id_var.get()


@contextmanager
def use_request_id(request_id: Optional[str]) -> Iterator[Optional[str]]:
    """Scope *request_id* as the current one for the enclosed block."""
    token = _request_id_var.set(request_id)
    try:
        yield request_id
    finally:
        _request_id_var.reset(token)
