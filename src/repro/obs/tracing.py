"""Lightweight span tracer for nested analysis/simulation calls.

:func:`trace_span` wraps a code region in a named span.  Parenting uses
`contextvars`, so a Monte-Carlo run that calls the analytical recursion
produces a navigable tree even across threads/async tasks, without any
caller plumbing::

    tracer = Tracer()
    with use_tracer(tracer):
        with trace_span("montecarlo.run", samples=1_000_000):
            ...  # nested trace_span calls become children

Two export shapes:

* :meth:`Tracer.to_dict` -- a ``sealpaa-trace-v1`` JSON tree (name,
  start/duration in seconds, attributes, children);
* :meth:`Tracer.to_chrome` -- Chrome ``trace_event`` format (complete
  "X" events, microsecond timestamps) loadable in ``chrome://tracing``
  / Perfetto.

When no tracer is installed, :func:`trace_span` returns a shared no-op
context manager, so instrumented code costs one function call.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

TRACE_FORMAT = "sealpaa-trace-v1"


class Span:
    """One timed, named region with attributes and child spans."""

    __slots__ = ("name", "attrs", "start_s", "duration_s", "children",
                 "thread_id")

    def __init__(self, name: str, attrs: Dict[str, object], start_s: float):
        self.name = name
        self.attrs = attrs
        self.start_s = start_s
        self.duration_s = 0.0
        self.children: List["Span"] = []
        self.thread_id = threading.get_ident()

    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.children:
            doc["children"] = [child.as_dict() for child in self.children]
        return doc

    @classmethod
    def from_dict(
        cls,
        doc: Dict[str, object],
        thread_id: Optional[int] = None,
        offset_s: float = 0.0,
    ) -> "Span":
        """Rehydrate an :meth:`as_dict` tree (inverse, recursively).

        *thread_id* overrides the recorded lane on the whole subtree --
        the parallel executor uses the worker's PID so each worker gets
        its own row in ``chrome://tracing``.  *offset_s* shifts every
        start time, mapping a worker-local clock onto the parent
        tracer's origin.
        """
        span = cls(str(doc.get("name", "span")),
                   dict(doc.get("attrs", {})),  # type: ignore[arg-type]
                   float(doc.get("start_s", 0.0)) + offset_s)  # type: ignore[arg-type]
        span.duration_s = float(doc.get("duration_s", 0.0))  # type: ignore[arg-type]
        if thread_id is not None:
            span.thread_id = thread_id
        span.children = [
            cls.from_dict(child, thread_id=thread_id, offset_s=offset_s)
            for child in doc.get("children", ())  # type: ignore[union-attr]
        ]
        return span


class Tracer:
    """Collects completed span trees for one run."""

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._origin = time.perf_counter()
        self._lock = threading.Lock()

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def _add_root(self, span: Span) -> None:
        with self._lock:
            self.roots.append(span)

    def span_count(self) -> int:
        """Total number of recorded spans."""
        def count(span: Span) -> int:
            return 1 + sum(count(child) for child in span.children)
        with self._lock:
            return sum(count(root) for root in self.roots)

    def to_dict(self) -> Dict[str, object]:
        """``sealpaa-trace-v1`` JSON tree document."""
        with self._lock:
            return {
                "format": TRACE_FORMAT,
                "spans": [root.as_dict() for root in self.roots],
            }

    def to_chrome(self) -> Dict[str, object]:
        """Chrome ``trace_event`` document (complete "X" events)."""
        events: List[Dict[str, object]] = []
        pid = os.getpid()

        def emit(span: Span) -> None:
            event: Dict[str, object] = {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": pid,
                "tid": span.thread_id,
            }
            if span.attrs:
                event["args"] = dict(span.attrs)
            events.append(event)
            for child in span.children:
                emit(child)

        with self._lock:
            for root in self.roots:
                emit(root)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle, indent=2)
            handle.write("\n")


_tracer_var: ContextVar[Optional[Tracer]] = ContextVar(
    "sealpaa_tracer", default=None
)
_span_var: ContextVar[Optional[Span]] = ContextVar(
    "sealpaa_active_span", default=None
)


def get_tracer() -> Optional[Tracer]:
    """The tracer active in the current context (or ``None``)."""
    return _tracer_var.get()


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install *tracer* for the enclosed block (context-local).

    Any active span is detached for the block: it belongs to the
    previously installed tracer, and parenting new spans under it would
    silently hide them from *tracer* (the forked pool workers hit
    exactly this -- they inherit the parent's active span and must not
    attach their chunk spans to the inherited copy).
    """
    token = _tracer_var.set(tracer)
    span_token = _span_var.set(None)
    try:
        yield tracer
    finally:
        _span_var.reset(span_token)
        _tracer_var.reset(token)


def install_tracer(tracer: Optional[Tracer]) -> None:
    """Install *tracer* for the current context without scoping.

    Used by the CLI which enables tracing for the whole invocation;
    prefer :func:`use_tracer` in library/test code.
    """
    _tracer_var.set(tracer)


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_tracer", "_span", "_parent_token")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self._span = Span(name, attrs, 0.0)

    def __enter__(self) -> Span:
        parent = _span_var.get()
        if parent is not None:
            parent.children.append(self._span)
        else:
            self._tracer._add_root(self._span)
        self._parent_token = _span_var.set(self._span)
        # Start and duration share the tracer clock, so child intervals
        # always nest inside their parent's [start, start + duration].
        self._span.start_s = self._tracer._now()
        return self._span

    def __exit__(self, *exc) -> None:
        self._span.duration_s = self._tracer._now() - self._span.start_s
        _span_var.reset(self._parent_token)


def trace_span(name: str, **attrs: object):
    """Open a named span as a context manager.

    No-op (shared null context) when no tracer is installed, so it is
    safe to leave in hot paths.  Attributes must be JSON-serialisable.
    When a correlation ID is scoped (see :mod:`repro.obs.correlate`),
    it is stamped on the span as ``request_id``, so serving-layer spans
    join up with access-log lines and worker trace lanes.
    """
    tracer = _tracer_var.get()
    if tracer is None:
        return _NULL_SPAN
    if "request_id" not in attrs:
        from .correlate import current_request_id

        request_id = current_request_id()
        if request_id is not None:
            attrs["request_id"] = request_id
    return _SpanContext(tracer, name, attrs)


def graft_spans(
    span_docs: List[Dict[str, object]],
    thread_id: Optional[int] = None,
    offset_s: float = 0.0,
) -> List[Span]:
    """Attach serialised span trees to the active tracer.

    The process-pool executor collects each worker chunk's spans as
    :meth:`Span.as_dict` documents (tracers do not cross process
    boundaries) and grafts them back here: under the currently active
    span when inside one (the usual case -- the ``engine.run_batch``
    span), else as new roots.  With ``thread_id`` set to the worker's
    PID, :meth:`Tracer.to_chrome` renders one lane per worker inside a
    single Chrome trace.  No-op (returns ``[]``) when no tracer is
    installed.
    """
    tracer = _tracer_var.get()
    if tracer is None or not span_docs:
        return []
    spans = [Span.from_dict(doc, thread_id=thread_id, offset_s=offset_s)
             for doc in span_docs]
    parent = _span_var.get()
    if parent is not None:
        parent.children.extend(spans)
    else:
        with tracer._lock:
            tracer.roots.extend(spans)
    return spans
