"""Async batching HTTP/JSON service over the analysis engine.

``repro.serve`` turns the library into a long-running daemon: concurrent
clients POST chain questions, the service coalesces them into vectorised
:func:`repro.engine.run_batch` micro-batches, and (optionally) answers
repeat questions from the persistent two-tier result store
(:mod:`repro.engine.diskcache`) without touching an engine at all.

Three layers, importable separately:

* :mod:`repro.serve.config` -- :class:`ServeConfig`, every operator knob;
* :mod:`repro.serve.service` -- :class:`AnalysisService`, the
  protocol-agnostic batching/shedding/deadline core;
* :mod:`repro.serve.http` -- :class:`AnalysisServer`, the stdlib asyncio
  HTTP front-end, plus :func:`run_server` (the ``sealpaa serve`` entry
  point);
* :mod:`repro.serve.admission` -- per-client token-bucket admission
  control (429 before queueing, distinct from queue-full shedding);
* :mod:`repro.serve.supervisor` -- the ``sealpaa serve --workers N``
  multi-process supervisor: shared-port workers, heartbeats, restart
  budget, merged ``/metrics``;
* :mod:`repro.serve.client` -- :class:`AnalysisClient`, the retrying
  deadline-aware client (backoff + jitter, Retry-After, fingerprinted
  idempotent retries);
* :mod:`repro.serve.dashboard` -- the ``sealpaa dashboard`` curses
  operator console polling a running server's ``/metrics``.

In-process use (tests, notebooks, benchmarks)::

    from repro.serve import AnalysisServer, ServeConfig

    server = AnalysisServer(ServeConfig(port=0))   # port 0 = pick free
    url = server.start()                           # background thread
    ...                                            # urllib against url
    server.stop()                                  # graceful drain

Operator use: ``sealpaa serve --port 8080 --cache-dir /var/cache/sealpaa``
(see ``docs/serving.md``).
"""

from .admission import AdmissionController
from .client import (
    AnalysisClient,
    ClientError,
    RetryBudgetError,
    ServerStatusError,
)
from .config import ServeConfig, config_from_doc, config_to_doc
from .dashboard import render_once, run_dashboard
from .http import MAX_BODY_BYTES, AnalysisServer, run_server
from .supervisor import SupervisorConfig, run_supervisor
from .service import (
    MAX_DEADLINE_S,
    AnalysisService,
    ClosingError,
    DeadlineError,
    OverloadedError,
    RequestParseError,
    parse_analysis_doc,
    parse_deadline,
    result_to_doc,
)

__all__ = [
    "AdmissionController",
    "AnalysisClient",
    "AnalysisServer",
    "AnalysisService",
    "ClientError",
    "ClosingError",
    "DeadlineError",
    "MAX_BODY_BYTES",
    "MAX_DEADLINE_S",
    "OverloadedError",
    "RequestParseError",
    "RetryBudgetError",
    "ServeConfig",
    "ServerStatusError",
    "SupervisorConfig",
    "config_from_doc",
    "config_to_doc",
    "parse_analysis_doc",
    "parse_deadline",
    "render_once",
    "result_to_doc",
    "run_dashboard",
    "run_server",
    "run_supervisor",
]
