"""Multi-worker supervision: ``sealpaa serve --workers N``.

One asyncio process is the PR-5 ceiling *and* a single point of failure.
This module runs N serve workers as child processes sharing one
listening address, watches them, and restarts the ones that die:

* **shared port** -- each worker binds the public address with
  ``SO_REUSEPORT`` and the kernel balances accepted connections across
  them; the supervisor holds a bound (non-listening) *reservation*
  socket so ``--port 0`` resolves once and the port survives moments
  when every worker is down.  Platforms without ``SO_REUSEPORT`` (or
  runs forcing ``SEALPAA_NO_REUSEPORT=1``) fall back to one listening
  socket created by the supervisor and inherited by every worker.
* **liveness** -- each worker holds the write end of a pipe and sends a
  JSON heartbeat line every ``heartbeat_interval_s``; a worker that
  exits (pipe EOF / waitpid) or goes silent for ``heartbeat_timeout_s``
  (wedged event loop) is declared dead -- silent ones are SIGKILLed
  first.
* **restarts** -- dead workers respawn with exponential backoff
  (``backoff_base_s`` doubling to ``backoff_max_s``); a total of
  ``restart_budget`` respawns may be spent, after which the supervisor
  gives up: drains the survivors and exits nonzero.  A worker that ran
  healthily long enough resets its own backoff.
* **one pane of glass** -- a small status HTTP server (default: public
  port + 1) answers ``/healthz`` (worker counts, restart budget, merged
  SLO verdict) and ``/metrics`` (every worker's registry scraped over
  its private admin port and folded together with
  ``MetricsRegistry.merge_state`` -- histogram buckets add exactly, so
  merged quantiles are as trustworthy as single-process ones).  The
  ``sealpaa dashboard`` points at this port unchanged.
* **signals** -- SIGTERM/SIGINT fan out as SIGTERM to every worker,
  each worker drains (finishes queued work, ``drain_grace_s``), and the
  supervisor reaps them before exiting -- 0 for SIGTERM, the
  KeyboardInterrupt → 130 contract for Ctrl-C.

The worker half of the protocol lives here too: ``python -m
repro.serve.supervisor`` with ``SEALPAA_WORKER_CONFIG`` in the
environment runs :func:`worker_main`, which is how the supervisor
spawns children (a fresh interpreter per worker, no fork-with-threads
hazards).  Chaos specs in ``SEALPAA_CHAOS`` are installed inside every
worker, which is how the chaos soak reaches across the process
boundary.
"""

from __future__ import annotations

import asyncio
import http.server
import json
import os
import select
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.exceptions import AnalysisError
from ..obs import metrics as _metrics
from ..obs.log import get_logger, log_event
from ..obs.prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from ..obs.prometheus import render_prometheus
from ..obs.slo import evaluate_slo
from ..runtime.chaos import install_chaos_from_env
from .config import ServeConfig, config_from_doc, config_to_doc
from .http import AnalysisServer

_logger = get_logger("serve.supervisor")

#: Environment variable carrying the worker's JSON bootstrap document.
WORKER_CONFIG_ENV = "SEALPAA_WORKER_CONFIG"

#: Environment variable forcing the inherited-FD fallback (tests).
NO_REUSEPORT_ENV = "SEALPAA_NO_REUSEPORT"

#: A worker alive this long gets its restart backoff reset.
_HEALTHY_UPTIME_S = 10.0

#: Extra seconds past ``drain_grace_s`` before stragglers are SIGKILLed.
_DRAIN_MARGIN_S = 3.0

#: Supervisor poll tick (select timeout) -- bounds signal latency.
_POLL_S = 0.2

#: Timeout for one worker admin-port scrape.
_SCRAPE_TIMEOUT_S = 2.0


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the multi-worker supervisor (see module docstring)."""

    workers: int = 2
    restart_budget: int = 8
    backoff_base_s: float = 0.25
    backoff_max_s: float = 5.0
    heartbeat_interval_s: float = 1.0
    heartbeat_timeout_s: float = 10.0
    status_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise AnalysisError(f"workers must be >= 1, got {self.workers}")
        if self.restart_budget < 0:
            raise AnalysisError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )
        if self.backoff_base_s <= 0 or self.backoff_max_s <= 0:
            raise AnalysisError("backoff values must be positive")
        if self.heartbeat_interval_s <= 0:
            raise AnalysisError(
                "heartbeat_interval_s must be positive, got "
                f"{self.heartbeat_interval_s}"
            )
        if self.heartbeat_timeout_s <= 2 * self.heartbeat_interval_s:
            raise AnalysisError(
                "heartbeat_timeout_s must exceed twice the interval "
                f"({self.heartbeat_timeout_s} vs "
                f"{self.heartbeat_interval_s})"
            )
        if (self.status_port is not None
                and not 0 <= self.status_port <= 65535):
            raise AnalysisError(
                f"status_port out of range: {self.status_port}"
            )


def backoff_delay(attempt: int, base_s: float, max_s: float) -> float:
    """Restart delay for the *attempt*-th consecutive quick death."""
    return min(max_s, base_s * (2 ** attempt))


def reuseport_available() -> bool:
    """Can workers share the public port via ``SO_REUSEPORT``?"""
    if os.environ.get(NO_REUSEPORT_ENV):
        return False
    return hasattr(socket, "SO_REUSEPORT")


class _WorkerSlot:
    """Book-keeping for one of the N worker positions."""

    __slots__ = ("index", "proc", "pipe_r", "buffer", "last_beat",
                 "started_at", "admin_port", "attempt", "next_restart_at")

    def __init__(self, index: int):
        self.index = index
        self.proc: Optional[subprocess.Popen] = None
        self.pipe_r: Optional[int] = None
        self.buffer = b""
        self.last_beat = 0.0
        self.started_at = 0.0
        self.admin_port: Optional[int] = None
        self.attempt = 0
        self.next_restart_at: Optional[float] = None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def ready(self) -> bool:
        return self.alive and self.admin_port is not None


class Supervisor:
    """Owns the worker fleet for one ``serve --workers N`` invocation."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 sup: Optional[SupervisorConfig] = None):
        self.config = config or ServeConfig()
        self.sup = sup or SupervisorConfig()
        self._slots = [_WorkerSlot(i) for i in range(self.sup.workers)]
        self._lock = threading.Lock()
        self._restarts_used = 0
        self._state = "starting"  # -> serving / stopping / given_up
        self._stop_signal: Optional[int] = None
        self._mode = "reuseport" if reuseport_available() else "fd"
        self._reserve_sock: Optional[socket.socket] = None
        self._listen_sock: Optional[socket.socket] = None
        self._status_httpd: Optional[http.server.ThreadingHTTPServer] = None
        self.port: Optional[int] = None
        self.status_port: Optional[int] = None

    # -- sockets -----------------------------------------------------------

    def bind(self) -> int:
        """Resolve and reserve the public port; returns it.

        ``reuseport`` mode holds a bound non-listening reservation
        socket (TCP only balances across *listening* sockets, so the
        reservation never steals a connection but keeps the port ours
        while workers restart); ``fd`` mode creates the one real
        listening socket every worker will inherit.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self._mode == "reuseport":
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.config.host, self.config.port))
            self._reserve_sock = sock
        else:
            sock.bind((self.config.host, self.config.port))
            sock.listen(1024)
            self._listen_sock = sock
        self.port = sock.getsockname()[1]
        return self.port

    # -- worker spawning ---------------------------------------------------

    def _spawn(self, slot: _WorkerSlot) -> None:
        now = time.monotonic()
        read_fd, write_fd = os.pipe()
        os.set_blocking(read_fd, False)
        pass_fds = [write_fd]
        listen_fd: Optional[int] = None
        if self._listen_sock is not None:
            listen_fd = self._listen_sock.fileno()
            pass_fds.append(listen_fd)
        worker_doc = {
            "serve": config_to_doc(self._worker_config()),
            "worker": {
                "index": slot.index,
                "heartbeat_fd": write_fd,
                "heartbeat_interval_s": self.sup.heartbeat_interval_s,
                "listen_fd": listen_fd,
            },
        }
        env = dict(os.environ)
        env[WORKER_CONFIG_ENV] = json.dumps(worker_doc)
        # Not ``-m repro.serve.supervisor``: runpy would re-execute a
        # module the ``repro.serve`` package import already ran.
        slot.proc = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.serve.supervisor import worker_main; "
             "sys.exit(worker_main())"],
            env=env, pass_fds=tuple(pass_fds), close_fds=True,
        )
        os.close(write_fd)
        with self._lock:
            slot.pipe_r = read_fd
            slot.buffer = b""
            slot.admin_port = None
            slot.last_beat = now
            slot.started_at = now
            slot.next_restart_at = None
        log_event(_logger, "supervisor.spawn", worker=slot.index,
                  pid=slot.proc.pid)

    def _worker_config(self) -> ServeConfig:
        """The per-worker serve config: resolved port, shared cache."""
        import dataclasses

        return dataclasses.replace(self.config, port=self.port or 0)

    def _reap(self, slot: _WorkerSlot) -> None:
        with self._lock:
            if slot.pipe_r is not None:
                try:
                    os.close(slot.pipe_r)
                except OSError:
                    pass
                slot.pipe_r = None
            slot.admin_port = None
            slot.proc = None

    # -- heartbeat intake --------------------------------------------------

    def _drain_pipes(self) -> None:
        fds = {slot.pipe_r: slot for slot in self._slots
               if slot.pipe_r is not None}
        if not fds:
            time.sleep(_POLL_S)
            return
        try:
            readable, _, _ = select.select(list(fds), [], [], _POLL_S)
        except OSError:
            return
        for fd in readable:
            slot = fds[fd]
            try:
                chunk = os.read(fd, 65536)
            except (BlockingIOError, InterruptedError):
                continue
            except OSError:
                chunk = b""
            if not chunk:
                continue  # EOF is handled via proc.poll()
            slot.buffer += chunk
            while b"\n" in slot.buffer:
                line, _, slot.buffer = slot.buffer.partition(b"\n")
                self._on_worker_line(slot, line)

    def _on_worker_line(self, slot: _WorkerSlot, line: bytes) -> None:
        try:
            doc = json.loads(line.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        now = time.monotonic()
        with self._lock:
            slot.last_beat = now
            if doc.get("event") == "ready":
                slot.admin_port = doc.get("admin_port")
        if doc.get("event") == "ready":
            log_event(_logger, "supervisor.worker_ready",
                      worker=slot.index, pid=doc.get("pid"),
                      admin_port=doc.get("admin_port"))

    # -- death detection and restarts --------------------------------------

    def _check_workers(self) -> bool:
        """Detect deaths, schedule/execute restarts.

        Returns ``False`` when the restart budget is exhausted (time to
        give up), ``True`` otherwise.
        """
        now = time.monotonic()
        for slot in self._slots:
            if slot.proc is not None:
                exit_code = slot.proc.poll()
                dead = exit_code is not None
                if (not dead and now - slot.last_beat
                        > self.sup.heartbeat_timeout_s):
                    # Alive but silent: a wedged event loop serves
                    # nobody.  Kill it so the slot can restart.
                    log_event(_logger, "supervisor.worker_hung",
                              worker=slot.index, pid=slot.proc.pid,
                              silent_s=round(now - slot.last_beat, 1))
                    try:
                        slot.proc.kill()
                    except OSError:
                        pass
                    slot.proc.wait()
                    exit_code, dead = None, True
                if dead:
                    uptime = now - slot.started_at
                    log_event(_logger, "supervisor.worker_died",
                              worker=slot.index, exit_code=exit_code,
                              uptime_s=round(uptime, 1))
                    self._reap(slot)
                    if uptime >= _HEALTHY_UPTIME_S:
                        slot.attempt = 0
                    if self._restarts_used >= self.sup.restart_budget:
                        return False
                    self._restarts_used += 1
                    delay = backoff_delay(slot.attempt,
                                          self.sup.backoff_base_s,
                                          self.sup.backoff_max_s)
                    slot.attempt += 1
                    slot.next_restart_at = now + delay
                    log_event(_logger, "supervisor.restart_scheduled",
                              worker=slot.index, delay_s=round(delay, 3),
                              restarts_used=self._restarts_used,
                              restart_budget=self.sup.restart_budget)
            elif (slot.next_restart_at is not None
                    and now >= slot.next_restart_at):
                self._spawn(slot)
        return True

    # -- aggregation -------------------------------------------------------

    def _worker_targets(self) -> List[Dict[str, object]]:
        with self._lock:
            return [
                {"index": slot.index, "admin_port": slot.admin_port,
                 "pid": slot.proc.pid if slot.proc else None,
                 "alive": slot.alive, "ready": slot.ready}
                for slot in self._slots
            ]

    def merged_metrics(self) -> Dict[str, object]:
        """Every live worker's registry and service stats, folded."""
        registry = _metrics.MetricsRegistry()
        services: List[dict] = []
        workers_doc: List[Dict[str, object]] = []
        for target in self._worker_targets():
            entry: Dict[str, object] = {
                "index": target["index"], "pid": target["pid"],
                "alive": target["alive"], "ready": target["ready"],
                "scraped": False,
            }
            if target["alive"] and target["admin_port"]:
                url = (f"http://127.0.0.1:{target['admin_port']}"
                       "/metrics?format=state")
                try:
                    with urllib.request.urlopen(
                            url, timeout=_SCRAPE_TIMEOUT_S) as resp:
                        doc = json.loads(resp.read().decode())
                    registry.merge_state(doc.get("state"))
                    if isinstance(doc.get("service"), dict):
                        services.append(doc["service"])
                    entry["scraped"] = True
                except (OSError, ValueError):
                    pass  # a worker mid-restart is not an error
            workers_doc.append(entry)
        snapshot = registry.snapshot()
        snapshot["service"] = merge_service_stats(services)
        alive = sum(1 for w in workers_doc if w["alive"])
        ready = sum(1 for w in workers_doc if w["ready"])
        snapshot["supervisor"] = {
            "mode": self._mode,
            "state": self._state,
            "workers_target": self.sup.workers,
            "workers_alive": alive,
            "workers_ready": ready,
            "restarts_used": self._restarts_used,
            "restart_budget": self.sup.restart_budget,
            "workers": workers_doc,
        }
        return snapshot

    def health_doc(self) -> Dict[str, object]:
        snapshot = self.merged_metrics()
        service = snapshot.get("service") or {}
        slo = evaluate_slo(snapshot, self.config.slo,
                           shed_rate=service.get("recent_shed_rate"))
        info = snapshot["supervisor"]
        if self._state in ("stopping", "given_up"):
            status = self._state
        elif info["workers_ready"] < info["workers_target"]:
            # A spawned-but-still-booting worker is not serving yet --
            # in reuseport mode the shared port refuses connections
            # until a worker's listener is bound, so health must gate
            # on readiness (ready event received), not process launch.
            status = "degraded"
        else:
            status = slo["status"]
        return {
            "status": status,
            "workers": {
                "target": info["workers_target"],
                "alive": info["workers_alive"],
                "ready": info["workers_ready"],
                "restarts_used": info["restarts_used"],
                "restart_budget": info["restart_budget"],
            },
            "slo": slo,
        }

    # -- status server -----------------------------------------------------

    def start_status_server(self) -> int:
        wanted = self.sup.status_port
        if wanted is None:
            wanted = (self.port + 1) if self.port else 0
        supervisor = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def log_message(self, *args):  # quiet by default
                pass

            def _send(self, status: int, doc: object,
                      content_type: str = "application/json") -> None:
                payload = (doc.encode() if isinstance(doc, str)
                           else (json.dumps(doc) + "\n").encode())
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self):
                path, _, query = self.path.partition("?")
                try:
                    if path == "/healthz":
                        doc = supervisor.health_doc()
                        bad = doc["status"] in ("stopping", "given_up")
                        self._send(503 if bad else 200, doc)
                    elif path == "/metrics":
                        snapshot = supervisor.merged_metrics()
                        accept = self.headers.get("Accept", "")
                        if ("format=prometheus" in query
                                or "text/plain" in accept
                                or "openmetrics" in accept):
                            self._send(200, render_prometheus(snapshot),
                                       _PROM_CONTENT_TYPE)
                        else:
                            self._send(200, snapshot)
                    else:
                        self._send(404, {"error": {
                            "code": 404, "message": f"no route {path}"}})
                except Exception as exc:  # keep the status server alive
                    try:
                        self._send(500, {"error": {
                            "code": 500, "message": repr(exc)}})
                    except OSError:
                        pass

        try:
            httpd = http.server.ThreadingHTTPServer(
                (self.config.host, wanted), Handler)
        except OSError:
            # The conventional port+1 is taken; any free port will do.
            httpd = http.server.ThreadingHTTPServer(
                (self.config.host, 0), Handler)
        httpd.daemon_threads = True
        self._status_httpd = httpd
        self.status_port = httpd.server_address[1]
        threading.Thread(target=httpd.serve_forever,
                         name="sealpaa-status", daemon=True).start()
        return self.status_port

    # -- shutdown ----------------------------------------------------------

    def _shutdown_workers(self, grace_s: float) -> None:
        for slot in self._slots:
            slot.next_restart_at = None
            if slot.alive:
                try:
                    slot.proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + grace_s
        while (any(slot.alive for slot in self._slots)
               and time.monotonic() < deadline):
            self._drain_pipes()
            for slot in self._slots:
                if slot.proc is not None and slot.proc.poll() is not None:
                    self._reap(slot)
        for slot in self._slots:
            if slot.alive:
                log_event(_logger, "supervisor.worker_kill",
                          worker=slot.index, pid=slot.proc.pid)
                try:
                    slot.proc.kill()
                    slot.proc.wait()
                except OSError:
                    pass
            if slot.proc is not None:
                self._reap(slot)

    def _close(self) -> None:
        if self._status_httpd is not None:
            self._status_httpd.shutdown()
            self._status_httpd.server_close()
            self._status_httpd = None
        for sock in (self._reserve_sock, self._listen_sock):
            if sock is not None:
                sock.close()
        self._reserve_sock = self._listen_sock = None

    # -- main loop ---------------------------------------------------------

    def run(self) -> int:
        """Supervise until a signal or the restart budget runs out.

        Returns the process exit code (0 after a drain, 1 after giving
        up); Ctrl-C raises ``KeyboardInterrupt`` after the drain so the
        CLI's exit-130 contract holds.
        """
        self.bind()
        self.start_status_server()
        previous_handlers = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(
                signum, self._on_signal)
        try:
            for slot in self._slots:
                self._spawn(slot)
            self._state = "serving"
            print(
                f"supervising {self.sup.workers} workers on "
                f"http://{self.config.host}:{self.port}  "
                f"(status/metrics on "
                f"http://{self.config.host}:{self.status_port}, "
                f"mode={self._mode}, "
                f"restart_budget={self.sup.restart_budget}); "
                "SIGTERM drains gracefully",
                flush=True,
            )
            while self._stop_signal is None:
                self._drain_pipes()
                if not self._check_workers():
                    self._state = "given_up"
                    log_event(_logger, "supervisor.give_up",
                              restarts_used=self._restarts_used,
                              restart_budget=self.sup.restart_budget)
                    print("restart budget exhausted; giving up",
                          flush=True)
                    self._shutdown_workers(
                        self.config.drain_grace_s + _DRAIN_MARGIN_S)
                    return 1
            self._state = "stopping"
            print("draining workers...", flush=True)
            self._shutdown_workers(
                self.config.drain_grace_s + _DRAIN_MARGIN_S)
            print("stopped", flush=True)
            if self._stop_signal == signal.SIGINT:
                raise KeyboardInterrupt
            return 0
        finally:
            self._state = ("given_up" if self._state == "given_up"
                           else "stopping")
            self._shutdown_workers(1.0)
            self._close()
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)

    def _on_signal(self, signum, frame) -> None:
        self._stop_signal = signum


def merge_service_stats(docs: List[dict]) -> Dict[str, object]:
    """Fold per-worker ``service`` stats into one fleet-wide document.

    Counters add; ``recent_shed_rate`` takes the *worst* worker (an
    average would hide one drowning worker behind N-1 idle ones);
    ``mean_batch_size`` is recomputed from the summed totals;
    ``draining`` is true if anyone is.
    """
    merged: Dict[str, object] = _merge_numeric_docs(docs)
    if docs:
        merged["recent_shed_rate"] = max(
            (doc.get("recent_shed_rate") or 0.0) for doc in docs)
        served = merged.get("served") or 0
        batches = merged.get("batches") or 0
        merged["mean_batch_size"] = (served / batches) if batches else 0.0
        merged["draining"] = any(doc.get("draining") for doc in docs)
        merged["workers_reporting"] = len(docs)
    return merged


def _merge_numeric_docs(docs: List[dict]) -> Dict[str, object]:
    merged: Dict[str, object] = {}
    for doc in docs:
        for key, value in doc.items():
            if isinstance(value, bool):
                merged[key] = bool(merged.get(key)) or value
            elif isinstance(value, (int, float)):
                merged[key] = (merged.get(key) or 0) + value
            elif isinstance(value, dict):
                nested = merged.setdefault(key, {})
                if isinstance(nested, dict):
                    merged[key] = _merge_numeric_docs(
                        [nested, value])  # type: ignore[list-item]
            elif key not in merged:
                merged[key] = value
    return merged


def run_supervisor(config: Optional[ServeConfig] = None,
                   sup: Optional[SupervisorConfig] = None) -> int:
    """Blocking entry point of ``sealpaa serve --workers N``."""
    return Supervisor(config, sup).run()


# ---------------------------------------------------------------------------
# Worker half: ``python -m repro.serve.supervisor`` with
# SEALPAA_WORKER_CONFIG set runs one serve worker.
# ---------------------------------------------------------------------------


async def _worker_body(config: ServeConfig, worker: Dict[str, object],
                       heartbeat) -> None:
    server = AnalysisServer(config)
    listen_fd = worker.get("listen_fd")
    if listen_fd is not None:
        sock = socket.socket(fileno=int(listen_fd))  # type: ignore[arg-type]
        await server.start_async(sock=sock)
    else:
        await server.start_async(reuse_port=True)
    admin_port = await server.start_admin_async()

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass

    def send(doc: Dict[str, object]) -> bool:
        try:
            heartbeat.write(json.dumps(doc) + "\n")
            heartbeat.flush()
            return True
        except OSError:
            return False

    send({"event": "ready", "pid": os.getpid(),
          "port": server.port, "admin_port": admin_port,
          "worker": worker.get("index")})
    interval = float(worker.get("heartbeat_interval_s") or 1.0)

    async def beat() -> None:
        while not stop.is_set():
            await asyncio.sleep(interval)
            if not send({"event": "heartbeat", "pid": os.getpid()}):
                # The supervisor is gone; an orphan worker serving a
                # port nobody supervises is worse than no worker.
                stop.set()

    beat_task = asyncio.get_running_loop().create_task(beat())
    await stop.wait()
    beat_task.cancel()
    await server.stop_async()


def worker_main() -> int:
    """Entry point of one supervised worker process."""
    raw = os.environ.get(WORKER_CONFIG_ENV)
    if not raw:
        print("repro.serve.supervisor is the worker entry point; "
              f"run it with {WORKER_CONFIG_ENV} set (the supervisor "
              "does this for you)", file=sys.stderr)
        return 2
    doc = json.loads(raw)
    config = config_from_doc(doc.get("serve") or {})
    worker = doc.get("worker") or {}
    install_chaos_from_env()
    heartbeat = os.fdopen(int(worker["heartbeat_fd"]), "w")
    try:
        asyncio.run(_worker_body(config, worker, heartbeat))
    except KeyboardInterrupt:
        return 130
    finally:
        try:
            heartbeat.close()
        except OSError:
            pass
    return 0


if __name__ == "__main__":
    sys.exit(worker_main())
